#!/usr/bin/env bash
# End-to-end smoke test of the live telemetry plane: start the queue
# service, curl the Prometheus exposition (HELP/TYPE lines + content
# type), prove the SSE stream delivers a queue-depth change caused by a
# real submission, revalidate the trend artifact with If-None-Match
# (304), and fetch the dashboard page itself.
#
#   ./scripts/smoke_dashboard.sh      # uses a temp dir, cleans up after
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="${PYTHONPATH:+$PYTHONPATH:}src"

workdir="$(mktemp -d)"
serve_pid=""
cleanup() {
    [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

curl_i() { curl -sS -D "$workdir/headers.txt" "$@"; }

echo "== start the queue service (fast publisher poll) =="
python -m repro.harness.cli serve \
    --store "$workdir/store" --queue "$workdir/queue" \
    --trend-store "$workdir/trend" --publish-interval 0.2 \
    --ttl 30 >"$workdir/serve.log" 2>&1 &
serve_pid=$!
for _ in $(seq 1 50); do
    url="$(sed -n 's/.*service on \(http:\/\/[^ ]*\).*/\1/p' "$workdir/serve.log")"
    [ -n "$url" ] && break
    kill -0 "$serve_pid" || { cat "$workdir/serve.log"; exit 1; }
    sleep 0.2
done
[ -n "$url" ] || { echo "service never came up"; cat "$workdir/serve.log"; exit 1; }
echo "service at $url"
grep -q "dashboard at" "$workdir/serve.log"

echo "== /metrics?format=prometheus renders a legal exposition =="
curl_i "$url/metrics?format=prometheus" >"$workdir/metrics.txt"
grep -qi "^content-type: application/openmetrics-text" "$workdir/headers.txt"
grep -q "^# TYPE farm_queue_depth gauge" "$workdir/metrics.txt"
grep -q "^# HELP farm_queue_depth " "$workdir/metrics.txt"
grep -q "^# EOF" "$workdir/metrics.txt"
# the JSON default is untouched
curl_i "$url/metrics" >/dev/null
grep -qi "^content-type: application/json" "$workdir/headers.txt"

echo "== healthz reports store records + uptime =="
curl -sS "$url/healthz" | tee "$workdir/healthz.json"; echo
grep -q '"store_records"' "$workdir/healthz.json"
grep -q '"uptime_s"' "$workdir/healthz.json"

echo "== SSE delivers a queue-depth change end-to-end =="
# Open a real stream first (snapshot shows pending 0), then submit while
# it is open: the publisher must push the new depth to the open client.
curl -sS -N --max-time 15 "$url/events" >"$workdir/events.txt" &
sse_pid=$!
sleep 1
python -m repro.harness.cli farm submit "$url" table1 --preset smoke \
    >"$workdir/submit.txt"
for _ in $(seq 1 50); do
    grep -q '"pending":[1-9]' "$workdir/events.txt" && break
    sleep 0.2
done
kill "$sse_pid" 2>/dev/null || true
wait "$sse_pid" 2>/dev/null || true
grep -q "^event: queue" "$workdir/events.txt"
grep -q '"pending":[1-9]' "$workdir/events.txt" \
    || { echo "queue-depth change never reached the SSE client"; cat "$workdir/events.txt"; exit 1; }
echo "queue-depth change observed on the open stream"

echo "== drain, then the trend artifact revalidates with a 304 =="
python -m repro.harness.cli worker "$url" --id smoke-dash --ttl 30 --drain \
    >"$workdir/worker.log" 2>&1
grep -q "0 failed" "$workdir/worker.log"

curl_i "$url/trends" >"$workdir/trends.json"
etag="$(sed -n 's/^[Ee][Tt]ag: \(.*\)/\1/p' "$workdir/headers.txt" | tr -d '\r')"
[ -n "$etag" ] || { echo "no ETag on /trends"; exit 1; }
code="$(curl -sS -o /dev/null -w '%{http_code}' -H "If-None-Match: $etag" "$url/trends")"
[ "$code" = "304" ] || { echo "expected 304 on trend revalidation, got $code"; exit 1; }
echo "trend artifact 304 revalidation ok (ETag $etag)"

echo "== the dashboard page itself =="
curl_i "$url/dashboard" >"$workdir/dash.html"
grep -qi "^content-type: text/html" "$workdir/headers.txt"
grep -q "EventSource" "$workdir/dash.html"

echo "== standalone repro dashboard serves the same store read-only =="
python -m repro.harness.cli dashboard \
    --store "$workdir/store" --trend-store "$workdir/trend" \
    >"$workdir/dashboard.log" 2>&1 &
dash_pid=$!
for _ in $(seq 1 50); do
    durl="$(sed -n 's/.*open \(http:\/\/[^ ]*\)\/dashboard.*/\1/p' "$workdir/dashboard.log")"
    [ -n "$durl" ] && break
    kill -0 "$dash_pid" || { cat "$workdir/dashboard.log"; exit 1; }
    sleep 0.2
done
[ -n "$durl" ] || { echo "dashboard never came up"; cat "$workdir/dashboard.log"; exit 1; }
curl_i "$durl/metrics?format=prometheus" >"$workdir/dash-metrics.txt"
grep -qi "^content-type: application/openmetrics-text" "$workdir/headers.txt"
grep -q "^# EOF" "$workdir/dash-metrics.txt"
curl -sS "$durl/healthz" | grep -q '"mode": "dashboard"'
kill "$dash_pid" 2>/dev/null || true
wait "$dash_pid" 2>/dev/null || true

echo "smoke_dashboard: all checks passed"
