#!/usr/bin/env bash
# End-to-end smoke test of the distributed farm: start the queue
# service, submit a small family over HTTP, drain it with two real
# worker processes, and prove the second submission is a 100% cache-hit
# replay of byte-identical rows.
#
#   ./scripts/smoke_queue.sh          # uses a temp dir, cleans up after
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="${PYTHONPATH:+$PYTHONPATH:}src"

workdir="$(mktemp -d)"
serve_pid=""
cleanup() {
    [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== start the queue service =="
python -m repro.harness.cli serve \
    --store "$workdir/store" --queue "$workdir/queue" \
    --ttl 30 >"$workdir/serve.log" 2>&1 &
serve_pid=$!
for _ in $(seq 1 50); do
    url="$(sed -n 's/.*service on \(http:\/\/[^ ]*\).*/\1/p' "$workdir/serve.log")"
    [ -n "$url" ] && break
    kill -0 "$serve_pid" || { cat "$workdir/serve.log"; exit 1; }
    sleep 0.2
done
[ -n "$url" ] || { echo "service never came up"; cat "$workdir/serve.log"; exit 1; }
echo "service at $url"

echo "== submit table1 (smoke preset) =="
python -m repro.harness.cli farm submit "$url" table1 --preset smoke \
    | tee "$workdir/submit1.txt"
grep -q "0 already cached" "$workdir/submit1.txt"

echo "== drain with two worker processes =="
python -m repro.harness.cli worker "$url" --id smoke-w1 --ttl 30 --drain \
    >"$workdir/w1.log" 2>&1 &
w1=$!
python -m repro.harness.cli worker "$url" --id smoke-w2 --ttl 30 --drain \
    >"$workdir/w2.log" 2>&1 &
w2=$!
wait "$w1"; wait "$w2"
cat "$workdir/w1.log" "$workdir/w2.log"
grep -q "0 failed" "$workdir/w1.log"
grep -q "0 failed" "$workdir/w2.log"
# both workers must actually have participated
for log in "$workdir/w1.log" "$workdir/w2.log"; do
    grep -Eq "[1-9][0-9]* completed" "$log" \
        || { echo "a worker completed nothing: $log"; exit 1; }
done

echo "== second submission must be a fully cached replay =="
python -m repro.harness.cli farm submit "$url" table1 --preset smoke \
    --wait --expect-cached | tee "$workdir/submit2.txt"
grep -q "0 queued" "$workdir/submit2.txt"
grep -q "Table 1" "$workdir/submit2.txt"

echo "== replayed rows are byte-identical to the pool backend =="
# A real script file, not a heredoc: run_farm spawns children, and the
# spawn start method re-imports __main__ — which must exist on disk.
cat >"$workdir/check_identity.py" <<'EOF'
import json, sys
from pathlib import Path

from repro.farm.service import run_farm
from repro.farm.store import ResultStore

if __name__ == "__main__":
    workdir = Path(sys.argv[1])

    # the rows the queue workers filed, read from the service store
    queue_store = ResultStore(workdir / "store")
    queued = {r["point_hash"]: r["row"] for r in queue_store.records()}

    # the pool oracle on a fresh store
    report = run_farm(
        families=["table1"], preset="smoke", jobs=2, progress=False,
        store=ResultStore(workdir / "pool-store"),
    )
    assert report.ok, "pool run failed"
    pooled = {
        r["point_hash"]: r["row"]
        for r in ResultStore(workdir / "pool-store").records()
    }

    assert set(queued) == set(pooled), "point sets diverge"
    for point_hash, row in pooled.items():
        assert json.dumps(queued[point_hash]) == json.dumps(row), (
            f"row bytes diverge for {point_hash}"
        )
    print(f"ok: {len(pooled)} rows byte-identical across backends")
EOF
python "$workdir/check_identity.py" "$workdir"

echo "smoke_queue: all checks passed"
