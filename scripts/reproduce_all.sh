#!/usr/bin/env bash
# Full reproduction pass: tests, every paper table/figure, examples.
#
#   ./scripts/reproduce_all.sh            # default (scaled) instances
#   REPRO_SCALE=1.0 ./scripts/reproduce_all.sh   # full class-C sizes
#
# Outputs land next to this script's repo root:
#   test_output.txt   - the complete pytest run
#   bench_output.txt  - every benchmark (tables/figures + ablations)

set -uo pipefail
cd "$(dirname "$0")/.."

echo "== 1/3 test suite =="
python -m pytest tests/ 2>&1 | tee test_output.txt | tail -2

echo "== 2/3 benchmarks (paper tables & figures) =="
python -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt | tail -4

echo "== 3/3 examples =="
for example in examples/*.py; do
    echo "--- ${example} ---"
    python "$example" || exit 1
done

echo "done: see test_output.txt / bench_output.txt and EXPERIMENTS.md"
