#!/usr/bin/env bash
# Full reproduction pass: tests, every paper table/figure, examples.
#
#   ./scripts/reproduce_all.sh            # default (scaled) instances
#   FARM_JOBS=8 ./scripts/reproduce_all.sh       # wider worker farm
#
# Full class-C sizes still go through the pytest-benchmark path:
#   REPRO_SCALE=1.0 python -m pytest benchmarks/ --benchmark-only
#
# Any failing step fails the whole pass (set -e).
#
# Outputs land next to this script's repo root:
#   test_output.txt   - the complete pytest run
#   bench_output.txt  - every benchmark (tables/figures + ablations),
#                       regenerated through the `repro farm` worker pool
#                       (parallel + content-addressed result cache; see
#                       docs/FARM.md)

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== 1/3 test suite =="
python -m pytest tests/ 2>&1 | tee test_output.txt | tail -2

echo "== 2/3 benchmarks (paper tables & figures, via the farm) =="
python -m repro.harness.cli farm figures -j "${FARM_JOBS:-4}" \
    2>&1 | tee bench_output.txt | tail -3

echo "== 3/3 examples =="
for example in examples/*.py; do
    echo "--- ${example} ---"
    python "$example"
done

echo "done: see test_output.txt / bench_output.txt and EXPERIMENTS.md"
