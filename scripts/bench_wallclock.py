#!/usr/bin/env python3
"""Wall-clock benchmark gate for the simulator hot path.

Runs a small suite of macro replays (idle-heavy, where the Strobe
Sender's idle fast-forward dominates) and dense micro benchmarks (every
slice active, where the engine/matching/fabric fast paths must at least
not regress), each twice: once with the optimized defaults and once with
the optimizations disabled (``idle_fast_forward=False, matcher="linear"``).

Every pair asserts that the *virtual* runtime is byte-identical — the
optimizations must never change simulated time — and reports the
wall-clock speedup.

Results are normalized by a spin-loop calibration
(:mod:`repro.obs.trends.calibrate`) so recorded numbers transfer across
machines: every comparison uses ``wall / calibration`` ratios, not raw
seconds.  Cross-run regression tracking lives in the trend store
(``--trend-store`` + ``repro trend check`` — see docs/TRENDS.md); the
committed ``BENCH_simperf.json`` snapshot seeds that store's day-one
history.

Usage:
    scripts/bench_wallclock.py             # full suite, print report
    scripts/bench_wallclock.py --quick     # smaller workloads (CI)
    scripts/bench_wallclock.py --quick --update   # rewrite BENCH_simperf.json
    scripts/bench_wallclock.py --quick --check    # gate on speedup floors
    scripts/bench_wallclock.py --quick --trend-store .trend-store
"""

from __future__ import annotations

import argparse
import json
import math
import multiprocessing as mp
import platform
import resource
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.apps.sage import sage  # noqa: E402
from repro.apps.sweep3d import sweep3d_blocking  # noqa: E402
from repro.apps.synthetic import (  # noqa: E402
    barrier_benchmark,
    nearest_neighbor_benchmark,
)
from repro.bcs import BcsConfig, BcsRuntime  # noqa: E402
from repro.harness.runner import run_workload  # noqa: E402
from repro.harness.scaling import gc_counters, tune_gc  # noqa: E402
from repro.network import Cluster, ClusterSpec  # noqa: E402
from repro.obs.trends.calibrate import Calibration  # noqa: E402
from repro.storm import JobSpec  # noqa: E402
from repro.units import ms, seconds  # noqa: E402

BASELINE_PATH = REPO / "BENCH_simperf.json"
SCHEMA = 1

#: Required fast-forward speedup on the idle-heavy macro replay.
MACRO_MIN_SPEEDUP = 2.0
#: Dense micro benchmarks must not get slower than this factor.
MICRO_MIN_SPEEDUP = 0.90
#: Required full-stack speedup on the large-N scaling replay: one small
#: job on a 512-node machine must run >= 10x faster with the optimized
#: defaults (idle fast-forward + incremental active sets + hash matcher)
#: than with the historical per-slice full-scan path.
SCALING_MIN_SPEEDUP = 10.0
#: Per-benchmark floors that override the kind-level defaults above.
#: ``barrier_micro`` is the dense regime the batched slice engine must
#: not lose (the batched DEM/MSM holds plus descriptor pooling have to
#: at least pay for themselves); ``scaling_4096`` is the ISSUE-7 regime
#: where the full optimized stack must beat the reference stack >= 30x;
#: ``scaling_16384`` is the ISSUE-10 regime — aggregated strobe + arena
#: node state on a 16k-node machine, where per-destination strobe
#: fan-out and eager node construction would otherwise dominate.
BENCH_MIN_SPEEDUP = {
    "barrier_micro": 1.0,
    "scaling_4096": 30.0,
    "scaling_16384": 30.0,
}


def benchmarks(quick: bool):
    """The benchmark matrix: (name, kind, app, n_ranks, params, config
    kwargs, cluster nodes).

    ``macro`` workloads are compute-dominated replays in the spirit of
    the paper's Fig. 10 (SAGE) and Fig. 11 (SWEEP3D) runs: most slices
    are idle, so the fast-forward should collapse them.  ``micro``
    workloads keep every slice active so the remaining optimizations
    (hash matching, latch barriers, fabric fast paths) are measured
    without any skipping.  The ``scaling`` replay is the ISSUE-5 regime:
    one small job on a 512-node machine, where the per-slice full scans
    of the reference path dominate and the incremental active sets plus
    idle fast-forward must buy >= 10x.
    """
    s = 3 if quick else 5  # repetition count per measurement (best-of)
    return s, [
        (
            "sage_fig10",
            "macro",
            sage,
            8,
            dict(steps=8 if quick else 16, step_compute=seconds(1)),
            {},
            None,
        ),
        (
            "sweep3d_fig11",
            "macro",
            sweep3d_blocking,
            8,
            dict(
                octants=8,
                kblocks=2 if quick else 4,
                step_compute=ms(100),
            ),
            {},
            None,
        ),
        (
            "barrier_micro",
            "micro",
            barrier_benchmark,
            8,
            dict(iterations=300 if quick else 800, granularity=ms(1)),
            dict(init_cost=0),
            None,
        ),
        (
            "scaling_512",
            "scaling",
            barrier_benchmark,
            2,
            dict(iterations=20 if quick else 40, granularity=ms(40)),
            dict(init_cost=0),
            512,
        ),
        (
            "scaling_4096",
            "scaling",
            nearest_neighbor_benchmark,
            8,
            dict(iterations=6 if quick else 12, granularity=ms(100)),
            dict(init_cost=0),
            4096,
        ),
        (
            "scaling_16384",
            "scaling",
            nearest_neighbor_benchmark,
            8,
            dict(iterations=4 if quick else 8, granularity=ms(100)),
            dict(init_cost=0),
            16384,
        ),
    ]


def _slow_config(**cfg_kwargs) -> BcsConfig:
    """The reference (pre-optimization) simulator configuration."""
    return BcsConfig(
        idle_fast_forward=False,
        matcher="linear",
        incremental_active_sets=False,
        batched_matching=False,
        aggregated_strobe=False,
        **cfg_kwargs,
    )


def _peak_rss_mib() -> float:
    """Process peak RSS in MiB (``ru_maxrss`` is KiB on Linux).

    The kernel counter is a cumulative high-water mark: it only ever
    grows over the process lifetime, so each benchmark's record holds
    the high-water mark *observed after it ran*, not an isolated
    footprint.  Growth between consecutive benchmarks is still the
    signal the ``bench.rss.*`` trend series watches for.
    """
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def run_case(app, n_ranks, params, cfg_kwargs, reps: int):
    """Best-of-``reps`` wall-clock for one workload, both configs.

    The optimized and reference measurements are interleaved so bursts
    of background load hit both sides instead of skewing one of them.
    Returns (best_fast, best_slow, fast_result, slow_result).
    """
    fast_cfg = BcsConfig(**cfg_kwargs)
    slow_cfg = _slow_config(**cfg_kwargs)
    best_fast = best_slow = math.inf
    fast = slow = None
    for _ in range(reps):
        t0 = time.perf_counter()
        fast = run_workload(app, n_ranks, "bcs", params=params, bcs_config=fast_cfg)
        best_fast = min(best_fast, time.perf_counter() - t0)
        t0 = time.perf_counter()
        slow = run_workload(app, n_ranks, "bcs", params=params, bcs_config=slow_cfg)
        best_slow = min(best_slow, time.perf_counter() - t0)
    return best_fast, best_slow, fast, slow


class _ScalingResult:
    """RunResult-shaped view over a large-N run (runtime_ns + stats)."""

    def __init__(self, runtime_ns, stats):
        self.runtime_ns = runtime_ns
        self.stats = dict(stats)


_CTX = mp.get_context("spawn")


def _scaling_leg(conn, app, n_ranks, params, cfg_kwargs, n_nodes, reps, fast):
    """Child-process entry: one scaling leg in an isolated interpreter.

    ``ru_maxrss`` is a cumulative high-water mark, so the only way to
    attribute a peak RSS to one configuration is to give each leg its
    own process.  The optimized leg also gets the lazy node directory
    (flyweight nodes are part of what it is measuring); the reference
    leg builds the cluster eagerly like the pre-arena engine did.
    """
    cfg_fn = BcsConfig if fast else _slow_config
    # Warm the interpreter on a toy cluster, then freeze the warm graph
    # so the timed region pays for its own garbage only.
    warm_spec = JobSpec(
        app=app, n_ranks=2, name="warm", params={**params, "iterations": 2}
    )
    BcsRuntime(
        Cluster(ClusterSpec(n_nodes=8, lazy_nodes=fast)), cfg_fn(**cfg_kwargs)
    ).run_job(warm_spec, max_time=seconds(3600))
    tune_gc()
    best = math.inf
    result = None
    gc_delta = 0
    for _ in range(reps):
        cluster = Cluster(ClusterSpec(n_nodes=n_nodes, lazy_nodes=fast))
        runtime = BcsRuntime(cluster, cfg_fn(**cfg_kwargs))
        spec = JobSpec(app=app, n_ranks=n_ranks, name="bench", params=params)
        gc0, _ = gc_counters()
        t0 = time.perf_counter()
        job = runtime.run_job(spec, max_time=seconds(3600))
        best = min(best, time.perf_counter() - t0)
        gc_delta = max(gc_delta, gc_counters()[0] - gc0)
        result = _ScalingResult(job.runtime, runtime.stats)
    conn.send(
        (
            best,
            result.runtime_ns,
            result.stats,
            _peak_rss_mib(),
            gc_delta,
            gc_counters()[1],
        )
    )
    conn.close()


def _run_leg(app, n_ranks, params, cfg_kwargs, n_nodes, reps, fast):
    recv, send = _CTX.Pipe(duplex=False)
    proc = _CTX.Process(
        target=_scaling_leg,
        args=(send, app, n_ranks, params, cfg_kwargs, n_nodes, reps, fast),
    )
    proc.start()
    send.close()
    payload = recv.recv()
    proc.join()
    recv.close()
    return payload


def run_scaling_case(app, n_ranks, params, cfg_kwargs, n_nodes, reps: int):
    """Like :func:`run_case` on an ``n_nodes`` cluster, timing only the
    slice machine (cluster construction is O(nodes) on both sides and
    not what the gate measures).

    Each leg runs best-of-``reps`` inside its own spawned child so the
    peak-RSS and GC counters describe that configuration alone; timing
    happens inside the child, so spawn overhead is never measured.
    Returns ``(best_fast, best_slow, fast, slow, extras)`` where
    ``extras`` carries the optimized leg's memory/GC measurements.
    """
    wall_f, ns_f, stats_f, rss_f, gcd_f, gco_f = _run_leg(
        app, n_ranks, params, cfg_kwargs, n_nodes, reps, True
    )
    wall_s, ns_s, stats_s, _, _, _ = _run_leg(
        app, n_ranks, params, cfg_kwargs, n_nodes, reps, False
    )
    extras = {
        "peak_rss_mib": rss_f,
        "gc_collections": gcd_f,
        "gc_objects": gco_f,
    }
    return (
        wall_f,
        wall_s,
        _ScalingResult(ns_f, stats_f),
        _ScalingResult(ns_s, stats_s),
        extras,
    )


def run_suite(quick: bool) -> dict:
    calibration = Calibration()
    # Warm the engine once, then freeze the long-lived interpreter graph:
    # every in-process measurement after this pays for its own garbage
    # only, not collector passes over modules and the warm engine.
    run_workload(
        barrier_benchmark, 4, "bcs", params=dict(iterations=2, granularity=ms(1))
    )
    tune_gc()
    reps, matrix = benchmarks(quick)
    raw = {}
    for name, kind, app, n_ranks, params, cfg_kwargs, n_nodes in matrix:
        if kind == "scaling":
            wall_fast, wall_slow, fast, slow, extras = run_scaling_case(
                app, n_ranks, params, cfg_kwargs, n_nodes, reps
            )
        else:
            gc0, _ = gc_counters()
            wall_fast, wall_slow, fast, slow = run_case(
                app, n_ranks, params, cfg_kwargs, reps
            )
            gc1, gc_objects = gc_counters()
            # In-process cases inherit the cumulative high-water mark;
            # growth between consecutive benchmarks is still the signal
            # the trend series watches.  Scaling cases measure theirs in
            # an isolated child (see run_scaling_case).
            extras = {
                "peak_rss_mib": _peak_rss_mib(),
                "gc_collections": gc1 - gc0,
                "gc_objects": gc_objects,
            }
        calibration.sample()
        if fast.runtime_ns != slow.runtime_ns:
            raise SystemExit(
                f"{name}: virtual time diverged — optimized {fast.runtime_ns} ns "
                f"vs reference {slow.runtime_ns} ns"
            )
        raw[name] = (kind, wall_fast, wall_slow, fast, extras)
        print(
            f"{name:16s} [{kind}]  optimized {wall_fast:7.3f}s  "
            f"reference {wall_slow:7.3f}s  speedup {wall_slow / wall_fast:5.2f}x  "
            f"skipped {fast.stats.get('idle_slices_skipped', 0)}  "
            f"rss {extras['peak_rss_mib']:6.1f}MiB  "
            f"gc {extras['gc_collections']}"
        )
    out = {
        "schema": SCHEMA,
        "quick": quick,
        "calibration_s": round(calibration.best, 6),
        "python": platform.python_version(),
        "benchmarks": {},
    }
    for name, (kind, wall_fast, wall_slow, fast, extras) in raw.items():
        out["benchmarks"][name] = {
            "kind": kind,
            "wall_s": round(wall_fast, 4),
            "wall_reference_s": round(wall_slow, 4),
            "speedup": round(wall_slow / wall_fast, 3),
            "normalized": round(wall_fast / calibration.best, 3),
            "virtual_ns": fast.runtime_ns,
            "idle_slices_skipped": fast.stats.get("idle_slices_skipped", 0),
            "peak_rss_mib": round(extras["peak_rss_mib"], 1),
            "gc_collections": extras["gc_collections"],
            "gc_objects": extras["gc_objects"],
        }
    return out


def check(report: dict) -> int:
    """Gate: the optimizations must actually pay for themselves.

    Speedup floors only.  Cross-run wall-clock regression tracking
    moved to the trend store (``--trend-store`` + ``repro trend
    check``), which judges against the *distribution* of recent runs
    instead of one committed snapshot.
    """
    failures = []
    macro_speedups = {}
    for name, rec in report["benchmarks"].items():
        floor = BENCH_MIN_SPEEDUP.get(name)
        if floor is not None:
            if rec["speedup"] < floor:
                failures.append(
                    f"{name}: below its dedicated floor "
                    f"({rec['speedup']:.2f}x < {floor:.2f}x)"
                )
        elif rec["kind"] == "macro":
            macro_speedups[name] = rec["speedup"]
        elif rec["kind"] == "scaling":
            if rec["speedup"] < SCALING_MIN_SPEEDUP:
                failures.append(
                    f"{name}: large-N replay below the scaling floor "
                    f"({rec['speedup']:.2f}x < {SCALING_MIN_SPEEDUP:.1f}x)"
                )
        elif rec["speedup"] < MICRO_MIN_SPEEDUP:
            failures.append(
                f"{name}: dense micro slowed down ({rec['speedup']:.2f}x < "
                f"{MICRO_MIN_SPEEDUP:.2f}x)"
            )
    if macro_speedups and max(macro_speedups.values()) < MACRO_MIN_SPEEDUP:
        failures.append(
            f"no macro replay reached {MACRO_MIN_SPEEDUP:.1f}x fast-forward "
            f"speedup: {macro_speedups}"
        )

    if failures:
        print("\nBENCH GATE FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nbench gate passed")
    return 0


def record_trends(report: dict, store_path: Path) -> None:
    """Append this report's series to the cross-run trend store."""
    from repro.obs.trends import TrendStore
    from repro.obs.trends.record import record_bench_report

    meta, rows = record_bench_report(TrendStore(store_path), report)
    print(f"trend store: recorded run {meta.run_id} ({rows} series rows)")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small workloads (CI)")
    parser.add_argument(
        "--update",
        action="store_true",
        help=f"rewrite {BASELINE_PATH.name} (the trend store's seed baseline)",
    )
    parser.add_argument(
        "--check", action="store_true", help="fail when a speedup floor is missed"
    )
    parser.add_argument(
        "--output", type=Path, default=None, help="also write the report here"
    )
    parser.add_argument(
        "--trend-store",
        type=Path,
        default=None,
        metavar="PATH",
        help="append the report to this cross-run trend store (docs/TRENDS.md)",
    )
    args = parser.parse_args()

    report = run_suite(args.quick)
    if args.output is not None:
        args.output.write_text(json.dumps(report, indent=2) + "\n")
    if args.trend_store is not None:
        record_trends(report, args.trend_store)
    if args.update:
        BASELINE_PATH.write_text(json.dumps(report, indent=2) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
        return 0
    if args.check:
        return check(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
