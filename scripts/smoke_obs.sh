#!/usr/bin/env bash
# End-to-end smoke test of the observability pipeline: run one
# instrumented experiment, export the Perfetto trace and the metrics
# report, and check both for the things a human would look for first.
#
#   ./scripts/smoke_obs.sh            # uses a temp dir, cleans up after
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="${PYTHONPATH:+$PYTHONPATH:}src"

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

echo "== trace export =="
python -m repro.harness.cli trace fig8 --ranks 8 --out "$workdir/trace.json"

echo "== trace validation =="
python - "$workdir/trace.json" <<'EOF'
import json, sys

doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
assert doc["displayTimeUnit"] == "ns", "missing displayTimeUnit"
assert events, "empty trace"
names = {e["name"] for e in events if e["ph"] == "X"}
for phase in ("DEM", "MSM", "BBM"):
    assert phase in names, f"no {phase} spans in trace"
assert any(n.startswith("slice ") for n in names), "no slice spans"
print(f"ok: {len(events)} events, span names include DEM/MSM/BBM")
EOF

echo "== determinism (two same-seed exports) =="
python -m repro.harness.cli trace fig8 --ranks 8 --out "$workdir/trace2.json"
cmp "$workdir/trace.json" "$workdir/trace2.json"
echo "ok: byte-identical"

echo "== metrics report =="
python -m repro.harness.cli metrics fig8 --ranks 8 | tee "$workdir/metrics.txt"
grep -q "bcs.microphase.duration_ns" "$workdir/metrics.txt"
grep -q "@--- MPI Time" "$workdir/metrics.txt"

echo "smoke_obs: all checks passed"
