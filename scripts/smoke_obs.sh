#!/usr/bin/env bash
# End-to-end smoke test of the observability pipeline: run one
# instrumented experiment, export the Perfetto trace and the metrics
# report, and check both for the things a human would look for first.
#
#   ./scripts/smoke_obs.sh            # uses a temp dir, cleans up after
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="${PYTHONPATH:+$PYTHONPATH:}src"

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

echo "== trace export =="
python -m repro.harness.cli trace fig8 --ranks 8 --out "$workdir/trace.json"

echo "== trace validation =="
python - "$workdir/trace.json" <<'EOF'
import json, sys

doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
assert doc["displayTimeUnit"] == "ns", "missing displayTimeUnit"
assert events, "empty trace"
names = {e["name"] for e in events if e["ph"] == "X"}
for phase in ("DEM", "MSM", "BBM"):
    assert phase in names, f"no {phase} spans in trace"
assert any(n.startswith("slice ") for n in names), "no slice spans"
print(f"ok: {len(events)} events, span names include DEM/MSM/BBM")
EOF

echo "== determinism (two same-seed exports) =="
python -m repro.harness.cli trace fig8 --ranks 8 --out "$workdir/trace2.json"
cmp "$workdir/trace.json" "$workdir/trace2.json"
echo "ok: byte-identical"

echo "== metrics report =="
python -m repro.harness.cli metrics fig8 --ranks 8 | tee "$workdir/metrics.txt"
grep -q "bcs.microphase.duration_ns" "$workdir/metrics.txt"
grep -q "@--- MPI Time" "$workdir/metrics.txt"

echo "== critical-path explain =="
python -m repro.harness.cli explain fig8 --ranks 8 \
    --json "$workdir/blame.json" --trace "$workdir/flow.json" \
    | tee "$workdir/explain.txt"
grep -q "critical path of fig8" "$workdir/explain.txt"

echo "== blame-report validation =="
python - "$workdir/blame.json" <<'EOF'
import json, sys

payload = json.load(open(sys.argv[1]))
assert payload["schema"] == 1, "unexpected blame schema"
cats = payload["categories_ns"]
assert sum(cats.values()) == payload["makespan_ns"], (
    "blame categories must sum to the makespan exactly"
)
assert sum(payload["per_rank_ns"].values()) == payload["makespan_ns"]
assert abs(sum(payload["shares"].values()) - 1.0) < 1e-4
assert payload["counts"]["collectives"] > 0, "fig8 must trace collectives"
assert payload["chains"], "no chains on the critical path"
print(f"ok: blame sums to {payload['makespan_ns']} ns across {len(cats)} categories")
EOF

echo "== flow-event validation (p2p run) =="
python -m repro.harness.cli explain fig8-p2p --ranks 8 \
    --trace "$workdir/flow-p2p.json" > /dev/null
python - "$workdir/flow-p2p.json" <<'EOF'
import json, sys

doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
flows = [e for e in events if e.get("cat") == "msgflow"]
assert flows, "p2p trace must carry message flow events"
by_id = {}
for e in flows:
    by_id.setdefault(e["id"], []).append(e["ph"])
assert all(sorted(v) == ["f", "s", "t"] for v in by_id.values()), (
    "every flow id needs a start/step/end triple"
)
# Containment in integer nanoseconds: float microsecond addition loses
# the last digit exactly at span edges.
ns = lambda v: round(v * 1000)
spans = [e for e in events if e.get("ph") == "X"]
for e in flows:
    t = ns(e["ts"])
    assert any(
        x["pid"] == e["pid"] and x["tid"] == e["tid"]
        and ns(x["ts"]) <= t <= ns(x["ts"]) + ns(x["dur"])
        for x in spans
    ), f"flow event at {t} ns resolves to no real slice span"
print(f"ok: {len(flows)} flow events over {len(by_id)} messages, all inside real spans")
EOF

echo "== explain determinism (two same-seed runs) =="
python -m repro.harness.cli explain fig8 --ranks 8 \
    --json "$workdir/blame2.json" > /dev/null
cmp "$workdir/blame.json" "$workdir/blame2.json"
echo "ok: byte-identical"

echo "smoke_obs: all checks passed"
