#!/usr/bin/env python
"""The paper's §5.4 story: turning SWEEP3D's blocking communication into
non-blocking communication erases the BCS slowdown.

Reproduces the Figure 11 comparison at a reduced sweep count: the
blocking wavefront loses ~30-50 % under BCS-MPI (every MPI_Recv stalls
~1.5 time slices and the stalls pipeline), while the <50-line
Isend/Irecv + Waitall transform hides the slice latency under the 3.5 ms
compute step and runs at production-MPI speed.

Run:  python examples/sweep3d_blocking_vs_nonblocking.py
"""

from repro.apps import sweep3d_blocking, sweep3d_nonblocking
from repro.bcs import BcsConfig
from repro.harness import compare_backends
from repro.harness.report import print_table
from repro.mpi.baseline import BaselineConfig

PARAMS = dict(octants=4, kblocks=4)  # a reduced but structurally true sweep


def main():
    rows = []
    for label, app in (
        ("blocking", sweep3d_blocking),
        ("non-blocking", sweep3d_nonblocking),
    ):
        comparison = compare_backends(
            app,
            n_ranks=32,
            params=PARAMS,
            bcs_config=BcsConfig(init_cost=0),
            baseline_config=BaselineConfig(init_cost=0),
        )
        rows.append(
            [
                label,
                f"{comparison.baseline.runtime_s:.3f}",
                f"{comparison.bcs.runtime_s:.3f}",
                f"{comparison.slowdown_pct:+.1f}%",
            ]
        )
    print_table(
        "SWEEP3D under BCS-MPI: the blocking -> non-blocking transform",
        ["variant", "Quadrics-MPI model (s)", "BCS-MPI (s)", "BCS slowdown"],
        rows,
    )
    print(
        "\nPaper (Fig 11): blocking ~30% slower under BCS at every process\n"
        "count; the transformed code slightly outperforms production MPI."
    )


if __name__ == "__main__":
    main()
