#!/usr/bin/env python
"""OS noise and why global coordination matters (paper §1, citing [20]).

A fine-grained bulk-synchronous application is run under the
production-MPI model while per-node dæmons steal the CPU:

- *uncoordinated* dæmons (random phases): with N nodes, some node is
  almost always perturbed, so every barrier waits for the unlucky one;
- *coordinated* dæmons (same windows everywhere): the app pays the duty
  cycle once — this is the regime a BCS-style globally-scheduled system
  creates by construction.

Run:  python examples/noise_and_coscheduling.py
"""

from repro.apps import barrier_benchmark
from repro.harness import run_workload
from repro.harness.report import print_table
from repro.mpi.baseline import BaselineConfig
from repro.noise import NoiseConfig
from repro.units import ms, to_seconds

PARAMS = dict(granularity=ms(2), iterations=40, jitter=0.0)
N_RANKS = 32


def run(noise: NoiseConfig | None) -> float:
    result = run_workload(
        barrier_benchmark,
        n_ranks=N_RANKS,
        backend="baseline",
        params=PARAMS,
        baseline_config=BaselineConfig(init_cost=0),
        noise=noise,
    )
    return result.runtime_s


def main():
    quiet = run(None)
    rows = [["no noise", f"{quiet:.3f}", "--"]]
    for label, coordinated in (("uncoordinated", False), ("coordinated", True)):
        noisy = run(
            NoiseConfig(period=ms(20), duration=ms(2), coordinated=coordinated)
        )
        rows.append([f"{label} daemons", f"{noisy:.3f}", f"+{100*(noisy/quiet-1):.0f}%"])
    print_table(
        "Fine-grained barrier code vs 10% duty-cycle OS noise (32 ranks)",
        ["scenario", "runtime (s)", "vs quiet"],
        rows,
    )
    print(
        "\ncoordinating the daemons recovers most of the loss — the effect\n"
        "BCS generalizes by globally scheduling *all* system activity."
    )


if __name__ == "__main__":
    main()
