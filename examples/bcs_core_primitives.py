#!/usr/bin/env python
"""The three BCS core primitives, bare (paper §2 and Figure 1).

Everything else in this repository — MPI, STORM, checkpointing, the
file system — is built on the three operations demonstrated here:
``Xfer-And-Signal``, ``Test-Event``, ``Compare-And-Write``.  This
example uses them raw to build the two canonical system-software
moves: a global data push with completion detection, and a
phase-agreement check (the heart of the strobe protocol).

Run:  python examples/bcs_core_primitives.py
"""

from repro.core import BcsCore
from repro.network import Cluster, ClusterSpec
from repro.units import fmt_time, kib

N = 8


def main():
    cluster = Cluster(ClusterSpec(n_nodes=N))
    core = BcsCore(cluster)
    env = cluster.env
    mgmt = cluster.management_node.id

    def driver():
        # 1. Xfer-And-Signal: atomically put a config blob into every
        #    node's global memory; signal a remote event on arrival.
        t0 = env.now
        core.xfer_and_signal(
            mgmt,
            range(N),
            size=kib(64),
            addr="config",
            value={"timeslice_us": 500},
            local_event="push-done",
            remote_event="config-here",
        )
        # The put is non-blocking: the ONLY way to observe completion
        # is Test-Event (paper §2, point 3).
        yield from core.test_event(mgmt, "push-done")
        print(f"[{fmt_time(env.now - t0)}] 64 KiB pushed to {N} nodes (one multicast)")

        # 2. Every node sees the same value -- sequential consistency.
        values = core.gas.gather(range(N), "config")
        assert all(v == {"timeslice_us": 500} for v in values)
        print("all nodes observe the same global value: OK")

        # 3. Nodes report phase completion by writing global counters...
        for node in range(N):
            core.gas.write(node, "phase", 3 if node != 5 else 2)

        # 4. ...and Compare-And-Write answers "did EVERYONE finish
        #    phase 3?" in one network conditional.
        t0 = env.now
        all_done = yield from core.compare_and_write(
            mgmt, range(N), "phase", ">=", 3
        )
        print(
            f"[{fmt_time(env.now - t0)}] CaW(phase >= 3) over {N} nodes -> {all_done}"
            "  (node 5 is still in phase 2)"
        )

        core.gas.write(5, "phase", 3)
        all_done = yield from core.compare_and_write(
            mgmt, range(N), "phase", ">=", 3,
            write_addr="go", write_value=True,   # the conditional write
        )
        print(f"CaW again -> {all_done}; 'go' flag written everywhere:",
              core.gas.gather(range(N), "go"))

    env.run(until=env.process(driver()))
    print("\nthese three ops are the whole substrate of Figure 1 —")
    print("MPI, STORM, checkpointing and the PFS in this repo use nothing else.")


if __name__ == "__main__":
    main()
