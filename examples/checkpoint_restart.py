#!/usr/bin/env python
"""Transparent fault tolerance on slice boundaries (paper §6).

"A scheduled, deterministic communication behavior at system level could
provide a solid infrastructure for implementing transparent fault
tolerance."  This example runs a restartable stencil job while a node
fail-stops mid-run: the checkpoint service snapshots progress at slice
boundaries, the failure tears the job down, and the recovery manager
relaunches it from the last watermark instead of from scratch.

Run:  python examples/checkpoint_restart.py
"""

from repro.apps import resilient_stencil
from repro.bcs import BcsConfig, BcsRuntime
from repro.ft import CheckpointConfig, RecoveryManager
from repro.harness.report import print_table
from repro.network import Cluster, ClusterSpec
from repro.units import mib, ms

TOTAL_STEPS = 50
STEP = ms(5)


def main():
    cluster = Cluster(ClusterSpec(n_nodes=8))
    runtime = BcsRuntime(cluster, BcsConfig(init_cost=0))
    manager = RecoveryManager(
        runtime,
        CheckpointConfig(interval=ms(60), image_bytes=mib(64), storage_bandwidth=2e9),
        reboot_delay=ms(50),
    )
    report = manager.run_to_completion(
        resilient_stencil,
        n_ranks=16,
        total_steps=TOTAL_STEPS,
        params=dict(step_compute=STEP),
        failures=[(ms(140), 3)],  # node 3 dies mid-run
    )
    ideal = TOTAL_STEPS * STEP / 1e9
    print_table(
        "Checkpoint/restart across a fail-stop node failure",
        ["metric", "value"],
        [
            ["steps completed", TOTAL_STEPS],
            ["node failures survived", report.failures],
            ["restarts", report.restarts],
            ["checkpoints taken", report.checkpoints],
            ["steps recomputed after rollback", report.lost_steps],
            ["checkpoint pause total (s)", f"{report.checkpoint_pause_ns / 1e9:.3f}"],
            ["total runtime (s)", f"{report.total_ns / 1e9:.3f}"],
            ["failure-free compute lower bound (s)", f"{ideal:.3f}"],
        ],
    )
    print(
        "\nthe rollback lost at most one checkpoint interval of work —\n"
        "the guarantee the globally known slice-boundary state provides."
    )


if __name__ == "__main__":
    main()
