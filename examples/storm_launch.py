#!/usr/bin/env python
"""STORM in action: hardware-multicast job launch + heartbeat liveness.

STORM ([8], the substrate BCS-MPI is integrated into) launches jobs by
pushing the binary through the same Xfer-And-Signal multicast the
communication library uses, and checks completion with one
Compare-And-Write.  Launch time is nearly flat in the node count — the
"orders of magnitude faster than production launchers" result.

Run:  python examples/storm_launch.py
"""

from repro.core import BcsCore
from repro.harness.report import print_table
from repro.network import Cluster, ClusterSpec
from repro.storm import HeartbeatService, StormLauncher
from repro.units import fmt_time, mib, ms


def launch_on(n_nodes: int, binary=mib(8)):
    cluster = Cluster(ClusterSpec(n_nodes=n_nodes))
    core = BcsCore(cluster)
    launcher = StormLauncher(core, cluster.management_node.id)

    def body():
        report = yield from launcher.launch_binary(list(range(n_nodes)), binary)
        return report

    return cluster.run(until=cluster.env.process(body()))


def heartbeat_demo():
    cluster = Cluster(ClusterSpec(n_nodes=8))
    core = BcsCore(cluster)
    hb = HeartbeatService(core, cluster.management_node.id, list(range(8)), period=ms(10))

    def killer():
        yield cluster.env.timeout(ms(35))
        hb.fail(5)  # node 5 stops acknowledging

    cluster.env.process(killer())
    hb.start(rounds=8)
    cluster.run()
    return hb


def main():
    rows = []
    for n in (4, 8, 16, 32, 64):
        report = launch_on(n)
        rows.append([n, fmt_time(report.transfer_ns), fmt_time(report.total_ns)])
    print_table(
        "STORM job launch (8 MiB binary over hardware multicast)",
        ["nodes", "binary transfer", "total launch"],
        rows,
    )
    print("\nnote the near-flat scaling: the multicast tree does the fan-out.")

    hb = heartbeat_demo()
    missed = {n: c for n, c in hb.stats.missed.items() if c}
    print(
        f"\nheartbeats: {hb.stats.sent} sent; missed acks {missed}; "
        f"alive set = {hb.alive()}"
    )


if __name__ == "__main__":
    main()
