#!/usr/bin/env python
"""A real numerical solver on the simulated machine.

Messages in this system carry live numpy payloads, so actual parallel
algorithms run and converge — not just timing skeletons.  This example
solves the 2D Poisson problem with Jacobi iteration: each rank owns a
strip of the grid, exchanges halo rows with its neighbours every sweep,
and checks the global residual with an allreduce.  The same code runs
under BCS-MPI and the production-MPI model and converges to identical
iterates (bit-for-bit, thanks to the deterministic reduction trees).

Run:  python examples/jacobi_solver.py
"""

import numpy as np

from repro.harness import run_workload
from repro.harness.report import print_table
from repro.units import us

N = 64  # global grid is N x N
TOL = 1e-4
MAX_SWEEPS = 400


def jacobi(ctx):
    """One rank of the strip-decomposed Jacobi solver."""
    rows = N // ctx.size
    # Local strip with two halo rows; fixed boundary = 1.0 on the top edge.
    u = np.zeros((rows + 2, N))
    if ctx.rank == 0:
        u[0, :] = 1.0
    rhs = np.zeros_like(u)

    up, down = ctx.rank - 1, ctx.rank + 1
    residual = np.inf
    sweeps = 0
    while residual > TOL and sweeps < MAX_SWEEPS:
        # Halo exchange: non-blocking, overlapped with the stencil's
        # interior update (the BCS-friendly pattern from the paper).
        reqs = []
        if up >= 0:
            reqs.append(ctx.comm.isend(u[1].copy(), dest=up, tag=0))
            reqs.append(ctx.comm.irecv(source=up, tag=1, size=N * 8))
        if down < ctx.size:
            reqs.append(ctx.comm.isend(u[rows].copy(), dest=down, tag=1))
            reqs.append(ctx.comm.irecv(source=down, tag=0, size=N * 8))

        # Cost model for the sweep's arithmetic (5-point stencil).
        yield from ctx.compute(us(rows * N // 50 + 5))
        yield from ctx.comm.waitall(reqs)

        for req in reqs:
            if req.payload is None:
                continue
            status = req.status()
            if status.tag == 1:
                u[0] = req.payload  # halo from above
            else:
                u[rows + 1] = req.payload  # halo from below

        new = u.copy()
        new[1 : rows + 1, 1:-1] = 0.25 * (
            u[:rows, 1:-1] + u[2 : rows + 2, 1:-1] + u[1 : rows + 1, :-2]
            + u[1 : rows + 1, 2:] - rhs[1 : rows + 1, 1:-1]
        )
        # Boundary conditions.
        if ctx.rank == 0:
            new[1, :] = u[1, :] * 0 + new[1, :]
        local_delta = float(np.abs(new - u).max())
        u = new
        residual = yield from ctx.comm.allreduce(np.float64(local_delta), "max")
        residual = float(residual)
        sweeps += 1

    center = float(u[rows // 2 + 1, N // 2])
    return (sweeps, round(residual, 10), round(center, 10))


def main():
    rows = []
    results = {}
    for backend in ("bcs", "baseline"):
        run = run_workload(jacobi, n_ranks=8, backend=backend)
        sweeps, residual, center = run.results[0]
        results[backend] = run.results
        rows.append(
            [backend, sweeps, f"{residual:.2e}", f"{center:.6f}", f"{run.runtime_s:.3f}"]
        )
    print_table(
        f"Jacobi solve of a {N}x{N} Poisson problem on 8 ranks",
        ["backend", "sweeps", "final residual", "center value", "sim runtime (s)"],
        rows,
    )
    identical = results["bcs"] == results["baseline"]
    print(f"\niterates identical across backends: {identical}")
    print(
        "note the runtimes: one allreduce per ~25 us sweep is exactly the\n"
        "fine-grained regime where slice quantization hurts (paper Fig 8 at\n"
        "the far left) — batch more work per synchronization to fix it."
    )
    assert identical


if __name__ == "__main__":
    main()
