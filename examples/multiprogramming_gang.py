#!/usr/bin/env python
"""Gang scheduling: the paper's other remedy for blocking delays (§5.4).

"The simplest option is to schedule a different parallel job whenever
the application blocks for communication, thus making use of the CPU."
STORM gang-schedules two blocking-heavy jobs in lockstep with the BCS
time slices; communication of both jobs progresses every slice, so the
pair finishes in much less than twice a single job's time.

Run:  python examples/multiprogramming_gang.py
"""

from repro.apps import sweep3d_blocking
from repro.bcs import BcsConfig, BcsRuntime
from repro.harness.report import print_table
from repro.network import Cluster, ClusterSpec
from repro.storm import GangScheduler, JobSpec
from repro.units import fmt_time, to_seconds

PARAMS = dict(octants=2, kblocks=4)
N_RANKS = 16


def run(n_jobs: int, gang: bool) -> int:
    cluster = Cluster(ClusterSpec(n_nodes=N_RANKS // 2))
    runtime = BcsRuntime(cluster, BcsConfig(init_cost=0))
    scheduler = GangScheduler(runtime) if gang else None
    jobs = []
    for i in range(n_jobs):
        job = runtime.launch(
            JobSpec(app=sweep3d_blocking, n_ranks=N_RANKS, name=f"sweep{i}", params=PARAMS)
        )
        if scheduler is not None:
            scheduler.add_job(job)
        jobs.append(job)
    cluster.env.run(until=cluster.env.all_of([j.done for j in jobs]))
    return cluster.env.now


def main():
    t_one = run(1, gang=False)
    t_two_gang = run(2, gang=True)
    rows = [
        ["1 job, dedicated machine", fmt_time(t_one), "1.00x"],
        [
            "2 jobs, gang-scheduled (MPL=2)",
            fmt_time(t_two_gang),
            f"{to_seconds(t_two_gang) / to_seconds(t_one):.2f}x",
        ],
        ["2 jobs if run back-to-back", fmt_time(2 * t_one), "2.00x"],
    ]
    print_table(
        "Multiprogramming blocking-heavy jobs under BCS + STORM",
        ["configuration", "makespan", "vs single job"],
        rows,
    )
    saved = 100 * (1 - to_seconds(t_two_gang) / (2 * to_seconds(t_one)))
    print(f"\ngang scheduling reclaims {saved:.0f}% of the blocked-CPU time")


if __name__ == "__main__":
    main()
