#!/usr/bin/env python
"""System-traffic QoS + slice-timeline observability.

Two things the single global scheduler buys (paper §1 and §6):

1. A latency-sensitive application keeps its performance while the
   parallel file system streams bulk writes underneath it — PFS stripes
   are *system-class* and only consume leftover slice budget.
2. Because every slice has the same globally-synchronized shape, the
   runtime can render exactly what each slice did (microphase timing,
   utilization) from a single trace.

Run:  python examples/pfs_qos_and_timeline.py
"""

from repro.apps import nearest_neighbor_benchmark
from repro.bcs import BcsConfig, BcsRuntime
from repro.harness.report import print_table
from repro.harness.timeline import Timeline
from repro.network import Cluster, ClusterSpec
from repro.pfs import PfsService
from repro.sim import Trace
from repro.storm import JobSpec
from repro.units import kib, mib, ms, seconds

APP = dict(granularity=ms(3), iterations=12, message_bytes=kib(4))


def run(with_pfs: bool):
    trace = Trace(categories=["bcs.microphase"])
    cluster = Cluster(ClusterSpec(n_nodes=8), trace=trace)
    runtime = BcsRuntime(cluster, BcsConfig(init_cost=0))
    if with_pfs:
        pfs = PfsService(runtime, io_nodes=list(range(8)))

        def writer():
            for i in range(24):
                pfs.write(i % 8, f"snapshot{i}", mib(4))
                yield cluster.env.timeout(ms(4))

        cluster.env.process(writer(), name="pfs.bg")
    job = runtime.run_job(
        JobSpec(app=nearest_neighbor_benchmark, n_ranks=16, params=APP),
        max_time=seconds(60),
    )
    return job.runtime, Timeline.from_trace(trace, runtime.config.timeslice)


def main():
    clean, _ = run(False)
    loaded, timeline = run(True)
    print_table(
        "Latency-sensitive app vs PFS background writes (BCS QoS)",
        ["scenario", "app runtime (s)"],
        [
            ["app alone", f"{clean / 1e9:.3f}"],
            ["app + 96 MiB of PFS writes", f"{loaded / 1e9:.3f}"],
            ["interference", f"+{100 * (loaded / clean - 1):.1f}%"],
        ],
    )
    print("\nslice timeline of the loaded run:")
    print(timeline.report())


if __name__ == "__main__":
    main()
