#!/usr/bin/env python
"""Quickstart: run an MPI program under BCS-MPI on a simulated cluster.

The application below is ordinary message-passing code written against
the backend-neutral communicator API: rank 0 scatters work, everyone
computes and exchanges halos with neighbours, and a global reduction
closes each step.  The same function runs unmodified under the
production-MPI baseline — swap ``backend="bcs"`` for ``"baseline"``.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.apps.base import neighbors_2d
from repro.harness import run_workload
from repro.units import fmt_time, ms


def my_app(ctx, steps=5):
    """A miniature bulk-synchronous stencil code."""
    # Rank 0 distributes initial conditions.
    if ctx.rank == 0:
        chunks = [np.full(64, float(r)) for r in range(ctx.size)]
        field = yield from ctx.comm.scatter(chunks, root=0)
    else:
        field = yield from ctx.comm.scatter(None, root=0)

    peers = neighbors_2d(ctx.rank, ctx.size)
    for step in range(steps):
        # Post halo exchanges, overlap them with the step's computation.
        reqs = []
        for peer in peers:
            reqs.append(ctx.comm.isend(field[:8].copy(), dest=peer, tag=step))
            reqs.append(ctx.comm.irecv(source=peer, tag=step, size=64))
        yield from ctx.compute(ms(5))
        yield from ctx.comm.waitall(reqs)

        halos = [r.payload for r in reqs if r.payload is not None]
        field = field * 0.5 + sum(h.mean() for h in halos) / len(halos)

        # Global convergence check.
        norm = yield from ctx.comm.allreduce(np.float64(field.sum()), "sum")
    return float(norm)


def main():
    result = run_workload(my_app, n_ranks=16, backend="bcs", params={"steps": 5})
    print(f"ran {result.app_name!r} on {result.n_ranks} ranks under BCS-MPI")
    print(f"simulated wall-clock: {fmt_time(result.runtime_ns)}")
    print(f"all ranks agree on the result: {len(set(result.results)) == 1}")
    print("runtime counters:")
    for key in (
        "slices",
        "active_slices",
        "descriptors_exchanged",
        "messages_delivered",
        "collectives_scheduled",
        "bytes_transferred",
    ):
        print(f"  {key:24s} {result.stats.get(key, 0)}")


if __name__ == "__main__":
    main()
