"""Smoke tests: every example script runs to completion.

Examples are part of the public deliverable; these tests keep them
green.  Each example's ``main`` is invoked in-process (the heavier ones
are exercised by scripts/reproduce_all.sh instead).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "bcs_core_primitives",
    "quickstart",
    "sweep3d_blocking_vs_nonblocking",
    "multiprogramming_gang",
    "storm_launch",
    "checkpoint_restart",
    "pfs_qos_and_timeline",
]


def load_example(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{name} printed nothing"


def test_examples_directory_complete():
    """Every example on disk is either smoke-tested here or known-slow."""
    known_slow = {"jacobi_solver", "noise_and_coscheduling"}
    on_disk = {p.stem for p in EXAMPLES.glob("*.py")}
    assert on_disk == set(FAST_EXAMPLES) | known_slow
