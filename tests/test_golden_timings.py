"""Golden timing regressions.

The simulator is bit-deterministic, so canonical runs have *exact*
expected runtimes.  These pins catch accidental changes to the timing
model (a new overhead, a protocol reordering, a budget tweak) that the
shape-level benchmarks might absorb silently.  If a change is
intentional, update the constants here and the measured values in
EXPERIMENTS.md together.
"""

import pytest

from repro.apps import barrier_benchmark, sage, sweep3d_blocking
from repro.bcs import BcsConfig
from repro.harness import run_workload
from repro.mpi.baseline import BaselineConfig
from repro.units import ms

BC = BcsConfig(init_cost=0)
BL = BaselineConfig(init_cost=0)

GOLDEN = [
    # (app, backend, params, exact runtime in ns)
    (sage, "bcs", dict(steps=3, step_compute=ms(5)), 18_500_000),
    (sage, "baseline", dict(steps=3, step_compute=ms(5)), 21_123_620),
    (sweep3d_blocking, "bcs", dict(octants=2, kblocks=2), 45_017_500),
    (barrier_benchmark, "bcs", dict(granularity=ms(2), iterations=3), 9_500_000),
]


@pytest.mark.parametrize(
    "app,backend,params,expected",
    GOLDEN,
    ids=[f"{a.__name__}-{b}" for a, b, _, _ in GOLDEN],
)
def test_golden_runtime(app, backend, params, expected):
    result = run_workload(
        app, 8, backend, params=params, bcs_config=BC, baseline_config=BL
    )
    assert result.runtime_ns == expected, (
        f"{app.__name__} on {backend}: timing model changed "
        f"({result.runtime_ns} ns vs pinned {expected} ns). If intentional, "
        "update GOLDEN and EXPERIMENTS.md."
    )


def test_golden_sage_runs_land_on_slice_boundaries():
    """BCS job completion always aligns to the slice grid."""
    result = run_workload(
        sage, 8, "bcs", params=dict(steps=3, step_compute=ms(5)), bcs_config=BC
    )
    assert result.runtime_ns % BC.timeslice == 0


@pytest.mark.parametrize(
    "app,backend,params,expected",
    [g for g in GOLDEN if g[1] == "bcs"],
    ids=[f"{a.__name__}-obs" for a, b, _, _ in GOLDEN if b == "bcs"],
)
def test_golden_runtime_unchanged_with_observability(app, backend, params, expected):
    """Instrumentation must not perturb simulated time.

    The observability layer is passive — every hook reads ``env.now``
    but never enters the event queue — so golden virtual-time results
    are identical with telemetry disabled *and* enabled.
    """
    from repro.obs import Observability

    obs = Observability()
    result = run_workload(
        app, 8, backend, params=params, bcs_config=BC, obs=obs
    )
    assert result.runtime_ns == expected, (
        f"{app.__name__} with observability attached: instrumentation "
        f"perturbed virtual time ({result.runtime_ns} ns vs {expected} ns)"
    )
    # The instrumentation must actually have run, not been skipped.
    assert obs.registry.counter("bcs.slice.count", kind="active").value > 0
    assert obs.perfetto.n_events > 0


@pytest.mark.parametrize(
    "app,backend,params,expected",
    [g for g in GOLDEN if g[1] == "bcs"],
    ids=[f"{a.__name__}-spans" for a, b, _, _ in GOLDEN if b == "bcs"],
)
def test_golden_runtime_unchanged_with_span_tracing(app, backend, params, expected):
    """Causal span tracing must not perturb simulated time either.

    ``Observability(spans=True)`` adds per-message lifecycle hooks on
    the DEM/MSM/P2P hot paths; all of them are reads, so the golden
    virtual times stay byte-identical with tracing on.
    """
    from repro.obs import Observability

    obs = Observability(spans=True)
    result = run_workload(
        app, 8, backend, params=params, bcs_config=BC, obs=obs
    )
    assert result.runtime_ns == expected, (
        f"{app.__name__} with span tracing attached: instrumentation "
        f"perturbed virtual time ({result.runtime_ns} ns vs {expected} ns)"
    )
    # Tracing must actually have captured spans, not been skipped.
    assert obs.spans is not None
    assert obs.spans.collectives or obs.spans.n_delivered > 0
    assert len(obs.spans.rank_finish) == 8


def test_explain_json_byte_identical_across_runs(tmp_path):
    """``repro explain`` is deterministic down to the output bytes."""
    from repro.harness.cli import main

    paths = [tmp_path / "blame-a.json", tmp_path / "blame-b.json"]
    for path in paths:
        rc = main(
            ["explain", "fig8", "--ranks", "4", "--json", str(path)]
        )
        assert rc == 0
    a, b = (p.read_bytes() for p in paths)
    assert a == b
    assert a  # non-empty payload
