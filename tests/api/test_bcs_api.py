"""Direct tests of the BCS API layer (paper Appendix A)."""

import numpy as np
import pytest

from repro.api import BcsApi, UNLIMITED
from repro.bcs import BcsConfig, BcsRuntime
from repro.network import Cluster, ClusterSpec
from repro.storm import JobSpec
from repro.units import seconds, us


def setup_runtime(n_ranks=4):
    """A runtime with a launched-but-idle job, for direct API pokes."""
    cluster = Cluster(ClusterSpec(n_nodes=n_ranks // 2))
    runtime = BcsRuntime(cluster, BcsConfig(init_cost=0))
    api = BcsApi(runtime)
    return cluster, runtime, api


def run_api_app(body, n_ranks=4):
    """Run an app that receives (ctx, api, handle, info)."""
    cluster, runtime, api = setup_runtime(n_ranks)

    def app(ctx):
        handle = runtime.rank_procs  # not used; real handle below
        yield from body(ctx, api)

    # Instead of reaching into internals, drive through the comm object,
    # which exposes the api pieces we need via its attributes.
    job = runtime.run_job(JobSpec(app=app, n_ranks=n_ranks), max_time=seconds(30))
    return job, runtime


def test_post_send_validates_destination():
    cluster, runtime, api = setup_runtime()
    captured = {}

    def app(ctx):
        comm = ctx.comm
        captured["handle"] = comm._handle
        captured["info"] = comm._info
        yield ctx.env.timeout(1)

    runtime.run_job(JobSpec(app=app, n_ranks=4), max_time=seconds(5))
    handle, info = captured["handle"], captured["info"]
    with pytest.raises(ValueError):
        api.post_send(handle, info, 0, dest=99)
    with pytest.raises(ValueError):
        api.post_recv(handle, info, 0, source=99)
    with pytest.raises(ValueError):
        api.post_collective(handle, info, 0, "barrier", root=99)
    with pytest.raises(ValueError):
        api.post_collective(handle, info, 0, "alltoallw")


def test_unlimited_recv_capacity_default():
    cluster, runtime, api = setup_runtime()
    captured = {}

    def app(ctx):
        captured["handle"] = ctx.comm._handle
        captured["info"] = ctx.comm._info
        yield ctx.env.timeout(1)

    runtime.run_job(JobSpec(app=app, n_ranks=4), max_time=seconds(5))
    req = api.post_recv(captured["handle"], captured["info"], 0)
    desc = captured["handle"].nrt.posted_recvs[-1]
    assert desc.capacity == UNLIMITED


def test_buffered_send_finishes_at_post():
    cluster, runtime, api = setup_runtime()
    captured = {}

    def app(ctx):
        captured["handle"] = ctx.comm._handle
        captured["info"] = ctx.comm._info
        yield ctx.env.timeout(1)

    runtime.run_job(JobSpec(app=app, n_ranks=4), max_time=seconds(5))
    req = api.post_send(captured["handle"], captured["info"], 0, dest=1, payload=b"xy")
    assert req.complete  # buffered_sends=True default


def test_epoch_counters_advance_per_comm():
    cluster, runtime, api = setup_runtime()
    captured = {}

    def app(ctx):
        captured[ctx.rank] = ctx.comm._handle
        yield ctx.env.timeout(1)

    runtime.run_job(JobSpec(app=app, n_ranks=4), max_time=seconds(5))
    handle = captured[0]
    assert handle.next_epoch(0) == 1
    assert handle.next_epoch(0) == 2
    assert handle.next_epoch(1) == 1  # separate communicator, fresh


def test_send_seq_counters_per_destination():
    cluster, runtime, api = setup_runtime()
    captured = {}

    def app(ctx):
        captured[ctx.rank] = ctx.comm._handle
        yield ctx.env.timeout(1)

    runtime.run_job(JobSpec(app=app, n_ranks=4), max_time=seconds(5))
    handle = captured[0]
    assert handle.next_send_seq(0, 1) == 0
    assert handle.next_send_seq(0, 1) == 1
    assert handle.next_send_seq(0, 2) == 0


def test_pending_overhead_accumulates_and_flushes():
    cluster, runtime, api = setup_runtime()
    post_cost = runtime.config.descriptor_post_cost
    times = {}

    def app(ctx):
        handle = ctx.comm._handle
        ctx.comm.isend(None, dest=1, size=8)
        ctx.comm.isend(None, dest=1, size=8)
        assert handle.pending_overhead == 2 * post_cost
        t0 = ctx.now
        yield from ctx.compute(us(10))
        times["compute"] = ctx.now - t0
        assert handle.pending_overhead == 0
        # Receiver side cleanup.
        if ctx.rank == 1:
            r1 = ctx.comm.irecv(source=0, size=8)
            r2 = ctx.comm.irecv(source=0, size=8)
            yield from ctx.comm.waitall([r1, r2])

    def app_wrapper(ctx):
        if ctx.rank == 0:
            yield from app(ctx)
        elif ctx.rank == 1:
            r1 = ctx.comm.irecv(source=0, size=8)
            r2 = ctx.comm.irecv(source=0, size=8)
            yield from ctx.comm.waitall([r1, r2])
        else:
            yield ctx.env.timeout(1)

    runtime.run_job(JobSpec(app=app_wrapper, n_ranks=4), max_time=seconds(5))


def test_probe_wrong_and_right_source():
    """bcs_probe distinguishes sources and tags (paper Fig 12)."""

    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(b"z", dest=1, tag=3)
            yield from ctx.comm.barrier()
        elif ctx.rank == 1:
            yield from ctx.compute(us(1500))
            assert ctx.comm.iprobe(source=0, tag=3)
            assert not ctx.comm.iprobe(source=2, tag=3)
            assert not ctx.comm.iprobe(source=0, tag=4)
            yield from ctx.comm.recv(source=0, tag=3)
            yield from ctx.comm.barrier()
        else:
            yield from ctx.comm.barrier()

    cluster, runtime, api = setup_runtime()
    job = runtime.run_job(JobSpec(app=app, n_ranks=4), max_time=seconds(30))
    assert job.complete
