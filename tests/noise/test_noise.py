"""Tests for the OS-noise injector and its effect on both backends."""

import pytest

from repro.bcs import BcsConfig, BcsRuntime
from repro.mpi.baseline import BaselineConfig, BaselineRuntime
from repro.network import Cluster, ClusterSpec
from repro.noise import NoiseConfig, NoiseInjector
from repro.storm import JobSpec
from repro.units import ms, seconds, us


def test_config_validation():
    with pytest.raises(ValueError):
        NoiseConfig(period=0)
    with pytest.raises(ValueError):
        NoiseConfig(period=ms(1), duration=ms(2))


def test_noise_steals_cpu_time():
    cluster = Cluster(ClusterSpec(n_nodes=2))
    injector = NoiseInjector(cluster, NoiseConfig(period=ms(10), duration=ms(1)))
    injector.start()
    cluster.run(until=int(seconds(1)))
    # ~10% duty cycle over 1 s on 2 nodes ≈ 200 ms, very loosely bounded.
    assert ms(40) < injector.total_stolen < ms(600)
    assert set(injector.stolen) == {0, 1}


def test_double_start_rejected():
    cluster = Cluster(ClusterSpec(n_nodes=1))
    injector = NoiseInjector(cluster)
    injector.start()
    with pytest.raises(RuntimeError):
        injector.start()


def test_noise_is_deterministic_per_seed():
    def run(seed):
        cluster = Cluster(ClusterSpec(n_nodes=2, seed=seed))
        injector = NoiseInjector(cluster, NoiseConfig(period=ms(5), duration=ms(1)))
        injector.start()
        cluster.run(until=int(seconds(0.5)))
        return dict(injector.stolen)

    assert run(1) == run(1)
    assert run(1) != run(2)


def test_noise_slows_computation():
    def elapsed(with_noise):
        cluster = Cluster(ClusterSpec(n_nodes=1))
        runtime = BaselineRuntime(cluster, BaselineConfig(init_cost=0))
        if with_noise:
            NoiseInjector(
                cluster, NoiseConfig(period=ms(5), duration=ms(1))
            ).start()

        def app(ctx):
            yield from ctx.compute(ms(100))

        # 2 ranks on the node's 2 CPUs: daemons must queue behind/ahead.
        job = runtime.run_job(JobSpec(app=app, n_ranks=2), max_time=seconds(10))
        return job.runtime

    assert elapsed(True) > elapsed(False)


def _barrier_app(ctx, iters=20, grain=ms(1)):
    for _ in range(iters):
        yield from ctx.compute(grain)
        yield from ctx.comm.barrier()


def test_uncoordinated_noise_hurts_more_than_coordinated():
    """The paper's coscheduling argument: synchronized daemons cost a
    bulk-synchronous app far less than independently-phased ones."""

    def run(coordinated):
        cluster = Cluster(ClusterSpec(n_nodes=8, seed=3))
        runtime = BaselineRuntime(cluster, BaselineConfig(init_cost=0))
        NoiseInjector(
            cluster,
            NoiseConfig(period=ms(8), duration=ms(2), coordinated=coordinated),
        ).start()
        job = runtime.run_job(
            JobSpec(app=_barrier_app, n_ranks=8, params={}), max_time=seconds(60)
        )
        return job.runtime

    assert run(coordinated=False) > run(coordinated=True)


def test_bcs_slice_quantization_absorbs_subslice_noise():
    """The coscheduling robustness claim (§1): perturbations smaller
    than the remaining slice budget do not change the communication
    timeline at all — BCS re-quantizes everything to slice boundaries.
    The same noise visibly shifts the baseline's timings."""
    from repro.bcs import BcsConfig, BcsRuntime
    from repro.debug import FlightRecorder, diff_logs
    from repro.network import Cluster, ClusterSpec

    def app(ctx):
        peer = ctx.rank ^ 1
        for i in range(4):
            yield from ctx.compute(ms(1))
            got = yield from ctx.comm.sendrecv(
                None, dest=peer, source=peer, sendtag=i, recvtag=i, size=64
            )

    light = NoiseConfig(period=ms(4), duration=ms(0.2))

    def bcs_log(noise):
        recorder = FlightRecorder()
        cluster = Cluster(ClusterSpec(n_nodes=2, seed=9), trace=recorder.trace)
        if noise:
            NoiseInjector(cluster, light).start()
        BcsRuntime(cluster, BcsConfig(init_cost=0)).run_job(
            JobSpec(app=app, n_ranks=4), max_time=seconds(30)
        )
        return recorder.log()

    assert diff_logs(bcs_log(False), bcs_log(True)) == []

    def baseline_runtime(noise):
        cluster = Cluster(ClusterSpec(n_nodes=2, seed=9))
        if noise:
            NoiseInjector(cluster, light).start()
        runtime = BaselineRuntime(cluster, BaselineConfig(init_cost=0))
        job = runtime.run_job(JobSpec(app=app, n_ranks=4), max_time=seconds(30))
        return job.runtime

    assert baseline_runtime(True) != baseline_runtime(False)
