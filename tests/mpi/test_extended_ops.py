"""Tests for the extended MPI operations (sendrecv, scan, reduce_scatter)."""

import numpy as np
import pytest

from repro.bcs import BcsConfig, BcsRuntime
from repro.mpi.baseline import BaselineConfig, BaselineRuntime
from repro.network import Cluster, ClusterSpec
from repro.storm import JobSpec
from repro.units import seconds


def run_app(app, n_ranks=4, backend="bcs", **params):
    cluster = Cluster(ClusterSpec(n_nodes=max(n_ranks // 2, 1)))
    if backend == "bcs":
        runtime = BcsRuntime(cluster, BcsConfig(init_cost=0))
    else:
        runtime = BaselineRuntime(cluster, BaselineConfig(init_cost=0))
    return runtime.run_job(
        JobSpec(app=app, n_ranks=n_ranks, params=params), max_time=seconds(60)
    )


@pytest.mark.parametrize("backend", ["bcs", "baseline"])
def test_sendrecv_ring_shift(backend):
    def app(ctx):
        got = yield from ctx.comm.sendrecv(
            np.array([float(ctx.rank)]),
            dest=(ctx.rank + 1) % ctx.size,
            source=(ctx.rank - 1) % ctx.size,
        )
        return float(got[0])

    job = run_app(app, backend=backend)
    assert job.results == [3.0, 0.0, 1.0, 2.0]


@pytest.mark.parametrize("backend", ["bcs", "baseline"])
def test_sendrecv_pairwise_swap_no_deadlock(backend):
    def app(ctx):
        peer = ctx.rank ^ 1
        got = yield from ctx.comm.sendrecv(ctx.rank * 10, dest=peer, source=peer)
        return got

    job = run_app(app, backend=backend)
    assert job.results == [10, 0, 30, 20]


@pytest.mark.parametrize("backend", ["bcs", "baseline"])
def test_scan_inclusive(backend):
    def app(ctx):
        out = yield from ctx.comm.scan(np.float64(ctx.rank + 1), "sum")
        return float(out)

    job = run_app(app, backend=backend)
    assert job.results == [1.0, 3.0, 6.0, 10.0]


@pytest.mark.parametrize("backend", ["bcs", "baseline"])
def test_exscan(backend):
    def app(ctx):
        out = yield from ctx.comm.exscan(np.float64(ctx.rank + 1), "sum")
        return None if out is None else float(out)

    job = run_app(app, backend=backend)
    assert job.results == [None, 1.0, 3.0, 6.0]


def test_scan_with_arrays():
    def app(ctx):
        out = yield from ctx.comm.scan(np.full(3, float(ctx.rank)), "max")
        return out.tolist()

    job = run_app(app)
    assert job.results[-1] == [3.0, 3.0, 3.0]
    assert job.results[0] == [0.0, 0.0, 0.0]


@pytest.mark.parametrize("backend", ["bcs", "baseline"])
def test_reduce_scatter_block(backend):
    def app(ctx):
        # Rank r contributes value (r+1) for every destination d.
        chunks = [np.array([float(ctx.rank + 1)]) for _ in range(ctx.size)]
        mine = yield from ctx.comm.reduce_scatter_block(chunks, "sum")
        return float(np.asarray(mine).ravel()[0])

    job = run_app(app, backend=backend)
    # Every destination receives sum over ranks of (r+1) = 10.
    assert job.results == [10.0, 10.0, 10.0, 10.0]


def test_reduce_scatter_requires_chunk_per_rank():
    def app(ctx):
        with pytest.raises(ValueError):
            yield from ctx.comm.reduce_scatter_block([1], "sum")

    run_app(app)


def test_scan_cross_backend_identical():
    def app(ctx):
        out = yield from ctx.comm.scan(np.float64(0.1 * (ctx.rank + 1)), "sum")
        return float(out)

    bcs = run_app(app, backend="bcs")
    base = run_app(app, backend="baseline")
    assert bcs.results == base.results
