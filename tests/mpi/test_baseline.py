"""Integration tests for the production-MPI baseline model."""

import numpy as np
import pytest

from repro.mpi.baseline import BaselineConfig, BaselineRuntime
from repro.network import Cluster, ClusterSpec
from repro.storm import JobSpec
from repro.units import KiB, MiB, seconds, us


def run_app(app, n_ranks=4, n_nodes=4, config=None, **params):
    cluster = Cluster(ClusterSpec(n_nodes=n_nodes))
    runtime = BaselineRuntime(cluster, config or BaselineConfig(init_cost=0))
    job = runtime.run_job(
        JobSpec(app=app, n_ranks=n_ranks, params=params), max_time=seconds(30)
    )
    return job, runtime


def test_eager_send_recv_roundtrip():
    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(np.arange(16.0), dest=1, tag=4)
            got = yield from ctx.comm.recv(source=1, tag=5)
            return got.tolist()
        data = yield from ctx.comm.recv(source=0, tag=4)
        yield from ctx.comm.send(data * 2, dest=0, tag=5)

    job, runtime = run_app(app, n_ranks=2, n_nodes=2)
    assert job.results[0] == (np.arange(16.0) * 2).tolist()
    assert runtime.stats["eager"] == 2
    assert runtime.stats["rendezvous"] == 0


def test_large_message_uses_rendezvous():
    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(None, dest=1, size=1 * MiB)
        else:
            yield from ctx.comm.recv(source=0, size=1 * MiB)

    _, runtime = run_app(app, n_ranks=2, n_nodes=2)
    assert runtime.stats["rendezvous"] == 1


def test_eager_threshold_configurable():
    cfg = BaselineConfig(init_cost=0, eager_threshold=128)

    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(None, dest=1, size=256)
        else:
            yield from ctx.comm.recv(source=0, size=256)

    _, runtime = run_app(app, n_ranks=2, n_nodes=2, config=cfg)
    assert runtime.stats["rendezvous"] == 1


def test_p2p_latency_is_microseconds_not_slices():
    """The baseline has no slice quantization: small messages fly in ~us."""
    delays = []

    def app(ctx):
        t0 = ctx.now
        if ctx.rank == 0:
            yield from ctx.comm.send(None, dest=1, size=64)
        else:
            yield from ctx.comm.recv(source=0, size=64)
        delays.append(ctx.now - t0)

    run_app(app, n_ranks=2, n_nodes=2)
    assert max(delays) < us(50)  # vs >= 500 us under BCS


def test_rendezvous_waits_for_receiver():
    """A rendezvous send cannot complete before the receive is posted."""
    times = {}

    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(None, dest=1, size=1 * MiB)
            times["send_done"] = ctx.now
        else:
            yield from ctx.compute(us(3000))  # receiver shows up late
            times["recv_posted"] = ctx.now
            yield from ctx.comm.recv(source=0, size=1 * MiB)

    run_app(app, n_ranks=2, n_nodes=2)
    assert times["send_done"] > times["recv_posted"]


def test_unexpected_eager_message_buffered():
    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(np.arange(8.0), dest=1, tag=9)
        else:
            yield from ctx.compute(us(2000))  # message arrives before recv
            got = yield from ctx.comm.recv(source=0, tag=9)
            return got.tolist()

    job, _ = run_app(app, n_ranks=2, n_nodes=2)
    assert job.results[1] == list(np.arange(8.0))


def test_barrier_and_collectives():
    def app(ctx):
        yield from ctx.comm.barrier()
        v = yield from ctx.comm.bcast(b"payload" if ctx.rank == 1 else None, root=1)
        s = yield from ctx.comm.allreduce(np.float64(ctx.rank + 1), "sum")
        r = yield from ctx.comm.reduce(np.float64(2.0), "prod", root=0)
        return (v, float(s), None if r is None else float(r))

    job, _ = run_app(app)
    assert all(r[0] == b"payload" for r in job.results)
    assert all(r[1] == 10.0 for r in job.results)
    assert job.results[0][2] == 16.0
    assert all(r[2] is None for r in job.results[1:])


def test_barrier_cost_is_small():
    def app(ctx):
        t0 = ctx.now
        yield from ctx.comm.barrier()
        return ctx.now - t0

    job, _ = run_app(app, n_ranks=8, n_nodes=4)
    assert max(job.results) < us(100)


def test_composed_collectives_match_bcs_semantics():
    def app(ctx):
        mine = yield from ctx.comm.scatter(
            list(range(ctx.size)) if ctx.rank == 0 else None, root=0
        )
        total = yield from ctx.comm.gather(mine * 2, root=0)
        ag = yield from ctx.comm.allgather(ctx.rank)
        return (mine, total, ag)

    job, _ = run_app(app)
    assert [r[0] for r in job.results] == [0, 1, 2, 3]
    assert job.results[0][1] == [0, 2, 4, 6]
    assert all(r[2] == [0, 1, 2, 3] for r in job.results)


def test_sub_communicator_split():
    def app(ctx):
        odds = [r for r in range(ctx.size) if r % 2 == 1]
        sub = ctx.comm.split(odds)
        if sub is None:
            return None
        total = yield from sub.allreduce(np.float64(ctx.rank), "sum")
        return float(total)

    job, _ = run_app(app, n_ranks=6, n_nodes=3)
    assert job.results[1] == 1.0 + 3.0 + 5.0
    assert job.results[0] is None


def test_message_ordering_preserved():
    def app(ctx):
        if ctx.rank == 0:
            for i in range(8):
                yield from ctx.comm.send(np.array([i]), dest=1, tag=0)
        else:
            out = []
            for _ in range(8):
                v = yield from ctx.comm.recv(source=0, tag=0)
                out.append(int(v[0]))
            return out

    job, _ = run_app(app, n_ranks=2, n_nodes=2)
    assert job.results[1] == list(range(8))


def test_no_async_progress_rendezvous_exposed_in_wait():
    """A large irecv posted before a long compute moves its data only in
    MPI_Wait (no progress thread) — the overlap BCS-MPI wins on."""
    exposed = {}

    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(None, dest=1, size=4 * MiB)
        else:
            req = ctx.comm.irecv(source=0, size=4 * MiB)
            yield from ctx.compute(us(20_000))  # plenty to hide 4 MiB
            t0 = ctx.now
            yield from ctx.comm.wait(req)
            exposed["wait"] = ctx.now - t0

    run_app(app, n_ranks=2, n_nodes=2)
    # ~13 ms of transfer at 305 MB/s was NOT hidden by the computation.
    assert exposed["wait"] > us(8_000)


def test_eager_messages_do_progress_asynchronously():
    exposed = {}

    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(None, dest=1, size=8 * KiB)
        else:
            req = ctx.comm.irecv(source=0, size=8 * KiB)
            yield from ctx.compute(us(5_000))
            t0 = ctx.now
            yield from ctx.comm.wait(req)
            exposed["wait"] = ctx.now - t0

    run_app(app, n_ranks=2, n_nodes=2)
    assert exposed["wait"] < us(100)


def test_rank_validation_matches_bcs():
    def app(ctx):
        with pytest.raises(ValueError):
            ctx.comm.isend(None, dest=99, size=8)
        with pytest.raises(ValueError):
            ctx.comm.irecv(source=99, size=8)
        yield ctx.env.timeout(1)

    run_app(app, n_ranks=2, n_nodes=2)


def test_config_with_replaces_fields():
    cfg = BaselineConfig().with_(eager_threshold=1024, init_cost=0)
    assert cfg.eager_threshold == 1024
    assert cfg.init_cost == 0
    assert BaselineConfig().eager_threshold != 1024
