"""Randomized cross-backend stress: real payloads, random patterns,
identical data on both MPI implementations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bcs import BcsConfig, BcsRuntime
from repro.mpi.baseline import BaselineConfig, BaselineRuntime
from repro.network import Cluster, ClusterSpec
from repro.storm import JobSpec
from repro.units import seconds, us


def run_both(app, n_ranks, params):
    results = {}
    for backend in ("bcs", "baseline"):
        cluster = Cluster(ClusterSpec(n_nodes=(n_ranks + 1) // 2))
        if backend == "bcs":
            runtime = BcsRuntime(cluster, BcsConfig(init_cost=0))
        else:
            runtime = BaselineRuntime(cluster, BaselineConfig(init_cost=0))
        job = runtime.run_job(
            JobSpec(app=app, n_ranks=n_ranks, params=params), max_time=seconds(120)
        )
        results[backend] = job.results
    return results


@settings(max_examples=10, deadline=None)
@given(
    rounds=st.integers(1, 4),
    shift=st.integers(1, 3),
    elements=st.integers(1, 64),
    seed=st.integers(0, 1000),
)
def test_prop_ring_pipeline_data_identical(rounds, shift, elements, seed):
    """Shifting real arrays around a ring produces the same data under
    both backends, bit for bit."""

    def app(ctx):
        rng = np.random.default_rng(seed + ctx.rank)
        data = rng.normal(size=elements)
        for r in range(rounds):
            dest = (ctx.rank + shift) % ctx.size
            src = (ctx.rank - shift) % ctx.size
            reqs = [
                ctx.comm.isend(data, dest=dest, tag=r),
                ctx.comm.irecv(source=src, tag=r),
            ]
            yield from ctx.comm.waitall(reqs)
            data = reqs[1].payload + 1.0
        return data.tobytes()

    results = run_both(app, 4, {})
    assert results["bcs"] == results["baseline"]


@settings(max_examples=8, deadline=None)
@given(
    ops=st.lists(st.sampled_from(["sum", "max", "min"]), min_size=1, max_size=4),
    n_ranks=st.sampled_from([2, 4, 5]),
)
def test_prop_collective_chains_identical(ops, n_ranks):
    def app(ctx):
        acc = np.full(4, float(ctx.rank + 1))
        for i, op in enumerate(ops):
            acc = yield from ctx.comm.allreduce(acc, op)
            acc = acc / ctx.size + ctx.rank
        gathered = yield from ctx.comm.gather(acc.sum(), root=0)
        return None if gathered is None else [round(float(g), 9) for g in gathered]

    results = run_both(app, n_ranks, {})
    assert results["bcs"] == results["baseline"]


@settings(max_examples=6, deadline=None)
@given(
    sizes=st.lists(st.integers(1, 200_000), min_size=1, max_size=3),
)
def test_prop_mixed_sizes_delivered_intact(sizes):
    """Messages spanning eager, rendezvous, and multi-chunk regimes all
    arrive intact on both backends."""

    def app(ctx):
        if ctx.rank == 0:
            for i, n in enumerate(sizes):
                payload = np.arange(n % 1000 + 1, dtype=np.float64)
                yield from ctx.comm.send(payload, dest=1, tag=i, size=n)
        else:
            out = []
            for i, n in enumerate(sizes):
                got = yield from ctx.comm.recv(source=0, tag=i, size=n)
                out.append(got.tobytes())
            return out

    results = run_both(app, 2, {})
    assert results["bcs"][1] == results["baseline"][1]
    assert results["bcs"][1] is not None
