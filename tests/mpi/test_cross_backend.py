"""Cross-backend equivalence: the same app must produce identical results
under BCS-MPI and the baseline — only the timing differs (paper's thesis)."""

import numpy as np
import pytest

from repro.bcs import BcsConfig, BcsRuntime
from repro.mpi.baseline import BaselineConfig, BaselineRuntime
from repro.network import Cluster, ClusterSpec
from repro.storm import JobSpec
from repro.units import KiB, seconds, us


def run_both(app, n_ranks=4, n_nodes=4, **params):
    out = {}
    for backend in ("bcs", "baseline"):
        cluster = Cluster(ClusterSpec(n_nodes=n_nodes))
        if backend == "bcs":
            runtime = BcsRuntime(cluster, BcsConfig(init_cost=0))
        else:
            runtime = BaselineRuntime(cluster, BaselineConfig(init_cost=0))
        job = runtime.run_job(
            JobSpec(app=app, n_ranks=n_ranks, params=params), max_time=seconds(60)
        )
        out[backend] = job
    return out["bcs"], out["baseline"]


def test_ring_exchange_same_results():
    def app(ctx):
        right = (ctx.rank + 1) % ctx.size
        left = (ctx.rank - 1) % ctx.size
        acc = 0
        for i in range(4):
            s = ctx.comm.isend(np.array([ctx.rank * 10 + i]), dest=right)
            r = ctx.comm.irecv(source=left)
            yield from ctx.comm.waitall([s, r])
            acc += int(r.payload[0])
        return acc

    bcs, base = run_both(app)
    assert bcs.results == base.results


def test_stencil_with_reduction_same_results():
    def app(ctx):
        field = np.full(16, float(ctx.rank))
        for _ in range(3):
            reqs = []
            for nb in ((ctx.rank + 1) % ctx.size, (ctx.rank - 1) % ctx.size):
                reqs.append(ctx.comm.isend(field[:4].copy(), dest=nb))
                reqs.append(ctx.comm.irecv(source=nb, size=4 * 8))
            yield from ctx.comm.waitall(reqs)
            halo = [r.payload for r in reqs if r.payload is not None]
            field = field + sum(h.sum() for h in halo) / 100.0
            norm = yield from ctx.comm.allreduce(np.float64(field.sum()), "sum")
        return round(float(norm), 6)

    bcs, base = run_both(app)
    assert bcs.results == base.results


def test_master_worker_same_results():
    def app(ctx):
        if ctx.rank == 0:
            chunks = [np.arange(4.0) * (i + 1) for i in range(ctx.size)]
            mine = yield from ctx.comm.scatter(chunks, root=0)
        else:
            mine = yield from ctx.comm.scatter(None, root=0)
        result = yield from ctx.comm.gather(float(mine.sum()), root=0)
        return result

    bcs, base = run_both(app)
    assert bcs.results == base.results
    assert bcs.results[0] == [6.0, 12.0, 18.0, 24.0]


def test_integer_allreduce_bit_identical():
    def app(ctx):
        out = yield from ctx.comm.allreduce(
            np.array([ctx.rank + 1, ctx.rank * 2], dtype=np.int64), "sum"
        )
        return out.tolist()

    bcs, base = run_both(app, n_ranks=8, n_nodes=4)
    assert bcs.results == base.results
    assert bcs.results[0] == [36, 56]


def test_float_allreduce_same_tree_same_bits():
    """Both backends reduce over the same binomial tree, so even float
    results agree bit-for-bit."""

    def app(ctx):
        rng = np.random.default_rng(ctx.rank)
        out = yield from ctx.comm.allreduce(rng.normal(size=8), "sum")
        return out.tobytes()

    bcs, base = run_both(app, n_ranks=8, n_nodes=4)
    assert bcs.results == base.results


def test_bcs_is_slower_for_latency_bound_pingpong():
    """Sanity on timing direction: a blocking ping-pong is latency-bound,
    where the baseline's us-scale p2p beats BCS's slice quantization."""

    def app(ctx):
        for _ in range(5):
            if ctx.rank == 0:
                yield from ctx.comm.send(None, dest=1, size=64)
                yield from ctx.comm.recv(source=1, size=64)
            else:
                yield from ctx.comm.recv(source=0, size=64)
                yield from ctx.comm.send(None, dest=0, size=64)

    bcs, base = run_both(app, n_ranks=2, n_nodes=2)
    assert bcs.runtime > 10 * base.runtime


def test_both_backends_idle_compute_similar():
    """Pure computation: BCS only adds the small NM tax."""

    def app(ctx):
        yield from ctx.compute(us(20_000))

    bcs, base = run_both(app, n_ranks=2, n_nodes=2)
    assert base.runtime <= bcs.runtime <= int(base.runtime * 1.15)
