"""Tests for MPI_Cancel on the BCS backend."""

import numpy as np
import pytest

from repro.bcs import BcsConfig, BcsRuntime
from repro.network import Cluster, ClusterSpec
from repro.storm import JobSpec
from repro.units import seconds, us


def run_app(app, n_ranks=2, **params):
    cluster = Cluster(ClusterSpec(n_nodes=1))
    runtime = BcsRuntime(cluster, BcsConfig(init_cost=0))
    job = runtime.run_job(
        JobSpec(app=app, n_ranks=n_ranks, params=params), max_time=seconds(30)
    )
    return job, runtime


def test_cancel_unmatched_recv_succeeds():
    outcome = {}

    def app(ctx):
        if ctx.rank == 0:
            req = ctx.comm.irecv(source=1, tag=42)
            outcome["cancelled"] = ctx.comm.cancel(req)
            outcome["complete"] = req.complete
            outcome["payload"] = req.payload
        yield from ctx.comm.barrier()

    _, runtime = run_app(app)
    assert outcome == {"cancelled": True, "complete": True, "payload": None}
    assert runtime.stats["recvs_cancelled"] == 1


def test_cancel_after_match_fails_and_message_arrives():
    outcome = {}

    def app(ctx):
        if ctx.rank == 0:
            req = ctx.comm.irecv(source=1, tag=7)
            # Wait well past matching (2+ slices).
            yield from ctx.compute(us(2600))
            outcome["cancelled"] = ctx.comm.cancel(req)
            got = yield from ctx.comm.wait(req)
            outcome["payload"] = got.tolist()
        else:
            yield from ctx.comm.send(np.arange(3.0), dest=0, tag=7)

    run_app(app)
    assert outcome["cancelled"] is False
    assert outcome["payload"] == [0.0, 1.0, 2.0]


def test_cancel_completed_request_fails():
    def app(ctx):
        if ctx.rank == 0:
            req = ctx.comm.irecv(source=1, tag=1)
            yield from ctx.comm.wait(req)
            assert ctx.comm.cancel(req) is False
        else:
            yield from ctx.comm.send(b"x", dest=0, tag=1)

    run_app(app)


def test_cancel_send_rejected():
    def app(ctx):
        req = ctx.comm.isend(None, dest=(ctx.rank + 1) % ctx.size, size=8)
        with pytest.raises(ValueError):
            ctx.comm.cancel(req)
        # Drain so the job completes cleanly.
        other = ctx.comm.irecv(source=(ctx.rank - 1) % ctx.size, size=8)
        yield from ctx.comm.waitall([req, other])

    run_app(app)


def test_cancelled_recv_does_not_steal_later_message():
    """After cancelling, a fresh receive gets the message instead."""
    got = {}

    def app(ctx):
        if ctx.rank == 0:
            doomed = ctx.comm.irecv(source=1, tag=5)
            assert ctx.comm.cancel(doomed)
            yield from ctx.comm.barrier()  # now rank 1 sends
            fresh = yield from ctx.comm.recv(source=1, tag=5)
            got["payload"] = bytes(fresh)
        else:
            yield from ctx.comm.barrier()
            yield from ctx.comm.send(b"fresh", dest=0, tag=5)

    run_app(app)
    assert got["payload"] == b"fresh"
