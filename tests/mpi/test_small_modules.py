"""Tests for datatypes, ops, status, and request wrappers."""

import numpy as np
import pytest

from repro.bcs.descriptors import BcsRequest
from repro.mpi import datatypes, ops
from repro.mpi.request import MpiRequest
from repro.mpi.status import Status
from repro.sim import Engine


# --- datatypes ---------------------------------------------------------------


def test_datatype_extents():
    assert datatypes.DOUBLE.extent == 8
    assert datatypes.FLOAT.extent == 4
    assert datatypes.INT.extent == 4
    assert datatypes.BYTE.extent == 1


def test_datatype_float_flags():
    assert datatypes.DOUBLE.is_float
    assert not datatypes.LONG.is_float


def test_from_array_known_types():
    assert datatypes.from_array(np.zeros(2)) is datatypes.DOUBLE
    assert datatypes.from_array(np.zeros(2, dtype=np.int64)) is datatypes.LONG


def test_from_array_opaque_fallback():
    dt = datatypes.from_array(np.zeros(2, dtype=np.complex128))
    assert "OPAQUE" in dt.name
    assert dt.extent == 16
    assert not dt.is_float


# --- ops -----------------------------------------------------------------------


def test_resolve_accepts_all_forms():
    assert ops.resolve(ops.SUM) is ops.SUM
    assert ops.resolve("MPI_SUM") is ops.SUM
    assert ops.resolve("sum") is ops.SUM
    assert ops.resolve("max").kernel == "max"


def test_resolve_unknown_rejected():
    with pytest.raises(ValueError):
        ops.resolve("MPI_NOPE")


def test_all_standard_ops_present():
    names = {op for op in ops.BY_NAME}
    assert {"MPI_SUM", "MPI_PROD", "MPI_MIN", "MPI_MAX", "MPI_LAND", "MPI_BXOR"} <= names


# --- status ----------------------------------------------------------------------


def test_status_get_count():
    status = Status(source=3, tag=9, count_bytes=64)
    assert status.get_count() == 64
    assert status.get_count(8) == 8
    with pytest.raises(ValueError):
        status.get_count(0)


# --- request wrapper ----------------------------------------------------------------


def test_mpi_request_reflects_backend_state():
    env = Engine()
    backend = BcsRequest(env, "recv")
    req = MpiRequest(backend, "irecv")
    assert not req.complete
    assert req.status() is None

    backend.payload = b"data"
    backend.source = 2
    backend.tag = 5
    backend.size = 4
    backend._finish()
    env.run()
    assert req.complete
    assert req.payload == b"data"
    status = req.status()
    assert status == Status(source=2, tag=5, count_bytes=4)


def test_mpi_request_send_has_no_status():
    env = Engine()
    backend = BcsRequest(env, "send")
    backend._finish()
    env.run()
    req = MpiRequest(backend, "isend")
    assert req.complete
    assert req.status() is None
