"""Tests for persistent requests (MPI_Send_init/Recv_init/Startall)."""

import numpy as np
import pytest

from repro.bcs import BcsConfig, BcsRuntime
from repro.mpi.baseline import BaselineConfig, BaselineRuntime
from repro.network import Cluster, ClusterSpec
from repro.storm import JobSpec
from repro.units import seconds


def run_app(app, n_ranks=2, backend="bcs", **params):
    cluster = Cluster(ClusterSpec(n_nodes=1))
    if backend == "bcs":
        runtime = BcsRuntime(cluster, BcsConfig(init_cost=0))
    else:
        runtime = BaselineRuntime(cluster, BaselineConfig(init_cost=0))
    return runtime.run_job(
        JobSpec(app=app, n_ranks=n_ranks, params=params), max_time=seconds(30)
    )


@pytest.mark.parametrize("backend", ["bcs", "baseline"])
def test_persistent_roundtrip_multiple_rounds(backend):
    def app(ctx):
        if ctx.rank == 0:
            payload = np.zeros(4)
            p = ctx.comm.send_init(payload, dest=1, tag=3)
            for i in range(3):
                payload[:] = float(i)
                req = p.start()
                yield from ctx.comm.wait(req)
        else:
            p = ctx.comm.recv_init(source=0, tag=3)
            got = []
            for _ in range(3):
                req = p.start()
                yield from ctx.comm.wait(req)
                got.append(float(req.payload[0]))
            return got

    job = run_app(app, backend=backend)
    assert job.results[1] == [0.0, 1.0, 2.0]


def test_startall_activates_everything():
    def app(ctx):
        peer = ctx.rank ^ 1
        ps = [
            ctx.comm.send_init(None, dest=peer, tag=0, size=64),
            ctx.comm.recv_init(source=peer, tag=0, size=64),
        ]
        reqs = ctx.comm.startall(ps)
        yield from ctx.comm.waitall(reqs)
        return all(p.complete for p in ps)

    job = run_app(app)
    assert job.results == [True, True]


def test_double_start_while_active_rejected():
    def app(ctx):
        if ctx.rank == 0:
            p = ctx.comm.recv_init(source=1, tag=9)
            p.start()
            with pytest.raises(RuntimeError):
                p.start()
            yield from ctx.comm.wait(p.active)
        else:
            yield from ctx.comm.send(b"x", dest=0, tag=9)

    run_app(app)


def test_inactive_persistent_is_complete():
    def app(ctx):
        p = ctx.comm.recv_init(source=0)
        assert p.complete  # inactive counts as complete (MPI semantics)
        assert p.payload is None
        yield ctx.env.timeout(1)

    run_app(app)
