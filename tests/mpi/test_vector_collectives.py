"""Tests for the vectorial collectives (paper Appendix A, Fig. 12)."""

import numpy as np
import pytest

from repro.bcs import BcsConfig, BcsRuntime, TruncationError
from repro.mpi.baseline import BaselineConfig, BaselineRuntime
from repro.network import Cluster, ClusterSpec
from repro.storm import JobSpec
from repro.units import seconds


def run_app(app, n_ranks=4, backend="bcs", **params):
    cluster = Cluster(ClusterSpec(n_nodes=max(n_ranks // 2, 1)))
    if backend == "bcs":
        runtime = BcsRuntime(cluster, BcsConfig(init_cost=0))
    else:
        runtime = BaselineRuntime(cluster, BaselineConfig(init_cost=0))
    return runtime.run_job(
        JobSpec(app=app, n_ranks=n_ranks, params=params), max_time=seconds(60)
    )


@pytest.mark.parametrize("backend", ["bcs", "baseline"])
def test_scatterv_variable_chunks(backend):
    def app(ctx):
        if ctx.rank == 0:
            chunks = [np.arange(float(r + 1)) for r in range(ctx.size)]
            mine = yield from ctx.comm.scatterv(chunks, root=0)
        else:
            mine = yield from ctx.comm.scatterv(None, root=0)
        return len(mine)

    job = run_app(app, backend=backend)
    assert job.results == [1, 2, 3, 4]


def test_scatterv_sizes_enforced_on_bcs():
    """Declared receive capacities catch oversized chunks (truncation)."""

    def app(ctx):
        sizes = [8] * ctx.size  # one float64 max
        if ctx.rank == 0:
            chunks = [np.arange(4.0) for _ in range(ctx.size)]  # 32 B each!
            yield from ctx.comm.scatterv(chunks, root=0, sizes=sizes)
        else:
            yield from ctx.comm.scatterv(None, root=0, sizes=sizes)

    cluster = Cluster(ClusterSpec(n_nodes=2))
    runtime = BcsRuntime(cluster, BcsConfig(init_cost=0))
    job = runtime.launch(JobSpec(app=app, n_ranks=4))
    with pytest.raises(TruncationError):
        cluster.env.run(
            until=cluster.env.any_of([job.done, cluster.env.timeout(seconds(10))])
        )


@pytest.mark.parametrize("backend", ["bcs", "baseline"])
def test_gatherv_variable_contributions(backend):
    def app(ctx):
        mine = np.full(ctx.rank + 1, float(ctx.rank))
        out = yield from ctx.comm.gatherv(mine, root=1)
        if out is None:
            return None
        return [len(x) for x in out]

    job = run_app(app, backend=backend)
    assert job.results[1] == [1, 2, 3, 4]
    assert job.results[0] is None


@pytest.mark.parametrize("backend", ["bcs", "baseline"])
def test_allgatherv(backend):
    def app(ctx):
        mine = list(range(ctx.rank + 1))
        out = yield from ctx.comm.allgatherv(mine)
        return [len(x) for x in out]

    job = run_app(app, backend=backend)
    assert all(r == [1, 2, 3, 4] for r in job.results)


@pytest.mark.parametrize("backend", ["bcs", "baseline"])
def test_alltoallv_asymmetric_matrix(backend):
    def app(ctx):
        # Rank i sends i+j+1 elements to rank j.
        chunks = [np.full(ctx.rank + j + 1, float(ctx.rank)) for j in range(ctx.size)]
        out = yield from ctx.comm.alltoallv(chunks)
        # From rank j we receive j + my_rank + 1 elements, all == j.
        return [(len(x), float(np.asarray(x).ravel()[0])) for x in out]

    job = run_app(app, backend=backend)
    for rank, row in enumerate(job.results):
        for j, (n, v) in enumerate(row):
            assert n == rank + j + 1
            assert v == float(j)


def test_alltoallv_validation():
    def app(ctx):
        with pytest.raises(ValueError):
            yield from ctx.comm.alltoallv([1])
        with pytest.raises(ValueError):
            yield from ctx.comm.alltoallv([1] * ctx.size, sizes=[8])

    run_app(app)


def test_vector_ops_cross_backend_identical():
    def app(ctx):
        chunks = [
            np.arange(float((ctx.rank + j) % 3 + 1)) * (ctx.rank + 1)
            for j in range(ctx.size)
        ]
        out = yield from ctx.comm.alltoallv(chunks)
        return [np.asarray(x).tobytes() for x in out]

    bcs = run_app(app, backend="bcs")
    base = run_app(app, backend="baseline")
    assert bcs.results == base.results
