"""Tests for the parallel file system substrate and its QoS behaviour."""

import pytest

from repro.apps import nearest_neighbor_benchmark
from repro.bcs import BcsConfig, BcsRuntime
from repro.network import Cluster, ClusterSpec
from repro.pfs import PfsService, UncoordinatedPfs
from repro.storm import JobSpec
from repro.units import KiB, MiB, kib, mib, ms, seconds


def make_runtime(n_nodes=4):
    cluster = Cluster(ClusterSpec(n_nodes=n_nodes))
    return cluster, BcsRuntime(cluster, BcsConfig(init_cost=0))


def test_striping_round_robin():
    cluster, runtime = make_runtime()
    pfs = PfsService(runtime, io_nodes=[2, 3], stripe_bytes=kib(256))
    reqs = pfs.write(0, "data.bin", mib(1))
    assert len(reqs) == 4  # 1 MiB / 256 KiB
    assert pfs.files["data.bin"].placement == [2, 3, 2, 3]


def test_partial_last_stripe():
    cluster, runtime = make_runtime()
    pfs = PfsService(runtime, io_nodes=[2], stripe_bytes=kib(256))
    reqs = pfs.write(0, "odd.bin", kib(300))
    assert len(reqs) == 2
    assert pfs.files["odd.bin"].size == kib(300)


def test_write_completes_through_slice_machine():
    cluster, runtime = make_runtime()
    pfs = PfsService(runtime, io_nodes=[2, 3])
    reqs = pfs.write(0, "x", mib(2))

    proc = cluster.env.process(pfs.drain(reqs), name="drain")
    runtime.ss.start()
    cluster.env.run(until=proc)
    assert all(r.complete for r in reqs)
    assert runtime.stats["pfs_stripes_written"] == len(reqs)
    assert runtime.stats["bytes_transferred"] >= mib(2)


def test_read_back_uses_recorded_placement():
    cluster, runtime = make_runtime()
    pfs = PfsService(runtime, io_nodes=[1, 2, 3])
    pfs.write(0, "f", mib(1))
    reqs = pfs.read(0, "f")
    assert len(reqs) == 4
    proc = cluster.env.process(pfs.drain(reqs), name="drain")
    runtime.ss.start()
    cluster.env.run(until=proc)
    assert all(r.complete for r in reqs)
    assert pfs.bytes_read == mib(1)


def test_read_unknown_file_raises():
    cluster, runtime = make_runtime()
    pfs = PfsService(runtime, io_nodes=[1])
    with pytest.raises(FileNotFoundError):
        pfs.read(0, "nope")


def test_needs_io_nodes():
    cluster, runtime = make_runtime()
    with pytest.raises(ValueError):
        PfsService(runtime, io_nodes=[])
    with pytest.raises(ValueError):
        UncoordinatedPfs(cluster, io_nodes=[])


def test_system_traffic_yields_to_user_traffic():
    """The QoS claim: PFS stripes get only leftover budget."""
    from repro.bcs.descriptors import Match
    from repro.bcs.scheduler import SliceScheduler

    cluster, runtime = make_runtime()
    pfs = PfsService(runtime, io_nodes=[1])
    sched = runtime.scheduler
    # Fill the rx budget of node 1 with user traffic, then add PFS load.
    user_reqs = pfs._make_match(0, 1, sched.budget_bytes)
    user_reqs.system = False
    sched.add_matches([user_reqs])
    pfs.write(0, "bulk", sched.budget_bytes)  # system-class, same link

    granted = sched.schedule_slice()
    grants = {(m.system): m.scheduled_now for m in granted}
    assert grants.get(False) == sched.budget_bytes  # user got everything
    assert True not in grants or grants[True] == 0


def test_qos_app_unperturbed_by_pfs_under_bcs():
    """End-to-end §1 scenario: background PFS writes do not slow a
    latency-sensitive application under global scheduling."""

    def run(with_pfs):
        cluster, runtime = make_runtime(n_nodes=4)
        if with_pfs:
            pfs = PfsService(runtime, io_nodes=[0, 1, 2, 3])

            def writer():
                for i in range(20):
                    pfs.write(i % 4, f"bg{i}", mib(4))
                    yield cluster.env.timeout(ms(5))

            cluster.env.process(writer(), name="pfs.bg")
        job = runtime.run_job(
            JobSpec(
                app=nearest_neighbor_benchmark,
                n_ranks=8,
                params=dict(granularity=ms(3), iterations=10, message_bytes=kib(4)),
            ),
            max_time=seconds(60),
        )
        return job.runtime

    clean = run(False)
    loaded = run(True)
    # Under BCS the app sees (almost) no interference.
    assert loaded <= clean * 1.10
