"""Unit tests for NAS skeleton helpers and wavefront machinery."""

import pytest

from repro.apps.nas.base_helpers import halo_bytes_for_level
from repro.apps.sweep_helpers import wavefront_peers
from repro.apps.sweep3d import OCTANTS


def test_halo_bytes_512_cube():
    # 512^3 over 62 ranks: a pencil face is ~(512/sqrt(62))^2 points.
    halo = halo_bytes_for_level(512, 62)
    assert 30_000 < halo < 40_000


def test_halo_bytes_shrinks_with_more_ranks():
    assert halo_bytes_for_level(512, 64) < halo_bytes_for_level(512, 4)


def test_halo_bytes_floor_and_validation():
    assert halo_bytes_for_level(2, 10**6) == 8  # never below one word
    with pytest.raises(ValueError):
        halo_bytes_for_level(0, 4)
    with pytest.raises(ValueError):
        halo_bytes_for_level(8, 0)


def test_octants_cover_all_four_diagonal_directions():
    assert set(OCTANTS) == {(1, 1), (1, -1), (-1, 1), (-1, -1)}
    assert len(OCTANTS) == 8  # two z-directions per diagonal


def test_wavefront_peers_corner_has_no_upstream():
    # ++ sweep: rank 0 (corner) consumes nothing, only produces.
    upstream, downstream = wavefront_peers(0, 16, (1, 1))
    assert upstream == []
    assert len(downstream) == 2


def test_wavefront_peers_opposite_corner_terminal():
    upstream, downstream = wavefront_peers(15, 16, (1, 1))
    assert len(upstream) == 2
    assert downstream == []


def test_wavefront_upstream_downstream_are_duals():
    """If a is upstream of b for a sweep, then b is downstream of a."""
    size = 16
    for direction in [(1, 1), (-1, 1), (1, -1), (-1, -1)]:
        for rank in range(size):
            upstream, _ = wavefront_peers(rank, size, direction)
            for u in upstream:
                _, u_down = wavefront_peers(u, size, direction)
                assert rank in u_down, (rank, u, direction)


def test_wavefront_reversed_sweep_swaps_roles():
    size = 16
    for rank in range(size):
        up_fwd, down_fwd = wavefront_peers(rank, size, (1, 1))
        up_rev, down_rev = wavefront_peers(rank, size, (-1, -1))
        assert sorted(up_fwd) == sorted(down_rev)
        assert sorted(down_fwd) == sorted(up_rev)


def test_wavefront_dag_is_acyclic():
    """Following downstream links always increases the wavefront index."""
    from repro.apps.base import grid_coords, process_grid

    size = 12
    px, py = process_grid(size)
    for rank in range(size):
        i, j = grid_coords(rank, px, py)
        _, downstream = wavefront_peers(rank, size, (1, 1))
        for d in downstream:
            di, dj = grid_coords(d, px, py)
            assert di + dj == i + j + 1
