"""Every workload runs to completion on both backends (tiny instances)."""

import pytest

from repro.apps import (
    barrier_benchmark,
    nearest_neighbor_benchmark,
    sage,
    sweep3d_blocking,
    sweep3d_nonblocking,
)
from repro.apps.nas import NAS_APPS
from repro.bcs import BcsConfig
from repro.harness import compare_backends, run_workload
from repro.mpi.baseline import BaselineConfig
from repro.units import ms, seconds

BC = BcsConfig(init_cost=0)
BL = BaselineConfig(init_cost=0)

TINY = {
    "barrier": (barrier_benchmark, dict(granularity=ms(2), iterations=3)),
    "nn": (nearest_neighbor_benchmark, dict(granularity=ms(2), iterations=3)),
    "sage": (sage, dict(steps=3, step_compute=ms(5))),
    "sweep_blk": (sweep3d_blocking, dict(octants=2, kblocks=2, step_compute=ms(1))),
    "sweep_nb": (sweep3d_nonblocking, dict(octants=2, kblocks=2, step_compute=ms(1))),
    "IS": (NAS_APPS["IS"], dict(iterations=2, total_keys=2**16)),
    "EP": (NAS_APPS["EP"], dict(total_compute=ms(20))),
    "CG": (NAS_APPS["CG"], dict(outer_iterations=1, inner_iterations=3)),
    "MG": (NAS_APPS["MG"], dict(iterations=1, levels=3, level_compute_top=ms(2))),
    "LU": (NAS_APPS["LU"], dict(iterations=1, kblocks=2, step_compute=ms(1))),
}


@pytest.mark.parametrize("name", sorted(TINY))
@pytest.mark.parametrize("backend", ["bcs", "baseline"])
def test_workload_completes(name, backend):
    app, params = TINY[name]
    result = run_workload(
        app,
        n_ranks=8,
        backend=backend,
        params=params,
        bcs_config=BC,
        baseline_config=BL,
        max_time=seconds(60),
    )
    assert result.runtime_ns > 0
    assert len(result.results) == 8


@pytest.mark.parametrize("name", ["sage", "IS", "CG"])
def test_workload_results_agree_across_backends(name):
    """Apps that return values must compute the same thing on both."""
    app, params = TINY[name]
    comparison = compare_backends(
        app, 8, params=params, bcs_config=BC, baseline_config=BL,
        max_time=seconds(60),
    )
    assert comparison.bcs.results == comparison.baseline.results


def test_workloads_scale_with_ranks():
    app, params = TINY["sweep_nb"]
    for n in (2, 4, 8):
        result = run_workload(
            app, n_ranks=n, backend="bcs", params=params, bcs_config=BC,
            max_time=seconds(60),
        )
        assert result.runtime_ns > 0


def test_blocking_sweep_slower_than_nonblocking_under_bcs():
    """The §5.4 effect at miniature scale."""
    params = dict(octants=3, kblocks=3, step_compute=ms(3.5))
    blk = run_workload(
        sweep3d_blocking, 8, "bcs", params=params, bcs_config=BC,
        max_time=seconds(60),
    )
    nb = run_workload(
        sweep3d_nonblocking, 8, "bcs", params=params, bcs_config=BC,
        max_time=seconds(60),
    )
    assert blk.runtime_ns > nb.runtime_ns


def test_deterministic_workload_runs():
    app, params = TINY["sage"]
    r1 = run_workload(app, 8, "bcs", params=params, bcs_config=BC)
    r2 = run_workload(app, 8, "bcs", params=params, bcs_config=BC)
    assert r1.runtime_ns == r2.runtime_ns
    assert r1.results == r2.results


def test_ft_extension_runs_on_both_backends():
    """NPB FT (excluded in the paper for lack of MPI groups) runs here."""
    params = dict(iterations=2, grid_points=32, flop_ns_per_point=50.0)
    for backend in ("bcs", "baseline"):
        result = run_workload(
            NAS_APPS["FT"], n_ranks=8, backend=backend, params=params,
            bcs_config=BC, baseline_config=BL, max_time=seconds(60),
        )
        assert result.runtime_ns > 0
        assert all(r is not None for r in result.results)


def test_ft_checksum_identical_across_backends():
    params = dict(iterations=2, grid_points=32, flop_ns_per_point=50.0)
    comparison = compare_backends(
        NAS_APPS["FT"], 8, params=params, bcs_config=BC, baseline_config=BL,
        max_time=seconds(60),
    )
    assert comparison.bcs.results == comparison.baseline.results
