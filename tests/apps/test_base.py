"""Unit + property tests for workload geometry helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.base import (
    grid_coords,
    grid_rank,
    log2_ceil,
    neighbors_2d,
    neighbors_3d,
    process_grid,
    process_grid_3d,
    ring_neighbors,
)


def test_process_grid_square():
    assert process_grid(16) == (4, 4)
    assert process_grid(62) == (31, 2)
    assert process_grid(1) == (1, 1)
    assert process_grid(7) == (7, 1)


def test_process_grid_invalid():
    with pytest.raises(ValueError):
        process_grid(0)


def test_grid_coords_roundtrip():
    px, py = process_grid(12)
    for rank in range(12):
        i, j = grid_coords(rank, px, py)
        assert grid_rank(i, j, px, py) == rank


def test_grid_coords_out_of_range():
    with pytest.raises(IndexError):
        grid_coords(12, 4, 3)


def test_neighbors_2d_periodic_counts():
    for size in (4, 9, 16, 62):
        for rank in range(size):
            nbs = neighbors_2d(rank, size)
            assert rank not in nbs
            assert len(nbs) == len(set(nbs))
            assert all(0 <= n < size for n in nbs)


def test_neighbors_2d_nonperiodic_boundary():
    # 4x4 grid: corner rank 0 has exactly 2 neighbours without wraparound.
    nbs = neighbors_2d(0, 16, periodic=False)
    assert len(nbs) == 2


@settings(max_examples=60, deadline=None)
@given(st.integers(2, 64))
def test_prop_neighbors_2d_symmetric(size):
    """If a is b's neighbour, b is a's neighbour (periodic torus)."""
    for a in range(size):
        for b in neighbors_2d(a, size):
            assert a in neighbors_2d(b, size)


def test_process_grid_3d():
    assert process_grid_3d(8) == (2, 2, 2)
    assert process_grid_3d(64) == (4, 4, 4)
    px, py, pz = process_grid_3d(62)
    assert px * py * pz == 62


@settings(max_examples=40, deadline=None)
@given(st.integers(2, 64))
def test_prop_neighbors_3d_symmetric(size):
    for a in range(size):
        for b in neighbors_3d(a, size):
            assert a in neighbors_3d(b, size)


def test_neighbors_3d_count_at_most_six():
    for size in (8, 27, 62):
        for rank in range(size):
            nbs = neighbors_3d(rank, size)
            assert 1 <= len(nbs) <= 6
            assert rank not in nbs


def test_ring_neighbors():
    assert ring_neighbors(0, 4) == (3, 1)
    assert ring_neighbors(3, 4) == (2, 0)


def test_log2_ceil():
    assert [log2_ceil(n) for n in (1, 2, 3, 4, 5, 8, 9)] == [0, 1, 2, 2, 3, 3, 4]
    with pytest.raises(ValueError):
        log2_ceil(0)


def test_cg_transpose_partner_is_involution():
    from repro.apps.nas.cg import _transpose_partner

    for size in (2, 4, 8, 32, 62, 61, 30):
        for rank in range(size):
            partner = _transpose_partner(rank, size)
            assert 0 <= partner < size
            assert _transpose_partner(partner, size) == rank, (size, rank)
