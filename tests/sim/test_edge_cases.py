"""Edge-case tests for the DES kernel (interrupt/cancel interactions,
foreign events, scheduling validation)."""

import pytest

from repro.sim import Engine, Interrupt, Resource, Store


def test_schedule_negative_delay_rejected():
    env = Engine()
    ev = env.event()
    ev._ok = True
    ev._value = None
    with pytest.raises(ValueError):
        env.schedule(ev, delay=-1)


def test_yield_event_from_other_engine_fails():
    env1 = Engine()
    env2 = Engine()
    foreign = env2.timeout(5)

    def body():
        yield foreign

    proc = env1.process(body())
    with pytest.raises(ValueError, match="different engine"):
        env1.run(until=proc)


def test_run_until_bad_type():
    env = Engine()
    with pytest.raises(TypeError):
        env.run(until="soon")


def test_interrupt_cancels_pending_resource_request():
    """An interrupted waiter must not leak capacity (the FT bug)."""
    env = Engine()
    res = Resource(env, capacity=1)

    def holder():
        yield res.request()
        yield env.timeout(100)
        res.release()

    def waiter():
        try:
            yield res.request()
            res.release()  # pragma: no cover - should not be granted
        except Interrupt:
            return "interrupted"

    env.process(holder())
    victim = env.process(waiter())

    def killer():
        yield env.timeout(10)
        victim.interrupt()

    env.process(killer())
    env.run()
    # After the holder releases, capacity is fully back.
    assert res.in_use == 0
    assert res.queue_length == 0


def test_interrupt_of_granted_but_unprocessed_request_releases():
    env = Engine()
    res = Resource(env, capacity=1)
    outcome = {}

    def waiter():
        try:
            yield res.request()
            outcome["granted"] = True
        except Interrupt:
            outcome["interrupted"] = True

    victim = env.process(waiter())

    def killer():
        # Same timestep as the grant: the request triggers, then the
        # interrupt lands before the process resumes.
        victim.interrupt()
        yield env.timeout(0)

    # Request is granted immediately at creation (capacity free), so
    # interrupting now exercises the triggered-but-unprocessed path.
    env.process(killer())
    env.run()
    assert outcome == {"interrupted": True}
    assert res.in_use == 0


def test_interrupt_during_held_releases_resource():
    env = Engine()
    res = Resource(env, capacity=1)

    def worker():
        try:
            yield from res.held(1000)
        except Interrupt:
            pass

    victim = env.process(worker())

    def killer():
        yield env.timeout(5)
        victim.interrupt()

    env.process(killer())
    env.run()
    assert res.in_use == 0


def test_store_getter_interrupt_does_not_lose_items():
    env = Engine()
    store = Store(env)
    got = []

    def blocked_getter():
        try:
            item = yield store.get()
            got.append(item)
        except Interrupt:
            pass

    def healthy_getter():
        item = yield store.get()
        got.append(item)

    victim = env.process(blocked_getter())
    env.process(healthy_getter())

    def driver():
        yield env.timeout(1)
        victim.interrupt()
        yield env.timeout(1)
        store.put("x")

    env.process(driver())
    env.run()
    # The healthy getter eventually receives the item even though an
    # earlier getter was interrupted.
    assert got == ["x"]


def test_process_return_none_by_default():
    env = Engine()

    def body():
        yield env.timeout(1)

    assert env.run(until=env.process(body())) is None


def test_condition_with_preprocessed_events():
    env = Engine()
    t = env.timeout(1)
    env.run(until=5)

    def body():
        result = yield env.all_of([t])
        return list(result.values())

    assert env.run(until=env.process(body())) == [None]
