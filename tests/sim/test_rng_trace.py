"""Tests for RNG registries and the trace sink."""

from repro.sim import NullTrace, RngRegistry, Trace, derive_seed


# --- rng -----------------------------------------------------------------------


def test_derive_seed_deterministic_and_distinct():
    assert derive_seed(1, "a") == derive_seed(1, "a")
    assert derive_seed(1, "a") != derive_seed(1, "b")
    assert derive_seed(1, "a") != derive_seed(2, "a")


def test_streams_are_cached_and_independent():
    reg = RngRegistry(42)
    s1 = reg.stream("noise")
    s2 = reg.stream("noise")
    assert s1 is s2
    a = reg.stream("a").random(4).tolist()
    # Drawing from one stream must not perturb another.
    reg2 = RngRegistry(42)
    reg2.stream("b").random(100)
    assert reg2.stream("a").random(4).tolist() == a


def test_spawn_disjoint():
    reg = RngRegistry(7)
    child = reg.spawn("x")
    assert child.root_seed != reg.root_seed
    assert child.stream("s").random() != reg.stream("s").random()


# --- trace ------------------------------------------------------------------------


def test_trace_category_filtering():
    trace = Trace(categories=["keep"])
    trace.emit(10, "keep", a=1)
    trace.emit(20, "drop", b=2)
    assert len(trace.records) == 1
    assert trace.records[0].category == "keep"
    assert trace.by_category("drop") == []


def test_trace_capture_all():
    trace = Trace(capture_all=True)
    trace.emit(1, "anything", x=1)
    assert trace.enabled_for("whatever")
    assert len(trace.records) == 1


def test_trace_counters_and_histograms():
    trace = Trace()
    trace.count("msgs")
    trace.count("msgs", 4)
    trace.observe("latency", 2.5)
    trace.observe("latency", 3.5)
    assert trace.counters["msgs"] == 5
    assert trace.samples("latency") == [2.5, 3.5]


def test_trace_histogram_summary_and_percentiles():
    trace = Trace()
    for v in range(1, 101):
        trace.observe("lat", float(v))
    assert trace.percentile("lat", 50) == 50.0
    assert trace.percentile("lat", 95) == 95.0
    assert trace.percentile("lat", 99) == 99.0
    s = trace.summary("lat")
    assert s["count"] == 100
    assert s["min"] == 1.0 and s["max"] == 100.0
    assert s["p50"] == 50.0
    assert trace.summary("unknown") == {"count": 0}
    import pytest

    with pytest.raises(ValueError):
        trace.percentile("unknown", 50)


def test_trace_histograms_shim_removed():
    trace = Trace()
    trace.observe("lat", 1.0)
    assert not hasattr(trace, "histograms")
    assert trace.samples("lat") == [1.0]
    trace.clear()
    assert not trace.counters and not trace.records
    assert trace.samples("lat") == []


def test_null_trace_captures_nothing():
    trace = NullTrace()
    trace.emit(1, "x", a=1)
    assert trace.records == []
    assert not trace.enabled_for("x")


def test_fabric_emits_to_trace():
    from repro.network import Cluster, ClusterSpec

    trace = Trace(categories=["fabric.unicast"])
    cluster = Cluster(ClusterSpec(n_nodes=2), trace=trace)

    def body():
        yield from cluster.fabric.unicast(0, 1, 1024)

    cluster.env.process(body())
    cluster.run()
    assert len(trace.records) == 1
    rec = trace.records[0]
    assert rec.fields["src"] == 0 and rec.fields["dst"] == 1
    assert rec.fields["size"] == 1024
