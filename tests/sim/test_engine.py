"""Unit tests for the DES engine and event primitives."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Deadlock,
    Engine,
    Event,
    EventAlreadyTriggered,
    Interrupt,
)


def test_timeout_advances_time():
    env = Engine()

    def body():
        yield env.timeout(10)
        yield env.timeout(5)
        return env.now

    proc = env.process(body())
    assert env.run(until=proc) == 15
    assert env.now == 15


def test_zero_timeout_runs_same_time():
    env = Engine()
    seen = []

    def body():
        yield env.timeout(0)
        seen.append(env.now)

    env.process(body())
    env.run()
    assert seen == [0]


def test_negative_timeout_rejected():
    env = Engine()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_process_return_value():
    env = Engine()

    def body():
        yield env.timeout(1)
        return "done"

    assert env.run(until=env.process(body())) == "done"


def test_events_fire_in_fifo_order_at_same_time():
    env = Engine()
    order = []

    def body(tag):
        yield env.timeout(7)
        order.append(tag)

    for tag in range(5):
        env.process(body(tag))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_run_until_time_stops_midway():
    env = Engine()
    hits = []

    def body():
        for _ in range(10):
            yield env.timeout(10)
            hits.append(env.now)

    env.process(body())
    env.run(until=35)
    assert hits == [10, 20, 30]
    assert env.now == 35


def test_run_until_past_time_raises():
    env = Engine()
    env.run(until=5)
    with pytest.raises(ValueError):
        env.run(until=3)


def test_event_succeed_once_only():
    env = Engine()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(EventAlreadyTriggered):
        ev.succeed(2)
    with pytest.raises(EventAlreadyTriggered):
        ev.fail(RuntimeError())


def test_event_value_propagates_to_process():
    env = Engine()
    ev = env.event()

    def waiter():
        got = yield ev
        return got

    def poker():
        yield env.timeout(3)
        ev.succeed("payload")

    proc = env.process(waiter())
    env.process(poker())
    assert env.run(until=proc) == "payload"
    assert env.now == 3


def test_failed_event_raises_in_process():
    env = Engine()
    ev = env.event()

    def waiter():
        try:
            yield ev
        except RuntimeError as exc:
            return f"caught:{exc}"

    def poker():
        yield env.timeout(1)
        ev.fail(RuntimeError("boom"))

    proc = env.process(waiter())
    env.process(poker())
    assert env.run(until=proc) == "caught:boom"


def test_unhandled_process_exception_propagates_through_run_until():
    env = Engine()

    def bad():
        yield env.timeout(1)
        raise ValueError("oops")

    proc = env.process(bad())
    with pytest.raises(ValueError, match="oops"):
        env.run(until=proc)


def test_unhandled_failure_without_waiters_crashes_run():
    env = Engine()

    def bad():
        yield env.timeout(1)
        raise ValueError("lost")

    env.process(bad())
    with pytest.raises(ValueError, match="lost"):
        env.run()


def test_yield_from_subgenerator():
    env = Engine()

    def sub():
        yield env.timeout(4)
        return 42

    def body():
        val = yield from sub()
        return val + env.now

    assert env.run(until=env.process(body())) == 46


def test_yielding_non_event_raises_inside_process():
    env = Engine()

    def bad():
        yield 5

    proc = env.process(bad())
    with pytest.raises(TypeError, match="must yield Event"):
        env.run(until=proc)


def test_process_waits_on_other_process():
    env = Engine()

    def child():
        yield env.timeout(9)
        return "child-value"

    def parent():
        val = yield env.process(child())
        return (val, env.now)

    assert env.run(until=env.process(parent())) == ("child-value", 9)


def test_waiting_on_finished_process_returns_immediately():
    env = Engine()

    def child():
        yield env.timeout(1)
        return 7

    def parent(cp):
        yield env.timeout(10)
        val = yield cp
        return (val, env.now)

    cp = env.process(child())
    assert env.run(until=env.process(parent(cp))) == (7, 10)


def test_all_of_collects_values():
    env = Engine()
    t1 = env.timeout(3, value="a")
    t2 = env.timeout(5, value="b")

    def body():
        got = yield AllOf(env, [t1, t2])
        return sorted(got.values()), env.now

    assert env.run(until=env.process(body())) == (["a", "b"], 5)


def test_any_of_fires_on_first():
    env = Engine()
    t1 = env.timeout(3, value="fast")
    t2 = env.timeout(50, value="slow")

    def body():
        got = yield AnyOf(env, [t1, t2])
        return list(got.values()), env.now

    assert env.run(until=env.process(body())) == (["fast"], 3)


def test_all_of_empty_triggers_immediately():
    env = Engine()

    def body():
        got = yield env.all_of([])
        return got

    assert env.run(until=env.process(body())) == {}


def test_condition_failure_propagates():
    env = Engine()
    ev = env.event()

    def body():
        with pytest.raises(RuntimeError):
            yield env.all_of([ev, env.timeout(100)])
        return "ok"

    def poker():
        yield env.timeout(1)
        ev.fail(RuntimeError("inner"))

    proc = env.process(body())
    env.process(poker())
    assert env.run(until=proc) == "ok"


def test_interrupt_wakes_blocked_process():
    env = Engine()

    def sleeper():
        try:
            yield env.timeout(1000)
            return "slept"
        except Interrupt as intr:
            return ("interrupted", intr.cause, env.now)

    def interrupter(victim):
        yield env.timeout(5)
        victim.interrupt("wakeup")

    victim = env.process(sleeper())
    env.process(interrupter(victim))
    assert env.run(until=victim) == ("interrupted", "wakeup", 5)


def test_interrupt_dead_process_raises():
    env = Engine()

    def quick():
        yield env.timeout(1)

    proc = env.process(quick())
    env.run()
    with pytest.raises(RuntimeError):
        proc.interrupt()


def test_run_until_event_deadlock_detected():
    env = Engine()
    never = env.event()

    def body():
        yield env.timeout(1)

    env.process(body())
    with pytest.raises(Deadlock):
        env.run(until=never)


def test_determinism_two_identical_runs():
    def run_once():
        env = Engine()
        log = []

        def worker(i):
            for k in range(3):
                yield env.timeout(7 * (i + 1))
                log.append((env.now, i, k))

        for i in range(4):
            env.process(worker(i))
        env.run()
        return log

    assert run_once() == run_once()


def test_peek_and_step():
    env = Engine()
    env.timeout(4)
    env.timeout(2)
    assert env.peek() == 2
    env.step()
    assert env.now == 2
    assert env.peek() == 4


def test_priority_orders_same_instant():
    env = Engine()
    order = []

    def make_cb(tag):
        def cb(_ev):
            order.append(tag)

        return cb

    low = env.event()
    high = env.event()
    low._ok = True
    low._value = None
    high._ok = True
    high._value = None
    low.callbacks.append(make_cb("low"))
    high.callbacks.append(make_cb("high"))
    env.schedule(low, delay=0, priority=5)
    env.schedule(high, delay=0, priority=1)
    env.run()
    assert order == ["high", "low"]
