"""Unit tests for Resource, Store, Signal, Gate."""

import pytest

from repro.sim import Engine, Gate, Resource, Signal, Store


# --- Resource ---------------------------------------------------------------


def test_resource_serializes_fifo():
    env = Engine()
    res = Resource(env, capacity=1, name="link")
    order = []

    def user(tag, hold):
        yield res.request()
        order.append((env.now, tag, "in"))
        yield env.timeout(hold)
        res.release()
        order.append((env.now, tag, "out"))

    env.process(user("a", 10))
    env.process(user("b", 5))
    env.process(user("c", 1))
    env.run()
    assert order == [
        (0, "a", "in"),
        (10, "a", "out"),
        (10, "b", "in"),
        (15, "b", "out"),
        (15, "c", "in"),
        (16, "c", "out"),
    ]


def test_resource_capacity_allows_concurrency():
    env = Engine()
    res = Resource(env, capacity=2, name="duo")
    active = []
    peak = []

    def user(hold):
        yield res.request()
        active.append(1)
        peak.append(len(active))
        yield env.timeout(hold)
        active.pop()
        res.release()

    for _ in range(4):
        env.process(user(10))
    env.run()
    assert max(peak) == 2


def test_resource_multi_unit_request_blocks_smaller_later_ones():
    env = Engine()
    res = Resource(env, capacity=4, name="bw")
    order = []

    def user(tag, amount, hold):
        yield res.request(amount)
        order.append((env.now, tag))
        yield env.timeout(hold)
        res.release(amount)

    def staged():
        env.process(user("big", 4, 10))
        yield env.timeout(1)
        env.process(user("later-small", 1, 1))

    env.process(staged())
    env.run()
    assert order == [(0, "big"), (10, "later-small")]


def test_resource_request_validation():
    env = Engine()
    res = Resource(env, capacity=2)
    with pytest.raises(ValueError):
        res.request(0)
    with pytest.raises(ValueError):
        res.request(3)
    with pytest.raises(RuntimeError):
        res.release(1)


def test_resource_held_helper_releases_on_completion():
    env = Engine()
    res = Resource(env, capacity=1)

    def user():
        yield from res.held(5)
        return (env.now, res.in_use)

    assert env.run(until=env.process(user())) == (5, 0)


def test_resource_counters():
    env = Engine()
    res = Resource(env, capacity=3)

    def user():
        yield res.request(2)
        assert res.in_use == 2
        assert res.available == 1
        res.release(2)

    env.run(until=env.process(user()))
    assert res.in_use == 0


# --- Store -------------------------------------------------------------------


def test_store_put_then_get():
    env = Engine()
    store = Store(env)
    store.put("x")

    def getter():
        item = yield store.get()
        return item

    assert env.run(until=env.process(getter())) == "x"


def test_store_get_blocks_until_put():
    env = Engine()
    store = Store(env)

    def getter():
        item = yield store.get()
        return (item, env.now)

    def putter():
        yield env.timeout(8)
        store.put(99)

    proc = env.process(getter())
    env.process(putter())
    assert env.run(until=proc) == (99, 8)


def test_store_fifo_ordering_of_items_and_getters():
    env = Engine()
    store = Store(env)
    got = []

    def getter(tag):
        item = yield store.get()
        got.append((tag, item))

    env.process(getter("g0"))
    env.process(getter("g1"))

    def putter():
        yield env.timeout(1)
        store.put("first")
        store.put("second")

    env.process(putter())
    env.run()
    assert got == [("g0", "first"), ("g1", "second")]


def test_store_try_get_and_drain():
    env = Engine()
    store = Store(env)
    assert store.try_get() is None
    store.put(1)
    store.put(2)
    assert store.try_get() == 1
    store.put(3)
    assert store.drain() == [2, 3]
    assert len(store) == 0


# --- Signal --------------------------------------------------------------------


def test_signal_wakes_all_waiters():
    env = Engine()
    sig = Signal(env)
    woken = []

    def waiter(tag):
        val = yield sig.wait()
        woken.append((tag, val, env.now))

    for tag in range(3):
        env.process(waiter(tag))

    def pulser():
        yield env.timeout(5)
        n = sig.pulse("edge")
        assert n == 3

    env.process(pulser())
    env.run()
    assert woken == [(0, "edge", 5), (1, "edge", 5), (2, "edge", 5)]


def test_signal_is_rearmable():
    env = Engine()
    sig = Signal(env)
    times = []

    def waiter():
        for _ in range(3):
            yield sig.wait()
            times.append(env.now)

    def pulser():
        for _ in range(3):
            yield env.timeout(10)
            sig.pulse()

    env.process(waiter())
    env.process(pulser())
    env.run()
    assert times == [10, 20, 30]
    assert sig.pulse_count == 3


def test_signal_wait_after_pulse_sees_next_pulse_only():
    env = Engine()
    sig = Signal(env)

    def late_waiter():
        yield env.timeout(15)
        yield sig.wait()
        return env.now

    def pulser():
        yield env.timeout(10)
        sig.pulse()
        yield env.timeout(10)
        sig.pulse()

    proc = env.process(late_waiter())
    env.process(pulser())
    assert env.run(until=proc) == 20


# --- Gate -----------------------------------------------------------------------


def test_gate_open_passes_immediately():
    env = Engine()
    gate = Gate(env, is_open=True)

    def walker():
        yield gate.wait()
        return env.now

    assert env.run(until=env.process(walker())) == 0


def test_gate_closed_blocks_until_open():
    env = Engine()
    gate = Gate(env)

    def walker():
        yield gate.wait()
        return env.now

    def opener():
        yield env.timeout(12)
        gate.open()

    proc = env.process(walker())
    env.process(opener())
    assert env.run(until=proc) == 12
    assert gate.is_open


def test_gate_reclose_blocks_again():
    env = Engine()
    gate = Gate(env, is_open=True)
    times = []

    def walker():
        yield gate.wait()
        times.append(env.now)
        gate.close()
        yield gate.wait()
        times.append(env.now)

    def opener():
        yield env.timeout(7)
        gate.open()

    env.process(walker())
    env.process(opener())
    env.run()
    assert times == [0, 7]
