"""Unit tests for the hot-path primitives: Latch and Resource.try_acquire."""

import pytest

from repro.sim import Engine, EventAlreadyTriggered, Latch
from repro.sim.resources import Resource


# -- Latch --------------------------------------------------------------------


def test_latch_triggers_at_zero():
    env = Engine()
    latch = Latch(env, 3)
    latch.count_down()
    latch.count_down()
    assert not latch.triggered
    latch.count_down()
    assert latch.triggered


def test_latch_zero_count_is_immediate():
    env = Engine()
    assert Latch(env, 0).triggered


def test_latch_negative_count_rejected():
    env = Engine()
    with pytest.raises(ValueError):
        Latch(env, -1)


def test_latch_overdrain_rejected():
    env = Engine()
    latch = Latch(env, 1)
    latch.count_down()
    with pytest.raises(EventAlreadyTriggered):
        latch.count_down()


def test_latch_bulk_count_down():
    env = Engine()
    latch = Latch(env, 5)
    latch.count_down(4)
    assert not latch.triggered
    latch.count_down()
    assert latch.triggered
    with pytest.raises(ValueError):
        Latch(env, 2).count_down(0)


def test_latch_wakes_waiting_process():
    env = Engine()
    latch = Latch(env, 2)
    woken_at = []

    def waiter():
        yield latch
        woken_at.append(env.now)

    def worker(delay):
        yield env.timeout(delay)
        latch.count_down()

    env.process(waiter())
    env.process(worker(10))
    env.process(worker(25))
    env.run()
    assert woken_at == [25]


# -- Resource.try_acquire -----------------------------------------------------


def test_try_acquire_claims_free_units():
    env = Engine()
    res = Resource(env, capacity=2)
    assert res.try_acquire()
    assert res.try_acquire()
    assert not res.try_acquire()
    assert res.in_use == 2
    res.release()
    assert res.try_acquire()


def test_try_acquire_refuses_while_waiters_queued():
    """The fast path must never overtake a queued FIFO claimant."""
    env = Engine()
    res = Resource(env, capacity=1)
    first = res.request()
    assert first.triggered
    second = res.request()  # queued behind first
    assert not second.triggered
    res.release()  # grants second
    assert second.triggered
    # Units are taken and the queue is empty again.
    assert not res.try_acquire()
    res.release()
    assert res.try_acquire()
    res.release()


def test_try_acquire_validates_amount():
    env = Engine()
    res = Resource(env, capacity=2)
    with pytest.raises(ValueError):
        res.try_acquire(0)
    with pytest.raises(ValueError):
        res.try_acquire(3)


def test_try_acquire_matches_request_grant_instant():
    """At any instant, try_acquire succeeds iff request() would be
    granted synchronously."""
    env = Engine()
    res = Resource(env, capacity=3)
    for amount in (1, 2, 3):
        probe = res.try_acquire(amount)
        req = res.request(amount)
        if probe:
            res.release(amount)  # undo the probe before comparing
        # With the probe undone, the request is granted iff the probe
        # succeeded (both see identical availability).
        assert req.triggered == probe
        if req.triggered:
            res.release(amount)
        else:
            req.cancel()
