"""Unit tests for the hot-path primitives: Latch and Resource.try_acquire."""

import pytest

from repro.sim import Engine, EventAlreadyTriggered, Latch
from repro.sim.resources import Resource


# -- Latch --------------------------------------------------------------------


def test_latch_triggers_at_zero():
    env = Engine()
    latch = Latch(env, 3)
    latch.count_down()
    latch.count_down()
    assert not latch.triggered
    latch.count_down()
    assert latch.triggered


def test_latch_zero_count_is_immediate():
    env = Engine()
    assert Latch(env, 0).triggered


def test_latch_negative_count_rejected():
    env = Engine()
    with pytest.raises(ValueError):
        Latch(env, -1)


def test_latch_overdrain_rejected():
    env = Engine()
    latch = Latch(env, 1)
    latch.count_down()
    with pytest.raises(EventAlreadyTriggered):
        latch.count_down()


def test_latch_bulk_count_down():
    env = Engine()
    latch = Latch(env, 5)
    latch.count_down(4)
    assert not latch.triggered
    latch.count_down()
    assert latch.triggered
    with pytest.raises(ValueError):
        Latch(env, 2).count_down(0)


def test_latch_wakes_waiting_process():
    env = Engine()
    latch = Latch(env, 2)
    woken_at = []

    def waiter():
        yield latch
        woken_at.append(env.now)

    def worker(delay):
        yield env.timeout(delay)
        latch.count_down()

    env.process(waiter())
    env.process(worker(10))
    env.process(worker(25))
    env.run()
    assert woken_at == [25]


# -- Resource.try_acquire -----------------------------------------------------


def test_try_acquire_claims_free_units():
    env = Engine()
    res = Resource(env, capacity=2)
    assert res.try_acquire()
    assert res.try_acquire()
    assert not res.try_acquire()
    assert res.in_use == 2
    res.release()
    assert res.try_acquire()


def test_try_acquire_refuses_while_waiters_queued():
    """The fast path must never overtake a queued FIFO claimant."""
    env = Engine()
    res = Resource(env, capacity=1)
    first = res.request()
    assert first.triggered
    second = res.request()  # queued behind first
    assert not second.triggered
    res.release()  # grants second
    assert second.triggered
    # Units are taken and the queue is empty again.
    assert not res.try_acquire()
    res.release()
    assert res.try_acquire()
    res.release()


def test_try_acquire_validates_amount():
    env = Engine()
    res = Resource(env, capacity=2)
    with pytest.raises(ValueError):
        res.try_acquire(0)
    with pytest.raises(ValueError):
        res.try_acquire(3)


def test_try_acquire_matches_request_grant_instant():
    """At any instant, try_acquire succeeds iff request() would be
    granted synchronously."""
    env = Engine()
    res = Resource(env, capacity=3)
    for amount in (1, 2, 3):
        probe = res.try_acquire(amount)
        req = res.request(amount)
        if probe:
            res.release(amount)  # undo the probe before comparing
        # With the probe undone, the request is granted iff the probe
        # succeeded (both see identical availability).
        assert req.triggered == probe
        if req.triggered:
            res.release(amount)
        else:
            req.cancel()


# -- ReusableLatch / ReusableTimeout ------------------------------------------


from repro.sim import ReusableLatch, ReusableTimeout  # noqa: E402


def test_reusable_latch_born_processed():
    env = Engine()
    latch = ReusableLatch(env)
    assert latch.triggered
    # Construction schedules nothing: the event queue stays empty.
    assert env.peek() is None


def test_reusable_latch_rearm_cycle():
    env = Engine()
    latch = ReusableLatch(env)
    for count in (2, 1, 3):
        latch.rearm(count)
        assert not latch.triggered
        for _ in range(count):
            latch.count_down()
        assert latch.triggered
        env.run()


def test_reusable_latch_rearm_zero_is_immediate():
    env = Engine()
    latch = ReusableLatch(env).rearm(0)
    assert latch.triggered


def test_reusable_latch_rejects_rearm_in_flight():
    env = Engine()
    latch = ReusableLatch(env).rearm(2)
    with pytest.raises(EventAlreadyTriggered):
        latch.rearm(1)


def test_reusable_latch_rejects_negative_count():
    env = Engine()
    with pytest.raises(ValueError):
        ReusableLatch(env).rearm(-1)


def test_reusable_latch_wakes_waiter_each_cycle():
    env = Engine()
    latch = ReusableLatch(env)
    woken = []

    def counter():
        for _ in range(3):
            yield env.timeout(10)
            latch.count_down()

    def waiter():
        for _ in range(3):
            latch.rearm(1)
            yield latch
            woken.append(env.now)

    env.process(counter())
    env.process(waiter())
    env.run()
    assert woken == [10, 20, 30]


def test_reusable_timeout_born_processed():
    env = Engine()
    t = ReusableTimeout(env)
    assert t.triggered
    assert env.peek() is None


def test_reusable_timeout_rearm_schedules():
    env = Engine()
    t = ReusableTimeout(env)
    fired = []

    def body():
        for delay in (5, 7, 11):
            yield t.rearm(delay)
            fired.append(env.now)

    env.process(body())
    env.run()
    assert fired == [5, 12, 23]


def test_reusable_timeout_rejects_rearm_in_flight():
    env = Engine()
    t = ReusableTimeout(env)
    t.rearm(5)
    with pytest.raises(EventAlreadyTriggered):
        t.rearm(1)


def test_reusable_timeout_rejects_negative_delay():
    env = Engine()
    with pytest.raises(ValueError):
        ReusableTimeout(env).rearm(-1)
