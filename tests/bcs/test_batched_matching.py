"""Differential tests for the batched slice engine (ISSUE 7).

The vectorized batch feeds (``add_send_batch`` / ``add_recv_batch``)
must be observationally identical to sequential ``add_send`` /
``add_recv`` calls in batch order — same match sequence, same
truncation raise points, same queue state afterwards — across
exact-pattern streams (the vectorized join), wildcard-heavy streams
(the object-path fallback and run splitting), and truncation streams.
On top of the matcher, the end-to-end engine (``batched_matching=True``)
must produce byte-identical virtual time versus the object path, and
the descriptor pools must never let a recycled object alias stale
state.
"""

import random
import types

import pytest

from repro.bcs import (
    ANY_SOURCE,
    ANY_TAG,
    BcsConfig,
    HashMatcher,
    LinearMatcher,
    TruncationError,
)
from repro.bcs.descriptors import (
    DescriptorPools,
    RecvDescriptor,
    SendDescriptor,
)
from repro.bcs.matching import BATCH_MIN
from repro.bcs.threads import NodeRuntime
from repro.harness.runner import run_workload
from repro.sim import Engine
from repro.units import ms


class _Req:
    complete = False


def _send(rng, *, jobs=1, ranks=4, tags=3):
    return SendDescriptor(
        job_id=rng.randrange(jobs),
        comm_id=0,
        src_rank=rng.randrange(ranks),
        dst_rank=0,
        tag=rng.randrange(tags),
        size=rng.choice([8, 64, 4096]),
        request=_Req(),
        seq=0,
    )


def _recv(rng, *, jobs=1, ranks=4, tags=3, p_wild=0.0, p_small=0.0):
    return RecvDescriptor(
        job_id=rng.randrange(jobs),
        comm_id=0,
        rank=0,
        src_rank=ANY_SOURCE if rng.random() < p_wild else rng.randrange(ranks),
        tag=ANY_TAG if rng.random() < p_wild else rng.randrange(tags),
        capacity=100 if rng.random() < p_small else 1 << 30,
        request=_Req(),
    )


def _clone(d):
    if isinstance(d, SendDescriptor):
        return SendDescriptor(
            job_id=d.job_id, comm_id=d.comm_id, src_rank=d.src_rank,
            dst_rank=d.dst_rank, tag=d.tag, size=d.size, request=d.request,
            seq=d.seq, desc_id=d.desc_id,
        )
    return RecvDescriptor(
        job_id=d.job_id, comm_id=d.comm_id, rank=d.rank, src_rank=d.src_rank,
        tag=d.tag, capacity=d.capacity, request=d.request, desc_id=d.desc_id,
    )


def _snapshot(matcher):
    return (
        [d.desc_id for d in matcher.unexpected],
        [d.desc_id for d in matcher.posted],
        matcher.pending_counts,
    )


def _match_key(m):
    return (m.send.desc_id, m.recv.desc_id, m.total_bytes, m.matched_via)


def _feed_sequential(matcher, op, batch):
    """Reference: one-at-a-time feed; stops at a truncation raise.

    Returns (matches, raised_at) where ``matches`` is [(index, key)].
    """
    add = matcher.add_send if op == "send" else matcher.add_recv
    out = []
    for i, d in enumerate(batch):
        try:
            m = add(d)
        except TruncationError:
            return out, i
        if m is not None:
            out.append((i, _match_key(m)))
    return out, None


def _feed_batched(matcher, op, batch):
    add = matcher.add_send_batch if op == "send" else matcher.add_recv_batch
    try:
        got = add(batch)
    except TruncationError:
        return None, True
    return [(i, _match_key(m)) for i, m in got], False


def _run_stream(seed, *, p_wild, p_small, n_batches=12):
    """One randomized stream fed as batches to three matchers.

    The batched HashMatcher must produce the same (index, match-key)
    sequence, the same truncation raise point, and the same queue
    snapshot after every batch as the sequential HashMatcher and
    LinearMatcher oracles.
    """
    rng = random.Random(seed)
    batched = HashMatcher(0)
    seq_hash = HashMatcher(1)
    linear = LinearMatcher(2)
    total = 0
    for _ in range(n_batches):
        op = rng.choice(["send", "recv"])
        # Mostly >= BATCH_MIN so the vectorized path runs; a few tiny
        # batches keep the fallback threshold covered too.
        n = rng.choice([2, BATCH_MIN, BATCH_MIN + 4, 24, 40])
        total += n
        if op == "send":
            batch = [_send(rng) for _ in range(n)]
        else:
            batch = [
                _recv(rng, p_wild=p_wild, p_small=p_small) for _ in range(n)
            ]
        got_b, raised_b = _feed_batched(batched, op, batch)
        got_s, raised_at_s = _feed_sequential(
            seq_hash, op, [_clone(d) for d in batch]
        )
        got_l, raised_at_l = _feed_sequential(
            linear, op, [_clone(d) for d in batch]
        )
        assert raised_at_s == raised_at_l, seed
        if raised_b:
            assert raised_at_s is not None, seed
        else:
            assert raised_at_s is None, seed
            assert got_b == got_s == got_l, (seed, op, got_b, got_s)
        assert _snapshot(batched) == _snapshot(seq_hash) == _snapshot(linear), (
            seed,
            op,
        )
        if raised_b:
            return total, True
    return total, False


def test_batched_differential_exact_streams():
    """>= 10^4 exact-pattern messages: vectorized join == object path."""
    total = 0
    seed = 0
    while total < 10_000:
        total += _run_stream(seed, p_wild=0.0, p_small=0.0)[0]
        seed += 1


def test_batched_differential_wildcard_heavy_streams():
    """>= 10^4 messages with 35% wildcard receives: fallback + splits."""
    total = 0
    seed = 10_000
    while total < 10_000:
        total += _run_stream(seed, p_wild=0.35, p_small=0.0)[0]
        seed += 1


def test_batched_differential_truncation_streams():
    """>= 10^4 messages with undersized receive buffers: identical raise
    points and identical post-raise queue state."""
    total = 0
    raises = 0
    seed = 20_000
    while total < 10_000 or raises < 20:
        n, raised = _run_stream(seed, p_wild=0.1, p_small=0.15)
        total += n
        raises += raised
        seed += 1
    assert raises >= 20


def test_batched_multi_job_purge_keeps_wild_count():
    """purge_job must rebuild the wildcard counter: a stale count would
    make add_send_batch take the (wrong) vectorized fast path."""
    m = HashMatcher(0)
    rng = random.Random(3)
    for _ in range(6):
        m.add_recv(_recv(rng, jobs=2, p_wild=1.0))
    assert m._wild_posted == 6
    m.purge_job(0)
    assert m._wild_posted == len(m.posted)
    m.purge_job(1)
    assert m._wild_posted == 0
    # With no wildcards left the vectorized send path is valid again.
    sends = [_send(rng) for _ in range(BATCH_MIN)]
    assert m.add_send_batch(sends) == []
    assert m.pending_counts == (BATCH_MIN, 0)


# -- end-to-end virtual-time identity -----------------------------------------


def _wildcard_app(ctx, iterations=4, payload=64):
    """Rank 0 sinks ANY_SOURCE/ANY_TAG receives; others send to it."""
    for it in range(iterations):
        if ctx.rank == 0:
            for _ in range(ctx.size - 1):
                yield from ctx.comm.recv(source=ANY_SOURCE, tag=ANY_TAG)
        else:
            yield from ctx.comm.send(
                b"x" * payload, dest=0, tag=(ctx.rank + it) % 3
            )
        yield from ctx.comm.barrier()


def _nn_app(ctx, iterations=5):
    from repro.apps.synthetic import nearest_neighbor_benchmark

    yield from nearest_neighbor_benchmark(
        ctx, granularity=ms(1), iterations=iterations
    )


@pytest.mark.parametrize("app", [_wildcard_app, _nn_app])
def test_virtual_time_identity_batched_vs_object_path(app):
    results = {}
    for batched in (True, False):
        cfg = BcsConfig(init_cost=0, batched_matching=batched)
        r = run_workload(app, 8, "bcs", bcs_config=cfg)
        results[batched] = (r.runtime_ns, r.stats.get("slices"))
    assert results[True] == results[False]


# -- descriptor pools ----------------------------------------------------------


def test_pool_recycled_descriptor_gets_fresh_desc_id():
    pools = DescriptorPools()
    d1 = pools.send(0, 0, 1, 2, 3, 64, _Req())
    id1 = d1.desc_id
    pools.release_send(d1)
    d2 = pools.send(1, 1, 0, 0, 0, 8, _Req())
    assert d2 is d1  # the free list actually recycles
    assert d2.desc_id != id1
    assert (d2.job_id, d2.size, d2.payload) == (1, 8, None)


def test_pool_recycled_request_gets_fresh_event():
    env = Engine()
    pools = DescriptorPools()
    r1 = pools.request(env, "send")
    ev1 = r1.done
    r1._finish()
    assert r1.complete
    pools.release_request(r1)
    r2 = pools.request(env, "recv")
    assert r2 is r1
    assert r2.done is not ev1  # a triggered Event is one-shot
    assert not r2.complete
    assert r2.kind == "recv" and r2.payload is None and r2.error is None


def test_pool_recv_and_coll_reinitialize_every_field():
    pools = DescriptorPools()
    r = pools.recv(0, 0, 1, 2, 3, 100, _Req())
    pools.release_recv(r)
    r2 = pools.recv(1, 2, 3, ANY_SOURCE, ANY_TAG, 1 << 30, _Req())
    assert r2 is r
    assert (r2.job_id, r2.comm_id, r2.rank) == (1, 2, 3)
    assert r2.src_rank == ANY_SOURCE and r2.tag == ANY_TAG
    c = pools.coll(0, 0, "barrier", 1, 0, 7, _Req(), payload=b"p")
    pools.release_coll(c)
    c2 = pools.coll(1, 1, "bcast", 0, 2, 9, _Req())
    assert c2 is c
    assert c2.payload is None and c2.kind == "bcast" and c2.epoch == 9


# -- the posted-FIFO drain fast path -------------------------------------------


class _Stamped:
    def __init__(self, t):
        self.posted_at = t


def _drain(queue, cutoff):
    stub = types.SimpleNamespace(slice_start_time=cutoff)
    return NodeRuntime._drain_posted(stub, queue)


@pytest.mark.parametrize(
    "stamps,cutoff",
    [
        ([], 10),
        ([11, 12, 13], 10),        # nothing ready
        ([1, 2, 3], 10),           # whole queue ready
        ([1, 5, 10, 10, 11, 20], 10),  # split (inclusive boundary)
        ([10], 10),
        ([0] * 40 + [99] * 40, 10),
    ],
)
def test_drain_posted_matches_filter_reference(stamps, cutoff):
    queue = [_Stamped(t) for t in stamps]
    ref_take = [d for d in queue if d.posted_at <= cutoff]
    ref_keep = [d for d in queue if d.posted_at > cutoff]
    take = _drain(queue, cutoff)
    assert take == ref_take
    assert queue == ref_keep
