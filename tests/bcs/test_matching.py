"""Unit + property tests for the BR matcher (MPI matching semantics)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bcs import ANY_SOURCE, ANY_TAG, Matcher, TruncationError
from repro.bcs.descriptors import RecvDescriptor, SendDescriptor


class _Req:
    """Stand-in request (the matcher never touches it)."""

    complete = False


def send(src=0, dst=0, tag=0, size=8, seq=0, job=0, comm=0):
    return SendDescriptor(
        job_id=job,
        comm_id=comm,
        src_rank=src,
        dst_rank=dst,
        tag=tag,
        size=size,
        request=_Req(),
        seq=seq,
    )


def recv(rank=0, src=ANY_SOURCE, tag=ANY_TAG, cap=1 << 30, job=0, comm=0):
    return RecvDescriptor(
        job_id=job,
        comm_id=comm,
        rank=rank,
        src_rank=src,
        tag=tag,
        capacity=cap,
        request=_Req(),
    )


def test_exact_match():
    m = Matcher(0)
    assert m.add_send(send(src=1, tag=5)) is None
    match = m.add_recv(recv(src=1, tag=5))
    assert match is not None
    assert match.total_bytes == 8


def test_recv_first_then_send():
    m = Matcher(0)
    assert m.add_recv(recv(src=2, tag=9)) is None
    match = m.add_send(send(src=2, tag=9))
    assert match is not None


def test_tag_mismatch_parks_send():
    m = Matcher(0)
    m.add_recv(recv(src=1, tag=5))
    assert m.add_send(send(src=1, tag=6)) is None
    assert m.pending_counts == (1, 1)


def test_source_mismatch_no_match():
    m = Matcher(0)
    m.add_recv(recv(src=3, tag=ANY_TAG))
    assert m.add_send(send(src=1, tag=0)) is None


def test_any_source_any_tag_wildcards():
    m = Matcher(0)
    m.add_recv(recv(src=ANY_SOURCE, tag=ANY_TAG))
    assert m.add_send(send(src=7, tag=42)) is not None


def test_comm_isolation():
    m = Matcher(0)
    m.add_recv(recv(src=ANY_SOURCE, comm=1))
    assert m.add_send(send(src=0, comm=0)) is None
    assert m.add_send(send(src=0, comm=1)) is not None


def test_job_isolation():
    m = Matcher(0)
    m.add_recv(recv(src=ANY_SOURCE, job=1))
    assert m.add_send(send(src=0, job=2)) is None


def test_dst_rank_must_match_recv_rank():
    """Two ranks on the same node have separate message streams."""
    m = Matcher(0)
    m.add_recv(recv(rank=1, src=ANY_SOURCE))
    assert m.add_send(send(src=0, dst=0)) is None
    assert m.add_send(send(src=0, dst=1)) is not None


def test_non_overtaking_same_source():
    """Sends from one source match receives in posted (seq) order."""
    m = Matcher(0)
    first = send(src=1, tag=0, seq=0, size=1)
    second = send(src=1, tag=0, seq=1, size=2)
    m.add_send(first)
    m.add_send(second)
    match1 = m.add_recv(recv(src=1, tag=0))
    match2 = m.add_recv(recv(src=1, tag=0))
    assert match1.send is first
    assert match2.send is second


def test_recvs_match_in_post_order():
    m = Matcher(0)
    r1 = recv(src=ANY_SOURCE, tag=ANY_TAG)
    r2 = recv(src=ANY_SOURCE, tag=ANY_TAG)
    m.add_recv(r1)
    m.add_recv(r2)
    match = m.add_send(send(src=4))
    assert match.recv is r1


def test_tagged_recv_skips_nonmatching_unexpected():
    m = Matcher(0)
    m.add_send(send(src=1, tag=10, seq=0))
    m.add_send(send(src=1, tag=20, seq=1))
    match = m.add_recv(recv(src=1, tag=20))
    assert match.send.tag == 20
    # The tag-10 send is still parked.
    assert m.pending_counts == (1, 0)


def test_truncation_detected():
    m = Matcher(0)
    m.add_recv(recv(src=1, tag=0, cap=4))
    with pytest.raises(TruncationError):
        m.add_send(send(src=1, tag=0, size=100))


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 2)),  # (src, tag) of sends
        min_size=1,
        max_size=12,
    )
)
def test_prop_wildcard_recvs_drain_in_arrival_order(sends):
    """N wildcard receives match the first N arrived sends, in order."""
    m = Matcher(0)
    descs = [send(src=s, tag=t, seq=i) for i, (s, t) in enumerate(sends)]
    for d in descs:
        m.add_send(d)
    matched = []
    for _ in sends:
        match = m.add_recv(recv())
        matched.append(match.send)
    assert matched == descs


@settings(max_examples=100, deadline=None)
@given(st.permutations(list(range(6))))
def test_prop_tagged_matching_is_a_bijection(tag_order):
    """Each tagged recv pairs with exactly the same-tag send."""
    m = Matcher(0)
    for tag in range(6):
        m.add_send(send(src=0, tag=tag, seq=tag))
    pairs = {}
    for tag in tag_order:
        match = m.add_recv(recv(src=0, tag=tag))
        assert match is not None
        pairs[tag] = match.send.tag
    assert pairs == {t: t for t in range(6)}
    assert m.pending_counts == (0, 0)
