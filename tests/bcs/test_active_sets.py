"""Incremental active sets vs the full-scan oracle.

The Strobe Sender's per-slice questions (``any_work``, ``dem_nodes``,
``msm_nodes``, ``bbm_nodes``, ``rm_nodes``, the telemetry totals) have
two implementations: the incremental one reads lazily pruned
active-node sets, the ``*_scan`` one recomputes from every node
runtime.  These tests pin them against each other — inside real
workloads at every slice boundary, and over long random post/retire
streams (the matcher-differential oracle pattern from
``test_matching_differential.py`` applied to the slice machine).
"""

import random

import pytest

from repro.apps.sage import sage
from repro.apps.synthetic import barrier_benchmark, nearest_neighbor_benchmark
from repro.bcs import BcsConfig, BcsRuntime
from repro.bcs.descriptors import (
    CollectiveDescriptor,
    RecvDescriptor,
    SendDescriptor,
)
from repro.harness.runner import run_workload
from repro.network import Cluster, ClusterSpec
from repro.obs import Observability
from repro.storm import JobSpec
from repro.units import ms, seconds

WORKLOADS = {
    "sage": (sage, 4, dict(steps=3, step_compute=ms(40))),
    "barrier": (barrier_benchmark, 4, dict(iterations=5, granularity=ms(3))),
    "neighbor": (
        nearest_neighbor_benchmark,
        4,
        dict(iterations=4, granularity=ms(2)),
    ),
}


def _run(name, incremental, fast_forward=True, obs=None):
    app, n_ranks, params = WORKLOADS[name]
    cfg = BcsConfig(
        incremental_active_sets=incremental, idle_fast_forward=fast_forward
    )
    return run_workload(app, n_ranks, "bcs", params=params, bcs_config=cfg, obs=obs)


# --- end-to-end equivalence ---------------------------------------------------


@pytest.mark.parametrize("name", sorted(WORKLOADS))
@pytest.mark.parametrize("fast_forward", [True, False])
def test_virtual_time_and_stats_identical(name, fast_forward):
    inc = _run(name, True, fast_forward)
    scan = _run(name, False, fast_forward)
    assert inc.runtime_ns == scan.runtime_ns
    assert inc.stats == scan.stats
    assert inc.results == scan.results


@pytest.mark.parametrize("name", ["sage", "neighbor"])
def test_observability_output_identical(name):
    obs_inc = Observability()
    obs_scan = Observability()
    inc = _run(name, True, obs=obs_inc)
    scan = _run(name, False, obs=obs_scan)
    assert inc.runtime_ns == scan.runtime_ns
    assert obs_inc.registry.snapshot() == obs_scan.registry.snapshot()
    assert obs_inc.perfetto.to_dict() == obs_scan.perfetto.to_dict()


def test_hooks_with_incremental_sets():
    """on_slice_start hooks disable fast-forward and fire every slice,
    with the incremental sets answering each boundary's queries."""
    cluster = Cluster(ClusterSpec(n_nodes=2))
    runtime = BcsRuntime(
        cluster, BcsConfig(init_cost=0, incremental_active_sets=True)
    )
    calls = []
    runtime.on_slice_start.append(lambda s: calls.append(s))
    app, n_ranks, params = WORKLOADS["barrier"]
    runtime.run_job(
        JobSpec(app=app, n_ranks=2, params=params), max_time=seconds(5)
    )
    assert runtime.stats["idle_slices_skipped"] == 0
    assert calls == list(range(1, runtime.stats["slices"] + 1))


# --- per-slice differential inside real workloads -----------------------------


def _assert_queries_agree(runtime):
    assert runtime.any_work() == runtime.any_work_scan()
    assert runtime.dem_nodes() == runtime.dem_nodes_scan()
    assert runtime.msm_nodes() == runtime.msm_nodes_scan()
    # bbm/rm have no standalone scan twin: flip the mode switch so the
    # candidate enumeration runs both ways over the same state.
    inc_bbm, inc_rm = runtime.bbm_nodes(), runtime.rm_nodes()
    runtime._incremental = False
    try:
        assert inc_bbm == runtime.bbm_nodes()
        assert inc_rm == runtime.rm_nodes()
    finally:
        runtime._incremental = True


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_slicewise_differential(name):
    """Every slice boundary of a real run: incremental == scan."""
    app, n_ranks, params = WORKLOADS[name]
    cluster = Cluster(ClusterSpec(n_nodes=4))
    runtime = BcsRuntime(
        cluster, BcsConfig(init_cost=0, incremental_active_sets=True)
    )
    checked = []
    runtime.on_slice_start.append(
        lambda s: (_assert_queries_agree(runtime), checked.append(s))
    )
    runtime.run_job(
        JobSpec(app=app, n_ranks=n_ranks, params=params), max_time=seconds(30)
    )
    assert len(checked) >= 2


# --- random post/retire stream oracle ----------------------------------------


def _send(job_id, src, dst, tag=0):
    return SendDescriptor(
        job_id=job_id,
        comm_id=0,
        src_rank=src,
        dst_rank=dst,
        tag=tag,
        size=64,
        request=None,
    )


def _recv(job_id, rank, src, tag=0):
    return RecvDescriptor(
        job_id=job_id,
        comm_id=0,
        rank=rank,
        src_rank=src,
        tag=tag,
        capacity=64,
        request=None,
    )


def _coll(job_id, rank):
    return CollectiveDescriptor(
        job_id=job_id,
        comm_id=0,
        kind="barrier",
        rank=rank,
        root=0,
        epoch=1,
        request=None,
    )


def _assert_state_agrees(runtime):
    assert runtime.any_work() == runtime.any_work_scan()
    assert runtime.dem_nodes() == runtime.dem_nodes_scan()
    assert runtime.msm_nodes() == runtime.msm_nodes_scan()
    sends = recvs = colls = arrived = 0
    for nrt in runtime.node_runtimes:
        sends += len(nrt.posted_sends)
        recvs += len(nrt.posted_recvs)
        colls += len(nrt.posted_colls)
        arrived += len(nrt.arrived_sends)
    assert runtime.queue_depths() == (sends, recvs, colls, arrived)
    unexpected = posted = 0
    for nrt in runtime.node_runtimes:
        u, p = nrt.matcher.pending_counts
        unexpected += u
        posted += p
    assert runtime.matcher_pending_totals() == (unexpected, posted)


def test_random_stream_oracle():
    """10^4 random mutations through the real entry points.

    Posts go through ``post_send``/``post_recv``/``post_collective``/
    ``deliver_send`` (which register nodes in the active sets); retires
    mutate the queues directly, exactly as the DEM drain and the Buffer
    Receiver do — membership must then decay by lazy eviction, never by
    positive staleness.
    """
    rng = random.Random(20260806)
    cluster = Cluster(ClusterSpec(n_nodes=6))
    runtime = BcsRuntime(cluster, BcsConfig(incremental_active_sets=True))
    nrts = runtime.node_runtimes

    def retire(queue):
        if queue:
            queue.pop(rng.randrange(len(queue)))

    for step in range(10_000):
        nrt = nrts[rng.randrange(len(nrts))]
        job_id = rng.choice((1, 2))
        op = rng.randrange(10)
        if op == 0:
            nrt.post_send(_send(job_id, 0, 1, tag=rng.randrange(3)))
        elif op == 1:
            nrt.post_recv(_recv(job_id, 1, 0, tag=rng.randrange(3)))
        elif op == 2:
            nrt.post_collective(_coll(job_id, 0))
        elif op == 3:
            nrt.deliver_send(_send(job_id, 0, 1, tag=rng.randrange(3)))
        elif op == 4:
            retire(nrt.posted_sends)
        elif op == 5:
            retire(nrt.posted_recvs)
        elif op == 6:
            retire(nrt.posted_colls)
        elif op == 7:
            retire(nrt.arrived_sends)
        elif op == 8:
            # Matcher traffic feeds the shared totals aggregate.
            if rng.random() < 0.5:
                nrt.matcher.add_send(_send(job_id, 0, 1, tag=rng.randrange(3)))
            else:
                nrt.matcher.add_recv(_recv(job_id, 1, 0, tag=rng.randrange(3)))
        else:
            runtime.purge_job(job_id)
        if step % 7 == 0:
            _assert_state_agrees(runtime)
    _assert_state_agrees(runtime)


def test_sets_prune_to_empty():
    """After retiring everything, the lazy sets drain at query time."""
    cluster = Cluster(ClusterSpec(n_nodes=4))
    runtime = BcsRuntime(cluster, BcsConfig(incremental_active_sets=True))
    for nrt in runtime.node_runtimes:
        nrt.post_send(_send(1, 0, 1))
        nrt.deliver_send(_send(1, 0, 1))
    assert runtime.any_work()
    assert len(runtime.dem_nodes()) == len(runtime.node_runtimes)
    for nrt in runtime.node_runtimes:
        nrt.posted_sends.clear()
        nrt.arrived_sends.clear()
    assert not runtime.any_work()
    assert runtime.dem_nodes() == [] == runtime.msm_nodes()
    assert runtime._dem_set == set() == runtime._arrived_set
