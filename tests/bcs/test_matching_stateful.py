"""Stateful property test: the BR matcher vs a reference MPI matcher."""

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.bcs import ANY_SOURCE, ANY_TAG, Matcher
from repro.bcs.descriptors import RecvDescriptor, SendDescriptor


class _Req:
    complete = False


class ReferenceMatcher:
    """Straightforward O(n^2) restatement of the MPI matching rules."""

    def __init__(self):
        self.unexpected = []
        self.posted = []

    @staticmethod
    def _matches(recv, send):
        if recv["src"] not in (ANY_SOURCE, send["src"]):
            return False
        if recv["tag"] not in (ANY_TAG, send["tag"]):
            return False
        return True

    def add_send(self, send):
        for i, recv in enumerate(self.posted):
            if self._matches(recv, send):
                del self.posted[i]
                return (send["uid"], recv["uid"])
        self.unexpected.append(send)
        return None

    def add_recv(self, recv):
        for i, send in enumerate(self.unexpected):
            if self._matches(recv, send):
                del self.unexpected[i]
                return (send["uid"], recv["uid"])
        self.posted.append(recv)
        return None


class MatcherMachine(RuleBasedStateMachine):
    """Drive both matchers with the same operations; outcomes must agree."""

    def __init__(self):
        super().__init__()
        self.real = Matcher(0)
        self.ref = ReferenceMatcher()
        self.uid = 0
        self.seq = {}

    def _next_uid(self):
        self.uid += 1
        return self.uid

    @rule(src=st.integers(0, 2), tag=st.integers(0, 2))
    def post_send(self, src, tag):
        uid = self._next_uid()
        seq = self.seq.get(src, 0)
        self.seq[src] = seq + 1
        send = SendDescriptor(
            job_id=0, comm_id=0, src_rank=src, dst_rank=0, tag=tag,
            size=8, request=_Req(), seq=seq,
        )
        send.uid = uid  # type: ignore[attr-defined]
        got = self.real.add_send(send)
        want = self.ref.add_send({"src": src, "tag": tag, "uid": uid})
        got_pair = None if got is None else (got.send.uid, got.recv.uid)
        assert got_pair == want

    @rule(
        src=st.sampled_from([ANY_SOURCE, 0, 1, 2]),
        tag=st.sampled_from([ANY_TAG, 0, 1, 2]),
    )
    def post_recv(self, src, tag):
        uid = self._next_uid()
        recv = RecvDescriptor(
            job_id=0, comm_id=0, rank=0, src_rank=src, tag=tag,
            capacity=1 << 30, request=_Req(),
        )
        recv.uid = uid  # type: ignore[attr-defined]
        got = self.real.add_recv(recv)
        want = self.ref.add_recv({"src": src, "tag": tag, "uid": uid})
        got_pair = None if got is None else (got.send.uid, got.recv.uid)
        assert got_pair == want

    @invariant()
    def queues_agree(self):
        assert len(self.real.unexpected) == len(self.ref.unexpected)
        assert len(self.real.posted) == len(self.ref.posted)
        # Same identities, same order.
        assert [s.uid for s in self.real.unexpected] == [
            s["uid"] for s in self.ref.unexpected
        ]
        assert [r.uid for r in self.real.posted] == [
            r["uid"] for r in self.ref.posted
        ]


MatcherMachine.TestCase.settings = settings(
    max_examples=60, stateful_step_count=30, deadline=None
)
TestMatcherAgainstReference = MatcherMachine.TestCase
