"""Idle-slice fast-forward: wall-clock only, never virtual time.

Every test here runs the same workload with ``idle_fast_forward`` on and
off and asserts that everything observable from inside the simulation —
virtual runtimes, slice counters, telemetry output — is identical.
"""

import pytest

from repro.apps.sage import sage
from repro.apps.synthetic import barrier_benchmark
from repro.bcs import BcsConfig, BcsRuntime, HashMatcher, LinearMatcher
from repro.harness.runner import run_workload
from repro.network import Cluster, ClusterSpec
from repro.obs import Observability
from repro.storm import JobSpec
from repro.units import ms, seconds, us

WORKLOADS = {
    "sage": (sage, 4, dict(steps=3, step_compute=ms(40))),
    "barrier": (barrier_benchmark, 4, dict(iterations=5, granularity=ms(3))),
}


def _run(name, fast_forward, matcher="hash", obs=None):
    app, n_ranks, params = WORKLOADS[name]
    cfg = BcsConfig(idle_fast_forward=fast_forward, matcher=matcher)
    return run_workload(app, n_ranks, "bcs", params=params, bcs_config=cfg, obs=obs)


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_virtual_time_and_stats_identical(name):
    on = _run(name, True)
    off = _run(name, False)
    assert on.runtime_ns == off.runtime_ns
    stats_on = dict(on.stats)
    skipped = stats_on.pop("idle_slices_skipped", 0)
    stats_off = dict(off.stats)
    assert stats_off.pop("idle_slices_skipped", 0) == 0
    assert stats_on == stats_off
    # The init_cost alone guarantees a long idle stretch to skip.
    assert skipped > 0


@pytest.mark.parametrize("matcher", ["hash", "linear"])
def test_matcher_choice_preserves_virtual_time(matcher):
    ref = _run("sage", True, matcher="hash")
    got = _run("sage", True, matcher=matcher)
    assert got.runtime_ns == ref.runtime_ns


def test_observability_output_identical():
    """Metric registry and Perfetto trace don't depend on fast-forward."""
    obs_on = Observability()
    obs_off = Observability()
    on = _run("sage", True, obs=obs_on)
    off = _run("sage", False, obs=obs_off)
    assert on.runtime_ns == off.runtime_ns
    assert obs_on.registry.snapshot() == obs_off.registry.snapshot()
    assert obs_on.perfetto.to_dict() == obs_off.perfetto.to_dict()


def test_matcher_gauges_exported():
    obs = Observability()
    _run("sage", True, obs=obs)
    snap = obs.registry.snapshot()
    assert "bcs.match.unexpected" in snap
    assert "bcs.match.posted" in snap


def test_hooks_disable_fast_forward():
    """A registered slice hook forces every boundary to run for real."""
    cluster = Cluster(ClusterSpec(n_nodes=2))
    runtime = BcsRuntime(cluster, BcsConfig(init_cost=0))
    calls = []
    runtime.on_slice_start.append(lambda s: calls.append(s))

    def app(ctx):
        yield from ctx.compute(us(5100))

    runtime.run_job(JobSpec(app=app, n_ranks=2), max_time=seconds(5))
    assert runtime.stats["idle_slices_skipped"] == 0
    assert len(calls) == runtime.stats["slices"]
    assert calls == list(range(1, len(calls) + 1))


def test_fast_forward_skips_only_provably_idle_slices():
    """Slice counters agree with the non-skipping run, and the skipped
    portion is strictly idle."""
    on = _run("sage", True)
    off = _run("sage", False)
    assert on.stats["slices"] == off.stats["slices"]
    assert on.stats["active_slices"] == off.stats["active_slices"]
    assert on.stats["idle_slices_skipped"] <= (
        on.stats["slices"] - on.stats["active_slices"]
    )


def test_config_selects_matcher_class():
    cluster = Cluster(ClusterSpec(n_nodes=2))
    runtime = BcsRuntime(cluster, BcsConfig(matcher="linear"))
    assert isinstance(runtime.node_runtimes[0].matcher, LinearMatcher)
    cluster2 = Cluster(ClusterSpec(n_nodes=2))
    runtime2 = BcsRuntime(cluster2, BcsConfig(matcher="hash"))
    assert isinstance(runtime2.node_runtimes[0].matcher, HashMatcher)


def test_config_rejects_unknown_matcher():
    with pytest.raises(ValueError, match="matcher"):
        BcsConfig(matcher="btree")
