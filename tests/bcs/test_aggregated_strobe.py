"""Differential tests for the aggregated strobe + arena node state (ISSUE 10).

The aggregated strobe model replaces the Strobe Sender's
per-destination control-multicast bookkeeping with one cached
tree-latency timeout per microphase, and the arena hoists per-node
scalars (the ``mphase_done`` GAS slots, activity flags) into flat
arrays updated by batched writes.  Neither change may move a single
event: virtual time, slice counts, and every per-node GAS value must
be byte-identical to the per-destination oracle
(``aggregated_strobe=False``), across both matching engines, and the
lazy flyweight node directory must stay unmaterialized for nodes a
job never touches.
"""

import numpy as np
import pytest

from repro.apps.synthetic import barrier_benchmark, nearest_neighbor_benchmark
from repro.bcs import ANY_SOURCE, ANY_TAG, BcsConfig, BcsRuntime
from repro.bcs.node_manager import NodeArena
from repro.core.global_memory import GlobalAddressSpace
from repro.harness.runner import run_workload
from repro.network import Cluster, ClusterSpec
from repro.sim import Engine
from repro.storm import JobSpec
from repro.units import ms, seconds, us


def _wildcard_app(ctx, iterations=4):
    """Wildcard-heavy ping chain: stresses DEM/MSM under both matchers."""
    for it in range(iterations):
        if ctx.rank == 0:
            for peer in range(1, ctx.size):
                yield from ctx.comm.send(None, dest=peer, tag=it, size=256)
            for _ in range(1, ctx.size):
                yield from ctx.comm.recv(
                    source=ANY_SOURCE, tag=ANY_TAG, size=256
                )
        else:
            yield from ctx.comm.recv(source=0, tag=it, size=256)
            yield from ctx.comm.send(None, dest=0, tag=it, size=256)


# -- end-to-end virtual-time identity ------------------------------------------


@pytest.mark.parametrize(
    "app", [barrier_benchmark, nearest_neighbor_benchmark, _wildcard_app]
)
def test_virtual_time_identity_aggregated_vs_oracle(app):
    results = {}
    for aggregated in (True, False):
        cfg = BcsConfig(init_cost=0, aggregated_strobe=aggregated)
        r = run_workload(app, 8, "bcs", bcs_config=cfg)
        results[aggregated] = (r.runtime_ns, r.stats.get("slices"))
    assert results[True] == results[False]


@pytest.mark.parametrize("batched", [True, False])
@pytest.mark.parametrize("aggregated", [True, False])
def test_identity_holds_across_matching_engine_matrix(aggregated, batched):
    """The two oracle flags compose: all four stacks agree on time."""
    cfg = BcsConfig(
        init_cost=0, aggregated_strobe=aggregated, batched_matching=batched
    )
    r = run_workload(nearest_neighbor_benchmark, 8, "bcs", bcs_config=cfg)
    ref = run_workload(
        nearest_neighbor_benchmark,
        8,
        "bcs",
        bcs_config=BcsConfig(
            init_cost=0, aggregated_strobe=False, batched_matching=False
        ),
    )
    assert (r.runtime_ns, r.stats.get("slices")) == (
        ref.runtime_ns,
        ref.stats.get("slices"),
    )


def _run_runtime(aggregated, n_nodes=8, n_ranks=16):
    cluster = Cluster(ClusterSpec(n_nodes=n_nodes, lazy_nodes=aggregated))
    runtime = BcsRuntime(
        cluster, BcsConfig(init_cost=0, aggregated_strobe=aggregated)
    )
    spec = JobSpec(
        app=barrier_benchmark,
        n_ranks=n_ranks,
        name="diff",
        params=dict(granularity=us(300), iterations=6),
    )
    job = runtime.run_job(spec, max_time=seconds(60))
    return runtime, job


def test_batched_gas_increments_match_per_node_writes():
    """``mphase_done`` must be indistinguishable from the oracle's loop.

    The oracle path has every Strobe Receiver ``gas.write`` its own
    counter; the aggregated path batch-increments the arena column from
    the Strobe Sender.  Any strobe the aggregation skipped or
    double-counted shows up as a differing per-node value.
    """
    agg_rt, agg_job = _run_runtime(True)
    orc_rt, orc_job = _run_runtime(False)
    assert agg_job.runtime == orc_job.runtime
    for node_id in agg_job.nodes:
        assert agg_rt.core.gas.read(node_id, "mphase_done", default=0) == (
            orc_rt.core.gas.read(node_id, "mphase_done", default=0)
        ), f"node {node_id} slice counter diverged"


def test_lazy_nodes_stay_unmaterialized_on_a_big_cluster():
    """A 2-rank job on 2048 nodes must touch O(active), not O(cluster)."""
    cluster = Cluster(ClusterSpec(n_nodes=2048, lazy_nodes=True))
    runtime = BcsRuntime(cluster, BcsConfig(init_cost=0))
    spec = JobSpec(
        app=barrier_benchmark,
        n_ranks=2,
        name="tiny",
        params=dict(granularity=us(300), iterations=4),
    )
    job = runtime.run_job(spec, max_time=seconds(60))
    active = len(job.nodes)
    # Management node + the job's nodes, nothing else.
    assert active < 8
    assert runtime.node_runtimes.materialized_count <= active
    assert cluster.nodes.materialized_count <= active + 1
    # The arena still covers the whole machine — compute nodes plus the
    # management node — because flat arrays are cheap at any scale.
    assert len(runtime.arena.mphase_done) == 2049


# -- arena and GAS array slots -------------------------------------------------


def test_arena_activation_tracking():
    arena = NodeArena(16)
    assert arena.n_active == 0
    arena.activate([3, 1, 7])
    arena.activate([1])  # idempotent
    assert arena.n_active == 3
    assert list(arena.active_ids()) == [1, 3, 7]
    assert arena.mphase_done.dtype == np.int64


def test_gas_array_slot_reads_and_batch_increments():
    gas = GlobalAddressSpace(32)
    arr = np.zeros(32, dtype=np.int64)
    gas.register_array("ctr", arr)
    # Batched increment, per-node write, and read all hit one storage.
    gas.increment_batch([2, 5, 30], "ctr")
    gas.increment_batch(list(range(0, 32, 2)), "ctr", delta=2)
    gas.write(5, "ctr", 10)
    assert gas.read(5, "ctr") == 10
    assert gas.read(2, "ctr") == 3
    assert gas.read(30, "ctr") == 3
    assert gas.read(3, "ctr") == 0
    assert arr[2] == 3  # the array IS the storage


def test_gas_increment_batch_without_registered_array():
    """Plain dict-backed addresses accept batched increments too."""
    gas = GlobalAddressSpace(8)
    gas.write(1, "x", 5)
    gas.increment_batch([0, 1], "x")
    assert gas.read(0, "x", default=0) == 1
    assert gas.read(1, "x") == 6


# -- the cached strobe timeout -------------------------------------------------


def test_strobe_latency_matches_oracle_multicast_duration():
    """``Fabric.strobe_latency`` must equal the oracle generator's cost."""
    cluster = Cluster(ClusterSpec(n_nodes=16))
    fabric = cluster.fabric
    for n_dests in (1, 2, 7, 15):
        env = Engine()
        fabric.env = env

        def run(n=n_dests):
            yield from fabric.control_multicast(
                16, range(n), 64, n_dests=n
            )

        env.process(run())
        env.run()
        assert env.now == fabric.strobe_latency(64, n_dests)
    # Restore the cluster's own engine for hygiene.
    fabric.env = cluster.env
