"""Tests for the global communication-state inspector (§1)."""

import pytest

from repro.bcs import BcsConfig, BcsRuntime
from repro.network import Cluster, ClusterSpec
from repro.storm import JobSpec
from repro.units import MiB, seconds, us


def make():
    cluster = Cluster(ClusterSpec(n_nodes=2))
    return cluster, BcsRuntime(cluster, BcsConfig(init_cost=0))


def _snapshot_at_boundaries(runtime, collector):
    runtime.on_slice_start.append(
        lambda s: collector.append(runtime.communication_state())
    )


def test_quiescent_state_is_empty():
    cluster, runtime = make()
    snaps = []
    _snapshot_at_boundaries(runtime, snaps)

    def app(ctx):
        yield from ctx.compute(us(1600))

    runtime.run_job(JobSpec(app=app, n_ranks=2), max_time=seconds(5))
    # Pure computation: nothing in flight at any boundary.
    for snap in snaps:
        assert snap["nodes"] == {}
        assert snap["in_flight_matches"] == 0


def test_in_flight_transfer_visible_at_boundary():
    cluster, runtime = make()
    snaps = []
    _snapshot_at_boundaries(runtime, snaps)

    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(None, dest=1, size=1 * MiB)
        else:
            yield from ctx.comm.recv(source=0, size=1 * MiB)

    runtime.run_job(JobSpec(app=app, n_ranks=2), max_time=seconds(5))
    # Some boundary saw the chunked message in flight.
    assert any(s["in_flight_matches"] > 0 for s in snaps)
    assert any(s["backlog_bytes"] > 0 for s in snaps)
    # And the state drains by the end.
    assert snaps[-1]["in_flight_matches"] == 0 or snaps[-1]["backlog_bytes"] == 0


def test_snapshots_are_deterministic_across_runs():
    def run():
        cluster, runtime = make()
        snaps = []
        _snapshot_at_boundaries(runtime, snaps)

        def app(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.send(None, dest=1, size=256 * 1024)
            else:
                yield from ctx.comm.recv(source=0, size=256 * 1024)
            yield from ctx.comm.barrier()

        runtime.run_job(JobSpec(app=app, n_ranks=2), max_time=seconds(5))
        return snaps

    assert run() == run()


def test_unexpected_messages_counted():
    cluster, runtime = make()

    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(b"early", dest=1)
            yield from ctx.comm.barrier()
        else:
            yield from ctx.compute(us(1600))
            state = runtime.communication_state()
            # The arrived-but-unmatched send sits in node 0's BR queue
            # (both ranks share node 0 on a 2-rank job).
            assert state["nodes"][0]["unexpected"] == 1
            yield from ctx.comm.recv(source=0)
            yield from ctx.comm.barrier()

    job = runtime.run_job(JobSpec(app=app, n_ranks=2), max_time=seconds(5))
    assert job.complete
