"""Integration tests: collectives under the BCS runtime (paper §4.4)."""

import numpy as np
import pytest

from repro.bcs import BcsConfig, BcsRuntime
from repro.network import Cluster, ClusterSpec
from repro.storm import JobSpec
from repro.units import KiB, seconds, us


def run_app(app, n_ranks=4, n_nodes=4, config=None, **params):
    cluster = Cluster(ClusterSpec(n_nodes=n_nodes))
    runtime = BcsRuntime(cluster, config or BcsConfig(init_cost=0))
    job = runtime.run_job(
        JobSpec(app=app, n_ranks=n_ranks, params=params), max_time=seconds(30)
    )
    return job, runtime


def test_barrier_synchronizes_all_ranks():
    exit_times = {}

    def app(ctx):
        # Stagger arrivals: the barrier must hold everyone for the last.
        yield from ctx.compute(us(100) * (ctx.rank + 1))
        yield from ctx.comm.barrier()
        exit_times[ctx.rank] = ctx.now

    run_app(app)
    times = set(exit_times.values())
    # Everyone restarts at the same slice boundary.
    assert len(times) == 1


def test_barrier_waits_for_slowest():
    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.compute(us(5000))
        t0 = ctx.now
        yield from ctx.comm.barrier()
        return ctx.now - t0

    job, _ = run_app(app)
    # Non-straggler ranks waited at least as long as the straggler's lead.
    assert job.results[1] >= us(4000)


def test_successive_barriers_keep_epochs_separate():
    def app(ctx):
        for _ in range(5):
            yield from ctx.comm.barrier()
        return ctx.now

    job, runtime = run_app(app)
    assert runtime.stats["collectives_scheduled"] == 5
    assert len(set(job.results)) == 1


def test_bcast_delivers_root_payload():
    payload = np.arange(64, dtype=np.float64)

    def app(ctx):
        data = payload if ctx.rank == 2 else None
        got = yield from ctx.comm.bcast(data, root=2)
        return got

    job, _ = run_app(app)
    for r in job.results:
        assert (r == payload).all()


def test_bcast_payloads_are_independent_copies():
    def app(ctx):
        data = np.zeros(4) if ctx.rank == 0 else None
        got = yield from ctx.comm.bcast(data, root=0)
        got[0] = ctx.rank + 100.0
        yield from ctx.comm.barrier()
        return float(got[0])

    job, _ = run_app(app)
    assert job.results == [100.0, 101.0, 102.0, 103.0]


def test_reduce_sum_to_root():
    def app(ctx):
        contrib = np.full(8, float(ctx.rank + 1))
        out = yield from ctx.comm.reduce(contrib, "sum", root=1)
        return None if out is None else out.tolist()

    job, _ = run_app(app)
    assert job.results[0] is None
    assert job.results[2] is None
    assert job.results[1] == [10.0] * 8  # 1+2+3+4


def test_allreduce_everyone_gets_result():
    def app(ctx):
        out = yield from ctx.comm.allreduce(np.array([float(ctx.rank)]), "max")
        return float(out[0])

    job, _ = run_app(app)
    assert job.results == [3.0, 3.0, 3.0, 3.0]


@pytest.mark.parametrize("op,expect", [("sum", 10.0), ("prod", 24.0), ("min", 1.0), ("max", 4.0)])
def test_allreduce_all_ops(op, expect):
    def app(ctx):
        out = yield from ctx.comm.allreduce(np.float64(ctx.rank + 1), op)
        return float(out)

    job, _ = run_app(app)
    assert job.results == [expect] * 4


def test_reduce_with_softfloat_nic_path_matches_host():
    def app(ctx):
        out = yield from ctx.comm.allreduce(
            np.array([0.1 * (ctx.rank + 1), 2.5]), "sum"
        )
        return out.tolist()

    j_host, _ = run_app(app, config=BcsConfig(init_cost=0, reduce_use_softfloat=False))
    j_nic, _ = run_app(app, config=BcsConfig(init_cost=0, reduce_use_softfloat=True))
    assert j_host.results == j_nic.results  # softfloat is bit-exact


def test_reduce_root_on_nonzero_node():
    """Binomial tree rotated to a root on another node."""

    def app(ctx):
        out = yield from ctx.comm.reduce(np.float64(1.0), "sum", root=ctx.size - 1)
        return None if out is None else float(out)

    job, _ = run_app(app, n_ranks=8, n_nodes=4)
    assert job.results[-1] == 8.0
    assert all(r is None for r in job.results[:-1])


def test_collectives_and_p2p_interleave():
    def app(ctx):
        right = (ctx.rank + 1) % ctx.size
        left = (ctx.rank - 1) % ctx.size
        for i in range(3):
            s = ctx.comm.isend(np.array([ctx.rank + i]), dest=right, tag=i)
            r = ctx.comm.irecv(source=left, tag=i)
            yield from ctx.comm.waitall([s, r])
            total = yield from ctx.comm.allreduce(np.float64(r.payload[0]), "sum")
        return float(total)

    job, _ = run_app(app)
    # Final round: everyone received left-neighbour rank + 2.
    expected = sum(r + 2 for r in range(4))
    assert job.results == [float(expected)] * 4


def test_scatter_gather_alltoall_composed():
    def app(ctx):
        chunk = yield from ctx.comm.scatter(
            [np.array([i * 10.0]) for i in range(ctx.size)] if ctx.rank == 0 else None,
            root=0,
        )
        gathered = yield from ctx.comm.gather(float(chunk[0]) + 1, root=0)
        everything = yield from ctx.comm.allgather(ctx.rank**2)
        exchanged = yield from ctx.comm.alltoall(
            [f"{ctx.rank}->{j}" for j in range(ctx.size)]
        )
        return (
            float(chunk[0]),
            gathered,
            everything,
            exchanged,
        )

    job, _ = run_app(app)
    chunks = [r[0] for r in job.results]
    assert chunks == [0.0, 10.0, 20.0, 30.0]
    assert job.results[0][1] == [1.0, 11.0, 21.0, 31.0]
    assert job.results[2][1] is None
    assert job.results[3][2] == [0, 1, 4, 9]
    assert job.results[1][3] == [f"{j}->1" for j in range(4)]


def test_sub_communicator_collectives():
    """MPI groups (the paper's missing feature, implemented here)."""

    def app(ctx):
        evens = [r for r in range(ctx.size) if r % 2 == 0]
        sub = ctx.comm.split(evens)
        yield from ctx.comm.barrier()
        if sub is not None:
            total = yield from sub.allreduce(np.float64(ctx.rank), "sum")
            yield from ctx.comm.barrier()
            return (sub.rank, sub.size, float(total))
        yield from ctx.comm.barrier()
        return None

    job, _ = run_app(app, n_ranks=6, n_nodes=3)
    assert job.results[0] == (0, 3, 6.0)  # 0+2+4
    assert job.results[2] == (1, 3, 6.0)
    assert job.results[1] is None


def test_collective_on_single_node_job():
    def app(ctx):
        out = yield from ctx.comm.allreduce(np.float64(ctx.rank), "sum")
        yield from ctx.comm.barrier()
        return float(out)

    job, _ = run_app(app, n_ranks=2, n_nodes=1)
    assert job.results == [1.0, 1.0]
