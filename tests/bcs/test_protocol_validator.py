"""Protocol-invariant property tests: any workload drives the slice
machine within its structural rules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bcs import BcsConfig, BcsRuntime
from repro.bcs.validator import ProtocolValidator, Violation
from repro.network import Cluster, ClusterSpec
from repro.sim import Trace
from repro.storm import JobSpec
from repro.units import kib, ms, seconds, us

CATEGORIES = ["bcs.microphase", "fabric.unicast"]


def run_validated(app, n_ranks=6, params=None):
    trace = Trace(categories=CATEGORIES)
    cluster = Cluster(ClusterSpec(n_nodes=(n_ranks + 1) // 2), trace=trace)
    config = BcsConfig(init_cost=0)
    runtime = BcsRuntime(cluster, config)
    runtime.run_job(
        JobSpec(app=app, n_ranks=n_ranks, params=params or {}), max_time=seconds(60)
    )
    return ProtocolValidator(
        trace, config.timeslice, scheduling_min=config.scheduling_duration
    )


def test_clean_run_has_no_violations():
    def app(ctx):
        peer = ctx.rank ^ 1
        for i in range(3):
            got = yield from ctx.comm.sendrecv(
                np.array([float(i)]), dest=peer, source=peer
            )
            yield from ctx.compute(ms(1))
            _ = yield from ctx.comm.allreduce(np.float64(got[0]), "sum")

    validator = run_validated(app)
    assert validator.validate() == []
    validator.assert_clean()  # does not raise


def test_chunked_large_messages_stay_in_p2p_phase():
    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(None, dest=1, size=1024 * 1024)
        elif ctx.rank == 1:
            yield from ctx.comm.recv(source=0)
        else:
            yield from ctx.compute(ms(1))

    validator = run_validated(app)
    validator.assert_clean()
    assert len(validator.phases) >= 2  # multiple active slices (chunks)


def test_validator_detects_seeded_violation():
    """Sanity: the validator is not vacuously green."""
    from repro.sim.trace import TraceRecord

    trace = Trace(categories=CATEGORIES)
    # A slice whose phases come in the wrong order.
    trace.records.append(
        TraceRecord(
            100, "bcs.microphase", dict(slice=1, phase="MSM", start=0, duration=50)
        )
    )
    trace.records.append(
        TraceRecord(
            200, "bcs.microphase", dict(slice=1, phase="DEM", start=100, duration=50)
        )
    )
    validator = ProtocolValidator(trace, timeslice=us(500))
    kinds = {v.kind for v in validator.validate()}
    assert "phase-order" in kinds
    with pytest.raises(AssertionError):
        validator.assert_clean()


def test_validator_detects_stray_transfer():
    from repro.sim.trace import TraceRecord

    trace = Trace(categories=CATEGORIES)
    trace.records.append(
        TraceRecord(
            123,
            "fabric.unicast",
            dict(src=0, dst=1, size=10, start=100, label="p2p"),
        )
    )
    validator = ProtocolValidator(trace, timeslice=us(500))
    kinds = {v.kind for v in validator.validate()}
    assert "p2p-outside-phase" in kinds


@settings(max_examples=12, deadline=None)
@given(
    pattern=st.lists(
        st.tuples(
            st.sampled_from(["exchange", "allreduce", "barrier", "bcast", "compute"]),
            st.integers(64, 8192),  # message size
        ),
        min_size=1,
        max_size=5,
    ),
    n_ranks=st.sampled_from([2, 4, 6]),
)
def test_prop_random_workloads_respect_protocol(pattern, n_ranks):
    """Randomly composed (deadlock-free) workloads never violate the
    slice-machine invariants, and both backends produce the payloads."""

    def app(ctx):
        for i, (kind, size) in enumerate(pattern):
            if kind == "exchange":
                peer = (ctx.rank + 1) % ctx.size
                src = (ctx.rank - 1) % ctx.size
                reqs = [
                    ctx.comm.isend(None, dest=peer, tag=i, size=size),
                    ctx.comm.irecv(source=src, tag=i, size=size),
                ]
                yield from ctx.comm.waitall(reqs)
            elif kind == "allreduce":
                _ = yield from ctx.comm.allreduce(np.float64(ctx.rank), "sum")
            elif kind == "barrier":
                yield from ctx.comm.barrier()
            elif kind == "bcast":
                _ = yield from ctx.comm.bcast(
                    b"x" * (size // 64) if ctx.rank == 0 else None, root=0
                )
            else:
                yield from ctx.compute(us(700))

    validator = run_validated(app, n_ranks=n_ranks)
    validator.assert_clean()
