"""Unit tests for the MSM slice scheduler (chunking + budgets)."""

from repro.bcs import BcsConfig, SliceScheduler
from repro.bcs.descriptors import Match, RecvDescriptor, SendDescriptor
from repro.units import KiB


class _Req:
    complete = False


def make_match(src_node, dst_node, size):
    send = SendDescriptor(
        job_id=0, comm_id=0, src_rank=0, dst_rank=1, tag=0, size=size, request=_Req()
    )
    recv = RecvDescriptor(
        job_id=0, comm_id=0, rank=1, src_rank=0, tag=0, capacity=size, request=_Req()
    )
    return Match(send=send, recv=recv, src_node=src_node, dst_node=dst_node, total_bytes=size)


def make_scheduler(**cfg_kw):
    cfg = BcsConfig(**cfg_kw)
    return SliceScheduler(cfg, link_bandwidth=300e6)


def test_small_message_granted_fully():
    sched = make_scheduler()
    m = make_match(0, 1, 4 * KiB)
    sched.add_matches([m])
    granted = sched.schedule_slice()
    assert granted == [m]
    assert m.scheduled_now == 4 * KiB


def test_large_message_chunked_over_slices():
    sched = make_scheduler()
    big = 10 * sched.budget_bytes
    m = make_match(0, 1, big)
    sched.add_matches([m])
    slices = 0
    while not m.finished:
        granted = sched.schedule_slice()
        assert granted and granted[0].scheduled_now <= sched.budget_bytes
        m.bytes_done += m.scheduled_now
        sched.retire_finished()
        slices += 1
        assert slices < 50
    assert slices == 10


def test_rx_budget_shared_by_two_senders():
    sched = make_scheduler()
    m1 = make_match(0, 2, sched.budget_bytes)
    m2 = make_match(1, 2, sched.budget_bytes)
    sched.add_matches([m1, m2])
    granted = sched.schedule_slice()
    # m1 eats the whole rx budget of node 2; m2 waits.
    assert granted == [m1]
    assert m2.scheduled_now == 0


def test_tx_budget_shared_by_two_destinations():
    sched = make_scheduler()
    m1 = make_match(0, 1, sched.budget_bytes // 2)
    m2 = make_match(0, 2, sched.budget_bytes)
    sched.add_matches([m1, m2])
    sched.schedule_slice()
    assert m1.scheduled_now == sched.budget_bytes // 2
    assert m2.scheduled_now == sched.budget_bytes - m1.scheduled_now


def test_disjoint_pairs_both_fully_granted():
    sched = make_scheduler()
    m1 = make_match(0, 1, sched.budget_bytes)
    m2 = make_match(2, 3, sched.budget_bytes)
    sched.add_matches([m1, m2])
    assert len(sched.schedule_slice()) == 2


def test_in_flight_priority_over_new_matches():
    """A partially-sent message keeps its budget ahead of newcomers."""
    sched = make_scheduler()
    old = make_match(0, 1, 3 * sched.budget_bytes)
    sched.add_matches([old])
    sched.schedule_slice()
    old.bytes_done += old.scheduled_now

    new = make_match(2, 1, sched.budget_bytes)
    sched.add_matches([new])
    sched.schedule_slice()
    assert old.scheduled_now == sched.budget_bytes
    assert new.scheduled_now == 0  # rx budget of node 1 exhausted by old


def test_retire_finished_removes_done_matches():
    sched = make_scheduler()
    m = make_match(0, 1, 100)
    sched.add_matches([m])
    sched.schedule_slice()
    m.bytes_done = m.total_bytes
    assert sched.retire_finished() == [m]
    assert sched.in_flight == []
    assert sched.backlog_bytes == 0


def test_chunk_cap_limits_grants():
    sched = make_scheduler(max_chunk_bytes=1 * KiB)
    m = make_match(0, 1, 10 * KiB)
    sched.add_matches([m])
    sched.schedule_slice()
    assert m.scheduled_now == 1 * KiB


def test_zero_byte_message_granted_for_delivery_without_budget():
    """Zero-size messages get a delivery pass but consume no budget."""
    sched = make_scheduler()
    zero = make_match(0, 1, 0)
    full = make_match(0, 1, sched.budget_bytes)
    sched.add_matches([zero, full])
    granted = sched.schedule_slice()
    assert zero in granted
    assert zero.scheduled_now == 0
    # The zero-byte message did not eat into the link budget.
    assert full.scheduled_now == sched.budget_bytes


# --- property tests -----------------------------------------------------------

from hypothesis import given, settings
from hypothesis import strategies as st


@settings(max_examples=80, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(0, 5),          # src node
            st.integers(0, 5),          # dst node
            st.integers(0, 400_000),    # size
            st.booleans(),              # system class
        ),
        min_size=1,
        max_size=20,
    )
)
def test_prop_budgets_never_oversubscribed(specs):
    """No link's per-slice budget is ever exceeded, and system traffic
    never displaces user traffic."""
    sched = make_scheduler()
    matches = []
    for src, dst, size, system in specs:
        m = make_match(src, dst, size)
        m.system = system
        matches.append(m)
    sched.add_matches(matches)

    granted = sched.schedule_slice()
    tx = {}
    rx = {}
    for m in granted:
        assert 0 <= m.scheduled_now <= m.remaining
        tx[m.src_node] = tx.get(m.src_node, 0) + m.scheduled_now
        rx[m.dst_node] = rx.get(m.dst_node, 0) + m.scheduled_now
    assert all(v <= sched.budget_bytes for v in tx.values())
    assert all(v <= sched.budget_bytes for v in rx.values())

    # QoS: rerunning with the system traffic removed must grant every
    # user match at least as much as before.
    sched2 = make_scheduler()
    user_only = []
    for src, dst, size, system in specs:
        if not system:
            user_only.append(make_match(src, dst, size))
    sched2.add_matches(user_only)
    sched2.schedule_slice()
    with_system = [m.scheduled_now for m in matches if not m.system]
    without_system = [m.scheduled_now for m in user_only]
    assert with_system == without_system


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(1, 2_000_000), min_size=1, max_size=8),
    st.integers(1, 40),
)
def test_prop_chunking_conserves_bytes(sizes, max_slices):
    """Driving the scheduler to completion moves exactly every byte."""
    sched = make_scheduler()
    matches = [make_match(i % 3, 3 + i % 3, size) for i, size in enumerate(sizes)]
    sched.add_matches(matches)
    moved = 0
    for _ in range(10_000):
        granted = sched.schedule_slice()
        if not granted:
            break
        for m in granted:
            m.bytes_done += m.scheduled_now
            moved += m.scheduled_now
        sched.retire_finished()
    assert moved == sum(sizes)
    assert sched.backlog_bytes == 0
    assert all(m.finished for m in matches)
