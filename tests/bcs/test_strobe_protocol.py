"""Tests for the global synchronization protocol (SS/SR, microphases)."""

import pytest

from repro.bcs import BcsConfig, BcsRuntime, MICROPHASES
from repro.network import Cluster, ClusterSpec
from repro.storm import JobSpec
from repro.units import seconds, us


def make_runtime(n_nodes=2, **cfg):
    cluster = Cluster(ClusterSpec(n_nodes=n_nodes))
    return cluster, BcsRuntime(cluster, BcsConfig(init_cost=0, **cfg))


def test_microphase_order_constant():
    assert MICROPHASES == ("DEM", "MSM", "P2P", "BBM", "RM")


def test_slices_fire_at_fixed_period():
    cluster, runtime = make_runtime()
    boundaries = []
    runtime.on_slice_start.append(lambda s: boundaries.append(cluster.env.now))

    def app(ctx):
        yield from ctx.compute(us(2600))

    runtime.run_job(JobSpec(app=app, n_ranks=2), max_time=seconds(5))
    # Slice boundaries are exact multiples of the 500 us timeslice.
    assert boundaries[:4] == [0, us(500), us(1000), us(1500)]


def test_custom_timeslice_respected():
    cluster, runtime = make_runtime(timeslice=us(250), dem_min_duration=us(20), msm_min_duration=us(20))
    boundaries = []
    runtime.on_slice_start.append(lambda s: boundaries.append(cluster.env.now))

    def app(ctx):
        yield from ctx.compute(us(1300))

    runtime.run_job(JobSpec(app=app, n_ranks=2), max_time=seconds(5))
    assert boundaries[:3] == [0, us(250), us(500)]


def test_idle_slices_do_not_run_microphases():
    cluster, runtime = make_runtime()

    def app(ctx):
        yield from ctx.compute(us(5100))  # ~10 idle slices

    runtime.run_job(JobSpec(app=app, n_ranks=2), max_time=seconds(5))
    assert runtime.stats["slices"] >= 10
    assert runtime.stats["active_slices"] == 0


def test_scheduling_phase_takes_at_least_125us():
    """DEM+MSM respect the paper's ~125 us minimum in active slices."""
    cluster, runtime = make_runtime()
    phase_spans = []

    orig = runtime.global_schedule

    def traced():
        # global_schedule runs right after MSM: capture in-slice offset.
        phase_spans.append(cluster.env.now % us(500))
        return orig()

    runtime.global_schedule = traced

    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(None, dest=1, size=64)
        else:
            yield from ctx.comm.recv(source=0)

    runtime.run_job(JobSpec(app=app, n_ranks=2), max_time=seconds(5))
    active_offsets = [o for o in phase_spans if o > 0]
    assert active_offsets, "no active slice observed"
    assert all(o >= us(125) for o in active_offsets)


def test_strobe_receiver_counts_phases():
    cluster, runtime = make_runtime()

    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(None, dest=1, size=64)
        else:
            yield from ctx.comm.recv(source=0)

    runtime.run_job(JobSpec(app=app, n_ranks=2), max_time=seconds(5))
    total = sum(sr.completed_phases for sr in runtime.receivers.values())
    assert total > 0
    # Completion counters are mirrored into global memory for the
    # Strobe Sender's Compare-And-Write.
    for node_id, sr in runtime.receivers.items():
        if sr.completed_phases:
            assert (
                runtime.core.gas.read(node_id, "mphase_done") == sr.completed_phases
            )


def test_overrun_detection():
    """A slice whose transmission exceeds the timeslice is counted."""
    cluster, runtime = make_runtime(
        timeslice=us(200), dem_min_duration=us(20), msm_min_duration=us(20)
    )

    def app(ctx):
        # 512 KiB >> what a 200 us slice can carry; the first data slice
        # is fully busy but chunking should keep each slice near budget.
        if ctx.rank == 0:
            yield from ctx.comm.send(None, dest=1, size=512 * 1024)
        else:
            yield from ctx.comm.recv(source=0)

    runtime.run_job(JobSpec(app=app, n_ranks=2), max_time=seconds(5))
    # Chunking keeps overruns rare-to-zero; the counter must exist and
    # the job completes either way.
    assert runtime.stats["slice_overruns"] >= 0
    assert runtime.stats["chunks_moved"] >= 3


def test_stop_ends_strobe_loop():
    cluster, runtime = make_runtime()
    runtime.ss.start()
    cluster.env.run(until=us(1200))
    runtime.stop()
    before = runtime.slice_no
    cluster.env.run(until=us(5000))
    assert runtime.slice_no <= before + 1  # at most the in-flight slice


def test_ss_start_idempotent():
    cluster, runtime = make_runtime()
    runtime.ss.start()
    proc = runtime.ss._proc
    runtime.ss.start()
    assert runtime.ss._proc is proc
