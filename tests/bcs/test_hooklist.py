"""HookList: stable slice-hook registry with snapshot-firing semantics."""

from repro.bcs.runtime import HookList


def test_fire_calls_hooks_in_registration_order():
    hooks = HookList()
    calls = []
    hooks.append(lambda s: calls.append(("a", s)))
    hooks.append(lambda s: calls.append(("b", s)))
    hooks.fire(7)
    assert calls == [("a", 7), ("b", 7)]


def test_len_bool_contains_iter():
    hooks = HookList()
    assert not hooks
    assert len(hooks) == 0

    def hook(s):
        pass

    hooks.append(hook)
    assert hooks
    assert len(hooks) == 1
    assert hook in hooks
    assert list(hooks) == [hook]
    hooks.remove(hook)
    assert hook not in hooks
    assert not hooks


def test_self_deregistration_during_fire():
    """A hook removing itself still lets the rest of the snapshot run,
    and is gone on the next fire — the old list(...) semantics."""
    hooks = HookList()
    calls = []

    def once(s):
        calls.append(("once", s))
        hooks.remove(once)

    hooks.append(once)
    hooks.append(lambda s: calls.append(("tail", s)))
    hooks.fire(1)
    hooks.fire(2)
    assert calls == [("once", 1), ("tail", 1), ("tail", 2)]


def test_removing_a_later_hook_mid_fire_still_runs_it_this_round():
    """Matches the original snapshot behavior: the fire that already
    started uses the registry as it was at fire time."""
    hooks = HookList()
    calls = []

    def later(s):
        calls.append("later")

    def remover(s):
        calls.append("remover")
        if s == 1:
            hooks.remove(later)

    hooks.append(remover)
    hooks.append(later)
    hooks.fire(1)
    hooks.fire(2)
    assert calls == ["remover", "later", "remover"]


def test_append_during_fire_waits_for_next_round():
    hooks = HookList()
    calls = []

    def adder(s):
        calls.append("adder")
        if s == 1:
            hooks.append(lambda sn: calls.append("new"))

    hooks.append(adder)
    hooks.fire(1)
    assert calls == ["adder"]
    hooks.fire(2)
    assert calls == ["adder", "adder", "new"]
