"""Differential tests: HashMatcher vs LinearMatcher on randomized streams.

The hashed matcher must be observationally identical to the linear
reference oracle: same match results in the same order, same truncation
errors, same queue contents after every operation — across wildcard
receives, multiple jobs/communicators, truncation, and job purges.
"""

import random

import pytest

from repro.bcs import ANY_SOURCE, ANY_TAG, HashMatcher, LinearMatcher, TruncationError
from repro.bcs.descriptors import RecvDescriptor, SendDescriptor


class _Req:
    complete = False


def _send(rng, dst):
    return SendDescriptor(
        job_id=rng.randrange(2),
        comm_id=rng.randrange(2),
        src_rank=rng.randrange(4),
        dst_rank=dst,
        tag=rng.randrange(4),
        size=rng.choice([8, 64, 4096]),
        request=_Req(),
        seq=0,
    )


def _recv(rng, rank):
    return RecvDescriptor(
        job_id=rng.randrange(2),
        comm_id=rng.randrange(2),
        rank=rank,
        src_rank=ANY_SOURCE if rng.random() < 0.3 else rng.randrange(4),
        tag=ANY_TAG if rng.random() < 0.3 else rng.randrange(4),
        # Small capacities occasionally force truncation on 4096 B sends.
        capacity=rng.choice([1 << 30, 1 << 30, 1 << 30, 100]),
        request=_Req(),
    )


def _clone_send(d):
    return SendDescriptor(
        job_id=d.job_id,
        comm_id=d.comm_id,
        src_rank=d.src_rank,
        dst_rank=d.dst_rank,
        tag=d.tag,
        size=d.size,
        request=d.request,
        seq=d.seq,
        desc_id=d.desc_id,
    )


def _clone_recv(d):
    return RecvDescriptor(
        job_id=d.job_id,
        comm_id=d.comm_id,
        rank=d.rank,
        src_rank=d.src_rank,
        tag=d.tag,
        capacity=d.capacity,
        request=d.request,
        desc_id=d.desc_id,
    )


def _apply(matcher, op, desc):
    """Run one op; returns ('match', sid, rid), ('none',) or ('trunc',)."""
    try:
        result = (matcher.add_send if op == "send" else matcher.add_recv)(desc)
    except TruncationError:
        return ("trunc",)
    if result is None:
        return ("none",)
    return ("match", result.send.desc_id, result.recv.desc_id, result.total_bytes)


def _snapshot(matcher):
    return (
        [d.desc_id for d in matcher.unexpected],
        [d.desc_id for d in matcher.posted],
        matcher.pending_counts,
    )


def _run_stream(seed):
    rng = random.Random(seed)
    linear = LinearMatcher(0)
    hashed = HashMatcher(0)
    n_ops = rng.randrange(4, 26)
    for _ in range(n_ops):
        roll = rng.random()
        if roll < 0.03:
            job = rng.randrange(2)
            linear.purge_job(job)
            hashed.purge_job(job)
        else:
            op = "send" if roll < 0.53 else "recv"
            # dst/rank drawn from {0, 1}: descriptors addressed to rank 1
            # can never match the rank-0 ones, exercising non-matching
            # buckets alongside matching ones.
            target = rng.randrange(2)
            desc = _send(rng, target) if op == "send" else _recv(rng, target)
            clone = _clone_send(desc) if op == "send" else _clone_recv(desc)
            got_l = _apply(linear, op, desc)
            got_h = _apply(hashed, op, clone)
            assert got_l == got_h, (seed, got_l, got_h)
        assert _snapshot(linear) == _snapshot(hashed), seed


@pytest.mark.parametrize("block", range(10))
def test_differential_randomized_streams(block):
    """10^4 randomized streams produce identical observable behavior."""
    for i in range(1000):
        _run_stream(block * 1000 + i)


def test_differential_wildcard_ordering():
    """A send must take the *earliest* posted receive across all four
    pattern buckets, not the first bucket probed."""
    for order in ([0, 1, 2, 3], [3, 2, 1, 0], [1, 3, 0, 2], [2, 0, 3, 1]):
        rng = random.Random(7)
        linear = LinearMatcher(0)
        hashed = HashMatcher(0)
        patterns = [
            (1, 2),
            (1, ANY_TAG),
            (ANY_SOURCE, 2),
            (ANY_SOURCE, ANY_TAG),
        ]
        descs = []
        for idx in order:
            src, tag = patterns[idx]
            descs.append(
                RecvDescriptor(
                    job_id=0,
                    comm_id=0,
                    rank=0,
                    src_rank=src,
                    tag=tag,
                    capacity=1 << 30,
                    request=_Req(),
                )
            )
        for d in descs:
            assert linear.add_recv(_clone_recv(d)) is None
            assert hashed.add_recv(_clone_recv(d)) is None
        for _ in range(4):
            s = SendDescriptor(
                job_id=0,
                comm_id=0,
                src_rank=1,
                dst_rank=0,
                tag=2,
                size=8,
                request=_Req(),
                seq=0,
            )
            got_l = _apply(linear, "send", s)
            got_h = _apply(hashed, "send", _clone_send(s))
            assert got_l == got_h
            assert got_l[0] == "match"
        assert linear.pending_counts == hashed.pending_counts == (0, 0)


def test_differential_truncation_consumes_both_sides():
    """Truncation removes both descriptors in both implementations."""
    for first in ("send", "recv"):
        linear = LinearMatcher(0)
        hashed = HashMatcher(0)
        s = SendDescriptor(
            job_id=0, comm_id=0, src_rank=1, dst_rank=0, tag=3,
            size=4096, request=_Req(), seq=0,
        )
        r = RecvDescriptor(
            job_id=0, comm_id=0, rank=0, src_rank=1, tag=3,
            capacity=16, request=_Req(),
        )
        for m in (linear, hashed):
            if first == "send":
                assert m.add_send(_clone_send(s)) is None
                with pytest.raises(TruncationError):
                    m.add_recv(_clone_recv(r))
            else:
                assert m.add_recv(_clone_recv(r)) is None
                with pytest.raises(TruncationError):
                    m.add_send(_clone_send(s))
            assert m.pending_counts == (0, 0)
        assert _snapshot(linear) == _snapshot(hashed)
