"""Narrative tests replaying the paper's numbered scenarios.

Each test follows one of the paper's figures step by step and checks
the observable consequences in the implementation.
"""

import numpy as np
import pytest

from repro.bcs import BcsConfig, BcsRuntime
from repro.network import Cluster, ClusterSpec
from repro.storm import JobSpec
from repro.units import seconds, us

SLICE = us(500)


def make(n_nodes=2, **cfg):
    cluster = Cluster(ClusterSpec(n_nodes=n_nodes))
    return cluster, BcsRuntime(cluster, BcsConfig(init_cost=0, **cfg))


def test_fig2a_blocking_send_recv_scenario():
    """Figure 2(a): P1 MPI_Send, P2 MPI_Recv.

    1-2. descriptors posted (during slice i-1);
    3.   transmission scheduled at slice i since both are ready;
    4.   communication performed within slice i;
    5-6. both processes resume computation at a slice boundary, the
         receiver having paid between 1 and 2 slices.
    """
    timeline = {}

    def app(ctx):
        yield from ctx.comm.barrier()
        yield from ctx.compute(us(130))  # land mid-slice (step 1-2)
        t_post = ctx.now
        if ctx.rank == 0:
            yield from ctx.comm.send(np.arange(8.0), dest=1)
        else:
            got = yield from ctx.comm.recv(source=0)
            assert (got == np.arange(8.0)).all()
        timeline[ctx.rank] = (t_post, ctx.now)

    cluster, runtime = make()
    runtime.run_job(JobSpec(app=app, n_ranks=2), max_time=seconds(5))

    recv_post, recv_done = timeline[1]
    # Step 5: the receiver resumes exactly at a slice boundary...
    assert recv_done % SLICE == 0
    # ...one-to-two slices after posting (1.5 average, paper §3.1).
    assert SLICE <= recv_done - recv_post <= 2 * SLICE
    # Buffered sender resumed without waiting for transmission.
    send_post, send_done = timeline[0]
    assert send_done - send_post < us(5)


def test_fig2b_nonblocking_overlap_scenario():
    """Figure 2(b): Isend/Irecv + computation; "the communication is
    completely overlapped with the computation with no performance
    penalty"."""
    cost = {}

    def app(ctx):
        yield from ctx.comm.barrier()
        if ctx.rank == 0:
            req = ctx.comm.isend(None, dest=1, size=2048)
        else:
            req = ctx.comm.irecv(source=0, size=2048)
        yield from ctx.compute(4 * SLICE)  # steps 3-4 happen underneath
        t0 = ctx.now
        yield from ctx.comm.wait(req)  # step 5: just verifies completion
        cost[ctx.rank] = ctx.now - t0

    cluster, runtime = make(nm_compute_tax=0.0)
    runtime.run_job(JobSpec(app=app, n_ranks=2), max_time=seconds(5))
    assert cost[0] == 0
    assert cost[1] == 0


def test_fig6_descriptor_exchange_path():
    """Figure 6: the descriptor travels BS -> remote BR in the DEM, the
    match is built in the MSM, and the DH moves the data — all countable
    in the runtime statistics."""
    cluster, runtime = make()

    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(None, dest=1, size=4096)
        else:
            yield from ctx.comm.recv(source=0, size=4096)

    runtime.run_job(JobSpec(app=app, n_ranks=2), max_time=seconds(5))
    assert runtime.stats["descriptors_posted"] == 2  # steps 1-2
    assert runtime.stats["descriptors_exchanged"] == 1  # step 4 (BS->BR)
    assert runtime.stats["matches_created"] == 1  # step 6 (BR match)
    assert runtime.stats["chunks_moved"] == 1  # step 9 (DH get)
    assert runtime.stats["messages_delivered"] == 1


def test_fig7_broadcast_flag_protocol():
    """Figure 7: collective descriptors are absorbed per node, the flag
    rises when all local processes posted, the master's BR issues the
    query broadcast, and the CH multicasts once."""
    cluster, runtime = make(n_nodes=2)
    order = []

    def app(ctx):
        # Stagger the posts (steps 1-4 arrive at different times).
        yield from ctx.compute(us(40) * (ctx.rank + 1))
        got = yield from ctx.comm.bcast(
            b"payload" if ctx.rank == 0 else None, root=0
        )
        order.append((ctx.rank, ctx.now))
        return got

    job = runtime.run_job(JobSpec(app=app, n_ranks=4), max_time=seconds(5))
    assert all(r == b"payload" for r in job.results)
    # Exactly one CaW scheduling decision (step 8) for the one epoch.
    assert runtime.stats["collectives_scheduled"] == 1
    # Every rank resumed at the same boundary (steps 9-10 + restart).
    times = {t for _, t in order}
    assert len(times) == 1
    assert next(iter(times)) % SLICE == 0
    # The flag in global memory reached epoch 1 on both nodes.
    for node in (0, 1):
        assert runtime.core.gas.read(node, ("cflag", job.id, 0)) == 1


def test_table_figure13_mpi_to_bcs_mapping():
    """Figure 13: every listed MPI primitive exists on the communicator."""
    cluster, runtime = make()
    surface = {}

    def app(ctx):
        comm = ctx.comm
        for name in (
            "send", "isend", "recv", "irecv", "iprobe", "test", "wait",
            "testall", "waitall", "barrier", "reduce", "allreduce",
            "scatter", "scatterv", "gather", "gatherv", "allgather",
            "allgatherv", "alltoall", "alltoallv", "bcast",
        ):
            surface[name] = callable(getattr(comm, name, None))
        yield ctx.env.timeout(1)

    runtime.run_job(JobSpec(app=app, n_ranks=2), max_time=seconds(5))
    missing = [k for k, ok in surface.items() if not ok]
    assert not missing, f"missing MPI surface: {missing}"
