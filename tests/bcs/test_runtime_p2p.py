"""Integration tests: point-to-point semantics under the BCS runtime."""

import numpy as np
import pytest

from repro.bcs import BcsConfig, BcsRuntime
from repro.network import Cluster, ClusterSpec
from repro.storm import JobSpec
from repro.units import KiB, MiB, us


def run_app(app, n_ranks=2, n_nodes=2, config=None, **params):
    cluster = Cluster(ClusterSpec(n_nodes=n_nodes))
    runtime = BcsRuntime(cluster, config or BcsConfig(init_cost=0))
    job = runtime.run_job(JobSpec(app=app, n_ranks=n_ranks, params=params))
    return job, runtime


def test_payload_delivered_intact():
    data = np.arange(100, dtype=np.float64)

    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(data, dest=1, tag=1)
        else:
            got = yield from ctx.comm.recv(source=0, tag=1)
            return got

    job, _ = run_app(app)
    assert (job.results[1] == data).all()


def test_payload_is_a_copy_not_a_view():
    data = np.zeros(10)

    def app(ctx):
        if ctx.rank == 0:
            req = ctx.comm.isend(data, dest=1, tag=1)
            data[0] = 99.0  # mutate after post: receiver sees a snapshot...
            yield from ctx.comm.wait(req)
        else:
            got = yield from ctx.comm.recv(source=0, tag=1)
            got[1] = -1.0  # ...and our buffer never aliases the sender's
            return got

    job, _ = run_app(app)
    assert data[1] == 0.0


def test_blocking_recv_delay_is_one_to_two_slices():
    """Paper §3.1: a blocking receive costs ~1.5 time slices on average
    (1 to 2 depending on where in the slice it was posted)."""
    slice_ns = us(500)
    delays = []

    def app(ctx, offset=0):
        # Synchronize to a slice boundary first.
        yield from ctx.comm.barrier()
        yield from ctx.compute(offset)
        t0 = ctx.now
        if ctx.rank == 0:
            yield from ctx.comm.send(None, dest=1, size=64)
        else:
            yield from ctx.comm.recv(source=0)
            delays.append(ctx.now - t0)

    for offset in (us(20), us(200), us(400)):
        delays.clear()
        run_app(app, config=BcsConfig(init_cost=0, nm_compute_tax=0.0), offset=offset)
        for d in delays:
            assert slice_ns * 0.9 <= d <= slice_ns * 2.5, f"offset={offset} d={d}"


def test_buffered_send_returns_immediately():
    """Buffered coscheduling: MPI_Send completes once the payload is
    snapshotted — only the receive pays the slice delay."""
    delays = {}

    def app(ctx):
        yield from ctx.comm.barrier()
        t0 = ctx.now
        if ctx.rank == 0:
            yield from ctx.comm.send(np.arange(4.0), dest=1)
            delays["send"] = ctx.now - t0
        else:
            yield from ctx.comm.recv(source=0)
            delays["recv"] = ctx.now - t0

    run_app(app, config=BcsConfig(init_cost=0))
    assert delays["send"] < us(10)
    assert delays["recv"] >= us(450)


def test_strict_sends_block_until_delivery():
    """With buffered_sends off, a blocking send waits for the data."""
    delays = {}

    def app(ctx):
        yield from ctx.comm.barrier()
        t0 = ctx.now
        if ctx.rank == 0:
            yield from ctx.comm.send(np.arange(4.0), dest=1)
            delays["send"] = ctx.now - t0
        else:
            yield from ctx.comm.recv(source=0)

    run_app(app, config=BcsConfig(init_cost=0, buffered_sends=False))
    assert delays["send"] >= us(450)


def test_buffered_send_snapshot_protects_payload():
    """Mutating the send buffer right after MPI_Send must not corrupt
    the message (the runtime snapshotted it at post time)."""

    def app(ctx):
        if ctx.rank == 0:
            buf = np.arange(4.0)
            yield from ctx.comm.send(buf, dest=1)
            buf[:] = -1.0  # legal: the send already completed
            yield from ctx.comm.barrier()
        else:
            got = yield from ctx.comm.recv(source=0)
            yield from ctx.comm.barrier()
            return got.tolist()

    job, _ = run_app(app)
    assert job.results[1] == [0.0, 1.0, 2.0, 3.0]


def test_nonblocking_overlap_costs_nothing_when_complete():
    """Paper §3.2: if communication finished during computation, wait
    returns immediately — full overlap."""
    timeline = {}

    def app(ctx):
        if ctx.rank == 0:
            req = ctx.comm.isend(None, dest=1, size=1 * KiB)
        else:
            req = ctx.comm.irecv(source=0, size=1 * KiB)
        yield from ctx.compute(us(5000))  # 10 slices >> transfer time
        t0 = ctx.now
        yield from ctx.comm.wait(req)
        timeline[ctx.rank] = ctx.now - t0

    run_app(app, config=BcsConfig(init_cost=0, nm_compute_tax=0.0))
    # wait() returned without a slice suspension on both sides.
    assert timeline[0] < us(500)
    assert timeline[1] < us(500)


def test_large_message_chunked_across_slices():
    cfg = BcsConfig(init_cost=0)
    size = 2 * MiB  # several slice budgets at 305 MB/s

    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(None, dest=1, size=size)
        else:
            yield from ctx.comm.recv(source=0, size=size)

    job, runtime = run_app(app, config=cfg)
    budget = cfg.p2p_slice_budget_bytes(305e6)
    assert runtime.stats["chunks_moved"] >= size // budget
    assert runtime.stats["bytes_transferred"] == size


def test_any_source_any_tag():
    def app(ctx):
        if ctx.rank == 0:
            first = yield from ctx.comm.recv()
            second = yield from ctx.comm.recv()
            return sorted([first, second])
        yield from ctx.comm.send(b"x" * ctx.rank, dest=0, tag=ctx.rank)

    job, _ = run_app(app, n_ranks=3, n_nodes=2)
    assert job.results[0] == [b"x", b"xx"]


def test_message_ordering_same_pair_preserved():
    def app(ctx):
        if ctx.rank == 0:
            for i in range(5):
                yield from ctx.comm.send(np.array([i]), dest=1, tag=0)
        else:
            got = []
            for _ in range(5):
                v = yield from ctx.comm.recv(source=0, tag=0)
                got.append(int(v[0]))
            return got

    job, _ = run_app(app)
    assert job.results[1] == [0, 1, 2, 3, 4]


def test_out_of_order_tags_resolved():
    def app(ctx):
        if ctx.rank == 0:
            r_b = ctx.comm.irecv(source=1, tag=2)
            r_a = ctx.comm.irecv(source=1, tag=1)
            yield from ctx.comm.waitall([r_a, r_b])
            return (r_a.payload, r_b.payload)
        yield from ctx.comm.send(b"A", dest=0, tag=1)
        yield from ctx.comm.send(b"B", dest=0, tag=2)

    job, _ = run_app(app)
    assert job.results[0] == (b"A", b"B")


def test_same_node_ranks_communicate():
    """Two ranks sharing a node exchange through local DMA."""

    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(b"local", dest=1)
        else:
            got = yield from ctx.comm.recv(source=0)
            return got

    # Both ranks on node 0 (2 CPUs per node).
    job, _ = run_app(app, n_ranks=2, n_nodes=1)
    assert job.results[1] == b"local"


def test_many_to_one_fan_in():
    def app(ctx):
        if ctx.rank == 0:
            total = 0
            for _ in range(ctx.size - 1):
                v = yield from ctx.comm.recv()
                total += int(v[0])
            return total
        yield from ctx.comm.send(np.array([ctx.rank]), dest=0)

    job, _ = run_app(app, n_ranks=8, n_nodes=4)
    assert job.results[0] == sum(range(1, 8))


def test_iprobe_sees_unmatched_arrival():
    saw = {}

    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(b"probe-me", dest=1, tag=77)
            yield from ctx.comm.barrier()
        else:
            # Give the message time to arrive at the BR (2 slices).
            yield from ctx.compute(us(1500))
            saw["before"] = ctx.comm.iprobe(source=0, tag=77)
            saw["wrong_tag"] = ctx.comm.iprobe(source=0, tag=78)
            got = yield from ctx.comm.recv(source=0, tag=77)
            saw["after"] = ctx.comm.iprobe(source=0, tag=77)
            yield from ctx.comm.barrier()
            return got

    job, _ = run_app(app)
    assert saw == {"before": True, "wrong_tag": False, "after": False}
    assert job.results[1] == b"probe-me"


def test_init_cost_delays_start():
    cfg = BcsConfig(init_cost=us(10_000))

    def app(ctx):
        yield from ctx.comm.barrier()
        return ctx.now

    job, _ = run_app(app, config=cfg)
    assert all(r >= us(10_000) for r in job.results)


def test_runtime_stats_accumulate():
    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(None, dest=1, size=256)
        else:
            yield from ctx.comm.recv(source=0, size=256)

    _, runtime = run_app(app)
    assert runtime.stats["messages_delivered"] == 1
    assert runtime.stats["descriptors_exchanged"] == 1
    assert runtime.stats["slices"] >= 2
    assert runtime.stats["active_slices"] >= 1


def test_determinism_identical_runs():
    def app(ctx):
        for i in range(3):
            if ctx.rank == 0:
                yield from ctx.comm.send(np.array([i]), dest=1)
                yield from ctx.comm.recv(source=1)
            else:
                yield from ctx.comm.recv(source=0)
                yield from ctx.comm.send(np.array([i * 2]), dest=0)
        return ctx.now

    j1, _ = run_app(app)
    j2, _ = run_app(app)
    assert j1.results == j2.results
    assert j1.runtime == j2.runtime
