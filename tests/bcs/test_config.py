"""Unit tests for BcsConfig validation and derived quantities."""

import pytest

from repro.bcs import BcsConfig
from repro.units import us


def test_defaults_match_paper():
    cfg = BcsConfig()
    assert cfg.timeslice == us(500)
    # DEM + MSM = the paper's ~125 us scheduling phase.
    assert cfg.scheduling_duration == us(125)


def test_transmission_budget():
    cfg = BcsConfig()
    assert cfg.transmission_budget() == cfg.timeslice - cfg.scheduling_duration


def test_p2p_budget_scales_with_bandwidth():
    cfg = BcsConfig()
    low = cfg.p2p_slice_budget_bytes(100e6)
    high = cfg.p2p_slice_budget_bytes(300e6)
    assert high > low > 0


def test_p2p_budget_honours_chunk_cap():
    cfg = BcsConfig(max_chunk_bytes=1024)
    assert cfg.p2p_slice_budget_bytes(300e6) == 1024


def test_invalid_configs_rejected():
    with pytest.raises(ValueError):
        BcsConfig(timeslice=0)
    with pytest.raises(ValueError):
        BcsConfig(timeslice=us(100), dem_min_duration=us(65), msm_min_duration=us(60))
    with pytest.raises(ValueError):
        BcsConfig(p2p_budget_fraction=0.0)
    with pytest.raises(ValueError):
        BcsConfig(nm_compute_tax=-0.1)


def test_with_replaces_fields():
    cfg = BcsConfig().with_(timeslice=us(250), init_cost=0)
    assert cfg.timeslice == us(250)
    assert cfg.init_cost == 0
    # Original untouched (frozen dataclass semantics).
    assert BcsConfig().timeslice == us(500)
