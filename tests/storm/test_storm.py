"""Tests for the STORM substrate: jobs, launcher, heartbeats, MM."""

import pytest

from repro.bcs import BcsConfig, BcsRuntime
from repro.core import BcsCore
from repro.network import Cluster, ClusterSpec
from repro.storm import (
    HeartbeatService,
    JobSpec,
    MachineManager,
    StormLauncher,
    block_placement,
)
from repro.storm.job import Job
from repro.units import mib, ms, seconds, us


# --- JobSpec / Job -----------------------------------------------------------


def _noop(ctx):
    yield ctx.env.timeout(1)


def test_jobspec_validation():
    with pytest.raises(ValueError):
        JobSpec(app=_noop, n_ranks=0)


def test_block_placement_fills_nodes():
    assert block_placement(6, 4, 2) == [0, 0, 1, 1, 2, 2]
    assert block_placement(3, 4, 2) == [0, 0, 1]


def test_block_placement_capacity_check():
    with pytest.raises(ValueError):
        block_placement(10, 4, 2)


def test_job_tracks_node_ranks():
    from repro.sim import Engine

    job = Job(Engine(), JobSpec(app=_noop, n_ranks=4), [0, 0, 1, 1])
    assert job.nodes == [0, 1]
    assert job.node_ranks == {0: [0, 1], 1: [2, 3]}
    assert job.root_node == 0


def test_job_completion_event():
    from repro.sim import Engine

    env = Engine()
    job = Job(env, JobSpec(app=_noop, n_ranks=2), [0, 1])
    job.rank_finished(0, "a")
    assert not job.complete
    job.rank_finished(1, "b")
    assert job.complete
    assert job.results == ["a", "b"]
    with pytest.raises(RuntimeError):
        job.rank_finished(0, "c")


def test_job_placement_length_checked():
    from repro.sim import Engine

    with pytest.raises(ValueError):
        Job(Engine(), JobSpec(app=_noop, n_ranks=3), [0, 1])


# --- Launcher ------------------------------------------------------------------


def test_launcher_distributes_binary_and_reports():
    cluster = Cluster(ClusterSpec(n_nodes=8))
    core = BcsCore(cluster)
    launcher = StormLauncher(core, cluster.management_node.id)

    def body():
        report = yield from launcher.launch_binary(list(range(8)), mib(8))
        return report

    report = cluster.run(until=cluster.env.process(body()))
    assert report.nodes == 8
    assert report.transfer_ns > 0
    assert report.total_ns >= report.transfer_ns + report.spawn_ns
    # The binary landed in every node's global memory.
    assert core.gas.gather(range(8), "storm_binary") == [mib(8)] * 8


def test_launch_scales_sublinearly_with_nodes():
    """Hardware multicast: 4x the nodes must NOT cost 4x the time."""

    def launch_time(n):
        cluster = Cluster(ClusterSpec(n_nodes=n))
        core = BcsCore(cluster)
        launcher = StormLauncher(core, cluster.management_node.id)

        def body():
            report = yield from launcher.launch_binary(list(range(n)), mib(8))
            return report.total_ns

        return cluster.run(until=cluster.env.process(body()))

    t8, t32 = launch_time(8), launch_time(32)
    assert t32 < 2 * t8


# --- Heartbeats -------------------------------------------------------------------


def test_heartbeat_tracks_liveness():
    cluster = Cluster(ClusterSpec(n_nodes=4))
    core = BcsCore(cluster)
    hb = HeartbeatService(
        core, cluster.management_node.id, [0, 1, 2, 3], period=ms(5)
    )
    hb.start(rounds=10)
    cluster.run()
    assert hb.stats.sent == 10
    assert all(hb.stats.responses[n] == 10 for n in range(4))
    assert all(hb.stats.missed[n] == 0 for n in range(4))


def test_heartbeat_detects_failed_node():
    cluster = Cluster(ClusterSpec(n_nodes=4))
    core = BcsCore(cluster)
    hb = HeartbeatService(
        core, cluster.management_node.id, [0, 1, 2, 3], period=ms(5)
    )

    def killer():
        yield cluster.env.timeout(ms(12))
        hb.fail(2)

    cluster.env.process(killer())
    hb.start(rounds=10)
    cluster.run()
    assert hb.stats.missed[2] > 0
    assert hb.stats.missed[0] == 0
    assert hb.alive() == [0, 1, 3]


# --- MachineManager end-to-end --------------------------------------------------------


def test_mm_submit_runs_job_through_launcher():
    cluster = Cluster(ClusterSpec(n_nodes=4))
    runtime = BcsRuntime(cluster, BcsConfig(init_cost=0))
    mm = MachineManager(runtime)

    def app(ctx):
        total = yield from ctx.comm.allreduce(float(ctx.rank), "sum")
        return float(total)

    job = mm.submit(JobSpec(app=app, n_ranks=4, name="mmjob"))
    cluster.env.run(until=job.done)
    assert job.results == [6.0] * 4
    assert len(mm.launch_reports) == 1
    assert mm.launch_reports[0].nodes == 2  # 4 ranks on 2 dual-CPU nodes
