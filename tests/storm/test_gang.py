"""Gang scheduling (MPL > 1): the paper's remedy for blocking delays."""

import pytest

from repro.bcs import BcsConfig, BcsRuntime
from repro.network import Cluster, ClusterSpec
from repro.storm import GangScheduler, JobSpec
from repro.units import seconds, us


def pingpong_app(ctx, iters=10, grain=us(100)):
    """Fine-grained blocking ping-pong: spends most slices blocked."""
    peer = ctx.rank ^ 1
    for _ in range(iters):
        yield from ctx.compute(grain)
        if ctx.rank % 2 == 0:
            yield from ctx.comm.send(None, dest=peer, size=512)
            yield from ctx.comm.recv(source=peer, size=512)
        else:
            yield from ctx.comm.recv(source=peer, size=512)
            yield from ctx.comm.send(None, dest=peer, size=512)


def run_jobs(n_jobs, gang):
    cluster = Cluster(ClusterSpec(n_nodes=2))
    runtime = BcsRuntime(cluster, BcsConfig(init_cost=0))
    scheduler = GangScheduler(runtime) if gang else None
    jobs = []
    for _ in range(n_jobs):
        job = runtime.launch(JobSpec(app=pingpong_app, n_ranks=4, name="pp"))
        if scheduler is not None:
            scheduler.add_job(job)
        jobs.append(job)
    cluster.env.run(until=cluster.env.all_of([j.done for j in jobs]))
    return cluster.env.now, scheduler


def test_single_job_unaffected_by_gang_wrapper():
    t_plain, _ = run_jobs(1, gang=False)
    t_gang, _ = run_jobs(1, gang=True)
    # One job under gang control owns every slice: same order of cost.
    assert t_gang <= t_plain * 1.6


def test_two_jobs_overlap_blocked_slices():
    """Two blocking-heavy jobs coscheduled finish in much less than 2x
    a single job: one computes while the other blocks (paper §5.4)."""
    t_one, _ = run_jobs(1, gang=False)
    t_two, _ = run_jobs(2, gang=True)
    assert t_two < 1.8 * t_one


def test_round_robin_alternates_jobs():
    _, scheduler = run_jobs(2, gang=True)
    log = [j for j in scheduler.schedule_log if j >= 0]
    # Both jobs got slices, and the schedule alternates while both live.
    assert len(set(log)) == 2
    alternations = sum(1 for a, b in zip(log, log[1:]) if a != b)
    assert alternations >= len(log) // 3


def test_gates_follow_active_job():
    cluster = Cluster(ClusterSpec(n_nodes=2))
    runtime = BcsRuntime(cluster, BcsConfig(init_cost=0))
    scheduler = GangScheduler(runtime)
    j1 = runtime.launch(JobSpec(app=pingpong_app, n_ranks=4, name="a"))
    scheduler.add_job(j1)
    j2 = runtime.launch(JobSpec(app=pingpong_app, n_ranks=4, name="b"))
    scheduler.add_job(j2)

    states = []

    def snoop(slice_no):
        g1 = scheduler.gates[(j1.id, 0)].is_open
        g2 = scheduler.gates[(j2.id, 0)].is_open
        states.append((g1, g2))

    runtime.on_slice_start.append(snoop)
    cluster.env.run(until=cluster.env.all_of([j1.done, j2.done]))
    # While both jobs were alive, exactly one gate was open at a time.
    both_alive = [s for s in states if s != (True, True)]
    assert both_alive
    assert all(g1 != g2 for g1, g2 in both_alive)
