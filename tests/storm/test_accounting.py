"""Tests for STORM per-job accounting."""

import numpy as np
import pytest

from repro.bcs import BcsConfig, BcsRuntime
from repro.network import Cluster, ClusterSpec
from repro.storm import JobSpec, collect_usage, usage_report
from repro.units import kib, ms, seconds, us


def run_job(app, n_ranks=4, **params):
    cluster = Cluster(ClusterSpec(n_nodes=n_ranks // 2))
    runtime = BcsRuntime(cluster, BcsConfig(init_cost=0))
    job = runtime.run_job(
        JobSpec(app=app, n_ranks=n_ranks, name="acct", params=params),
        max_time=seconds(30),
    )
    return runtime, job


def _app(ctx):
    yield from ctx.compute(ms(4))
    if ctx.rank == 0:
        yield from ctx.comm.send(np.zeros(512), dest=1, tag=0)
    elif ctx.rank == 1:
        yield from ctx.comm.recv(source=0, tag=0)
    yield from ctx.comm.barrier()


def test_cpu_time_accounted_with_tax():
    runtime, job = run_job(_app)
    usage = collect_usage(runtime)[0]
    expected = 4 * ms(4)  # four ranks x 4 ms
    assert usage.cpu_ns >= expected  # includes the NM tax
    assert usage.cpu_ns < expected * 1.1


def test_messages_bytes_collectives_counted():
    runtime, job = run_job(_app)
    usage = collect_usage(runtime)[0]
    assert usage.messages == 1
    assert usage.bytes_sent == 512 * 8
    assert usage.collectives == 4  # barrier posted by each rank


def test_blocked_time_positive_for_blocking_calls():
    runtime, job = run_job(_app)
    usage = collect_usage(runtime)[0]
    # The receive + barrier suspensions are visible.
    assert usage.blocked_ns > us(500)
    assert usage.wall_ns >= usage.blocked_ns / job.n_ranks


def test_cpu_efficiency_bounds():
    runtime, job = run_job(_app)
    usage = collect_usage(runtime)[0]
    assert 0.0 < usage.cpu_efficiency < 1.0


def test_usage_report_renders():
    runtime, job = run_job(_app)
    text = usage_report(runtime)
    assert "acct" in text
    assert "eff" in text
    assert "msgs" in text


def test_two_jobs_accounted_separately():
    cluster = Cluster(ClusterSpec(n_nodes=2))
    runtime = BcsRuntime(cluster, BcsConfig(init_cost=0))

    def small(ctx):
        yield from ctx.compute(ms(1))

    def big(ctx):
        yield from ctx.compute(ms(8))

    j1 = runtime.launch(JobSpec(app=small, n_ranks=2, name="small"))
    j2 = runtime.launch(JobSpec(app=big, n_ranks=2, name="big"))
    cluster.env.run(until=cluster.env.all_of([j1.done, j2.done]))
    usages = {u.name: u for u in collect_usage(runtime)}
    assert usages["big"].cpu_ns > usages["small"].cpu_ns * 4
