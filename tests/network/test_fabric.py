"""Unit and behaviour tests for the fabric (contention, timing, multicast)."""

import pytest

from repro.network import Cluster, ClusterSpec, qsnet
from repro.units import KiB, MiB, bw_time, us


def make_cluster(n=4, **kw):
    return Cluster(ClusterSpec(n_nodes=n, **kw))


def test_unicast_completes_and_accumulates_bytes():
    cl = make_cluster()
    done = []

    def body():
        yield from cl.fabric.unicast(0, 1, 4 * KiB)
        done.append(cl.env.now)

    cl.env.process(body())
    cl.run()
    assert len(done) == 1
    assert done[0] > 0
    assert cl.fabric.bytes_moved == 4 * KiB


def test_unicast_time_has_latency_and_serialization():
    cl = make_cluster()
    model = cl.spec.model
    size = 1 * MiB

    def body():
        yield from cl.fabric.unicast(0, 1, size)
        return cl.env.now

    t = cl.run(until=cl.env.process(body()))
    expected_min = bw_time(size, model.link_bandwidth)
    assert t >= expected_min
    # But not wildly more than serialization + latency + startup.
    assert t <= expected_min + model.latency(6) + model.dma_startup + us(50)


def test_larger_messages_take_longer():
    def time_for(size):
        cl = make_cluster()

        def body():
            yield from cl.fabric.unicast(0, 1, size)
            return cl.env.now

        return cl.run(until=cl.env.process(body()))

    assert time_for(1 * MiB) > time_for(64 * KiB) > time_for(1 * KiB)


def test_farther_nodes_pay_more_latency():
    def time_for(dst):
        cl = make_cluster(n=16)

        def body():
            yield from cl.fabric.unicast(0, dst, 0)
            return cl.env.now

        return cl.run(until=cl.env.process(body()))

    # Node 1 is a sibling (2 hops); node 15 crosses the root (4 hops).
    assert time_for(15) > time_for(1)


def test_loopback_skips_network():
    def time_for(src, dst):
        cl = make_cluster()

        def body():
            yield from cl.fabric.unicast(src, dst, 1 * KiB)
            return cl.env.now

        return cl.run(until=cl.env.process(body()))

    # Local DMA avoids headers and wire latency entirely.
    assert time_for(2, 2) < time_for(0, 1)


def test_tx_contention_serializes_senders():
    """Two transfers from the same source share the tx link."""
    cl = make_cluster()
    size = 1 * MiB
    ends = []

    def one(dst):
        yield from cl.fabric.unicast(0, dst, size)
        ends.append(cl.env.now)

    cl.env.process(one(1))
    cl.env.process(one(2))
    cl.run()
    single = bw_time(size, cl.spec.model.link_bandwidth)
    # The second transfer cannot finish before ~2x the serialization time.
    assert max(ends) >= 2 * single


def test_disjoint_transfers_run_concurrently():
    cl = make_cluster()
    size = 1 * MiB
    ends = []

    def one(src, dst):
        yield from cl.fabric.unicast(src, dst, size)
        ends.append(cl.env.now)

    cl.env.process(one(0, 1))
    cl.env.process(one(2, 3))
    cl.run()
    single = bw_time(size, cl.spec.model.link_bandwidth)
    # Both finish in about one serialization time: full overlap.
    assert max(ends) < 2 * single


def test_rx_contention_serializes_receivers():
    cl = make_cluster()
    size = 1 * MiB
    ends = []

    def one(src):
        yield from cl.fabric.unicast(src, 3, size)
        ends.append(cl.env.now)

    cl.env.process(one(0))
    cl.env.process(one(1))
    cl.run()
    single = bw_time(size, cl.spec.model.link_bandwidth)
    assert max(ends) >= 2 * single


def test_multicast_reaches_all_and_counts_bytes():
    cl = make_cluster(n=8)

    def body():
        yield from cl.fabric.multicast(0, range(1, 8), 4 * KiB)
        return cl.env.now

    t = cl.run(until=cl.env.process(body()))
    assert t > 0
    assert cl.fabric.bytes_moved == 7 * 4 * KiB


def test_multicast_excludes_self_delivery_cost():
    cl = make_cluster(n=4)

    def body():
        # Destination set includes the source; should not deadlock.
        yield from cl.fabric.multicast(0, [0, 1, 2], 1 * KiB)
        return cl.env.now

    assert cl.run(until=cl.env.process(body())) > 0


def test_empty_multicast_is_noop():
    cl = make_cluster()

    def body():
        yield from cl.fabric.multicast(0, [], 1 * KiB)
        return cl.env.now

    assert cl.run(until=cl.env.process(body())) == 0


def test_concurrent_multicasts_do_not_deadlock():
    cl = make_cluster(n=8)
    done = []

    def caster(src):
        yield from cl.fabric.multicast(src, range(8), 64 * KiB)
        done.append(src)

    for src in range(8):
        cl.env.process(caster(src))
    cl.run()
    assert sorted(done) == list(range(8))


def test_crossing_unicasts_do_not_deadlock():
    cl = make_cluster()
    done = []

    def one(src, dst):
        yield from cl.fabric.unicast(src, dst, 1 * MiB)
        done.append((src, dst))

    cl.env.process(one(0, 1))
    cl.env.process(one(1, 0))
    cl.env.process(one(2, 3))
    cl.env.process(one(3, 2))
    cl.run()
    assert len(done) == 4


def test_negative_size_rejected():
    cl = make_cluster()
    proc = cl.env.process(cl.fabric.unicast(0, 1, -1))
    with pytest.raises(ValueError):
        cl.run(until=proc)


def test_conditional_costs_cw_latency():
    cl = make_cluster(n=16)

    def body():
        yield from cl.fabric.conditional(0)
        return cl.env.now

    t = cl.run(until=cl.env.process(body()))
    assert t == cl.spec.model.cw_latency(cl.fabric.n_nodes)


def test_fabric_builds_model_topology():
    from repro.network import Torus3D, by_name

    cl = Cluster(ClusterSpec(n_nodes=8, model=by_name("bluegene_l_torus")))
    assert isinstance(cl.fabric.tree, Torus3D)
    done = []

    def body():
        yield from cl.fabric.unicast(0, 5, 4 * KiB)
        done.append(cl.env.now)

    cl.env.process(body())
    cl.run()
    assert done and done[0] > 0
