"""Unit tests for the network models (Table 1 parametrization)."""

import pytest

from repro.network import MODELS, by_name, qsnet
from repro.network.model import MB
from repro.units import us


def test_registry_contains_all_table1_rows():
    assert set(MODELS) == {
        "qsnet",
        "gige",
        "myrinet",
        "infiniband",
        "bluegene_l",
        "bluegene_l_torus",
    }


def test_by_name_roundtrip_and_error():
    for name in MODELS:
        assert by_name(name).name == name
    with pytest.raises(KeyError):
        by_name("token-ring")


def test_qsnet_cw_latency_under_10us():
    model = qsnet()
    # Table 1: QsNet Compare-And-Write < 10 us up to large node counts.
    for n in (2, 8, 32, 128):
        assert model.cw_latency(n) < us(10)


def test_bluegene_cw_latency_under_2us():
    model = by_name("bluegene_l")
    for n in (2, 64, 1024):
        assert model.cw_latency(n) < us(2)


def test_emulated_networks_scale_log_n():
    gige = by_name("gige")
    # 46 log2(n) microseconds per Table 1.
    assert gige.cw_latency(2) == us(46)
    assert gige.cw_latency(16) == 4 * us(46)
    myri = by_name("myrinet")
    assert myri.cw_latency(16) == 4 * us(20)


def test_latency_monotone_in_hops():
    model = qsnet()
    lats = [model.latency(h) for h in range(7)]
    assert lats == sorted(lats)
    assert lats[0] == model.base_latency


def test_mcast_latency_grows_with_node_count():
    model = qsnet()
    assert model.mcast_latency(4) <= model.mcast_latency(64)


def test_software_multicast_pays_log_levels():
    gige = by_name("gige")
    # Each doubling adds a store-and-forward level.
    assert gige.mcast_latency(16) > gige.mcast_latency(2)


def test_qsnet_bandwidth_matches_table1_magnitude():
    model = qsnet()
    # Table 1: Xfer-And-Signal > 150n MB/s => per-node mcast bw > 150 MB/s.
    assert model.mcast_bandwidth >= 150 * MB
    assert model.link_bandwidth >= 300 * MB


def test_cw_latency_single_node_is_base():
    model = qsnet()
    assert model.cw_latency(1) == model.cw_base_latency


def test_bluegene_l_torus_routes_over_torus():
    model = by_name("bluegene_l_torus")
    assert model.topology == "torus3d"
    # The other Table 1 rows keep the fat tree.
    for name in ("qsnet", "gige", "myrinet", "infiniband", "bluegene_l"):
        assert by_name(name).topology == "fattree"
