"""Unit tests for the fat-tree topology."""

import pytest

from repro.network import FatTree


def test_same_node_zero_hops():
    tree = FatTree(16)
    assert tree.hops(3, 3) == 0


def test_siblings_two_hops():
    tree = FatTree(16, radix=4)
    # Nodes 0..3 share a level-1 switch.
    assert tree.hops(0, 1) == 2
    assert tree.hops(2, 3) == 2


def test_cross_subtree_hops():
    tree = FatTree(16, radix=4)
    # 0 and 4 meet at level 2.
    assert tree.hops(0, 4) == 4
    assert tree.hops(0, 15) == 4


def test_three_levels():
    tree = FatTree(64, radix=4)
    assert tree.levels == 3
    assert tree.hops(0, 63) == 6
    assert tree.max_hops() == 6


def test_hops_symmetric():
    tree = FatTree(32, radix=4)
    for a, b in [(0, 31), (5, 9), (14, 2)]:
        assert tree.hops(a, b) == tree.hops(b, a)


def test_single_node_tree():
    tree = FatTree(1)
    assert tree.levels == 1
    assert tree.hops(0, 0) == 0


def test_out_of_range_rejected():
    tree = FatTree(8)
    with pytest.raises(IndexError):
        tree.hops(0, 8)
    with pytest.raises(IndexError):
        tree.hops(-1, 0)


def test_non_power_sizes():
    tree = FatTree(33, radix=4)
    assert tree.levels == 3
    assert tree.hops(0, 32) == 6


def test_multicast_hops_grow_with_dest_count():
    tree = FatTree(64, radix=4)
    assert tree.multicast_hops(2) <= tree.multicast_hops(64)
    assert tree.multicast_hops(1) == 2


def test_invalid_construction():
    with pytest.raises(ValueError):
        FatTree(0)
    with pytest.raises(ValueError):
        FatTree(4, radix=1)
