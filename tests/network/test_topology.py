"""Unit tests for the fat-tree topology."""

import pytest

from repro.network import FatTree


def test_same_node_zero_hops():
    tree = FatTree(16)
    assert tree.hops(3, 3) == 0


def test_siblings_two_hops():
    tree = FatTree(16, radix=4)
    # Nodes 0..3 share a level-1 switch.
    assert tree.hops(0, 1) == 2
    assert tree.hops(2, 3) == 2


def test_cross_subtree_hops():
    tree = FatTree(16, radix=4)
    # 0 and 4 meet at level 2.
    assert tree.hops(0, 4) == 4
    assert tree.hops(0, 15) == 4


def test_three_levels():
    tree = FatTree(64, radix=4)
    assert tree.levels == 3
    assert tree.hops(0, 63) == 6
    assert tree.max_hops() == 6


def test_hops_symmetric():
    tree = FatTree(32, radix=4)
    for a, b in [(0, 31), (5, 9), (14, 2)]:
        assert tree.hops(a, b) == tree.hops(b, a)


def test_single_node_tree():
    tree = FatTree(1)
    assert tree.levels == 1
    assert tree.hops(0, 0) == 0


def test_out_of_range_rejected():
    tree = FatTree(8)
    with pytest.raises(IndexError):
        tree.hops(0, 8)
    with pytest.raises(IndexError):
        tree.hops(-1, 0)


def test_non_power_sizes():
    tree = FatTree(33, radix=4)
    assert tree.levels == 3
    assert tree.hops(0, 32) == 6


def test_multicast_hops_grow_with_dest_count():
    tree = FatTree(64, radix=4)
    assert tree.multicast_hops(2) <= tree.multicast_hops(64)
    assert tree.multicast_hops(1) == 2


def test_invalid_construction():
    with pytest.raises(ValueError):
        FatTree(0)
    with pytest.raises(ValueError):
        FatTree(4, radix=1)


# -- 3D torus (BlueGene/L style) ----------------------------------------------


from repro.network import Torus3D, build_topology  # noqa: E402
from repro.network.topology import _near_cubic_dims  # noqa: E402


def test_torus_same_node_zero_hops():
    torus = Torus3D(64)
    assert torus.hops(5, 5) == 0


def test_torus_axis_neighbors():
    torus = Torus3D(27, dims=(3, 3, 3))
    # Row-major: node 0 = (0,0,0); z-neighbour 1, y-neighbour 3, x-neighbour 9.
    assert torus.hops(0, 1) == 1
    assert torus.hops(0, 3) == 1
    assert torus.hops(0, 9) == 1


def test_torus_wraparound():
    torus = Torus3D(64, dims=(4, 4, 4))
    # (0,0,0) to (3,0,0): one hop backwards around the x ring, not 3.
    assert torus.hops(0, 48) == 1
    # (0,0,0) to (2,2,2): distance 2 on each axis (no shortcut).
    assert torus.hops(0, 42) == 6
    assert torus.max_hops() == 6


def test_torus_symmetric():
    torus = Torus3D(100)
    for a, b in [(0, 99), (17, 45), (3, 76)]:
        assert torus.hops(a, b) == torus.hops(b, a)
        assert 0 < torus.hops(a, b) <= torus.max_hops()


def test_torus_1025_dims_cover_management_node():
    # 1024 compute nodes + the management node.
    torus = Torus3D(1025)
    dx, dy, dz = torus.dims
    assert dx * dy * dz >= 1025
    assert max(torus.dims) - min(torus.dims) <= 2  # near-cubic
    assert torus.hops(0, 1024) <= torus.max_hops()


def test_torus_near_cubic_dims():
    assert _near_cubic_dims(1) == (1, 1, 1)
    assert _near_cubic_dims(8) == (2, 2, 2)
    assert _near_cubic_dims(27) == (3, 3, 3)
    assert _near_cubic_dims(1000) == (10, 10, 10)
    for n in (2, 5, 63, 129, 500, 1025):
        dims = _near_cubic_dims(n)
        assert dims[0] * dims[1] * dims[2] >= n


def test_torus_multicast_and_diameter():
    torus = Torus3D(512, dims=(8, 8, 8))
    assert torus.max_hops() == 12
    assert torus.multicast_hops(1) == 2
    assert torus.multicast_hops(8) <= torus.multicast_hops(512)
    assert torus.multicast_hops(512) == 12


def test_torus_out_of_range_rejected():
    torus = Torus3D(8)
    with pytest.raises(IndexError):
        torus.hops(0, 8)
    with pytest.raises(IndexError):
        torus.hops(-1, 0)


def test_torus_invalid_construction():
    with pytest.raises(ValueError):
        Torus3D(0)
    with pytest.raises(ValueError):
        Torus3D(9, dims=(2, 2, 2))  # 8 slots < 9 nodes
    with pytest.raises(ValueError):
        Torus3D(4, dims=(2, 2))  # not three extents


def test_build_topology_registry():
    assert isinstance(build_topology("fattree", 16, radix=4), FatTree)
    assert isinstance(build_topology("torus3d", 16), Torus3D)
    with pytest.raises(KeyError):
        build_topology("hypercube", 16)
