"""Tests for the NIC model: events, FIFOs, thread processor."""

import pytest

from repro.network import Cluster, ClusterSpec
from repro.network.nic import Nic, NicEvent
from repro.sim import Engine


def test_nic_event_signal_then_poll():
    env = Engine()
    ev = NicEvent(env)
    assert not ev.poll()
    ev.signal()
    assert ev.peek()
    assert ev.poll()
    assert not ev.poll()  # consumed


def test_nic_event_counts_accumulate():
    env = Engine()
    ev = NicEvent(env)
    ev.signal(3)
    assert ev.count == 3
    assert ev.poll() and ev.poll() and ev.poll()
    assert not ev.poll()


def test_nic_event_invalid_signal():
    env = Engine()
    ev = NicEvent(env)
    with pytest.raises(ValueError):
        ev.signal(0)


def test_nic_event_wait_blocks_until_signal():
    env = Engine()
    ev = NicEvent(env)

    def waiter():
        yield from ev.wait()
        return env.now

    def signaler():
        yield env.timeout(25)
        ev.signal()

    proc = env.process(waiter())
    env.process(signaler())
    assert env.run(until=proc) == 25


def test_nic_event_wait_immediate_when_pending():
    env = Engine()
    ev = NicEvent(env)
    ev.signal()

    def waiter():
        yield from ev.wait()
        return env.now

    assert env.run(until=env.process(waiter())) == 0
    assert ev.count == 0


def test_nic_event_waiters_fifo():
    env = Engine()
    ev = NicEvent(env)
    order = []

    def waiter(tag):
        yield from ev.wait()
        order.append(tag)

    env.process(waiter("a"))
    env.process(waiter("b"))

    def signaler():
        yield env.timeout(1)
        ev.signal(2)

    env.process(signaler())
    env.run()
    assert order == ["a", "b"]


def test_nic_named_events_and_fifos_are_cached():
    env = Engine()
    nic = Nic(env, 0)
    assert nic.event("x") is nic.event("x")
    assert nic.event("x") is not nic.event("y")
    assert nic.fifo("q") is nic.fifo("q")


def test_thread_processor_serializes_nic_compute():
    env = Engine()
    nic = Nic(env, 0, thread_op_cost=100)
    spans = []

    def worker(tag):
        start = env.now
        yield from nic.compute()
        spans.append((tag, start, env.now))

    env.process(worker("a"))
    env.process(worker("b"))
    env.run()
    # Second op waits for the first: total 200 ns, not 100.
    assert spans[1][2] == 200


def test_zero_cost_nic_compute_is_free():
    env = Engine()
    nic = Nic(env, 0, thread_op_cost=0)

    def worker():
        yield from nic.compute()
        yield from nic.compute(0)
        return env.now

    # Generators with no ops complete at t=0 (need an engine-run shim).
    def shim():
        yield env.timeout(0)
        yield from nic.compute()
        return env.now

    assert env.run(until=env.process(shim())) == 0


def test_cluster_wires_nics_to_nodes():
    cluster = Cluster(ClusterSpec(n_nodes=3))
    assert len(cluster.nodes) == 4  # 3 compute + 1 management
    assert cluster.management_node.id == 3
    for node in cluster.compute_nodes:
        assert node.nic.node_id == node.id
        assert node.cpu.capacity == 2


def test_cluster_spec_validation():
    with pytest.raises(ValueError):
        ClusterSpec(n_nodes=0)
    with pytest.raises(ValueError):
        ClusterSpec(n_nodes=2, cpus_per_node=0)
