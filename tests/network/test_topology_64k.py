"""Topology geometry at 64k nodes: pure arithmetic, no simulation.

The 64k study (docs/PERFORMANCE.md) leans on topologies staying
closed-form at scale: a quaternary fat tree over 65537 leaves (64k
compute + management) and a near-cubic torus box for 65536 slots must
come out of :mod:`repro.network.topology` as arithmetic, never as a
materialized graph.  These tests pin the geometry — level counts, box
dimensions, representative hop distances — so a routing change that
silently alters 64k latencies shows up as a failed constant, not as a
drifted benchmark.
"""

import pytest

from repro.network.topology import Torus3D, _near_cubic_dims, build_topology

# 64k compute nodes + 1 management node, as the scaling64k family runs.
N64K = 65536


class TestFatTree64k:
    @pytest.fixture(scope="class")
    def tree(self):
        return build_topology("fattree", N64K + 1, radix=4)

    def test_levels_and_diameter(self, tree):
        # 65536 = 4^8 exactly, so one extra leaf forces a 9th level.
        assert tree.levels == 9
        assert tree.max_hops() == 18

    def test_pow4_boundary_hops(self, tree):
        # Hops double-count the climb to the lowest common ancestor:
        # 2 * level.  Crossing each 4^k leaf-group boundary adds one
        # level to the LCA.
        assert tree.hops(0, 0) == 0
        assert tree.hops(0, 1) == 2  # same leaf switch
        assert tree.hops(0, 3) == 2
        assert tree.hops(0, 4) == 4  # first switch boundary
        assert tree.hops(0, 15) == 4
        assert tree.hops(0, 16) == 6
        assert tree.hops(0, 4**7 - 1) == 14  # inside the 16384 group
        assert tree.hops(0, 4**7) == 16  # crosses it
        assert tree.hops(0, N64K) == 18  # management node: full climb

    def test_hops_symmetric_at_scale(self, tree):
        for a, b in [(0, N64K), (5, 4**7), (123, 65521)]:
            assert tree.hops(a, b) == tree.hops(b, a)

    def test_multicast_depth(self, tree):
        # A strobe to all 64k compute nodes spans the full 8-level
        # subtree (up and down); tiny multicasts stay at one switch.
        assert tree.multicast_hops(N64K) == 16
        assert tree.multicast_hops(2) == 2

    def test_out_of_range_rejected(self, tree):
        with pytest.raises(IndexError):
            tree.hops(0, N64K + 1)


class TestTorus64k:
    @pytest.fixture(scope="class")
    def torus(self):
        return build_topology("torus3d", N64K)

    def test_near_cubic_box(self, torus):
        # Smallest near-cubic box over 65536 slots: 41*40*40 = 65600
        # (a perfect cube would need 40.3^3).  Axes sorted descending.
        assert _near_cubic_dims(N64K) == (41, 40, 40)
        assert torus.dims == (41, 40, 40)
        dx, dy, dz = torus.dims
        assert dx * dy * dz >= N64K

    def test_row_major_coords(self, torus):
        assert torus.coords(0) == (0, 0, 0)
        # Row-major: x advances every dy*dz = 1600 slots.
        assert torus.coords(1600) == (1, 0, 0)
        assert torus.coords(N64K - 1) == (40, 38, 15)

    def test_wraparound_hops(self, torus):
        dx, dy, dz = torus.dims
        assert torus.hops(0, 1) == 1  # +z neighbour
        assert torus.hops(0, dy * dz) == 1  # +x neighbour
        # Wraparound: the far end of the x axis is one hop backwards.
        assert torus.hops(0, (dx - 1) * dy * dz) == 1
        assert torus.hops(0, N64K - 1) == 18

    def test_diameter(self, torus):
        # Sum of per-axis wraparound radii: 20 + 20 + 20.
        assert torus.max_hops() == 60

    def test_multicast_radius(self, torus):
        # A broadcast covering the whole machine is bounded by the
        # radius of the full box.
        assert torus.multicast_hops(N64K) == 60
        assert torus.multicast_hops(2) == 2

    def test_soa_coords_are_compact(self, torus):
        # The coordinate table must stay three flat int32 arrays, not
        # 64k GC-traced tuples — that representation is half of what
        # keeps a 64k-node cluster's footprint flat.
        import numpy as np

        for arr in (torus._cx, torus._cy, torus._cz):
            assert isinstance(arr, np.ndarray)
            assert arr.dtype == np.int32
            assert len(arr) == N64K


def test_dims_cover_arbitrary_counts():
    # The box never under-provisions, including non-powers and the
    # management-node off-by-one shapes the farm actually builds.
    for n in (1, 2, 63, 1025, 16384, 16385, N64K, N64K + 1):
        dx, dy, dz = _near_cubic_dims(n)
        assert dx * dy * dz >= n
        assert dx >= dy >= dz
        t = Torus3D(n)
        assert t.hops(0, n - 1) <= t.max_hops()
