"""Tests for time/size unit helpers."""

import pytest

from repro.units import (
    KiB,
    MiB,
    bw_time,
    fmt_size,
    fmt_time,
    kib,
    mib,
    ms,
    ns,
    seconds,
    to_ms,
    to_seconds,
    to_us,
    us,
)


def test_time_conversions_roundtrip():
    assert us(1) == 1_000
    assert ms(1) == 1_000_000
    assert seconds(1) == 1_000_000_000
    assert to_seconds(seconds(2.5)) == 2.5
    assert to_us(us(7)) == 7.0
    assert to_ms(ms(3)) == 3.0


def test_fractional_units_round():
    assert us(0.5) == 500
    assert ms(3.5) == 3_500_000
    assert ns(1.6) == 2


def test_size_helpers():
    assert kib(4) == 4 * KiB == 4096
    assert mib(2) == 2 * MiB
    assert kib(0.5) == 512


def test_bw_time_exact_and_rounded():
    assert bw_time(1000, 1e9) == 1000  # 1000 B at 1 GB/s = 1000 ns
    assert bw_time(0, 1e9) == 0
    assert bw_time(-5, 1e9) == 0
    # Rounds up: 1 byte at 1 GB/s is 1 ns, never 0.
    assert bw_time(1, 1e9) == 1
    assert bw_time(1, 3e9) == 1


def test_bw_time_monotone():
    times = [bw_time(n, 300e6) for n in (0, 1, 1000, 10**6, 10**7)]
    assert times == sorted(times)


def test_fmt_time_scales():
    assert fmt_time(500) == "500 ns"
    assert "us" in fmt_time(us(100))
    assert "ms" in fmt_time(ms(100))
    assert "s" in fmt_time(seconds(100))


def test_fmt_size_scales():
    assert fmt_size(100) == "100 B"
    assert "KiB" in fmt_size(kib(100))
    assert "MiB" in fmt_size(mib(100))
