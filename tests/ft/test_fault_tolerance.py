"""Tests for checkpointing, failure injection, and recovery."""

import pytest

from repro.apps import resilient_stencil
from repro.bcs import BcsConfig, BcsRuntime
from repro.ft import (
    CheckpointConfig,
    CheckpointService,
    FailureInjector,
    RecoveryManager,
)
from repro.network import Cluster, ClusterSpec
from repro.storm import JobSpec
from repro.units import mib, ms, seconds


def make_runtime(n_nodes=4):
    cluster = Cluster(ClusterSpec(n_nodes=n_nodes))
    return cluster, BcsRuntime(cluster, BcsConfig(init_cost=0))


CKPT = CheckpointConfig(interval=ms(50), image_bytes=mib(10), storage_bandwidth=1e9)


# --- CheckpointConfig ---------------------------------------------------------


def test_checkpoint_config_validation():
    with pytest.raises(ValueError):
        CheckpointConfig(interval=0)
    with pytest.raises(ValueError):
        CheckpointConfig(storage_bandwidth=0)


def test_checkpoint_write_time():
    cfg = CheckpointConfig(image_bytes=mib(100), storage_bandwidth=100e6)
    assert cfg.write_time == pytest.approx(1_048_576_000, rel=0.01)


# --- CheckpointService ----------------------------------------------------------


def test_checkpoints_taken_periodically():
    cluster, runtime = make_runtime()
    service = CheckpointService(runtime, CKPT)
    job = runtime.run_job(
        JobSpec(
            app=resilient_stencil,
            n_ranks=8,
            params=dict(total_steps=30, step_compute=ms(5), ft=service),
        ),
        max_time=seconds(30),
    )
    assert job.complete
    assert len(service.checkpoints) >= 3
    assert service.total_pause_ns > 0
    # Watermarks are monotone across checkpoints.
    marks = [r.watermarks[job.id] for r in service.checkpoints]
    assert marks == sorted(marks)


def test_checkpoint_pause_slows_the_job():
    def run(with_ckpt):
        cluster, runtime = make_runtime()
        service = CheckpointService(runtime, CKPT) if with_ckpt else None
        job = runtime.run_job(
            JobSpec(
                app=resilient_stencil,
                n_ranks=8,
                params=dict(total_steps=20, step_compute=ms(5), ft=service),
            ),
            max_time=seconds(30),
        )
        return job.runtime

    assert run(True) > run(False)


def test_no_checkpoints_without_live_jobs():
    cluster, runtime = make_runtime()
    service = CheckpointService(runtime, CKPT)
    # Run the bare strobe loop briefly with no jobs.
    runtime.ss.start()
    cluster.env.run(until=ms(20))
    assert service.checkpoints == []


# --- FailureInjector ----------------------------------------------------------------


def test_node_failure_tears_down_job():
    cluster, runtime = make_runtime()
    injector = FailureInjector(runtime)
    job = runtime.launch(
        JobSpec(
            app=resilient_stencil,
            n_ranks=8,
            params=dict(total_steps=1000, step_compute=ms(5)),
        )
    )
    injector.kill_node_at(1, when=ms(40))
    cluster.env.run(until=job.failed)
    # Drain the interrupt deliveries scheduled at the failure instant.
    cluster.env.run(until=cluster.env.timeout(ms(1)))
    assert job.is_failed
    assert not job.complete
    assert runtime.stats["ranks_killed"] > 0

    # The purge runs at the next slice boundary with runtime activity
    # (here: when the replacement job spins the strobe loop up again),
    # so the dead job leaks nothing into later slices.
    job2 = runtime.run_job(
        JobSpec(
            app=resilient_stencil,
            n_ranks=8,
            params=dict(total_steps=3, step_compute=ms(2)),
        ),
        max_time=seconds(30),
    )
    assert job2.complete
    assert runtime.stats["jobs_purged"] == 1
    for nrt in runtime.node_runtimes:
        assert not nrt.posted_sends and not nrt.arrived_sends
        assert all(d.job_id != job.id for d in nrt.matcher.unexpected)
    assert all(m.send.job_id != job.id for m in runtime.scheduler.in_flight)


def test_failure_on_uninvolved_node_is_harmless():
    cluster, runtime = make_runtime(n_nodes=6)
    injector = FailureInjector(runtime)
    # 4 ranks live on nodes 0-1; node 5 hosts nothing.
    job = runtime.launch(
        JobSpec(
            app=resilient_stencil,
            n_ranks=4,
            params=dict(total_steps=5, step_compute=ms(2)),
        )
    )
    injector.kill_node_at(5, when=ms(5))
    cluster.env.run(until=job.done)
    assert job.complete and not job.is_failed


def test_failure_in_the_past_rejected():
    cluster, runtime = make_runtime()
    injector = FailureInjector(runtime)
    cluster.env.run(until=ms(10))
    with pytest.raises(ValueError):
        injector.kill_node_at(0, when=ms(5))


# --- RecoveryManager -----------------------------------------------------------------


def test_recovery_completes_across_one_failure():
    cluster, runtime = make_runtime()
    manager = RecoveryManager(runtime, CKPT, reboot_delay=ms(20))
    report = manager.run_to_completion(
        resilient_stencil,
        n_ranks=8,
        total_steps=30,
        params=dict(step_compute=ms(5)),
        failures=[(ms(80), 1)],
    )
    assert report.completed
    assert report.restarts == 1
    assert report.failures == 1
    assert report.checkpoints >= 1
    assert report.total_ns > 0


def test_recovery_restarts_from_watermark_not_zero():
    cluster, runtime = make_runtime()
    manager = RecoveryManager(runtime, CKPT, reboot_delay=ms(20))
    report = manager.run_to_completion(
        resilient_stencil,
        n_ranks=8,
        total_steps=40,
        params=dict(step_compute=ms(5)),
        failures=[(ms(150), 0)],
    )
    assert report.completed
    # With a 50 ms checkpoint interval and failure at 150 ms, at least
    # one checkpoint predates the failure, so the rerun did not start
    # at step 0 — lost work is bounded by the interval.
    assert report.lost_steps < 40


def test_recovery_without_failures_is_a_plain_run():
    cluster, runtime = make_runtime()
    manager = RecoveryManager(runtime, CKPT)
    report = manager.run_to_completion(
        resilient_stencil,
        n_ranks=4,
        total_steps=10,
        params=dict(step_compute=ms(2)),
    )
    assert report.completed
    assert report.restarts == 0
    assert report.lost_steps == 0


def test_recovery_across_two_failures():
    cluster, runtime = make_runtime()
    manager = RecoveryManager(runtime, CKPT, reboot_delay=ms(20))
    report = manager.run_to_completion(
        resilient_stencil,
        n_ranks=8,
        total_steps=40,
        params=dict(step_compute=ms(5)),
        failures=[(ms(90), 1), (ms(250), 2)],
    )
    assert report.completed
    assert report.restarts == 2


def test_recovery_with_heartbeat_detection():
    """Failure detection via actual missed heartbeats, not a timer."""
    cluster, runtime = make_runtime()
    manager = RecoveryManager(
        runtime,
        CKPT,
        reboot_delay=ms(20),
        use_heartbeat_detection=True,
        heartbeat_period=ms(5),
    )
    report = manager.run_to_completion(
        resilient_stencil,
        n_ranks=8,
        total_steps=30,
        params=dict(step_compute=ms(5)),
        failures=[(ms(80), 1)],
    )
    assert report.completed
    assert report.restarts == 1
    # The heartbeat service actually observed the miss.
    assert manager.heartbeat.stats.missed[1] >= 1
    # The rebooted node is acknowledged alive again afterwards.
    assert 1 in manager.heartbeat.alive()
