"""Unit + property tests: softfloat must match the host FPU bit-for-bit."""

import math
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.softfloat import (
    NEG_INF,
    NEG_ZERO,
    POS_INF,
    POS_ZERO,
    QNAN,
    bits_to_float,
    f64_add,
    f64_cmp,
    f64_from_int,
    f64_max,
    f64_min,
    f64_mul,
    f64_neg,
    f64_sub,
    float_to_bits,
    is_nan,
)


def B(x: float) -> int:
    return float_to_bits(x)


def check_binop(soft, hard, a: float, b: float):
    got = soft(B(a), B(b))
    want_f = hard(a, b)
    if math.isnan(want_f):
        assert is_nan(got), f"{a} op {b}: expected NaN, got {bits_to_float(got)}"
    else:
        assert got == B(want_f), (
            f"{a!r} op {b!r}: soft={bits_to_float(got)!r} hard={want_f!r}"
        )


# --- targeted cases ------------------------------------------------------------

SPECIALS = [
    0.0,
    -0.0,
    1.0,
    -1.0,
    2.0,
    0.5,
    1.5,
    math.pi,
    1e308,
    -1e308,
    1e-308,
    5e-324,           # min subnormal
    2.2250738585072014e-308,  # min normal
    1.7976931348623157e308,   # max finite
    float("inf"),
    float("-inf"),
    3.0,
    1 / 3,
    123456789.123456789,
    -2e-300,
]


@pytest.mark.parametrize("a", SPECIALS)
@pytest.mark.parametrize("b", SPECIALS)
def test_add_specials(a, b):
    check_binop(f64_add, lambda x, y: x + y, a, b)


@pytest.mark.parametrize("a", SPECIALS)
@pytest.mark.parametrize("b", SPECIALS)
def test_mul_specials(a, b):
    check_binop(f64_mul, lambda x, y: x * y, a, b)


@pytest.mark.parametrize("a", SPECIALS)
@pytest.mark.parametrize("b", SPECIALS)
def test_sub_specials(a, b):
    check_binop(f64_sub, lambda x, y: x - y, a, b)


def test_nan_propagation():
    assert is_nan(f64_add(QNAN, B(1.0)))
    assert is_nan(f64_mul(B(2.0), QNAN))
    assert is_nan(f64_add(POS_INF, NEG_INF))
    assert is_nan(f64_mul(POS_INF, POS_ZERO))
    assert is_nan(f64_sub(POS_INF, POS_INF))


def test_signed_zero_rules():
    assert f64_add(POS_ZERO, NEG_ZERO) == POS_ZERO
    assert f64_add(NEG_ZERO, NEG_ZERO) == NEG_ZERO
    assert f64_sub(B(1.0), B(1.0)) == POS_ZERO  # exact cancellation -> +0
    assert f64_mul(B(-1.0), POS_ZERO) == NEG_ZERO


def test_overflow_to_infinity():
    big = B(1.7976931348623157e308)
    assert f64_add(big, big) == POS_INF
    assert f64_mul(big, B(2.0)) == POS_INF
    assert f64_mul(f64_neg(big), B(2.0)) == NEG_INF


def test_underflow_to_subnormal_and_zero():
    tiny = B(5e-324)
    assert bits_to_float(f64_mul(tiny, B(0.5))) == 0.0  # rounds to zero (RNE)
    assert bits_to_float(f64_add(tiny, tiny)) == 1e-323


def test_round_to_nearest_even_tie():
    # 1 + 2^-53 is a tie; RNE keeps 1.0.
    one = B(1.0)
    ulp_half = B(2.0**-53)
    assert f64_add(one, ulp_half) == one
    # 1 + 2^-52 is exact.
    assert bits_to_float(f64_add(one, B(2.0**-52))) == 1.0 + 2.0**-52


def test_neg_flips_sign_only():
    assert f64_neg(B(2.5)) == B(-2.5)
    assert f64_neg(POS_ZERO) == NEG_ZERO


# --- comparison / min / max ---------------------------------------------------------


def test_cmp_basic():
    assert f64_cmp(B(1.0), B(2.0)) == -1
    assert f64_cmp(B(2.0), B(1.0)) == 1
    assert f64_cmp(B(1.0), B(1.0)) == 0
    assert f64_cmp(POS_ZERO, NEG_ZERO) == 0
    assert f64_cmp(B(-1.0), B(1.0)) == -1
    assert f64_cmp(B(-2.0), B(-1.0)) == -1
    assert f64_cmp(QNAN, B(0.0)) is None


def test_min_max_semantics():
    assert f64_min(B(1.0), B(2.0)) == B(1.0)
    assert f64_max(B(1.0), B(2.0)) == B(2.0)
    assert f64_min(NEG_INF, B(0.0)) == NEG_INF
    # NaN loses to numbers (minNum/maxNum).
    assert f64_min(QNAN, B(3.0)) == B(3.0)
    assert f64_max(B(3.0), QNAN) == B(3.0)
    assert is_nan(f64_min(QNAN, QNAN))
    # Signed zeros: min prefers -0, max prefers +0.
    assert f64_min(POS_ZERO, NEG_ZERO) == NEG_ZERO
    assert f64_max(NEG_ZERO, POS_ZERO) == POS_ZERO


# --- int conversion ---------------------------------------------------------------------


@pytest.mark.parametrize(
    "n", [0, 1, -1, 2, 2**52, 2**53, 2**53 + 1, -(2**60), 10**18, 2**62 + 12345]
)
def test_from_int_matches_host(n):
    assert f64_from_int(n) == B(float(n))


# --- property tests against the FPU ----------------------------------------------------

finite = st.floats(allow_nan=False, allow_infinity=False)
anyfloat = st.floats(allow_nan=True, allow_infinity=True)


@settings(max_examples=400)
@given(finite, finite)
def test_prop_add_matches_fpu(a, b):
    check_binop(f64_add, lambda x, y: x + y, a, b)


@settings(max_examples=400)
@given(finite, finite)
def test_prop_mul_matches_fpu(a, b):
    check_binop(f64_mul, lambda x, y: x * y, a, b)


@settings(max_examples=200)
@given(anyfloat, anyfloat)
def test_prop_sub_matches_fpu(a, b):
    check_binop(f64_sub, lambda x, y: x - y, a, b)


@settings(max_examples=200)
@given(finite, finite)
def test_prop_add_commutative(a, b):
    assert f64_add(B(a), B(b)) == f64_add(B(b), B(a))


@settings(max_examples=200)
@given(finite, finite)
def test_prop_cmp_matches_python(a, b):
    want = (a > b) - (a < b)
    assert f64_cmp(B(a), B(b)) == want


@settings(max_examples=200)
@given(st.integers(min_value=-(2**63), max_value=2**63))
def test_prop_from_int_matches_host(n):
    assert f64_from_int(n) == B(float(n))


@settings(max_examples=200)
@given(finite)
def test_prop_add_zero_identity(a):
    assert f64_add(B(a), POS_ZERO) == B(a) or (a == 0.0)


@settings(max_examples=200)
@given(finite)
def test_prop_mul_one_identity(a):
    assert f64_mul(B(a), B(1.0)) == B(a)


# --- division and square root ------------------------------------------------------

from repro.softfloat import f64_div, f64_sqrt


@pytest.mark.parametrize("a", SPECIALS)
@pytest.mark.parametrize("b", SPECIALS)
def test_div_specials(a, b):
    def hard_div(x, y):
        try:
            return x / y
        except ZeroDivisionError:
            if x == 0.0:
                return float("nan")
            negative = (x < 0) ^ (str(y)[0] == "-")
            return float("-inf") if negative else float("inf")

    check_binop(f64_div, hard_div, a, b)


def test_div_invalid_cases():
    assert is_nan(f64_div(POS_INF, NEG_INF))
    assert is_nan(f64_div(POS_ZERO, NEG_ZERO))
    assert f64_div(B(1.0), POS_ZERO) == POS_INF
    assert f64_div(B(-1.0), POS_ZERO) == NEG_INF
    assert f64_div(B(1.0), NEG_ZERO) == NEG_INF
    assert f64_div(POS_ZERO, B(5.0)) == POS_ZERO


@settings(max_examples=400)
@given(finite, finite)
def test_prop_div_matches_fpu(a, b):
    import numpy as np

    with np.errstate(divide="ignore", invalid="ignore", over="ignore", under="ignore"):
        want = np.float64(a) / np.float64(b)
    got = f64_div(B(a), B(b))
    if math.isnan(want):
        assert is_nan(got)
    else:
        assert got == B(float(want)), (a, b, bits_to_float(got), float(want))


def test_sqrt_specials():
    assert f64_sqrt(POS_ZERO) == POS_ZERO
    assert f64_sqrt(NEG_ZERO) == NEG_ZERO
    assert f64_sqrt(POS_INF) == POS_INF
    assert is_nan(f64_sqrt(B(-1.0)))
    assert is_nan(f64_sqrt(NEG_INF))
    assert is_nan(f64_sqrt(QNAN))
    assert f64_sqrt(B(4.0)) == B(2.0)
    assert f64_sqrt(B(2.0)) == B(math.sqrt(2.0))


@settings(max_examples=400)
@given(st.floats(min_value=0.0, allow_nan=False, allow_infinity=False))
def test_prop_sqrt_matches_fpu(x):
    assert f64_sqrt(B(x)) == B(math.sqrt(x))


@settings(max_examples=200)
@given(finite)
def test_prop_div_by_self_is_one(a):
    if a != 0.0 and not math.isinf(a):
        assert f64_div(B(a), B(a)) == B(1.0)
