"""NIC-path vs host-path reduction equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.softfloat import combine_host, combine_nic, reduce_buffers


def test_sum_paths_match_float():
    rng = np.random.default_rng(1)
    bufs = [rng.normal(size=16) for _ in range(5)]
    nic = reduce_buffers("sum", bufs, path="nic")
    host = reduce_buffers("sum", bufs, path="host")
    assert nic.tobytes() == host.tobytes()  # bit-identical


@pytest.mark.parametrize("op", ["sum", "prod", "min", "max"])
def test_all_float_ops_paths_match(op):
    rng = np.random.default_rng(2)
    bufs = [rng.normal(size=8) * 10 for _ in range(4)]
    nic = reduce_buffers(op, bufs, path="nic")
    host = reduce_buffers(op, bufs, path="host")
    assert nic.tobytes() == host.tobytes()


@pytest.mark.parametrize("op", ["sum", "prod", "min", "max", "band", "bor", "bxor"])
def test_integer_ops(op):
    rng = np.random.default_rng(3)
    bufs = [rng.integers(0, 100, size=8, dtype=np.int64) for _ in range(3)]
    nic = reduce_buffers(op, bufs, path="nic")
    host = reduce_buffers(op, bufs, path="host")
    assert (nic == host).all()


def test_logical_ops():
    a = np.array([0, 1, 1, 0], dtype=np.int64)
    b = np.array([0, 1, 0, 1], dtype=np.int64)
    assert list(combine_nic("land", a, b)) == [0, 1, 0, 0]
    assert list(combine_nic("lor", a, b)) == [0, 1, 1, 1]


def test_shape_mismatch_rejected():
    with pytest.raises(ValueError):
        combine_nic("sum", np.zeros(3), np.zeros(4))


def test_unknown_op_rejected():
    with pytest.raises(ValueError):
        combine_nic("xor", np.zeros(2), np.zeros(2))
    with pytest.raises(ValueError):
        combine_host("nope", np.zeros(2), np.zeros(2))
    with pytest.raises(ValueError):
        combine_nic("band", np.zeros(2), np.zeros(2))  # bitwise on floats


def test_empty_reduce_rejected():
    with pytest.raises(ValueError):
        reduce_buffers("sum", [])


def test_single_buffer_reduce_is_copy():
    buf = np.arange(4, dtype=np.float64)
    out = reduce_buffers("sum", [buf])
    assert (out == buf).all()
    out[0] = 99.0
    assert buf[0] == 0.0  # must not alias the input


def test_unsupported_dtype_rejected():
    with pytest.raises(TypeError):
        combine_nic("sum", np.zeros(2, dtype=np.complex128), np.zeros(2, dtype=np.complex128))


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.lists(
            st.floats(allow_nan=False, allow_infinity=False, width=64),
            min_size=4,
            max_size=4,
        ),
        min_size=2,
        max_size=6,
    )
)
def test_prop_nic_sum_equals_host_sum(rows):
    bufs = [np.array(r, dtype=np.float64) for r in rows]
    nic = reduce_buffers("sum", bufs, path="nic")
    host = reduce_buffers("sum", bufs, path="host")
    assert nic.tobytes() == host.tobytes()
