"""Metrics registry semantics: labels, percentiles, cardinality, reset."""

import pytest

from repro.obs import LabelCardinalityError, MetricsRegistry, percentile


# --- percentile function ------------------------------------------------------


def test_percentile_nearest_rank():
    data = list(range(1, 101))
    assert percentile(data, 50) == 50
    assert percentile(data, 95) == 95
    assert percentile(data, 99) == 99
    assert percentile(data, 100) == 100
    assert percentile(data, 0) == 1


def test_percentile_small_sets():
    assert percentile([7.0], 50) == 7.0
    assert percentile([1.0, 2.0], 50) == 1.0
    assert percentile([1.0, 2.0], 51) == 2.0


def test_percentile_rejects_bad_input():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 101)


# --- instruments -------------------------------------------------------------------


def test_counter_identity_and_increment():
    reg = MetricsRegistry()
    c1 = reg.counter("msgs", node=0)
    c2 = reg.counter("msgs", node=0)
    assert c1 is c2  # same (name, labels) -> same instrument
    c1.inc()
    c1.inc(4)
    assert c2.value == 5
    assert reg.counter("msgs", node=1).value == 0  # distinct label set


def test_counter_rejects_negative():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.counter("x").inc(-1)


def test_gauge_moves_both_ways():
    reg = MetricsRegistry()
    g = reg.gauge("backlog")
    g.set(10)
    g.inc(5)
    g.dec(3)
    assert g.value == 12


def test_histogram_summary_and_percentiles():
    reg = MetricsRegistry()
    h = reg.histogram("lat", phase="DEM")
    for v in range(1, 101):
        h.observe(float(v))
    assert h.count == 100
    assert h.percentile(50) == 50.0
    s = h.summary()
    assert s["p95"] == 95.0 and s["p99"] == 99.0
    assert s["min"] == 1.0 and s["max"] == 100.0
    assert s["mean"] == pytest.approx(50.5)
    assert reg.histogram("empty").summary() == {"count": 0}


def test_kind_mismatch_rejected():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(ValueError):
        reg.histogram("x")


def test_label_order_does_not_matter():
    reg = MetricsRegistry()
    assert reg.counter("m", a=1, b=2) is reg.counter("m", b=2, a=1)


# --- cardinality -----------------------------------------------------------------


def test_label_cardinality_overflow_is_counted_not_silent():
    reg = MetricsRegistry(max_series_per_metric=3)
    for i in range(3):
        reg.counter("m", i=i).inc()
    # Past the cap: the sample lands in the shared overflow series and
    # the drop is counted in the self-describing counter.
    reg.counter("m", i=3).inc()
    reg.counter("m", i=4).inc(2)
    dropped = reg.counter("obs.labels_dropped", metric="m")
    assert dropped.value == 2  # one per refused label set, not per inc
    snap = reg.snapshot()
    assert snap["m"]["series"]["{overflow=dropped}"] == 3
    assert "obs.labels_dropped" in reg.render()
    # Existing series stay reachable and untouched.
    assert reg.counter("m", i=0).value == 1


def test_label_cardinality_overflow_instrument_matches_kind():
    reg = MetricsRegistry(max_series_per_metric=1)
    reg.histogram("h", k=0).observe(1.0)
    reg.histogram("h", k=1).observe(5.0)  # overflows
    snap = reg.snapshot()
    assert snap["h"]["series"]["{overflow=dropped}"]["count"] == 1
    assert reg.counter("obs.labels_dropped", metric="h").value == 1


def test_labels_dropped_counter_is_exempt_from_its_own_cap():
    reg = MetricsRegistry(max_series_per_metric=2)
    # Overflow three distinct metrics: obs.labels_dropped then needs
    # three label sets of its own — more than the cap — and must grow
    # anyway rather than recurse into itself.
    for name in ("a", "b", "c"):
        for i in range(3):
            reg.counter(name, i=i).inc()
    series = reg.snapshot()["obs.labels_dropped"]["series"]
    assert "{overflow=dropped}" not in series
    assert series == {"{metric=a}": 1, "{metric=b}": 1, "{metric=c}": 1}


def test_label_cardinality_error_still_importable():
    # Back-compat: the exception type remains exported even though the
    # registry no longer raises it.
    assert issubclass(LabelCardinalityError, ValueError)


# --- snapshot / render / reset ------------------------------------------------------


def test_snapshot_is_sorted_and_complete():
    reg = MetricsRegistry()
    reg.counter("z.count").inc(2)
    reg.gauge("a.gauge").set(7)
    reg.histogram("m.hist", phase="DEM").observe(1.0)
    snap = reg.snapshot()
    assert list(snap) == ["a.gauge", "m.hist", "z.count"]
    assert snap["z.count"]["series"]["{}"] == 2
    assert snap["a.gauge"]["kind"] == "gauge"
    assert snap["m.hist"]["series"]["{phase=DEM}"]["count"] == 1


def test_render_deterministic():
    def build():
        reg = MetricsRegistry()
        reg.counter("b", x=2).inc(1)
        reg.counter("b", x=1).inc(2)
        reg.histogram("a").observe(3.0)
        return reg.render()

    assert build() == build()
    assert build().splitlines()[0].startswith("a ")


def test_reset_drops_everything():
    reg = MetricsRegistry()
    reg.counter("c").inc()
    reg.histogram("h").observe(1.0)
    reg.reset()
    assert reg.names() == []
    assert reg.counter("c").value == 0  # fresh instrument after reset
