"""Metrics registry semantics: labels, percentiles, cardinality, reset."""

import pytest

from repro.obs import LabelCardinalityError, MetricsRegistry, percentile


# --- percentile function ------------------------------------------------------


def test_percentile_nearest_rank():
    data = list(range(1, 101))
    assert percentile(data, 50) == 50
    assert percentile(data, 95) == 95
    assert percentile(data, 99) == 99
    assert percentile(data, 100) == 100
    assert percentile(data, 0) == 1


def test_percentile_small_sets():
    assert percentile([7.0], 50) == 7.0
    assert percentile([1.0, 2.0], 50) == 1.0
    assert percentile([1.0, 2.0], 51) == 2.0


def test_percentile_rejects_bad_input():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 101)


# --- instruments -------------------------------------------------------------------


def test_counter_identity_and_increment():
    reg = MetricsRegistry()
    c1 = reg.counter("msgs", node=0)
    c2 = reg.counter("msgs", node=0)
    assert c1 is c2  # same (name, labels) -> same instrument
    c1.inc()
    c1.inc(4)
    assert c2.value == 5
    assert reg.counter("msgs", node=1).value == 0  # distinct label set


def test_counter_rejects_negative():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.counter("x").inc(-1)


def test_gauge_moves_both_ways():
    reg = MetricsRegistry()
    g = reg.gauge("backlog")
    g.set(10)
    g.inc(5)
    g.dec(3)
    assert g.value == 12


def test_histogram_summary_and_percentiles():
    reg = MetricsRegistry()
    h = reg.histogram("lat", phase="DEM")
    for v in range(1, 101):
        h.observe(float(v))
    assert h.count == 100
    assert h.percentile(50) == 50.0
    s = h.summary()
    assert s["p95"] == 95.0 and s["p99"] == 99.0
    assert s["min"] == 1.0 and s["max"] == 100.0
    assert s["mean"] == pytest.approx(50.5)
    assert reg.histogram("empty").summary() == {"count": 0}


def test_kind_mismatch_rejected():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(ValueError):
        reg.histogram("x")


def test_label_order_does_not_matter():
    reg = MetricsRegistry()
    assert reg.counter("m", a=1, b=2) is reg.counter("m", b=2, a=1)


# --- cardinality -----------------------------------------------------------------


def test_label_cardinality_bounded():
    reg = MetricsRegistry(max_series_per_metric=3)
    for i in range(3):
        reg.counter("m", i=i)
    with pytest.raises(LabelCardinalityError):
        reg.counter("m", i=3)
    # Existing series stay reachable after the refusal.
    assert reg.counter("m", i=0) is not None


# --- snapshot / render / reset ------------------------------------------------------


def test_snapshot_is_sorted_and_complete():
    reg = MetricsRegistry()
    reg.counter("z.count").inc(2)
    reg.gauge("a.gauge").set(7)
    reg.histogram("m.hist", phase="DEM").observe(1.0)
    snap = reg.snapshot()
    assert list(snap) == ["a.gauge", "m.hist", "z.count"]
    assert snap["z.count"]["series"]["{}"] == 2
    assert snap["a.gauge"]["kind"] == "gauge"
    assert snap["m.hist"]["series"]["{phase=DEM}"]["count"] == 1


def test_render_deterministic():
    def build():
        reg = MetricsRegistry()
        reg.counter("b", x=2).inc(1)
        reg.counter("b", x=1).inc(2)
        reg.histogram("a").observe(3.0)
        return reg.render()

    assert build() == build()
    assert build().splitlines()[0].startswith("a ")


def test_reset_drops_everything():
    reg = MetricsRegistry()
    reg.counter("c").inc()
    reg.histogram("h").observe(1.0)
    reg.reset()
    assert reg.names() == []
    assert reg.counter("c").value == 0  # fresh instrument after reset
