"""Recording adapters: farm summaries / bench reports -> trend rows."""

import pytest

from repro.obs.trends import RunMeta, TrendStore
from repro.obs.trends.record import (
    bench_samples,
    farm_samples,
    record_bench_report,
    record_farm_summary,
    snapshot_samples,
)


def _farm_summary(executed=9, families=("fig8a", "selftest")):
    """A minimal ``last-run.json``-shaped summary with duration digests."""
    series = {
        "{family=%s}" % fam: {"count": 4, "sum": 4000.0 * (i + 1), "mean": 0}
        for i, fam in enumerate(families)
    }
    return {
        "fingerprint": "feedface" * 8,
        "git_sha": "abc",
        "duration_s": 12.5,
        "executed": executed,
        "metrics": {
            "farm.point.duration_ms": {"kind": "histogram", "series": series},
            "sim.slices": {"kind": "counter", "series": {"{}": 123}},
            "matcher.probes": {"kind": "counter", "series": {"{family=fig8a}": 7}},
            "farm.cache.hits": {"kind": "counter", "series": {"{}": 5}},
        },
    }


def _bench_report():
    return {
        "schema": 1,
        "quick": True,
        "calibration_s": 0.25,
        "python": "3.12.0",
        "benchmarks": {
            "sage_fig10": {
                "kind": "macro",
                "wall_s": 1.5,
                "normalized": 6.0,
                "virtual_ns": 16_000_000_000,
                "idle_slices_skipped": 31000,
                "peak_rss_mib": 42.5,
            },
            "barrier_micro": {
                "kind": "micro",
                "wall_s": 0.5,
                "normalized": 2.0,
                "virtual_ns": 300_000_000,
                "idle_slices_skipped": 0,
            },
        },
    }


def test_farm_samples_one_timing_series_per_family():
    samples = farm_samples(_farm_summary(), calibration_s=0.5)
    by_series = {s.series: s for s in samples}
    fig8a = by_series["farm.duration_ms/fig8a"]
    # mean 1000 ms -> 1 s / 0.5 s calibration = 2.0 normalized
    assert fig8a.value == pytest.approx(2.0)
    assert fig8a.raw == pytest.approx(1000.0)
    assert fig8a.kind == "timing" and fig8a.n == 4
    assert by_series["farm.duration_ms/selftest"].value == pytest.approx(4.0)
    # whole-run duration rides along, normalized the same way
    assert by_series["farm.run.duration_s"].value == pytest.approx(25.0)
    # sim.*/matcher.* counters become exact series; farm.* counters do not
    assert by_series["sim.slices/all"].kind == "exact"
    assert by_series["matcher.probes/fig8a"].value == 7.0
    assert "farm.cache.hits/all" not in by_series


def test_fully_cached_farm_run_records_nothing(tmp_path):
    summary = _farm_summary(executed=0)
    summary["metrics"]["farm.point.duration_ms"]["series"] = {}
    assert farm_samples(summary, calibration_s=0.5) == []
    store = TrendStore(tmp_path / "ts")
    assert record_farm_summary(store, summary, calibration_s=0.5) is None
    assert store.run_count() == 0


def test_record_farm_summary_appends_with_provenance(tmp_path):
    store = TrendStore(tmp_path / "ts")
    recorded = record_farm_summary(store, _farm_summary(), calibration_s=0.5)
    assert recorded is not None
    meta, rows = recorded
    assert rows == len(store.series_ids())
    assert meta.source == "farm"
    assert meta.fingerprint == "feedface" * 8  # taken from the summary
    assert meta.calibration_s == 0.5
    assert store.run_ids() == [meta.run_id]


def test_record_farm_summary_requires_calibration(tmp_path):
    store = TrendStore(tmp_path / "ts")
    meta = RunMeta(run_id="r", source="farm")  # no calibration_s
    with pytest.raises(ValueError, match="calibration"):
        record_farm_summary(store, _farm_summary(), meta=meta)


def test_snapshot_samples_respects_patterns():
    snapshot = _farm_summary()["metrics"]
    assert {s.series for s in snapshot_samples(snapshot, ("sim.*",))} == {
        "sim.slices/all"
    }
    # histograms are never turned into exact series
    assert not any(
        "duration" in s.series for s in snapshot_samples(snapshot, ("farm.*",))
    )


def test_bench_samples_split_timing_and_exact():
    samples = bench_samples(_bench_report())
    by_series = {s.series: s for s in samples}
    assert by_series["bench.normalized/sage_fig10"].value == 6.0
    assert by_series["bench.normalized/sage_fig10"].raw == 1.5
    assert by_series["bench.normalized/sage_fig10"].kind == "timing"
    assert by_series["bench.virtual_ns/sage_fig10"].kind == "exact"
    assert by_series["bench.idle_slices_skipped/barrier_micro"].value == 0.0
    # peak RSS trends like a timing (allocator noise), never exact, and
    # is absent when the record predates the field.
    rss = by_series["bench.rss/sage_fig10"]
    assert rss.kind == "timing" and rss.unit == "MiB" and rss.value == 42.5
    assert "bench.rss/barrier_micro" not in by_series
    assert len(samples) == 7


def test_record_bench_report_uses_report_calibration(tmp_path):
    store = TrendStore(tmp_path / "ts")
    meta, rows = record_bench_report(store, _bench_report())
    assert rows == 7
    assert meta.source == "bench"
    assert meta.quick is True
    assert meta.calibration_s == 0.25  # no fresh spin loop: report's value
    assert meta.python == "3.12.0"


def test_seed_baseline_is_idempotent(tmp_path):
    store = TrendStore(tmp_path / "ts")
    meta, _ = record_bench_report(store, _bench_report(), source="seed")
    assert meta.run_id == "seed-baseline"
    with pytest.raises(ValueError, match="already recorded"):
        record_bench_report(store, _bench_report(), source="seed")
    assert store.run_count() == 1
    # a later real bench run still lands on top of the seed row
    record_bench_report(store, _bench_report())
    assert store.values("bench.normalized/sage_fig10") == [6.0, 6.0]
