"""Regression detector: robust statistics over synthetic histories.

The scenarios ISSUE.md (PR 4) calls out explicitly: a step regression
must trip, slow drift must trip, a single-outlier history must NOT
trip, short histories never gate, and quick-mode runs recorded with a
different calibration still compare cleanly after normalization.
"""

import pytest

from repro.obs.trends import DetectorConfig, RegressionDetector, mad, median
from repro.obs.trends.detect import classify, classify_exact
from repro.obs.trends.store import RunMeta, Sample, TrendStore

CFG = DetectorConfig()


def test_median_and_mad():
    assert median([3.0, 1.0, 2.0]) == 2.0
    assert median([1.0, 2.0, 3.0, 4.0]) == 2.5
    assert mad([1.0, 1.0, 1.0, 9.0]) == 0.0
    assert mad([1.0, 2.0, 3.0, 4.0, 5.0]) == 1.0
    with pytest.raises(ValueError):
        median([])


def test_stable_series_is_ok():
    v = classify([10.0, 10.1, 9.9, 10.0, 10.2, 9.8, 10.0], CFG)
    assert v.status == "ok"
    assert v.baseline == pytest.approx(10.0, rel=0.05)


def test_step_regression_trips():
    # warm-up discards the first value; baseline median 10, last 30:
    # +200% excess and a huge robust z — must regress, not just warn.
    v = classify([10.0, 10.0, 10.2, 9.9, 10.1, 30.0], CFG)
    assert v.status == "regress"
    assert v.ratio == pytest.approx(3.0, rel=0.05)
    assert "over median" in v.reason


def test_single_outlier_in_history_does_not_trip():
    # one 4x spike buried in the history: the median baseline ignores
    # it, and the healthy latest run is plainly ok.
    values = [10.0] * 6 + [40.0] + [10.0, 10.0, 10.0]
    v = classify(values, CFG)
    assert v.status == "ok"
    assert v.baseline == pytest.approx(10.0)
    # ... and the spike itself, seen as the latest value, does trip:
    assert classify([10.0] * 9 + [40.0], CFG).status == "regress"


def test_slow_drift_trips_the_half_window_check():
    # each step is small (never beats the single-run gate) but the
    # newer half ends up ~2x the older half.
    ramp = [10.0, 10.0, 11.0, 12.0, 13.5, 15.0, 17.0, 19.0, 21.5, 24.0, 27.0]
    v = classify(ramp, CFG)
    assert v.status in ("warn", "regress")
    assert "drift" in v.reason


def test_short_history_reports_but_never_gates():
    v = classify([10.0, 30.0], CFG)
    assert v.status == "short"
    assert not v.gates
    assert classify([], CFG).status == "short"
    assert classify([10.0, 10.0, 30.0], CFG).status == "short"


def test_min_history_boundary():
    # warmup(1) + min_history(3) + latest = 5 values: first gating point.
    assert classify([10.0, 10.0, 10.0, 10.0, 30.0], CFG).status == "regress"
    assert classify([10.0, 10.0, 10.0, 10.0, 10.0], CFG).status == "ok"


def test_relative_floor_mutes_microscopic_jitter():
    # an utterly flat series (MAD=0) must not turn a 2% wiggle into
    # infinite sigmas: the rel_floor keeps z finite and small.
    v = classify([10.0] * 8 + [10.2], CFG)
    assert v.status == "ok"
    assert v.z < 1.0


def test_quick_mode_calibration_rescaling():
    # The same workload measured on a machine 3x slower: raw seconds
    # triple, but so does the spin-loop calibration, so the normalized
    # values the detector sees are unchanged -> ok.
    fast_raw, fast_cal = [2.0, 2.1, 1.9, 2.0], 0.10
    slow_raw, slow_cal = 6.15, 0.30
    values = [r / fast_cal for r in fast_raw] + [slow_raw / slow_cal]
    v = classify(values, CFG)
    assert v.status == "ok"
    # sanity: without normalization the same history would regress
    assert classify(fast_raw + [slow_raw], CFG).status == "regress"


def test_config_overrides_per_series_glob():
    cfg = DetectorConfig(
        overrides={"farm.duration_ms/table2": {"regress_pct": 5.0, "warn_pct": 4.0}}
    )
    loose = cfg.for_series("farm.duration_ms/table2")
    assert loose.regress_pct == 5.0 and loose.warn_pct == 4.0
    assert cfg.for_series("farm.duration_ms/fig8a") == cfg
    # a 3x step passes under the loosened thresholds, fails elsewhere
    values = [10.0, 10.0, 10.0, 10.0, 30.0]
    assert classify(values, loose).status == "ok"
    assert classify(values, cfg).status == "regress"


def test_exact_series_changes_warn_but_never_gate():
    assert classify_exact([100.0, 100.0, 100.0], CFG).status == "ok"
    v = classify_exact([100.0, 100.0, 150.0], CFG)
    assert v.status == "warn"
    assert not v.gates
    assert "deterministic value changed" in v.reason
    assert classify_exact([100.0], CFG).status == "short"


def _store_with(tmp_path, series_values, kind="timing"):
    store = TrendStore(tmp_path / "ts")
    n = max(len(v) for v in series_values.values())
    for i in range(n):
        samples = [
            Sample(sid, vals[i], kind=kind)
            for sid, vals in series_values.items()
            if i < len(vals)
        ]
        store.append_run(
            RunMeta(run_id=f"r{i}", source="test", calibration_s=1.0), samples
        )
    return store


def test_detector_over_a_store(tmp_path):
    store = _store_with(
        tmp_path,
        {
            "farm.duration_ms/selftest": [10.0, 10.0, 10.0, 10.0, 30.0],
            "farm.duration_ms/fig8a": [5.0, 5.0, 5.1, 4.9, 5.0],
        },
    )
    detector = RegressionDetector()
    verdicts = detector.verdicts(store, "farm.*")
    by_series = {v.series: v for v in verdicts}
    assert by_series["farm.duration_ms/selftest"].status == "regress"
    assert by_series["farm.duration_ms/fig8a"].status == "ok"
    failures = RegressionDetector.failures(verdicts)
    assert [v.series for v in failures] == ["farm.duration_ms/selftest"]
    counts = RegressionDetector.summary(verdicts)
    assert counts == {"ok": 1, "warn": 0, "regress": 1, "short": 0}
    # glob filtering
    assert detector.verdicts(store, "bench.*") == []


def test_detector_reads_kind_from_the_store(tmp_path):
    store = _store_with(
        tmp_path, {"bench.virtual_ns/sage": [100.0, 100.0, 300.0]}, kind="exact"
    )
    (v,) = RegressionDetector().verdicts(store)
    assert v.kind == "exact"
    assert v.status == "warn"  # 3x jump on an exact series: warn, never gate
    assert not v.gates
