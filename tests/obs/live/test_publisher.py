"""The telemetry publisher: deterministic ids, diffing, SSE resume.

No wall clock enters event generation, so every test drives ``poll()``
by hand and asserts exact sequence ids.  The resume tests are the
satellite's contract: disconnect, reconnect with ``Last-Event-ID``,
no duplicated and no skipped events.
"""

import io
import json

import pytest

from repro.obs.live.publisher import (
    LiveEvent,
    TelemetryPublisher,
    format_sse,
    make_collector,
    serve_sse,
)


class MutableState:
    """A collect() whose return value the test mutates between polls."""

    def __init__(self, **sections):
        self.sections = dict(sections)

    def __call__(self):
        return {k: dict(v) for k, v in self.sections.items()}


def test_first_poll_emits_one_event_per_section_in_sorted_order():
    state = MutableState(queue={"pending": 1}, store={"records": 0})
    pub = TelemetryPublisher(state)
    events = pub.poll()
    assert [(e.seq, e.event) for e in events] == [(1, "queue"), (2, "store")]


def test_unchanged_state_emits_nothing():
    state = MutableState(queue={"pending": 1})
    pub = TelemetryPublisher(state)
    pub.poll()
    assert pub.poll() == []
    assert pub.latest_seq == 1


def test_only_changed_sections_emit():
    state = MutableState(queue={"pending": 1}, store={"records": 0})
    pub = TelemetryPublisher(state)
    pub.poll()
    state.sections["queue"]["pending"] = 2
    events = pub.poll()
    assert [(e.seq, e.event, e.data) for e in events] == [
        (3, "queue", {"pending": 2})
    ]


def test_events_since_replays_the_exact_gap():
    state = MutableState(queue={"pending": 0})
    pub = TelemetryPublisher(state)
    for n in range(1, 6):
        state.sections["queue"]["pending"] = n
        pub.poll()
    events, complete = pub.events_since(2)
    assert complete
    assert [e.seq for e in events] == [3, 4, 5]
    # fully caught up -> empty, still complete
    events, complete = pub.events_since(5)
    assert events == [] and complete


def test_events_since_reports_buffer_gaps():
    state = MutableState(queue={"pending": 0})
    pub = TelemetryPublisher(state, buffer_size=2)
    for n in range(1, 6):
        state.sections["queue"]["pending"] = n
        pub.poll()
    events, complete = pub.events_since(1)  # seq 2,3 already evicted
    assert not complete
    assert [e.seq for e in events] == [4, 5]


def test_snapshot_events_restate_every_section_under_fresh_ids():
    state = MutableState(queue={"pending": 3}, trends={"status": "ok"})
    pub = TelemetryPublisher(state)
    pub.poll()
    snap = pub.snapshot_events()
    assert [(e.seq, e.event) for e in snap] == [(3, "queue"), (4, "trends")]
    assert snap[0].data == {"pending": 3}


def test_format_sse_wire_form():
    wire = format_sse(LiveEvent(7, "queue", {"b": 2, "a": 1}))
    assert wire == 'id: 7\nevent: queue\ndata: {"a":1,"b":2}\n\n'


def _parse_stream(raw: str):
    """[(id, event, data_dict)] from an SSE byte stream."""
    out = []
    for block in raw.split("\n\n"):
        fields = dict(
            line.split(": ", 1) for line in block.splitlines() if ": " in line
        )
        if "id" in fields:
            out.append(
                (int(fields["id"]), fields["event"], json.loads(fields["data"]))
            )
    return out


def _stream(pub, **kwargs):
    buf = io.BytesIO()
    sent = serve_sse(buf, pub, **kwargs)
    return sent, _parse_stream(buf.getvalue().decode())


def test_serve_sse_greets_new_clients_with_a_snapshot():
    state = MutableState(queue={"pending": 9})
    pub = TelemetryPublisher(state)
    pub.poll()
    sent, events = _stream(pub, max_events=1)
    assert sent == 1
    assert events == [(2, "queue", {"pending": 9})]


def test_sse_resume_no_duplicates_no_skips():
    """Disconnect mid-stream, reconnect with Last-Event-ID, see exactly
    the missed tail — the union of both reads is gap-free and dup-free."""
    state = MutableState(queue={"pending": 0})
    pub = TelemetryPublisher(state)
    for n in (1, 2):
        state.sections["queue"]["pending"] = n
        pub.poll()
    # first connection reads both events, then "drops"
    _, first = _stream(pub, last_event_id=0, max_events=2)
    assert [e[0] for e in first] == [1, 2]
    # events keep flowing while disconnected
    for n in (3, 4, 5):
        state.sections["queue"]["pending"] = n
        pub.poll()
    # reconnect with the last id actually seen
    _, second = _stream(pub, last_event_id=first[-1][0], max_events=3)
    seen = [e[0] for e in first + second]
    assert seen == [1, 2, 3, 4, 5]  # no dup, no skip, in order
    assert second[-1][2] == {"pending": 5}


def test_sse_resume_past_the_buffer_falls_back_to_snapshot():
    state = MutableState(queue={"pending": 0})
    pub = TelemetryPublisher(state, buffer_size=2)
    for n in range(1, 8):
        state.sections["queue"]["pending"] = n
        pub.poll()
    _, events = _stream(pub, last_event_id=1, max_events=1)
    # the replay would have a hole, so the client gets fresh state instead
    ((seq, event, data),) = events
    assert seq == 8 and event == "queue" and data == {"pending": 7}


def test_serve_sse_idle_timeout_returns_without_events():
    pub = TelemetryPublisher(MutableState())
    sent, events = _stream(pub, idle_timeout_s=0.05, heartbeat_s=0.01)
    assert sent == 0 and events == []


def test_make_collector_merges_sections(tmp_path):
    from repro.farm.store import ResultStore
    from repro.obs.trends.store import TrendStore

    store = ResultStore(tmp_path / "store")
    store.save_last_run({"backend": "pool", "points": 4, "extra": "dropped"})
    collect = make_collector(
        store=store, trend_store=TrendStore(tmp_path / "trend")
    )
    state = collect()
    assert state["store"]["records"] == 0
    assert state["store"]["last_run"] == {"backend": "pool", "points": 4}
    assert state["trends"]["status"] == "ok" and state["trends"]["runs"] == 0


def test_controller_collector_reports_queue_and_families(tmp_path):
    from repro.farm.queue.controller import QueueController
    from repro.farm.queue.jobqueue import FileJobQueue
    from repro.farm.points import PointSpec
    from repro.farm.store import ResultStore

    controller = QueueController(
        FileJobQueue(tmp_path / "q"), store=ResultStore(tmp_path / "store")
    )
    controller.submit([PointSpec("selftest", 0, (("mode", "ok"), ("value", 1)))])
    pub = TelemetryPublisher(make_collector(controller=controller))
    events = {e.event: e.data for e in pub.poll()}
    assert events["queue"]["pending"] == 1
    assert events["families"]["selftest"]["submitted"] == 1

    item = controller.lease("w1")
    controller.complete(item["id"], "w1", {"ok": True}, 0.01)
    events = {e.event: e.data for e in pub.poll()}
    assert events["queue"]["pending"] == 0 and events["queue"]["done"] == 1
    assert events["families"]["selftest"]["completed"] == 1


def test_publisher_rejects_degenerate_buffer():
    with pytest.raises(ValueError):
        TelemetryPublisher(MutableState(), buffer_size=0)
