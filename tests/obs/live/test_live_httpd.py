"""The live telemetry plane over real HTTP: both servers, every route.

One threaded server per test on an ephemeral port.  SSE is exercised
with finite responses (``?max_events`` / ``?idle_timeout``) so a plain
``urllib`` GET terminates; resume semantics are asserted across two
sequential connections, exactly how an ``EventSource`` reconnects.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.farm.store import ResultStore
from repro.obs.live.dashboard import DASHBOARD_ETAG
from repro.obs.live.exposition import parse_exposition
from repro.obs.live.httpd import make_dashboard_server
from repro.obs.trends.store import RunMeta, Sample, TrendStore


def _get(url, headers=None):
    req = urllib.request.Request(url, headers=headers or {})
    try:
        with urllib.request.urlopen(req, timeout=10) as resp:
            return resp.status, dict(resp.headers), resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


def _sse_ids(body: bytes):
    return [
        int(line.split(": ", 1)[1])
        for line in body.decode().splitlines()
        if line.startswith("id: ")
    ]


@pytest.fixture
def stores(tmp_path):
    store = ResultStore(tmp_path / "store")
    store.put("ab12" * 16, {"family": "fig8a", "params": {"g": 1}, "row": {"x": 1}})
    store.save_last_run(
        {
            "backend": "pool",
            "points": 1,
            "cached": 0,
            "store_records": 1,
            "metrics": {
                "farm.points.total": {"kind": "gauge", "series": {"{}": 1}}
            },
        }
    )
    trends = TrendStore(tmp_path / "trend")
    trends.append_run(
        RunMeta(run_id="r1", source="farm"),
        [Sample(series="farm.duration_ms/fig8a", value=12.0)],
    )
    return store, trends


@pytest.fixture
def dash(stores, tmp_path):
    store, trends = stores
    traces = tmp_path / "traces"
    traces.mkdir()
    (traces / "fig8.json").write_text('{"traceEvents": []}')
    server = make_dashboard_server(
        result_store=store, trend_store=trends, traces_dir=traces
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.publisher.stop()
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def test_dashboard_page_serves_html_with_etag_revalidation(dash):
    status, headers, body = _get(dash.url + "/")
    assert status == 200
    assert headers["Content-Type"] == "text/html; charset=utf-8"
    assert headers["ETag"] == DASHBOARD_ETAG
    assert b"<!doctype html>" in body.lower() and b"EventSource" in body
    status, _, body = _get(
        dash.url + "/dashboard", {"If-None-Match": DASHBOARD_ETAG}
    )
    assert status == 304 and body == b""


def test_healthz_reports_store_records_and_uptime(dash):
    status, headers, body = _get(dash.url + "/healthz")
    payload = json.loads(body)
    assert status == 200
    assert headers["Content-Type"] == "application/json; charset=utf-8"
    assert payload["ok"] and payload["store_records"] == 1
    assert payload["uptime_s"] >= 0
    assert payload["last_run_backend"] == "pool"


def test_metrics_negotiates_json_and_prometheus(dash):
    status, headers, body = _get(dash.url + "/metrics")
    assert status == 200
    assert headers["Content-Type"].startswith("application/json")
    assert json.loads(body)["snapshot"]["farm.points.total"]["kind"] == "gauge"

    status, headers, body = _get(dash.url + "/metrics?format=prometheus")
    assert status == 200
    assert headers["Content-Type"].startswith("application/openmetrics-text")
    families = parse_exposition(body.decode())
    assert families["farm_points_total"]["type"] == "gauge"
    assert families["farm_points_total"]["samples"][0][2] == 1.0

    status, _, _ = _get(dash.url + "/metrics?format=bogus")
    assert status == 400


def test_metrics_negotiates_via_accept_header(dash):
    _, headers, body = _get(
        dash.url + "/metrics", {"Accept": "application/openmetrics-text"}
    )
    assert headers["Content-Type"].startswith("application/openmetrics-text")
    parse_exposition(body.decode())  # must be a legal document


def test_trends_artifact_revalidates_with_etag(dash):
    status, headers, body = _get(dash.url + "/trends")
    payload = json.loads(body)
    assert status == 200 and payload["schema"] == 1 and payload["runs"] == 1
    series = payload["series"]["farm.duration_ms/fig8a"]
    assert series["values"] == [12.0]
    etag = headers["ETag"]
    status, _, body = _get(dash.url + "/trends", {"If-None-Match": etag})
    assert status == 304 and body == b""


def test_records_index_and_result_fetch(dash):
    status, _, body = _get(dash.url + "/records?limit=5")
    payload = json.loads(body)
    assert status == 200 and payload["total"] == 1
    (entry,) = payload["records"]
    assert entry["family"] == "fig8a" and "row" not in entry

    status, headers, body = _get(dash.url + "/results/" + entry["key"])
    assert status == 200 and json.loads(body)["row"] == {"x": 1}
    status, _, _ = _get(
        dash.url + "/results/" + entry["key"],
        {"If-None-Match": headers["ETag"]},
    )
    assert status == 304

    status, _, _ = _get(dash.url + "/records?limit=0")
    assert status == 400


def test_traces_listing_and_download(dash):
    status, _, body = _get(dash.url + "/traces")
    assert status == 200
    assert json.loads(body)["traces"] == [
        {"name": "fig8.json", "bytes": 19}
    ]
    status, _, body = _get(dash.url + "/traces/fig8.json")
    assert status == 200 and json.loads(body) == {"traceEvents": []}
    status, _, _ = _get(dash.url + "/traces/no-such.json")
    assert status == 404
    status, _, _ = _get(dash.url + "/traces/..%2Fsecret")
    assert status == 400


def test_events_stream_snapshot_then_resume(dash):
    dash.publisher.poll()
    _, headers, body = _get(dash.url + "/events?max_events=2")
    assert headers["Content-Type"] == "text/event-stream; charset=utf-8"
    assert "retry: 2000" in body.decode()
    first = _sse_ids(body)
    assert len(first) == 2

    # Reconnect with Last-Event-ID: nothing new yet -> idle timeout, no
    # duplicates of what we already saw.
    _, _, body = _get(
        dash.url + "/events?idle_timeout=0.1",
        {"Last-Event-ID": str(max(first))},
    )
    assert _sse_ids(body) == []

    # State changes while "disconnected"; the next resume sees only it.
    dash.result_store.put("cd34" * 16, {"family": "fig8b", "row": {}})
    dash.publisher.poll()
    _, _, body = _get(
        dash.url + "/events?max_events=1",
        {"Last-Event-ID": str(max(first))},
    )
    resumed = _sse_ids(body)
    assert resumed and min(resumed) > max(first)  # no skip, no dup


def test_events_reject_bad_last_event_id(dash):
    status, _, _ = _get(
        dash.url + "/events?max_events=1", {"Last-Event-ID": "not-a-number"}
    )
    assert status == 400


def test_unknown_route_is_json_404(dash):
    status, headers, body = _get(dash.url + "/nope")
    assert status == 404
    assert headers["Content-Type"].startswith("application/json")
    assert "error" in json.loads(body)


def test_dashboard_without_stores_serves_empty_state(tmp_path):
    server = make_dashboard_server()
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        status, _, body = _get(server.url + "/healthz")
        assert status == 200 and json.loads(body)["store_records"] == 0
        status, _, body = _get(server.url + "/trends")
        assert status == 200 and json.loads(body)["series"] == {}
        status, _, _ = _get(server.url + "/records")
        assert status == 404
        status, _, _ = _get(server.url + "/traces")
        assert status == 404
        status, _, body = _get(server.url + "/metrics?format=prometheus")
        assert status == 200 and body.decode().rstrip().endswith("# EOF")
    finally:
        server.publisher.stop()
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
