"""Prometheus exposition: parser-level round-trips for every metric kind.

Every assertion goes through :func:`parse_exposition` — the same parser
the smoke script trusts — so "renders legally" means "parses back to the
exact values", not "looks right".
"""

import pytest

from repro.obs.live.exposition import (
    OPENMETRICS_CONTENT_TYPE,
    parse_exposition,
    render_exposition,
)
from repro.obs.registry import MetricsRegistry


def _samples(families, family):
    """{(sample_name, frozen_labels): value} for one family."""
    return {
        (name, tuple(sorted(labels.items()))): value
        for name, labels, value in families[family]["samples"]
    }


@pytest.fixture
def registry():
    reg = MetricsRegistry()
    reg.counter("farm.queue.completed", family="fig8a").inc(3)
    reg.counter("farm.queue.completed", family="table1").inc(5)
    reg.gauge("farm.queue.depth").set(7)
    hist = reg.histogram("farm.point.duration_ms", family="fig8a")
    for v in (1.0, 2.0, 9.0):
        hist.observe(v)
    return reg


def test_counter_round_trips_with_total_suffix(registry):
    families = parse_exposition(render_exposition(registry))
    fam = families["farm_queue_completed"]
    assert fam["type"] == "counter"
    assert fam["help"] == "repro counter farm.queue.completed"
    samples = _samples(families, "farm_queue_completed")
    assert samples[("farm_queue_completed_total", (("family", "fig8a"),))] == 3.0
    assert samples[("farm_queue_completed_total", (("family", "table1"),))] == 5.0


def test_gauge_round_trips_unlabeled(registry):
    families = parse_exposition(render_exposition(registry))
    fam = families["farm_queue_depth"]
    assert fam["type"] == "gauge"
    assert _samples(families, "farm_queue_depth")[("farm_queue_depth", ())] == 7.0


def test_histogram_renders_exact_percentile_summary(registry):
    families = parse_exposition(render_exposition(registry))
    fam = families["farm_point_duration_ms"]
    assert fam["type"] == "summary"
    samples = _samples(families, "farm_point_duration_ms")
    base = (("family", "fig8a"),)
    assert samples[("farm_point_duration_ms", base + (("quantile", "0.5"),))] == 2.0
    assert samples[("farm_point_duration_ms", base + (("quantile", "0.95"),))] == 9.0
    assert samples[("farm_point_duration_ms", base + (("quantile", "0.99"),))] == 9.0
    assert samples[("farm_point_duration_ms_sum", base)] == 12.0
    assert samples[("farm_point_duration_ms_count", base)] == 3.0


def test_snapshot_dict_renders_identically_to_live_registry(registry):
    assert render_exposition(registry.snapshot()) == render_exposition(registry)


def test_every_registry_series_appears(registry):
    families = parse_exposition(render_exposition(registry))
    for name in registry.names():
        prom = name.replace(".", "_")
        assert prom in families, f"{name} missing from exposition"
        n_series = len(registry.series(name))
        kind = registry.kind(name)
        per_series = {"counter": 1, "gauge": 1, "histogram": 5}[kind]
        assert len(families[prom]["samples"]) == n_series * per_series


def test_label_values_escape_and_unescape():
    reg = MetricsRegistry()
    nasty = 'back\\slash "quoted"'
    reg.counter("edge.cases", what=nasty).inc()
    families = parse_exposition(render_exposition(reg))
    ((_, labels, value),) = families["edge_cases"]["samples"]
    assert labels == {"what": nasty}
    assert value == 1.0


def test_cardinality_overflow_series_renders_legally():
    """The registry's ``{overflow=dropped}`` series must parse back."""
    reg = MetricsRegistry(max_series_per_metric=1)
    reg.counter("hot.metric", key="a").inc()
    reg.counter("hot.metric", key="b").inc()  # refused -> overflow series
    reg.counter("hot.metric", key="c").inc(2)  # also overflow
    families = parse_exposition(render_exposition(reg))

    overflow = [
        (labels, value)
        for _, labels, value in families["hot_metric"]["samples"]
        if labels.get("overflow") == "dropped"
    ]
    assert overflow == [({"overflow": "dropped"}, 3.0)]
    # ... and the self-describing drop counter rode along, labeled by metric.
    dropped = _samples(families, "obs_labels_dropped")
    assert dropped[("obs_labels_dropped_total", (("metric", "hot.metric"),))] == 2.0


def test_metric_names_are_sanitized():
    reg = MetricsRegistry()
    reg.gauge("1weird.metric-name!").set(1)
    families = parse_exposition(render_exposition(reg))
    assert "_1weird_metric_name_" in families


def test_namespace_prefixes_every_name(registry):
    families = parse_exposition(render_exposition(registry, namespace="repro"))
    assert all(name.startswith("repro_") for name in families)


def test_kind_collision_keeps_both_families():
    reg = MetricsRegistry()
    reg.counter("a.b").inc()
    reg.gauge("a_b").set(4)
    families = parse_exposition(render_exposition(reg))
    assert families["a_b"]["type"] == "counter"
    assert families["a_b_gauge"]["type"] == "gauge"


def test_document_is_eof_terminated_and_deterministic(registry):
    text = render_exposition(registry)
    assert text.endswith("# EOF\n")
    assert text == render_exposition(registry)


def test_parser_rejects_malformed_documents():
    with pytest.raises(ValueError, match="EOF"):
        parse_exposition("# TYPE x counter\nx_total 1\n")
    with pytest.raises(ValueError, match="malformed"):
        parse_exposition("!!nonsense!!\n# EOF\n")


def test_content_type_is_openmetrics():
    assert OPENMETRICS_CONTENT_TYPE.startswith("application/openmetrics-text")
    assert "charset=utf-8" in OPENMETRICS_CONTENT_TYPE
