"""Trend store: append-only JSONL semantics, validation, damage tolerance."""

import json

import pytest

from repro.obs.trends import RunMeta, Sample, TrendStore, default_trend_path
from repro.obs.trends.store import DEFAULT_TREND_STORE


def _meta(run_id="run-1", **kw):
    kw.setdefault("source", "farm")
    kw.setdefault("calibration_s", 0.5)
    return RunMeta(run_id=run_id, **kw)


def test_append_and_read_round_trip(tmp_path):
    store = TrendStore(tmp_path / "ts")
    rows = store.append_run(
        _meta(git_sha="abc123", fingerprint="deadbeef", quick=True),
        [
            Sample("farm.duration_ms/fig8a", 1.5, raw=750.0, unit="ms", n=4),
            Sample("sim.slices/all", 42.0, raw=42.0, unit="count", kind="exact"),
        ],
    )
    assert rows == 2
    assert store.run_count() == 1
    assert store.run_ids() == ["run-1"]
    assert store.series_ids() == ["farm.duration_ms/fig8a", "sim.slices/all"]
    assert store.values("farm.duration_ms/fig8a") == [1.5]
    (obs,) = store.read_series("sim.slices/all")
    assert obs == {
        "run": "run-1",
        "value": 42.0,
        "raw": 42.0,
        "unit": "count",
        "kind": "exact",
        "n": 1,
    }
    meta = store.runs_by_id()["run-1"]
    assert meta["git_sha"] == "abc123"
    assert meta["fingerprint"] == "deadbeef"
    assert meta["quick"] is True
    assert meta["calibration_s"] == 0.5


def test_appends_accumulate_in_order(tmp_path):
    store = TrendStore(tmp_path / "ts")
    for i in range(5):
        store.append_run(
            _meta(f"run-{i}"), [Sample("bench.normalized/sage", float(i))]
        )
    assert store.values("bench.normalized/sage") == [0.0, 1.0, 2.0, 3.0, 4.0]
    assert store.run_ids() == [f"run-{i}" for i in range(5)]


def test_duplicate_run_id_is_rejected(tmp_path):
    store = TrendStore(tmp_path / "ts")
    store.append_run(_meta("ci-1"), [Sample("x", 1.0)])
    with pytest.raises(ValueError, match="already recorded"):
        store.append_run(_meta("ci-1"), [Sample("x", 2.0)])
    assert store.values("x") == [1.0]  # nothing double-counted


def test_series_id_validation():
    with pytest.raises(ValueError, match="bad series id"):
        Sample("../escape", 1.0)
    with pytest.raises(ValueError, match="bad series id"):
        Sample("a/b/c", 1.0)  # one label segment only
    with pytest.raises(ValueError, match="bad sample kind"):
        Sample("ok.series", 1.0, kind="fuzzy")
    # valid forms
    Sample("farm.duration_ms/fig8a", 1.0)
    Sample("sim.counter/family=fig8a,kind=x", 1.0)


def test_corrupt_lines_are_skipped_not_raised(tmp_path):
    store = TrendStore(tmp_path / "ts")
    store.append_run(_meta("ok-1"), [Sample("s", 1.0)])
    store.append_run(_meta("ok-2"), [Sample("s", 2.0)])
    # simulate a truncated append + a garbage artifact merge
    runs = store.root / "runs.jsonl"
    runs.write_text(runs.read_text() + '{"run_id": "tru\n!!garbage!!\n')
    series = store.root / "series" / "s.jsonl"
    series.write_text(series.read_text() + "{broken\n")
    assert store.run_ids() == ["ok-1", "ok-2"]
    assert store.values("s") == [1.0, 2.0]


def test_empty_store_reads_cleanly(tmp_path):
    store = TrendStore(tmp_path / "nothing-here")
    assert store.runs() == []
    assert store.series_ids() == []
    assert store.values("whatever") == []
    assert store.run_count() == 0


def test_series_filename_encodes_slash(tmp_path):
    store = TrendStore(tmp_path / "ts")
    store.append_run(_meta(), [Sample("farm.duration_ms/fig8a", 1.0)])
    assert (store.root / "series" / "farm.duration_ms@fig8a.jsonl").exists()
    assert store.series_ids() == ["farm.duration_ms/fig8a"]


def test_run_meta_dict_round_trip():
    meta = _meta(quick=False, time_s=123.5)
    data = meta.to_dict()
    assert json.dumps(data)  # JSON-safe
    assert RunMeta.from_dict(data) == meta
    # unknown keys from a newer schema are ignored, Nones dropped
    assert RunMeta.from_dict({**data, "future_field": 1}) == meta
    assert "quick" not in RunMeta(run_id="r", source="s").to_dict()


def test_default_path_honours_env(monkeypatch, tmp_path):
    monkeypatch.delenv("REPRO_TREND_STORE", raising=False)
    assert str(default_trend_path()) == DEFAULT_TREND_STORE
    monkeypatch.setenv("REPRO_TREND_STORE", str(tmp_path / "custom"))
    assert default_trend_path() == tmp_path / "custom"
