"""Critical-path extraction: exact accounting, determinism, reporting."""

import pytest

from repro.harness.obs_runs import CRITPATH_COLUMNS, critpath_point, explain_run
from repro.obs.critpath import (
    CATEGORIES,
    blame_payload,
    render_blame,
    to_json_bytes,
)


@pytest.fixture(scope="module")
def fig8_report():
    _, report = explain_run("fig8", n_ranks=8, perfetto=False)
    return report


@pytest.fixture(scope="module")
def p2p_report():
    _, report = explain_run("fig8-p2p", n_ranks=8, perfetto=False)
    return report


# --- exact accounting (the acceptance invariant) ------------------------------------


@pytest.mark.parametrize("which", ["fig8_report", "p2p_report"])
def test_blame_sums_to_makespan_exactly(which, request):
    report = request.getfixturevalue(which)
    assert report.makespan_ns > 0
    # Every nanosecond of the makespan lands in exactly one category,
    # one rank, and one job — no rounding, no residue.
    assert sum(report.categories_ns.values()) == report.makespan_ns
    assert sum(report.per_rank_ns.values()) == report.makespan_ns
    assert sum(report.per_job_ns.values()) == report.makespan_ns
    assert set(report.categories_ns) == set(CATEGORIES)
    assert all(ns >= 0 for ns in report.categories_ns.values())


def test_barrier_run_blames_collective_phases(fig8_report):
    assert fig8_report.n_collectives > 0
    assert fig8_report.categories_ns["BBM"] > 0
    assert fig8_report.categories_ns["compute"] > 0
    # A pure-barrier benchmark moves no point-to-point payload.
    assert fig8_report.categories_ns["P2P"] == 0
    # Nothing on the path should be unattributable in a clean run.
    assert fig8_report.categories_ns["wait_other"] == 0


def test_p2p_run_blames_message_phases(p2p_report):
    assert p2p_report.n_delivered > 0
    assert p2p_report.categories_ns["DEM"] > 0
    assert p2p_report.categories_ns["MSM"] > 0
    assert p2p_report.categories_ns["P2P"] > 0
    assert p2p_report.categories_ns["wait_other"] == 0


def test_chains_are_ranked_and_staged(p2p_report):
    chains = p2p_report.chains
    assert chains
    totals = [h["total_ns"] for h in chains]
    assert totals == sorted(totals, reverse=True)
    message_hops = [h for h in chains if h["kind"] == "message"]
    assert message_hops, "p2p critical path must traverse messages"
    for hop in chains:
        assert hop["total_ns"] == sum(hop["stages_ns"].values())
        assert set(hop["stages_ns"]) <= set(CATEGORIES)
    assert p2p_report.n_hops >= len(chains)


def test_top_limits_reported_chains():
    _, report = explain_run("fig8", n_ranks=8, top=2, perfetto=False)
    assert len(report.chains) <= 2


# --- determinism -------------------------------------------------------------------


def test_blame_payload_is_byte_deterministic():
    payloads = []
    for _ in range(2):
        _, report = explain_run("fig8", n_ranks=4, perfetto=False)
        payloads.append(
            to_json_bytes(
                blame_payload(report, experiment="fig8", ranks=4, seed=0)
            )
        )
    assert payloads[0] == payloads[1]


def test_payload_schema_and_shares(fig8_report):
    payload = blame_payload(fig8_report, experiment="fig8", ranks=8, seed=0)
    assert payload["schema"] == 1
    assert payload["experiment"] == "fig8"
    assert list(payload["categories_ns"]) == list(CATEGORIES)
    assert sum(payload["categories_ns"].values()) == payload["makespan_ns"]
    assert sum(payload["shares"].values()) == pytest.approx(1.0, abs=1e-4)
    counts = payload["counts"]
    assert counts["hops"] == fig8_report.n_hops
    assert counts["collectives"] == fig8_report.n_collectives


def test_render_blame_is_deterministic_text(fig8_report):
    text = render_blame(fig8_report, "fig8 test")
    assert text == render_blame(fig8_report, "fig8 test")
    assert "critical path of fig8 test" in text
    assert f"makespan {fig8_report.makespan_ns} ns" in text
    assert "total" in text and "100.0%" in text
    assert "per rank (job.rank):" in text


# --- the farm point ----------------------------------------------------------------


def test_critpath_point_shares_cover_the_makespan():
    row = critpath_point("fig8", n_ranks=4)
    assert row["experiment"] == "fig8"
    assert row["makespan_ns"] > 0
    # The grouped percentage columns partition the makespan.
    assert sum(row[c] for c in CRITPATH_COLUMNS) == pytest.approx(100.0, abs=0.01)
    assert row == critpath_point("fig8", n_ranks=4)  # reproducible
