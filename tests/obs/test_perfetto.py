"""Perfetto export: schema validity, content, and byte determinism."""

import json

from repro.harness.obs_runs import run_instrumented

#: Required keys per event phase type (trace-event format).
_REQUIRED = {
    "X": {"name", "cat", "ph", "ts", "dur", "pid", "tid"},
    "M": {"name", "ph", "pid", "tid", "args"},
    "C": {"name", "ph", "ts", "pid", "args"},
    "i": {"name", "ph", "ts", "pid", "tid", "s"},
}


def _run_small(seed=0):
    # 8 ranks on 4 nodes: every microphase kind fires (barrier -> BBM).
    return run_instrumented("fig8", n_ranks=8, seed=seed)


def test_export_is_schema_valid_trace_event_json():
    run = _run_small()
    doc = json.loads(run.obs.perfetto.to_json_bytes())
    assert doc["displayTimeUnit"] == "ns"
    events = doc["traceEvents"]
    assert events, "no events exported"
    for event in events:
        assert event["ph"] in _REQUIRED, f"unknown phase type {event['ph']!r}"
        missing = _REQUIRED[event["ph"]] - set(event)
        assert not missing, f"event {event} missing {missing}"
        if event["ph"] == "X":
            assert event["dur"] >= 0
            assert event["ts"] >= 0


def test_export_has_per_node_and_nic_tracks():
    run = _run_small()
    doc = run.obs.perfetto.to_dict()
    events = doc["traceEvents"]

    process_names = {
        e["pid"]: e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    # 4 compute nodes + the management node's slice-machine track.
    assert sorted(process_names) == [0, 1, 2, 3, 4]
    assert "slice machine" in process_names[4]

    thread_names = {
        (e["pid"], e["tid"]): e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    assert thread_names[(0, 1)] == "NIC threads"

    # Microphase spans exist on the management track and per-node tracks.
    span_names = {(e["pid"], e["name"]) for e in events if e["ph"] == "X"}
    for phase in ("DEM", "MSM", "BBM"):
        assert (4, phase) in span_names, f"mgmt track missing {phase}"
    assert any(pid != 4 and name == "DEM" for pid, name in span_names)
    # NIC-thread occupancy spans carry the paper's thread names.
    nic_spans = {e["name"] for e in events if e["ph"] == "X" and e["tid"] == 1}
    assert nic_spans & {"BS/BR", "BR", "DH", "CH", "RH"}
    # Slice spans nest the microphases by containment.
    assert any(name.startswith("slice ") for _, name in span_names)


def test_microphases_nest_inside_their_slice():
    run = _run_small()
    events = run.obs.perfetto.to_dict()["traceEvents"]
    slices = [
        e for e in events
        if e["ph"] == "X" and e["pid"] == 4 and e["name"].startswith("slice ")
    ]
    phases = [
        e for e in events
        if e["ph"] == "X" and e["pid"] == 4 and e["cat"] == "microphase"
    ]
    assert slices and phases
    for phase in phases:
        inside = any(
            s["ts"] <= phase["ts"]
            and phase["ts"] + phase["dur"] <= s["ts"] + s["dur"] + 1e-9
            for s in slices
        )
        assert inside, f"microphase {phase} not contained in any slice span"


def test_trace_bytes_identical_across_seeded_runs():
    a = _run_small(seed=3).obs.perfetto.to_json_bytes()
    b = _run_small(seed=3).obs.perfetto.to_json_bytes()
    assert a == b


def test_metrics_render_identical_across_seeded_runs():
    from repro.harness.report import metrics_report

    a = _run_small(seed=3)
    b = _run_small(seed=3)
    assert metrics_report(a.obs) == metrics_report(b.obs)
    assert a.obs.profiler.report() == b.obs.profiler.report()
