"""Causal message-lifecycle spans: ordering, flow events, determinism."""

from repro.harness.obs_runs import run_instrumented
from repro.obs import Observability


def _traced(name, n_ranks=4, seed=0):
    obs = Observability(spans=True)
    run = run_instrumented(name, n_ranks=n_ranks, seed=seed, obs=obs)
    return run, obs.spans


def _delivered(tracker):
    return [m for m in tracker.messages if m.delivered_at is not None]


# --- message lifecycle -------------------------------------------------------------


def test_p2p_spans_capture_the_full_lifecycle():
    run, tracker = _traced("fig8-p2p")
    delivered = _delivered(tracker)
    assert delivered, "nearest-neighbour run must deliver messages"
    for m in delivered:
        # Every lifecycle stage present and monotonically ordered.
        assert m.exchanged_at is not None
        assert m.matched_at is not None
        assert m.send_posted_at <= m.exchanged_at <= m.matched_at <= m.delivered_at
        assert m.matched_by in ("send", "recv")
        assert m.dst_key is not None
        assert m.src_node is not None and m.dst_node is not None
        # Chunk windows are ordered, post-match, and account for every byte.
        prev_end = m.matched_at
        for _slice_no, t0, t1, nbytes in m.chunks:
            assert prev_end <= t0 <= t1
            assert nbytes > 0
            prev_end = t1
        if m.size > 0:
            assert sum(c[3] for c in m.chunks) == m.size
            assert m.chunks[-1][2] <= m.delivered_at
    assert tracker.n_delivered == len(delivered)


def test_collective_spans_gather_every_participant():
    run, tracker = _traced("fig8", n_ranks=4)
    assert tracker.collectives, "barrier benchmark must record collectives"
    for c in tracker.collectives:
        assert c.kind == "barrier"
        assert len(c.posts) == 4  # one post per rank
        assert c.scheduled_at is not None
        assert c.completed_at is not None
        assert max(c.posts.values()) <= c.scheduled_at <= c.completed_at


def test_rank_windows_cover_the_run():
    run, tracker = _traced("fig8", n_ranks=4)
    assert len(tracker.rank_finish) == 4
    assert max(tracker.rank_finish.values()) <= run.result.runtime_ns
    for key, (t0, t1) in tracker.rank_start.items():
        assert t0 <= t1
        assert key in tracker.rank_finish
    # Wait blocks never overlap and stay within the run, per rank.
    for key, blocks in tracker.blocks.items():
        prev = None
        for b in sorted(blocks, key=lambda b: b.t0):
            assert b.t0 <= b.t1 <= run.result.runtime_ns
            if prev is not None:
                assert b.t0 >= prev
            prev = b.t1
            assert b.entries  # a wait always awaited something


# --- Perfetto flow events ----------------------------------------------------------


def _ns(us):
    # Perfetto timestamps are microsecond floats; exact containment
    # checks must compare in integer nanoseconds (float us addition
    # loses the last digit).
    return round(us * 1000)


def test_flow_events_form_complete_triples_inside_real_slices():
    obs = Observability(spans=True)
    run_instrumented("fig8-p2p", n_ranks=4, obs=obs)
    events = obs.perfetto.to_dict()["traceEvents"]
    flows = [e for e in events if e.get("cat") == "msgflow"]
    assert flows, "p2p run must emit message flow events"
    by_id = {}
    for e in flows:
        by_id.setdefault(e["id"], []).append(e["ph"])
    for phases in by_id.values():
        assert sorted(phases) == ["f", "s", "t"]  # start, step, end
    # flow ids are the dense tracker-local message ids
    assert sorted(by_id) == list(range(len(by_id)))
    # Every flow event lands inside a real duration span on its track.
    spans = [e for e in events if e.get("ph") == "X"]
    for e in flows:
        t = _ns(e["ts"])
        assert any(
            x["pid"] == e["pid"]
            and x["tid"] == e["tid"]
            and _ns(x["ts"]) <= t <= _ns(x["ts"]) + _ns(x["dur"])
            for x in spans
        ), f"flow event at {t} ns not inside any span on its track"


def test_no_flow_events_without_span_tracking():
    obs = Observability()  # spans off by default
    run_instrumented("fig8-p2p", n_ranks=4, obs=obs)
    assert obs.spans is None
    assert not any(
        e.get("cat") == "msgflow" for e in obs.perfetto.to_dict()["traceEvents"]
    )


# --- determinism -------------------------------------------------------------------

def _lifecycle_fingerprint(tracker):
    return [
        (
            m.msg_id,
            m.src_key,
            m.dst_key,
            m.tag,
            m.size,
            m.send_posted_at,
            m.exchanged_at,
            m.matched_at,
            m.delivered_at,
            tuple(m.chunks),
        )
        for m in tracker.messages
    ]


def test_span_ids_and_timings_are_run_invariant():
    _, t1 = _traced("fig8-p2p")
    _, t2 = _traced("fig8-p2p")
    assert _lifecycle_fingerprint(t1) == _lifecycle_fingerprint(t2)
    assert [c.posts for c in t1.collectives] == [c.posts for c in t2.collectives]
