"""``repro trend`` end to end, driven through the harness CLI entry point."""

import json

import pytest

from repro.harness.cli import main
from repro.obs.trends import RunMeta, Sample, TrendStore
from repro.obs.trends.report import render_chart, render_report, sparkline


def _seed_store(path, series, values, kind="timing"):
    store = TrendStore(path)
    for i, v in enumerate(values):
        store.append_run(
            RunMeta(run_id=f"r{i}", source="test", calibration_s=1.0),
            [Sample(series, v, raw=v, kind=kind)],
        )
    return store


def _bench_report(tmp_path, normalized=2.0, name="report.json"):
    path = tmp_path / name
    path.write_text(
        json.dumps(
            {
                "schema": 1,
                "quick": True,
                "calibration_s": 0.25,
                "python": "3.12.0",
                "benchmarks": {
                    "sage_fig10": {
                        "kind": "macro",
                        "wall_s": normalized * 0.25,
                        "normalized": normalized,
                        "virtual_ns": 1000,
                        "idle_slices_skipped": 5,
                    }
                },
            }
        )
    )
    return path


def test_record_bench_then_list_and_report(tmp_path, capsys):
    store = tmp_path / "ts"
    report = _bench_report(tmp_path)
    for i in range(3):
        # distinct run ids come from wall-clock time; force them via seed-less
        # bench records (each invocation creates a fresh run id)
        assert main(
            ["trend", "record", "--store", str(store), "--bench-report", str(report)]
        ) == 0
    out = capsys.readouterr().out
    assert "recorded run bench-" in out
    assert main(["trend", "list", "--store", str(store)]) == 0
    out = capsys.readouterr().out
    assert "3 run(s)" in out
    assert "bench.normalized/sage_fig10  (3 observations)" in out
    assert main(["trend", "report", "--store", str(store)]) == 0
    out = capsys.readouterr().out
    assert "-- bench.normalized --" in out
    assert "sage_fig10" in out


def test_record_seed_baseline_is_idempotent(tmp_path, capsys):
    store = tmp_path / "ts"
    report = _bench_report(tmp_path)
    assert main(
        ["trend", "record", "--store", str(store), "--seed-baseline", str(report)]
    ) == 0
    assert "seed-baseline" in capsys.readouterr().out
    assert main(
        ["trend", "record", "--store", str(store), "--seed-baseline", str(report)]
    ) == 0
    assert "already recorded" in capsys.readouterr().out
    assert TrendStore(store).run_count() == 1


def test_record_farm_store_reads_last_run(tmp_path, capsys):
    farm_store = tmp_path / "farm"
    farm_store.mkdir()
    (farm_store / "last-run.json").write_text(
        json.dumps(
            {
                "fingerprint": "cafe" * 16,
                "duration_s": 3.0,
                "executed": 2,
                "metrics": {
                    "farm.point.duration_ms": {
                        "kind": "histogram",
                        "series": {"{family=selftest}": {"count": 2, "sum": 500.0}},
                    }
                },
            }
        )
    )
    ts = tmp_path / "ts"
    assert main(
        ["trend", "record", "--store", str(ts), "--farm-store", str(farm_store)]
    ) == 0
    assert "recorded run farm-" in capsys.readouterr().out
    assert "farm.duration_ms/selftest" in TrendStore(ts).series_ids()


def test_record_fully_cached_farm_run_is_a_noop(tmp_path, capsys):
    farm_store = tmp_path / "farm"
    farm_store.mkdir()
    (farm_store / "last-run.json").write_text(
        json.dumps({"fingerprint": "f", "executed": 0, "metrics": {}})
    )
    ts = tmp_path / "ts"
    assert main(
        ["trend", "record", "--store", str(ts), "--farm-store", str(farm_store)]
    ) == 0
    assert "fully cached" in capsys.readouterr().out
    assert TrendStore(ts).run_count() == 0


def test_check_passes_on_stable_series(tmp_path, capsys):
    store = tmp_path / "ts"
    _seed_store(store, "farm.duration_ms/selftest", [10.0, 10.0, 10.1, 9.9, 10.0])
    assert main(["trend", "check", "--store", str(store)]) == 0
    out = capsys.readouterr().out
    assert "trend gate passed" in out
    assert "1 ok" in out


def test_check_fails_and_names_the_family(tmp_path, capsys):
    store = tmp_path / "ts"
    _seed_store(
        store, "farm.duration_ms/selftest", [10.0, 10.0, 10.0, 10.0, 30.0]
    )
    json_path = tmp_path / "verdict.json"
    rc = main(
        [
            "trend",
            "check",
            "--store",
            str(store),
            "--series",
            "farm.*",
            "--json",
            str(json_path),
        ]
    )
    assert rc == 1
    captured = capsys.readouterr()
    assert "TREND GATE FAILED: farm.duration_ms/selftest" in captured.err
    payload = json.loads(json_path.read_text())
    assert payload["status"] == "regress"
    assert payload["series"]["farm.duration_ms/selftest"]["status"] == "regress"


def test_check_short_history_never_gates(tmp_path, capsys):
    store = tmp_path / "ts"
    _seed_store(store, "farm.duration_ms/selftest", [10.0, 30.0])
    assert main(["trend", "check", "--store", str(store)]) == 0
    assert "1 short" in capsys.readouterr().out


def test_check_strict_fails_on_warn(tmp_path, capsys):
    store = tmp_path / "ts"
    # exact series change: a warn, which only --strict escalates
    _seed_store(store, "bench.virtual_ns/sage", [100.0, 100.0, 200.0], kind="exact")
    assert main(["trend", "check", "--store", str(store)]) == 0
    capsys.readouterr()
    assert main(["trend", "check", "--store", str(store), "--strict"]) == 1
    assert "deterministic value changed" in capsys.readouterr().err


def test_check_thresholds_override_file(tmp_path, capsys):
    store = tmp_path / "ts"
    _seed_store(store, "farm.duration_ms/noisy", [10.0, 10.0, 10.0, 10.0, 30.0])
    thresholds = tmp_path / "thresholds.json"
    thresholds.write_text(
        json.dumps({"farm.duration_ms/noisy": {"regress_pct": 5.0, "warn_pct": 4.0}})
    )
    assert main(["trend", "check", "--store", str(store)]) == 1
    capsys.readouterr()
    assert (
        main(
            [
                "trend",
                "check",
                "--store",
                str(store),
                "--thresholds",
                str(thresholds),
            ]
        )
        == 0
    )


def test_chart_known_and_unknown_series(tmp_path, capsys):
    store = tmp_path / "ts"
    _seed_store(store, "farm.duration_ms/selftest", [1.0, 2.0, 3.0])
    assert main(
        ["trend", "chart", "--store", str(store), "farm.duration_ms/selftest"]
    ) == 0
    assert "farm.duration_ms/selftest" in capsys.readouterr().out
    assert main(["trend", "chart", "--store", str(store), "nope"]) == 2
    err = capsys.readouterr().err
    assert "unknown series" in err
    assert "farm.duration_ms/selftest" in err  # lists what exists


def test_record_unreadable_input_exits_2(tmp_path, capsys):
    rc = main(
        [
            "trend",
            "record",
            "--store",
            str(tmp_path / "ts"),
            "--bench-report",
            str(tmp_path / "missing.json"),
        ]
    )
    assert rc == 2
    assert "cannot read" in capsys.readouterr().err


def test_sparkline_and_render_helpers(tmp_path):
    assert sparkline([]) == ""
    # Flat (and single-point) series sit at the middle block, not the
    # bottom one — the bottom reads as "near zero".
    assert sparkline([1.0, 1.0, 1.0]) == "▅▅▅"
    assert sparkline([42.0]) == "▅"
    line = sparkline([0.0, 1.0, 2.0, 3.0])
    assert line[0] == "▁" and line[-1] == "█"
    assert len(sparkline(list(range(100)), width=24)) == 24

    store = _seed_store(
        tmp_path / "ts", "farm.duration_ms/selftest", [1.0, 2.0, 3.0]
    )
    chart = render_chart(store, "farm.duration_ms/selftest", height=4)
    assert "max 3" in chart and "█" in chart
    empty = TrendStore(tmp_path / "empty")
    assert "empty" in render_report(empty)


def test_render_chart_empty_series(tmp_path):
    store = TrendStore(tmp_path / "ts")
    out = render_chart(store, "never.recorded")
    assert "no observations" in out
    assert "█" not in out


def test_render_chart_single_point_sits_mid_height(tmp_path):
    store = _seed_store(tmp_path / "ts", "s", [7.5])
    chart = render_chart(store, "s", height=10)
    lines = chart.splitlines()
    assert "flat at 7.5" in lines[0]
    bar_rows = [i for i, ln in enumerate(lines) if "█" in ln]
    assert len(bar_rows) == 1
    # height 10 -> plot rows 1..10; the bar must not hug the bottom row
    assert bar_rows[0] not in (1, 10)
    assert "7.5" in lines[bar_rows[0]]  # value labeled on the bar's row


def test_render_chart_two_point_flat_series(tmp_path):
    store = _seed_store(tmp_path / "ts", "s", [3.0, 3.0])
    chart = render_chart(store, "s", height=6)
    assert "flat at 3" in chart
    bar_lines = [ln for ln in chart.splitlines() if "██" in ln]
    assert len(bar_lines) == 1  # both columns drawn, same mid row


def test_render_chart_two_point_rising_series(tmp_path):
    store = _seed_store(tmp_path / "ts", "s", [1.0, 2.0])
    chart = render_chart(store, "s", height=4)
    assert "min 1" in chart and "max 2" in chart
    lines = chart.splitlines()
    assert "█" in lines[1]  # the max lands on the top plot row
    assert "█" in lines[-2]  # the min on the bottom plot row
