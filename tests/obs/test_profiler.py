"""MPI profiler attribution and the trace/metrics CLI subcommands."""

import json

from repro.harness.cli import main
from repro.obs import MpiProfiler


# --- attribution model -------------------------------------------------------


def test_wait_time_attributed_between_app_and_mpi():
    prof = MpiProfiler()
    # Rank computes [0, 40), waits in MPI [40, 100), computes [100, 110),
    # waits [110, 150).
    prof.record_wait(7, 0, "wait", 40, 100)
    prof.record_wait(7, 0, "wait", 110, 150)
    rank = prof.ranks[(0, 0)]
    assert rank.app_ns == 40 + 10
    assert rank.mpi_ns == 60 + 40


def test_job_ids_normalized_to_run_local_indices():
    # Two profilers seeing different process-global job ids produce the
    # same report: ranks are keyed by order of first appearance.
    a, b = MpiProfiler(), MpiProfiler()
    for prof, job_id in ((a, 0), (b, 5)):
        prof.record_wait(job_id, 0, "wait", 10, 20)
    assert a.report() == b.report()
    assert (0, 0) in a.ranks and (0, 0) in b.ranks


def test_post_counts_bytes_per_site():
    prof = MpiProfiler()
    for rank in (0, 1):  # same source line -> same call site
        prof.record_post(0, rank, "send", 1000)
    (op, _site), (count, wait_ns, nbytes) = next(iter(prof.sites.items()))
    assert op == "send"
    assert (count, wait_ns, nbytes) == (2, 0, 2000)


def test_report_shape():
    prof = MpiProfiler()
    prof.record_post(0, 0, "send", 4096)
    prof.record_wait(0, 0, "wait(send)", 1_000_000, 3_000_000)
    text = prof.report()
    assert "@--- MPI Time" in text
    assert "@--- Callsites" in text
    assert "wait(send)" in text
    # Aggregate row: 1 ms app (0 -> 1 ms), 2 ms MPI -> 66.67%.
    assert " 66.67" in text


# --- CLI subcommands ---------------------------------------------------------


def test_cli_trace_writes_perfetto_json(tmp_path, capsys):
    out = tmp_path / "trace.json"
    assert main(["trace", "fig8", "--ranks", "4", "--out", str(out)]) == 0
    doc = json.loads(out.read_bytes())
    assert doc["displayTimeUnit"] == "ns"
    assert any(e.get("name") == "DEM" for e in doc["traceEvents"])
    assert "trace events ->" in capsys.readouterr().out


def test_cli_metrics_prints_distributions_and_profile(capsys):
    assert main(["metrics", "fig8", "--ranks", "4"]) == 0
    out = capsys.readouterr().out
    assert "== distributions ==" in out
    assert "bcs.microphase.duration_ns" in out
    assert "bcs.slice.utilization" in out
    assert "@--- MPI Time" in out


def test_cli_trace_rejects_unknown_experiment(capsys):
    try:
        main(["trace", "fig99"])
    except SystemExit as exc:
        assert exc.code == 2
    else:  # pragma: no cover - argparse always raises
        raise AssertionError("expected argparse to reject fig99")
