"""Scalability smoke tests: the simulator handles large machines."""

import pytest

from repro.apps import barrier_benchmark
from repro.bcs import BcsConfig, BcsRuntime
from repro.harness import run_workload
from repro.network import Cluster, ClusterSpec
from repro.storm import JobSpec
from repro.units import ms, seconds


def test_128_rank_barrier_job():
    """A 64-node, 128-rank job runs and synchronizes correctly."""
    result = run_workload(
        barrier_benchmark,
        n_ranks=128,
        backend="bcs",
        params=dict(granularity=ms(3), iterations=3),
        bcs_config=BcsConfig(init_cost=0),
        max_time=seconds(60),
    )
    assert result.n_ranks == 128
    assert result.stats["collectives_scheduled"] == 3


def test_256_rank_reduce_correct():
    """Reduction over 256 ranks across 128 nodes is exact."""
    import numpy as np

    def app(ctx):
        total = yield from ctx.comm.allreduce(np.float64(ctx.rank), "sum")
        return float(total)

    result = run_workload(
        app,
        n_ranks=256,
        backend="bcs",
        bcs_config=BcsConfig(init_cost=0),
        max_time=seconds(60),
    )
    expected = float(sum(range(256)))
    assert all(r == expected for r in result.results)


def test_wide_fanout_alltoall_completes():
    """64-rank alltoall: ~4k simultaneous messages drain through the
    slice machine."""

    def app(ctx):
        out = yield from ctx.comm.alltoall([ctx.rank * 1000 + j for j in range(ctx.size)])
        return out[0]

    result = run_workload(
        app,
        n_ranks=64,
        backend="bcs",
        bcs_config=BcsConfig(init_cost=0),
        max_time=seconds(60),
    )
    # Everyone received rank 0's chunk addressed to them.
    assert result.results[5] == 5
    assert result.stats["messages_delivered"] == 64 * 63
