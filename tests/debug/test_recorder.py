"""Tests for the deterministic-replay flight recorder."""

import numpy as np
import pytest

from repro.bcs import BcsConfig, BcsRuntime
from repro.debug import FlightRecorder, assert_replayable, diff_logs
from repro.network import Cluster, ClusterSpec
from repro.noise import NoiseConfig, NoiseInjector
from repro.storm import JobSpec
from repro.units import kib, ms, seconds


def _app(ctx):
    peer = ctx.rank ^ 1
    for i in range(3):
        # Real compute so CPU-level perturbations (noise) shift the
        # communication timeline.
        yield from ctx.compute(ms(1))
        got = yield from ctx.comm.sendrecv(
            np.array([float(ctx.rank + i)]), dest=peer, source=peer, sendtag=i, recvtag=i
        )
        _ = yield from ctx.comm.allreduce(np.float64(got[0]), "sum")


def run_once(trace, seed=0, noise=False):
    cluster = Cluster(ClusterSpec(n_nodes=2, seed=seed), trace=trace)
    if noise:
        # Bursts must span multiple slices to be visible: BCS's slice
        # quantization *absorbs* sub-slice perturbations (the
        # coscheduling robustness the paper argues for).
        NoiseInjector(
            cluster,
            NoiseConfig(period=ms(3), duration=ms(1.6), daemons_per_node=2),
        ).start()
    runtime = BcsRuntime(cluster, BcsConfig(init_cost=0))
    runtime.run_job(JobSpec(app=_app, n_ranks=4), max_time=seconds(30))


def test_log_captures_all_event_kinds():
    recorder = FlightRecorder()
    run_once(recorder.trace)
    log = recorder.log()
    kinds = {e[1] for e in log}
    assert {"unicast", "phase"} <= kinds
    # Events come out in time order.
    times = [e[0] for e in log]
    assert times == sorted(times)


def test_identical_runs_produce_identical_logs():
    log = assert_replayable(lambda trace: run_once(trace))
    assert log  # something was recorded


def test_diff_reports_first_divergence():
    a = [(1, "unicast", 0, 1, 64, "p2p"), (2, "phase", 1, "DEM", 10)]
    b = [(1, "unicast", 0, 1, 64, "p2p"), (2, "phase", 1, "MSM", 10)]
    divergences = diff_logs(a, b)
    assert len(divergences) == 1
    assert divergences[0].index == 1
    assert "DEM" in str(divergences[0])


def test_diff_detects_truncated_log():
    a = [(1, "unicast", 0, 1, 64, "p2p")]
    divergences = diff_logs(a, [])
    assert divergences[0].index == 0
    assert divergences[0].right is None


def test_identical_logs_diff_empty():
    a = [(1, "unicast", 0, 1, 64, "p2p")]
    assert diff_logs(a, list(a)) == []


def test_noise_perturbs_the_log():
    """A genuinely different execution (noise on) shows up in the diff."""
    quiet = FlightRecorder()
    run_once(quiet.trace, noise=False)
    noisy = FlightRecorder()
    run_once(noisy.trace, noise=True)
    assert diff_logs(quiet.log(), noisy.log())


def test_assert_replayable_raises_on_nondeterminism():
    calls = {"n": 0}

    def flaky(trace):
        calls["n"] += 1
        # Second run uses a different seed: logs must differ.
        run_once(trace, noise=True, seed=calls["n"])

    with pytest.raises(AssertionError, match="not replayable"):
        assert_replayable(flaky)
