"""Tests for the stall diagnostician."""

import pytest

from repro.bcs import BcsConfig, BcsRuntime
from repro.debug import diagnose
from repro.network import Cluster, ClusterSpec
from repro.storm import JobSpec
from repro.units import ms, seconds, us


def make():
    cluster = Cluster(ClusterSpec(n_nodes=2))
    return cluster, BcsRuntime(cluster, BcsConfig(init_cost=0))


def test_unmatched_send_reported():
    cluster, runtime = make()

    def app(ctx):
        if ctx.rank == 0:
            # Tag mismatch: nobody ever posts tag 7.
            yield from ctx.comm.send(b"lost", dest=1, tag=7)
        else:
            yield from ctx.comm.recv(source=0, tag=8)

    job = runtime.launch(JobSpec(app=app, n_ranks=2))
    cluster.env.run(until=ms(5))
    report = diagnose(runtime)
    assert "tag=7 size=4 has NO matching receive" in report
    assert "tag=8 has NO matching send" in report
    assert "blocked" in report


def test_straggler_collective_reported():
    cluster, runtime = make()

    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.barrier()
        else:
            yield from ctx.compute(seconds(10))  # never reaches the barrier
            yield from ctx.comm.barrier()

    runtime.launch(JobSpec(app=app, n_ranks=2))
    cluster.env.run(until=ms(5))
    report = diagnose(runtime)
    assert "barrier" in report
    assert "waiting for local ranks [1]" in report


def test_clean_state_reports_nothing_pending():
    cluster, runtime = make()

    def app(ctx):
        yield from ctx.compute(seconds(1))

    runtime.launch(JobSpec(app=app, n_ranks=2))
    cluster.env.run(until=ms(5))
    report = diagnose(runtime)
    assert "computing" in report
    assert "NO matching" not in report
    assert "blocked" not in report


def test_watchdog_error_includes_diagnosis():
    cluster, runtime = make()

    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.recv(source=1, tag=3)  # never sent
        else:
            yield ctx.env.timeout(1)

    with pytest.raises(RuntimeError) as excinfo:
        runtime.run_job(JobSpec(app=app, n_ranks=2), max_time=ms(20))
    message = str(excinfo.value)
    assert "stall diagnosis" in message
    assert "NO matching send" in message
