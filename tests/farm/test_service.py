"""Farm orchestration: caching, aggregation, metrics, failure reporting."""

import platform

import pytest

from repro.obs import MetricsRegistry
from repro.obs.trends import TrendStore
from repro.farm.points import expand_family
from repro.farm.service import run_farm
from repro.farm.store import ResultStore

pytestmark = pytest.mark.farm_subprocess


def _run(tmp_path, **kw):
    kw.setdefault("store", ResultStore(tmp_path / "store"))
    kw.setdefault("jobs", 2)
    kw.setdefault("progress", False)
    return kw["store"], run_farm(**kw)


def test_first_run_executes_second_run_is_fully_cached(tmp_path):
    store = ResultStore(tmp_path / "store")
    first = run_farm(
        families=["selftest"], store=store, jobs=2, progress=False
    )
    assert first.ok
    assert first.n_executed == first.n_points > 0
    assert first.n_cached == 0

    second = run_farm(
        families=["selftest"], store=store, jobs=2, progress=False
    )
    assert second.ok
    assert second.n_executed == 0
    assert second.n_cached == second.n_points == first.n_points
    assert [f.rows for f in second.families] == [f.rows for f in first.families]
    # cache hits are visible in the registry, labeled by family
    hits = second.registry.counter("farm.cache.hits", family="selftest")
    assert hits.value == second.n_points


def test_no_cache_forces_re_execution(tmp_path):
    store = ResultStore(tmp_path / "store")
    run_farm(families=["selftest"], store=store, jobs=1, progress=False)
    again = run_farm(
        families=["selftest"], store=store, jobs=1, use_cache=False, progress=False
    )
    assert again.n_cached == 0
    assert again.n_executed == again.n_points


def test_failed_points_are_reported_not_cached_and_do_not_stall(tmp_path):
    store = ResultStore(tmp_path / "store")
    report = run_farm(
        families=[],
        extra_specs=expand_family("selftest", "paper", {"modes": ("ok", "hang", "ok")}),
        store=store,
        jobs=2,
        timeout_s=1.0,
        retries=1,
        progress=False,
    )
    assert not report.ok
    assert report.n_failed == 1
    assert report.n_retried == 1
    (family,) = report.families
    assert not family.complete
    assert [r["value"] for r in family.rows] == [0, 2]  # the ok points landed
    (failure,) = report.failures()
    assert failure.attempts == 2
    assert "timed out" in failure.error
    # failures are never cached: only the 2 ok rows are stored
    assert store.count() == 2
    # ... and the farm counters expose the failure/retry summary by family
    reg = report.registry
    assert reg.counter("farm.points.failed", family="selftest").value == 1
    assert reg.counter("farm.points.retried", family="selftest").value == 1
    assert reg.counter("farm.points.completed", family="selftest").value == 2


def test_metrics_registry_is_populated(tmp_path):
    registry = MetricsRegistry()
    store = ResultStore(tmp_path / "store")
    report = run_farm(
        families=["selftest"],
        store=store,
        jobs=2,
        registry=registry,
        progress=False,
    )
    assert report.registry is registry
    assert registry.counter("farm.runs").value == 1
    total = registry.counter("farm.points.total", family="selftest")
    assert total.value == report.n_points
    hist = registry.histogram("farm.point.duration_ms", family="selftest")
    assert hist.count == report.n_points
    assert registry.gauge("farm.queue.depth").value == 0  # drained


def test_last_run_summary_is_persisted(tmp_path):
    store = ResultStore(tmp_path / "store")
    report = run_farm(families=["selftest"], store=store, jobs=1, progress=False)
    last = store.load_last_run()
    assert last["points"] == report.n_points
    assert last["failed"] == 0
    assert last["families"]["selftest"]["ok"] == report.n_points
    assert "farm.points.completed" in last["metrics"]
    assert "farm.points.completed" in last["metrics_render"]


def test_last_run_summary_carries_provenance(tmp_path):
    store = ResultStore(tmp_path / "store")
    report = run_farm(families=["selftest"], store=store, jobs=1, progress=False)
    last = store.load_last_run()
    # trend rows and cache records join on *what* produced the run
    assert last["fingerprint"] == report.fingerprint
    assert len(last["fingerprint"]) >= 12  # the source-tree digest, not a stub
    assert last["git_sha"]  # "unknown" outside a git checkout, never absent
    assert last["python"] == platform.python_version()


def test_trend_store_records_executed_runs_only(tmp_path):
    store = ResultStore(tmp_path / "store")
    trends = TrendStore(tmp_path / "trends")
    report = run_farm(
        families=["selftest"],
        store=store,
        jobs=1,
        progress=False,
        trend_store=trends,
    )
    assert report.ok
    assert trends.run_count() == 1
    assert "farm.duration_ms/selftest" in trends.series_ids()
    (meta,) = trends.runs()
    assert meta["source"] == "farm"
    assert meta["fingerprint"] == report.fingerprint
    assert meta["calibration_s"] > 0

    # second run is fully cached: a cache replay measures the disk, not
    # the simulator, so nothing new may land in the trend store
    run_farm(
        families=["selftest"],
        store=store,
        jobs=1,
        progress=False,
        trend_store=trends,
    )
    assert trends.run_count() == 1


def test_trend_recording_is_off_by_default(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_TREND_RECORD", raising=False)
    monkeypatch.setenv("REPRO_TREND_STORE", str(tmp_path / "trends"))
    store = ResultStore(tmp_path / "store")
    run_farm(families=["selftest"], store=store, jobs=1, progress=False)
    assert not (tmp_path / "trends").exists()


def test_trend_recording_via_env_var(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TREND_RECORD", "1")
    monkeypatch.setenv("REPRO_TREND_STORE", str(tmp_path / "trends"))
    store = ResultStore(tmp_path / "store")
    run_farm(families=["selftest"], store=store, jobs=1, progress=False)
    assert TrendStore(tmp_path / "trends").run_count() == 1


def test_cached_rows_preserve_key_order(tmp_path):
    store = ResultStore(tmp_path / "store")
    first = run_farm(families=["selftest"], store=store, jobs=1, progress=False)
    second = run_farm(families=["selftest"], store=store, jobs=1, progress=False)
    for fresh, cached in zip(first.families[0].rows, second.families[0].rows):
        assert list(fresh) == list(cached)  # key order, not just equality


def test_cache_hit_rate_gauge_and_summary(tmp_path):
    store = ResultStore(tmp_path / "store")
    first = run_farm(families=["selftest"], store=store, jobs=1, progress=False)
    assert first.cache_hit_rate == 0.0
    assert first.registry.gauge("farm.cache.hit_rate").value == 0.0
    assert first.summary_dict()["cache_hit_rate"] == 0.0

    second = run_farm(families=["selftest"], store=store, jobs=1, progress=False)
    assert second.cache_hit_rate == 1.0
    assert second.registry.gauge("farm.cache.hit_rate").value == 1.0
    # persisted into last-run.json, where `repro farm metrics` reads it
    assert store.load_last_run()["cache_hit_rate"] == 1.0


def test_cache_hit_rate_partial(tmp_path):
    store = ResultStore(tmp_path / "store")
    run_farm(
        families=[],
        extra_specs=expand_family("selftest", "paper", {"modes": ("ok",)}),
        store=store,
        jobs=1,
        progress=False,
    )
    # Two points, one already cached from the first run.
    report = run_farm(
        families=[],
        extra_specs=expand_family("selftest", "paper", {"modes": ("ok", "ok")}),
        store=store,
        jobs=1,
        progress=False,
    )
    assert report.n_points == 2 and report.n_cached == 1
    assert report.cache_hit_rate == 0.5
    assert report.registry.gauge("farm.cache.hit_rate").value == 0.5


def test_trend_columns_mirror_rows_into_gauges_and_trend_store(tmp_path):
    store = ResultStore(tmp_path / "store")
    trends = TrendStore(tmp_path / "trends")
    report = run_farm(
        families=["critpath"],
        preset="smoke",
        store=store,
        jobs=1,
        progress=False,
        trend_store=trends,
    )
    assert report.ok
    snap = report.registry.snapshot()
    label = "{family=critpath,point=fig8-8-0}"
    share_cols = (
        "compute_pct",
        "dem_pct",
        "msm_pct",
        "p2p_pct",
        "coll_pct",
        "wait_pct",
    )
    for col in share_cols:
        assert label in snap[f"farm.row.{col}"]["series"]
    # The blame-share columns partition the run's makespan.
    total = sum(snap[f"farm.row.{c}"]["series"][label] for c in share_cols)
    assert abs(total - 100.0) < 0.01
    # ... and land in the trend store as exact series, so `repro trend
    # check` gates on critical-path composition shifts.
    assert (
        "farm.row.compute_pct/family=critpath,point=fig8-8-0"
        in trends.series_ids()
    )
