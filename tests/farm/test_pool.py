"""Worker pool: isolation, timeouts, retries, crash containment.

These tests spawn real child interpreters, so they use only the cheap
``selftest`` family and short timeouts.
"""

import pytest

from repro.farm.points import expand_family
from repro.farm.pool import WorkerPool

pytestmark = pytest.mark.farm_subprocess


def _selftest_specs(*modes):
    return expand_family("selftest", "paper", {"modes": modes})


def test_ok_points_return_rows_in_input_order():
    outcomes = WorkerPool(jobs=2, timeout_s=60).run(_selftest_specs("ok", "ok", "ok"))
    assert [o.status for o in outcomes] == ["ok"] * 3
    assert [o.row["value"] for o in outcomes] == [0, 1, 2]
    assert [o.row["doubled"] for o in outcomes] == [0, 2, 4]
    assert all(o.attempts == 1 for o in outcomes)
    assert all(not o.cached for o in outcomes)


def test_hanging_point_times_out_retries_and_does_not_stall_others():
    outcomes = WorkerPool(jobs=2, timeout_s=1.0, retries=1).run(
        _selftest_specs("ok", "hang", "ok")
    )
    ok0, hung, ok2 = outcomes
    assert ok0.ok and ok2.ok
    assert hung.status == "failed"
    assert hung.attempts == 2  # first try + one retry
    assert "timed out" in hung.error


def test_crashing_point_is_contained():
    outcomes = WorkerPool(jobs=2, timeout_s=30, retries=1).run(
        _selftest_specs("ok", "crash")
    )
    ok, crashed = outcomes
    assert ok.ok
    assert crashed.status == "failed"
    assert crashed.attempts == 2
    assert "exited without a result" in crashed.error


def test_deterministic_error_is_not_retried():
    outcomes = WorkerPool(jobs=1, timeout_s=30, retries=3).run(
        _selftest_specs("error")
    )
    (failed,) = outcomes
    assert failed.status == "failed"
    assert failed.attempts == 1  # errors are deterministic: no retry
    assert "RuntimeError: injected point failure" in failed.error


def test_zero_retries_fails_fast():
    outcomes = WorkerPool(jobs=1, timeout_s=1.0, retries=0).run(
        _selftest_specs("hang")
    )
    assert outcomes[0].status == "failed"
    assert outcomes[0].attempts == 1


def test_events_are_emitted():
    events = []
    WorkerPool(jobs=1, timeout_s=1.0, retries=1).run(
        _selftest_specs("ok", "hang"),
        on_event=lambda kind, info: events.append(kind),
    )
    assert events.count("done") == 2
    assert events.count("retry") == 1
    assert events.count("start") == 3  # 2 firsts + 1 retry


def test_constructor_validation():
    with pytest.raises(ValueError):
        WorkerPool(jobs=0)
    with pytest.raises(ValueError):
        WorkerPool(timeout_s=0)
    with pytest.raises(ValueError):
        WorkerPool(retries=-1)
