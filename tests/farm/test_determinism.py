"""Cross-process determinism: a farm child reproduces in-process rows.

One representative (cheapest) point per experiment family runs both
in-process and through a spawned farm worker; the row dicts must be
identical down to key order and float bits (the simulator is
deterministic, virtual timestamps included).  This is the invariant the
result cache and the byte-identical-tables guarantee rest on.
"""

import json

import pytest

from repro.farm.points import FIGURE_FAMILIES, execute_point, expand_family
from repro.farm.pool import WorkerPool

pytestmark = pytest.mark.farm_subprocess


def _representatives():
    # First point of each family's reduced (smoke) sweep: cheap but still
    # one real simulation per family.
    return [expand_family(name, "smoke")[0] for name in FIGURE_FAMILIES]


def test_farm_child_rows_match_in_process_rows():
    specs = _representatives()
    in_process = [execute_point(s.family, s.params_dict) for s in specs]

    outcomes = WorkerPool(jobs=2, timeout_s=300).run(specs)
    assert [o.status for o in outcomes] == ["ok"] * len(specs)

    for spec, expected, outcome in zip(specs, in_process, outcomes):
        assert outcome.row == expected, spec.family
        # byte-identical, not merely ==: key order and float repr agree
        assert json.dumps(outcome.row, sort_keys=False) == json.dumps(
            expected, sort_keys=False
        ), spec.family
