"""Result store and code fingerprint."""

import json

import pytest

from repro.farm.fingerprint import code_fingerprint, result_key
from repro.farm.store import ResultStore


def test_put_get_roundtrip(tmp_path):
    store = ResultStore(tmp_path / "store")
    record = {"family": "selftest", "params": {"value": 1}, "row": {"x": 1.5}}
    store.put("ab" * 32, record)
    got = store.get("ab" * 32)
    assert got["row"] == {"x": 1.5}
    assert got["key"] == "ab" * 32
    assert store.count() == 1


def test_get_missing_is_none(tmp_path):
    store = ResultStore(tmp_path / "store")
    assert store.get("cd" * 32) is None


def test_corrupt_record_is_a_miss(tmp_path):
    store = ResultStore(tmp_path / "store")
    key = "ef" * 32
    store.put(key, {"row": {"x": 1}})
    path = store._object_path(key)
    path.write_text("{not json")
    assert store.get(key) is None
    path.write_text(json.dumps({"no_row_field": True}))
    assert store.get(key) is None


def test_key_mismatch_is_a_miss(tmp_path):
    # A record copied under the wrong name must not be served.
    store = ResultStore(tmp_path / "store")
    key, other = "11" * 32, "22" * 32
    store.put(key, {"row": {"x": 1}})
    target = store._object_path(other)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(store._object_path(key).read_text())
    assert store.get(other) is None


def test_row_key_order_survives_roundtrip(tmp_path):
    # Byte-identical replay depends on dict order surviving the store.
    store = ResultStore(tmp_path / "store")
    row = {"zeta": 1, "alpha": 2, "mid": 3}
    store.put("aa" * 32, {"row": row})
    assert list(store.get("aa" * 32)["row"]) == ["zeta", "alpha", "mid"]


def test_clear(tmp_path):
    store = ResultStore(tmp_path / "store")
    for i in range(5):
        store.put(f"{i:02d}" + "00" * 31, {"row": {"i": i}})
    assert store.count() == 5
    assert store.clear() == 5
    assert store.count() == 0


def test_last_run_roundtrip(tmp_path):
    store = ResultStore(tmp_path / "store")
    assert store.load_last_run() is None
    store.save_last_run({"points": 3, "failed": 0})
    assert store.load_last_run() == {"points": 3, "failed": 0}


def test_fingerprint_stable_and_content_sensitive(tmp_path):
    tree = tmp_path / "pkg"
    tree.mkdir()
    (tree / "a.py").write_text("x = 1\n")
    (tree / "sub").mkdir()
    (tree / "sub" / "b.py").write_text("y = 2\n")
    first = code_fingerprint(tree)
    assert code_fingerprint(tree) == first
    (tree / "sub" / "b.py").write_text("y = 3\n")
    assert code_fingerprint(tree) != first


def test_fingerprint_sees_new_files(tmp_path):
    tree = tmp_path / "pkg"
    tree.mkdir()
    (tree / "a.py").write_text("x = 1\n")
    first = code_fingerprint(tree)
    (tree / "new.py").write_text("")
    assert code_fingerprint(tree) != first


def test_default_fingerprint_memoized():
    assert code_fingerprint() == code_fingerprint()


def test_result_key_mixes_fingerprint_and_point():
    assert result_key("f1", "p1") != result_key("f2", "p1")
    assert result_key("f1", "p1") != result_key("f1", "p2")
    assert result_key("f1", "p1") == result_key("f1", "p1")


def test_records_iterates_readable_records_and_skips_corrupt(tmp_path):
    store = ResultStore(tmp_path / "store")
    for i in range(3):
        store.put(f"{i:02d}" + "00" * 31, {"row": {"i": i}, "family": "selftest"})
    # one corrupt record must be skipped, not raise
    corrupt = store._object_path("99" + "00" * 31)
    corrupt.parent.mkdir(parents=True, exist_ok=True)
    corrupt.write_text("{torn")
    got = sorted(r["row"]["i"] for r in store.records())
    assert got == [0, 1, 2]


@pytest.mark.farm_subprocess
def test_concurrent_writers_racing_the_same_key(tmp_path):
    """Two processes hammering put() on one key: atomic renames mean both
    succeed, the record is never torn, and exactly one object file exists."""
    import subprocess
    import sys

    key = "ab" * 32
    script = (
        "import sys\n"
        "from repro.farm.store import ResultStore\n"
        "store = ResultStore(sys.argv[1])\n"
        "who = sys.argv[2]\n"
        "for i in range(200):\n"
        "    store.put(sys.argv[3], {'row': {'who': who, 'i': i}, 'family': 'selftest'})\n"
    )
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", script, str(tmp_path / "store"), who, key],
            stderr=subprocess.PIPE,
        )
        for who in ("alpha", "beta")
    ]
    store = ResultStore(tmp_path / "store")
    seen_mid_race = 0
    while any(p.poll() is None for p in procs):
        record = store.get(key)  # readers never see a torn record
        if record is not None:
            assert record["row"]["who"] in ("alpha", "beta")
            seen_mid_race += 1
    for p in procs:
        assert p.wait() == 0, p.stderr.read().decode()
    final = store.get(key)
    assert final is not None and final["row"]["i"] == 199
    assert store.count() == 1  # one key, one object file, no .tmp litter
    leftovers = list((tmp_path / "store").rglob("*.tmp"))
    assert leftovers == []
    assert seen_mid_race > 0  # the race was actually observed
