"""The HTTP facade: routes, error mapping, ETag caching, end-to-end workers.

One threaded server per test on an ephemeral port; points execute
inline through an injected executor, so these tests exercise transport
and protocol, not child processes.
"""

import json
import threading
import urllib.request

import pytest

from repro.farm.points import execute_point
from repro.farm.queue.client import QueueClient, QueueServiceError
from repro.farm.queue.controller import QueueController
from repro.farm.queue.httpd import make_server
from repro.farm.queue.jobqueue import FileJobQueue, LeaseError
from repro.farm.queue.worker import QueueWorker
from repro.farm.store import ResultStore
from repro.obs import MetricsRegistry

from .test_jobqueue import FakeClock

SELFTEST = {"families": ["selftest"], "overrides": {"selftest": {"modes": ["ok", "ok"]}}}


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def service(tmp_path, clock):
    controller = QueueController(
        FileJobQueue(tmp_path / "q", clock=clock),
        store=ResultStore(tmp_path / "store"),
        registry=MetricsRegistry(),
        max_attempts=2,
        default_ttl_s=10.0,
    )
    server = make_server(controller)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server, QueueClient(server.url)
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def _inline(family, params, timeout_s, heartbeat):
    heartbeat()
    return "ok", execute_point(family, params), 0.01


def test_health_and_empty_lease(service):
    _, client = service
    health = client.health()
    assert health["ok"] and health["stats"]["pending"] == 0
    assert client.lease("w1", 10.0) is None  # 204 -> None


def test_submit_work_and_read_rows_over_http(service):
    server, client = service
    job = client.submit(**SELFTEST)
    assert job["pending"] == 2 and job["cached"] == 0

    stats = QueueWorker(client, "w1", ttl_s=10.0, executor=_inline).run(
        drain=True
    )
    assert stats.completed == 2

    status = client.job_status(job["id"])
    assert status["done"] and status["ok"]
    rows = client.job_rows(job["id"])
    assert rows["done"]
    assert [e["row"]["doubled"] for e in rows["rows"]] == [0, 2]
    # rows came from the store: byte-identical to direct execution
    direct = execute_point("selftest", {"mode": "ok", "value": 1})
    assert json.dumps(rows["rows"][1]["row"]) == json.dumps(direct)
    # the job index lists it as done too
    (listed,) = client.jobs()
    assert listed["id"] == job["id"] and listed["done"]


def test_resubmission_is_a_full_cache_hit(service):
    _, client = service
    job = client.submit(**SELFTEST)
    QueueWorker(client, "w1", ttl_s=10.0, executor=_inline).run(drain=True)
    again = client.submit(**SELFTEST)
    assert again["cached"] == 2 and again["pending"] == 0
    assert client.job_status(again["id"])["done"]
    assert job["id"] != again["id"]


def test_result_endpoint_serves_the_store_with_etag_revalidation(service):
    server, client = service
    client.submit(**SELFTEST)
    QueueWorker(client, "w1", ttl_s=10.0, executor=_inline).run(drain=True)
    key = server.controller.item_key("selftest", {"mode": "ok", "value": 0})

    record = client.result(key)
    assert record["row"]["value"] == 0 and record["key"] == key
    assert client.result(key, etag=key) is None  # 304: cached copy is current
    assert client.result("f" * 64) is None  # 404 -> None

    # raw headers: ETag is the key, immutable cache policy
    req = urllib.request.Request(f"{server.url}/results/{key}")
    with urllib.request.urlopen(req, timeout=10) as resp:
        assert resp.headers["ETag"] == f'"{key}"'
        assert "max-age" in resp.headers["Cache-Control"]


def test_stale_worker_gets_409_mapped_to_lease_error(service, clock):
    server, client = service
    client.submit(
        families=["selftest"], overrides={"selftest": {"modes": ["ok"]}}
    )
    item = client.lease("w1", 10.0)
    clock.advance(10.1)
    rescued = client.lease("w2", 10.0)  # expiry runs server-side
    assert rescued["id"] == item["id"] and rescued["attempts"] == 2
    with pytest.raises(LeaseError):
        client.heartbeat(item["id"], "w1", 10.0)
    with pytest.raises(LeaseError):
        client.complete(item["id"], "w1", {"value": 0}, 0.1)


def test_error_mapping_404_and_400(service):
    server, client = service
    with pytest.raises(QueueServiceError) as exc:
        client.job_status("nope")
    assert exc.value.status == 404
    with pytest.raises(QueueServiceError) as exc:
        client.submit(families=["no-such-family"])
    assert exc.value.status == 400
    with pytest.raises(QueueServiceError) as exc:
        client.submit(families=[])  # expands to zero points
    assert exc.value.status == 400
    # malformed body straight at the socket
    req = urllib.request.Request(
        f"{server.url}/jobs", data=b"{not json", method="POST"
    )
    with pytest.raises(urllib.error.HTTPError) as raw:
        urllib.request.urlopen(req, timeout=10)
    assert raw.value.code == 400
    # unrouted path
    with pytest.raises(QueueServiceError) as exc:
        client._request("GET", "/no/such/route")
    assert exc.value.status == 404


def test_raw_point_submission_without_a_family_expansion(service):
    _, client = service
    job = client.submit(
        points=[{"family": "selftest", "params": {"mode": "ok", "value": 7}}]
    )
    assert job["pending"] == 1
    QueueWorker(client, "w1", ttl_s=10.0, executor=_inline).run(drain=True)
    rows = client.job_rows(job["id"])
    assert rows["rows"][0]["row"]["doubled"] == 14


def test_metrics_endpoint_exposes_queue_series(service):
    _, client = service
    client.submit(**SELFTEST)
    QueueWorker(client, "w1", ttl_s=10.0, executor=_inline).run(drain=True)
    payload = client.metrics()
    names = set(payload["snapshot"])
    assert {"farm.queue.submitted", "farm.queue.leases",
            "farm.queue.completed", "farm.queue.depth"} <= names
    assert "farm.queue.completed" in payload["render"]


def test_two_http_workers_split_the_job(service):
    _, client = service
    client.submit(
        families=["selftest"],
        overrides={"selftest": {"modes": ["ok"] * 6}},
    )
    workers = [
        QueueWorker(client, f"w{i}", ttl_s=10.0, executor=_inline)
        for i in range(2)
    ]
    threads = [
        threading.Thread(target=w.run, kwargs={"drain": True}) for w in workers
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert sum(w.stats.completed for w in workers) == 6
    health = client.health()
    assert health["stats"]["done"] == 6
    assert sorted(health["stats"]["workers_seen"]) == ["w0", "w1"]


# -- the live telemetry plane on the queue service ---------------------------


def _raw_get(url, headers=None):
    req = urllib.request.Request(url, headers=headers or {})
    try:
        with urllib.request.urlopen(req, timeout=10) as resp:
            return resp.status, dict(resp.headers), resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


def test_metrics_format_negotiation_serves_prometheus_text(service):
    from repro.obs.live.exposition import parse_exposition

    server, client = service
    client.submit(**SELFTEST)
    QueueWorker(client, "w1", ttl_s=10.0, executor=_inline).run(drain=True)

    status, headers, body = _raw_get(f"{server.url}/metrics?format=prometheus")
    assert status == 200
    assert headers["Content-Type"].startswith("application/openmetrics-text")
    families = parse_exposition(body.decode())
    completed = families["farm_queue_completed"]
    assert completed["type"] == "counter"
    assert ("farm_queue_completed_total", {"family": "selftest"}, 2.0) in completed[
        "samples"
    ]
    # the default stays the JSON shape the client library reads
    status, headers, _ = _raw_get(f"{server.url}/metrics")
    assert status == 200
    assert headers["Content-Type"].startswith("application/json")


def test_healthz_includes_store_records_and_uptime(service):
    server, client = service
    status, _, body = _raw_get(f"{server.url}/healthz")
    payload = json.loads(body)
    assert status == 200 and payload["ok"]
    assert payload["store_records"] == 0 and payload["uptime_s"] >= 0

    client.submit(**SELFTEST)
    QueueWorker(client, "w1", ttl_s=10.0, executor=_inline).run(drain=True)
    _, _, body = _raw_get(f"{server.url}/healthz")
    assert json.loads(body)["store_records"] == 2


def test_serve_mounts_dashboard_and_records(service):
    server, client = service
    status, headers, body = _raw_get(f"{server.url}/dashboard")
    assert status == 200 and headers["Content-Type"].startswith("text/html")
    assert b"EventSource" in body

    client.submit(**SELFTEST)
    QueueWorker(client, "w1", ttl_s=10.0, executor=_inline).run(drain=True)
    status, _, body = _raw_get(f"{server.url}/records")
    payload = json.loads(body)
    assert status == 200 and payload["total"] == 2
    assert all(e["family"] == "selftest" for e in payload["records"])


def test_events_stream_reflects_queue_depth_changes(service):
    server, client = service
    server.publisher.poll()
    _, headers, body = _raw_get(f"{server.url}/events?max_events=2")
    assert headers["Content-Type"].startswith("text/event-stream")
    blocks = body.decode()
    assert '"pending":0' in blocks
    last_id = max(
        int(line.split(": ", 1)[1])
        for line in blocks.splitlines()
        if line.startswith("id: ")
    )

    client.submit(**SELFTEST)  # queue depth changes while disconnected
    new = server.publisher.poll()
    assert any(e.data.get("pending") == 2 for e in new if e.event == "queue")
    missed = server.publisher.latest_seq - last_id
    _, _, body = _raw_get(
        f"{server.url}/events?max_events={missed}",
        headers={"Last-Event-ID": str(last_id)},
    )
    resumed = body.decode()
    assert '"pending":2' in resumed
    ids = [
        int(line.split(": ", 1)[1])
        for line in resumed.splitlines()
        if line.startswith("id: ")
    ]
    # gap-free resume: exactly the missed tail, no duplicates, no skips
    assert ids == list(range(last_id + 1, last_id + missed + 1))
