"""QueueWorker loop against a real controller, with injected executors.

The executor seam (``QueueWorker(executor=...)``) lets these tests fake
results, deterministic errors, transient crashes, and mid-point worker
death without spawning children — the real spawned-child executor is
covered by the backend/service e2e tests.
"""

import pytest

from repro.farm.points import execute_point, expand_family
from repro.farm.queue.controller import QueueController
from repro.farm.queue.jobqueue import FileJobQueue
from repro.farm.queue.worker import QueueWorker
from repro.farm.store import ResultStore
from repro.obs import MetricsRegistry

from .test_jobqueue import FakeClock


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def ctrl(tmp_path, clock):
    return QueueController(
        FileJobQueue(tmp_path / "q", clock=clock),
        store=ResultStore(tmp_path / "store"),
        registry=MetricsRegistry(),
        max_attempts=2,
        default_ttl_s=10.0,
    )


def _inline(family, params, timeout_s, heartbeat):
    heartbeat()
    return "ok", execute_point(family, params), 0.01


def test_drain_executes_everything_and_reports_rows(ctrl):
    specs = expand_family("selftest", "paper", {"modes": ("ok", "ok", "ok")})
    job = ctrl.submit(specs)
    worker = QueueWorker(ctrl, "w1", ttl_s=10.0, executor=_inline)
    stats = worker.run(drain=True)
    assert stats.completed == 3 and stats.failed == 0
    assert stats.idle_polls == 1  # the empty poll that ended the drain
    rows = ctrl.job_rows(job["id"])
    assert [r["doubled"] for r in rows] == [0, 2, 4]
    assert "3 completed" in stats.summary_line()


def test_deterministic_error_fails_without_retry(ctrl):
    def explode(family, params, timeout_s, heartbeat):
        return "error", "RuntimeError: injected point failure", 0.01

    job = ctrl.submit(expand_family("selftest", "paper", {"modes": ("error",)}))
    stats = QueueWorker(ctrl, "w1", ttl_s=10.0, executor=explode).run(drain=True)
    assert stats.completed == 0 and stats.failed == 1
    (state,) = ctrl.job_status(job["id"])["item_states"]
    assert state["state"] == "failed"
    assert state["attempts"] == 1  # never requeued
    assert "injected point failure" in state["error"]


def test_transient_crash_is_retried_then_succeeds(ctrl):
    calls = []

    def flaky(family, params, timeout_s, heartbeat):
        calls.append(params)
        if len(calls) == 1:
            return "crash", "child died with exit code 41", 0.01
        return "ok", execute_point(family, params), 0.01

    job = ctrl.submit(expand_family("selftest", "paper", {"modes": ("ok",)}))
    stats = QueueWorker(ctrl, "w1", ttl_s=10.0, executor=flaky).run(drain=True)
    assert stats.failed == 1 and stats.completed == 1  # attempt 1, attempt 2
    status = ctrl.job_status(job["id"])
    assert status["ok"]
    assert status["item_states"][0]["attempts"] == 2
    assert ctrl.store.count() == 1


def test_mid_point_death_loses_the_lease_and_the_result_is_dropped(
    ctrl, clock
):
    """A worker whose heartbeat stops (GC pause, network partition, kill -9
    between beats) discovers on its next beat that the item moved on; its
    computed row is dropped, the re-leasing worker's row wins."""
    specs = expand_family("selftest", "paper", {"modes": ("ok",)})
    ctrl.submit(specs)

    def stalls_then_finishes(family, params, timeout_s, heartbeat):
        clock.advance(10.1)  # the stall: TTL passes with no beat
        ctrl.lease("w2")  # the rescuer grabs the expired item...
        heartbeat()  # ...so this beat raises LeaseError
        raise AssertionError("unreachable: the heartbeat must have raised")

    w1 = QueueWorker(ctrl, "w1", ttl_s=10.0, executor=stalls_then_finishes)
    assert w1.run_one() is False
    assert w1.stats.lost_leases == 1
    assert w1.stats.completed == 0
    # w2 finishes the point; exactly one store record exists
    item = ctrl.queue.items()[0]
    ctrl.complete(item["id"], "w2", execute_point("selftest", item["params"]))
    assert ctrl.store.count() == 1


def test_lost_race_at_the_report_step(ctrl, clock):
    # The worker computes fine but its lease died before complete().
    def slow_ok(family, params, timeout_s, heartbeat):
        clock.advance(10.1)
        ctrl.expire_leases()
        return "ok", execute_point(family, params), 0.01

    ctrl.submit(expand_family("selftest", "paper", {"modes": ("ok",)}))
    w1 = QueueWorker(ctrl, "w1", ttl_s=10.0, executor=slow_ok)
    assert w1.run_one() is False
    assert w1.stats.lost_leases == 1


def test_max_points_and_stop_bound_the_loop(ctrl):
    ctrl.submit(expand_family("selftest", "paper", {"modes": ("ok",) * 4}))
    w1 = QueueWorker(ctrl, "w1", ttl_s=10.0, executor=_inline)
    assert w1.run(drain=True, max_points=2).completed == 2
    w2 = QueueWorker(ctrl, "w2", ttl_s=10.0, executor=_inline)
    assert w2.run(drain=True, stop=lambda: True).completed == 0
    assert ctrl.stats()["pending"] == 2


def test_ttl_validation(ctrl):
    with pytest.raises(ValueError):
        QueueWorker(ctrl, "w1", ttl_s=0.0)
