"""CLI surfaces of the distributed farm: pagination, submit, serve/worker."""

import json
import threading

import pytest

from repro.farm.cli import main as farm_main
from repro.farm.points import execute_point
from repro.farm.queue.cli import submit_main, worker_main
from repro.farm.queue.controller import QueueController
from repro.farm.queue.httpd import make_server
from repro.farm.queue.jobqueue import FileJobQueue
from repro.farm.store import ResultStore
from repro.harness.cli import OBS_COMMANDS
from repro.harness.cli import main as repro_main
from repro.obs import MetricsRegistry


# --- farm list pagination (satellite f) --------------------------------------


def test_farm_list_paginates(capsys):
    assert farm_main(["list", "--limit", "3", "--offset", "2"]) == 0
    out = capsys.readouterr().out
    rows = [ln for ln in out.splitlines() if ln.startswith("fig")]
    assert len(rows) == 3
    assert "showing 3-5 of" in out
    assert "--offset 5 for the next page" in out


def test_farm_list_offset_past_the_end(capsys):
    assert farm_main(["list", "--offset", "9999"]) == 0
    out = capsys.readouterr().out
    assert "is past the end" in out  # empty page renders sanely
    assert "points total" in out


def test_farm_list_unpaginated_has_no_footnote(capsys):
    assert farm_main(["list"]) == 0
    assert "showing" not in capsys.readouterr().out


def test_farm_list_cached_pages_through_the_store(tmp_path, capsys):
    store = ResultStore(tmp_path / "store")
    for i in range(5):
        store.put(
            f"{i:02d}" + "00" * 31,
            {
                "family": "selftest",
                "params": {"value": i},
                "row": {"value": i},
                "duration_s": 0.5,
            },
        )
    argv = ["list", "--cached", "--store", str(tmp_path / "store"),
            "--limit", "2", "--offset", "1"]
    assert farm_main(argv) == 0
    out = capsys.readouterr().out
    assert "cached point records" in out
    assert out.count("value=") == 2
    assert "showing 2-3 of 5" in out


# --- serve/worker/submit wiring ----------------------------------------------


def test_serve_and_worker_are_top_level_repro_commands():
    assert "serve" in OBS_COMMANDS and "worker" in OBS_COMMANDS


def test_repro_help_mentions_the_distributed_farm(capsys):
    with pytest.raises(SystemExit):
        repro_main(["--help"])
    # the module docstring documents the distributed-farm entry points
    from repro.harness import cli as harness_cli

    assert "serve --port" in harness_cli.__doc__
    assert "worker http://" in harness_cli.__doc__


def test_submit_rejects_unknown_family_before_any_network(capsys):
    rc = farm_main(["submit", "http://127.0.0.1:1", "no-such-family"])
    assert rc == 2
    assert "unknown family" in capsys.readouterr().err


def test_worker_fails_fast_when_the_service_is_unreachable(capsys):
    rc = worker_main(["http://127.0.0.1:1", "--id", "w1"])
    assert rc == 2
    assert "cannot reach" in capsys.readouterr().err


@pytest.fixture
def service(tmp_path):
    controller = QueueController(
        FileJobQueue(tmp_path / "q"),
        store=ResultStore(tmp_path / "store"),
        registry=MetricsRegistry(),
        default_ttl_s=10.0,
    )
    server = make_server(controller)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def _drain_inline(server):
    """Complete every pending item in-process (no child spawning)."""
    controller = server.controller
    while (item := controller.lease("inline", 10.0)) is not None:
        row = execute_point(item["family"], item["params"])
        controller.complete(item["id"], "inline", row, 0.01)


def test_submit_wait_prints_tables_and_replays_cached(service, capsys):
    url = service.url
    argv = ["submit", url, "selftest", "--wait", "--poll", "0.05"]

    # drain once the job exists: poll in a helper thread
    def drain_when_ready():
        import time

        for _ in range(200):
            if service.controller.queue.jobs():
                _drain_inline(service)
                return
            time.sleep(0.02)

    done = threading.Thread(target=drain_when_ready)
    done.start()
    try:
        rc = farm_main(argv)
    finally:
        done.join(timeout=10)
    out = capsys.readouterr().out
    assert rc == 0
    assert "queued" in out and "done:" in out
    assert "farm self-test points" in out or "selftest" in out

    # replay: everything cached, --expect-cached passes
    rc = farm_main(["submit", url, "selftest", "--wait", "--expect-cached"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "already cached" in out


def test_submit_expect_cached_fails_on_a_cold_store(service, capsys):
    rc = farm_main(["submit", service.url, "selftest", "--expect-cached"])
    assert rc == 3
    assert "expected a fully cached job" in capsys.readouterr().err


def test_submit_without_wait_returns_after_enqueue(service, capsys):
    rc = farm_main(["submit", service.url, "selftest"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "poll with: GET" in out
    (job,) = service.controller.queue.jobs()
    assert job["items"] > 0


# --- figures --backend queue -------------------------------------------------


@pytest.mark.farm_subprocess
def test_farm_figures_backend_queue_end_to_end(tmp_path, capsys):
    argv = [
        "figures", "selftest", "-j", "2", "--backend", "queue",
        "--store", str(tmp_path / "store"), "--no-progress",
    ]
    assert farm_main(argv) == 0
    out = capsys.readouterr().out
    assert "queue backend" in out

    # pool replay over the same store: byte-identical rows = full cache hit
    argv = [
        "figures", "selftest", "-j", "2", "--backend", "pool",
        "--store", str(tmp_path / "store"), "--no-progress",
        "--expect-cached",
    ]
    assert farm_main(argv) == 0
    assert "0 executed" in capsys.readouterr().out


def test_last_run_summary_carries_queue_fields(tmp_path, capsys):
    store = ResultStore(tmp_path / "store")
    store.save_last_run(
        {
            "points": 4, "cached": 0, "executed": 4, "failed": 0,
            "cache_hit_rate": 0.0, "backend": "queue",
            "queue_depth": 4, "lease_count": 2, "worker_count": 2,
        }
    )
    assert farm_main(["metrics", "--store", str(tmp_path / "store")]) == 0
    out = capsys.readouterr().out
    assert "backend: queue (queue depth 4, leases 2, workers 2)" in out
