"""run_farm(backend="queue"): the differential check against the pool oracle.

These spawn real child interpreters (the same executor ``repro worker``
uses), so the whole suite carries the ``farm_subprocess`` marker.
"""

import json

import pytest

from repro.farm.points import expand_family
from repro.farm.service import run_farm
from repro.farm.store import ResultStore

pytestmark = pytest.mark.farm_subprocess


def _run(tmp_path, name, **kw):
    store = ResultStore(tmp_path / name)
    report = run_farm(
        families=["selftest"], store=store, jobs=2, progress=False, **kw
    )
    return store, report


def test_queue_backend_rows_are_byte_identical_to_the_pool(tmp_path):
    _, pool = _run(tmp_path, "pool-store", backend="pool")
    qstore, queued = _run(tmp_path, "queue-store", backend="queue")

    assert pool.ok and queued.ok
    pool_rows = [f.rows for f in pool.families]
    queue_rows = [f.rows for f in queued.families]
    assert json.dumps(pool_rows) == json.dumps(queue_rows)  # byte identity

    # the queue run's summary carries the queue telemetry...
    assert queued.backend == "queue"
    assert queued.queue_depth == queued.n_points > 0
    assert 1 <= queued.lease_count <= 2
    assert queued.worker_count >= 1
    summary = qstore.load_last_run()
    assert summary["backend"] == "queue"
    assert summary["queue_depth"] == queued.queue_depth
    assert summary["lease_count"] == queued.lease_count
    assert summary["worker_count"] == queued.worker_count
    # ...and the pool run reports zeros (satellite: fields always present)
    assert pool.backend == "pool"
    assert (pool.queue_depth, pool.lease_count, pool.worker_count) == (0, 0, 0)


def test_queue_backend_second_run_is_fully_cached(tmp_path):
    store, first = _run(tmp_path, "store", backend="queue")
    assert first.n_executed == first.n_points
    _, second = _run(tmp_path, "store", backend="queue")
    assert second.n_cached == second.n_points
    assert second.n_executed == 0
    assert second.queue_depth == 0  # nothing was ever enqueued
    assert [f.rows for f in second.families] == [f.rows for f in first.families]
    assert store.count() == first.n_points


def test_queue_backend_failure_semantics_match_the_pool(tmp_path):
    store = ResultStore(tmp_path / "store")
    report = run_farm(
        families=[],
        extra_specs=expand_family(
            "selftest", "paper", {"modes": ("ok", "hang", "ok")}
        ),
        store=store,
        jobs=2,
        timeout_s=1.0,
        retries=1,
        progress=False,
        backend="queue",
    )
    assert not report.ok
    assert report.n_failed == 1
    assert report.n_retried == 1
    (family,) = report.families
    assert [r["value"] for r in family.rows] == [0, 2]
    (failure,) = report.failures()
    assert failure.attempts == 2
    assert "timed out" in failure.error
    assert store.count() == 2  # failures are never cached
    reg = report.registry
    assert reg.counter("farm.points.failed", family="selftest").value == 1
    assert reg.counter("farm.points.retried", family="selftest").value == 1
    assert reg.counter("farm.points.completed", family="selftest").value == 2
    # queue-side counters agree with the farm.points.* view
    assert reg.counter("farm.queue.completed", family="selftest").value == 2
    assert reg.counter("farm.queue.failed", family="selftest").value == 1


def test_deterministic_point_errors_are_not_retried_by_the_queue(tmp_path):
    report = run_farm(
        families=[],
        extra_specs=expand_family(
            "selftest", "paper", {"modes": ("error", "ok")}
        ),
        store=ResultStore(tmp_path / "store"),
        jobs=2,
        retries=2,
        progress=False,
        backend="queue",
    )
    assert report.n_failed == 1
    assert report.n_retried == 0
    (failure,) = report.failures()
    assert failure.attempts == 1
    assert "injected point failure" in failure.error
