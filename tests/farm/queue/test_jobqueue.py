"""FileJobQueue: durability, the lease protocol, expiry — fake clock, no sleeps."""

import json

import pytest

from repro.farm.queue.jobqueue import ITEM_STATES, FileJobQueue, LeaseError


class FakeClock:
    def __init__(self, start: float = 1000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def _payloads(n, family="selftest"):
    return [
        {"family": family, "params": {"mode": "ok", "value": i}, "index": i}
        for i in range(n)
    ]


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def queue(tmp_path, clock):
    return FileJobQueue(tmp_path / "q", clock=clock)


def test_enqueue_and_fifo_lease_order(queue):
    job = queue.enqueue_job(_payloads(3))
    assert job["items"] == 3
    assert queue.counts(job["id"])["pending"] == 3
    leased = [queue.lease("w1", ttl_s=10.0)["params"]["value"] for _ in range(3)]
    assert leased == [0, 1, 2]  # submission order
    assert queue.lease("w1", ttl_s=10.0) is None  # drained


def test_cached_items_are_born_done_and_never_leased(queue):
    payloads = _payloads(2)
    payloads[0]["cached"] = True
    payloads[0]["result_key"] = "aa" * 32
    job = queue.enqueue_job(payloads)
    assert queue.counts(job["id"]) == {
        "pending": 1, "leased": 0, "done": 1, "failed": 0,
    }
    item = queue.lease("w1", ttl_s=10.0)
    assert item["params"]["value"] == 1  # the cached twin was skipped
    assert queue.lease("w1", ttl_s=10.0) is None


def test_lease_records_worker_deadline_and_attempts(queue, clock):
    queue.enqueue_job(_payloads(1))
    item = queue.lease("w1", ttl_s=30.0)
    assert item["state"] == "leased"
    assert item["attempts"] == 1
    assert item["lease"]["worker"] == "w1"
    assert item["lease"]["expires_at"] == pytest.approx(clock.now + 30.0)
    assert queue.active_workers() == ["w1"]


def test_heartbeat_extends_the_lease(queue, clock):
    queue.enqueue_job(_payloads(1))
    item = queue.lease("w1", ttl_s=10.0)
    clock.advance(8.0)
    record = queue.heartbeat(item["id"], "w1", ttl_s=10.0)
    assert record["lease"]["expires_at"] == pytest.approx(clock.now + 10.0)
    clock.advance(8.0)  # past the original deadline, within the extension
    assert queue.expire_leases() == []


def test_complete_closes_the_item(queue):
    queue.enqueue_job(_payloads(1))
    item = queue.lease("w1", ttl_s=10.0)
    record = queue.complete(item["id"], "w1", "bb" * 32, duration_s=1.5)
    assert record["state"] == "done"
    assert record["result_key"] == "bb" * 32
    assert record["lease"] is None
    assert record["duration_s"] == 1.5


def test_fail_terminal_and_fail_requeue(queue):
    queue.enqueue_job(_payloads(2))
    a = queue.lease("w1", ttl_s=10.0)
    b = queue.lease("w1", ttl_s=10.0)
    dead = queue.fail(a["id"], "w1", "boom", requeue=False)
    assert dead["state"] == "failed" and dead["error"] == "boom"
    back = queue.fail(b["id"], "w1", "flaky", requeue=True)
    assert back["state"] == "pending"
    again = queue.lease("w2", ttl_s=10.0)
    assert again["id"] == b["id"]
    assert again["attempts"] == 2


def test_wrong_worker_unknown_item_and_unleased_raise(queue):
    queue.enqueue_job(_payloads(1))
    item = queue.lease("w1", ttl_s=10.0)
    with pytest.raises(LeaseError):
        queue.heartbeat(item["id"], "w2", ttl_s=10.0)
    with pytest.raises(LeaseError):
        queue.complete(item["id"], "intruder", "cc" * 32)
    with pytest.raises(LeaseError):
        queue.heartbeat("no-such-item", "w1", ttl_s=10.0)
    queue.complete(item["id"], "w1", "cc" * 32)
    with pytest.raises(LeaseError):  # done items reject the protocol
        queue.complete(item["id"], "w1", "cc" * 32)


def test_expired_lease_is_requeued_with_the_story_recorded(queue, clock):
    queue.enqueue_job(_payloads(1))
    item = queue.lease("w1", ttl_s=10.0)
    assert queue.expire_leases() == []  # still live
    clock.advance(10.1)
    (expired,) = queue.expire_leases()
    assert expired["id"] == item["id"]
    assert expired["state"] == "pending"
    assert "'w1' expired" in expired["error"]
    assert queue.active_workers() == []
    # the stale holder is locked out; a new worker picks the item up
    with pytest.raises(LeaseError):
        queue.heartbeat(item["id"], "w1", ttl_s=10.0)
    again = queue.lease("w2", ttl_s=10.0)
    assert again["id"] == item["id"]
    assert again["attempts"] == 2


def test_fail_pending_terminally_fails_without_a_lease(queue, clock):
    queue.enqueue_job(_payloads(2))
    item = queue.lease("w1", ttl_s=5.0)
    clock.advance(6.0)
    queue.expire_leases()
    record = queue.fail_pending(item["id"], "attempts exhausted")
    assert record["state"] == "failed"
    # its id is still in the deque; lease() must skip it, not re-lease it
    nxt = queue.lease("w2", ttl_s=5.0)
    assert nxt["id"] != item["id"]
    with pytest.raises(LeaseError):
        queue.fail_pending(nxt["id"], "not pending")  # leased, not pending


def test_restart_reloads_state_and_pending_order(tmp_path, clock):
    q1 = FileJobQueue(tmp_path / "q", clock=clock)
    job = q1.enqueue_job(_payloads(4))
    leased = q1.lease("w1", ttl_s=60.0)
    q1.complete(q1.lease("w1", ttl_s=60.0)["id"], "w1", "dd" * 32)

    # a fresh instance over the same directory = controller restart
    q2 = FileJobQueue(tmp_path / "q", clock=clock)
    assert q2.counts(job["id"]) == {
        "pending": 2, "leased": 1, "done": 1, "failed": 0,
    }
    # the surviving lease is intact and expires normally
    assert q2.active_workers() == ["w1"]
    clock.advance(61.0)
    assert [r["id"] for r in q2.expire_leases()] == [leased["id"]]
    # pending items drain in original submission order, expiry last
    ids = []
    while True:
        record = q2.lease("w2", ttl_s=10.0)
        if record is None:
            break
        ids.append(record["seq"])
    assert ids == [2, 3, 0]


def test_corrupt_item_file_is_dropped_on_reload(tmp_path, clock):
    q1 = FileJobQueue(tmp_path / "q", clock=clock)
    job = q1.enqueue_job(_payloads(2))
    victim = tmp_path / "q" / "items" / f"{job['id']}-0000.json"
    victim.write_text("{torn write")
    q2 = FileJobQueue(tmp_path / "q", clock=clock)
    assert q2.counts()["pending"] == 1
    assert q2.lease("w1", ttl_s=10.0)["seq"] == 1


def test_every_transition_is_on_disk_immediately(tmp_path, clock):
    queue = FileJobQueue(tmp_path / "q", clock=clock)
    job = queue.enqueue_job(_payloads(1))
    path = tmp_path / "q" / "items" / f"{job['id']}-0000.json"

    def on_disk():
        return json.loads(path.read_text())

    assert on_disk()["state"] == "pending"
    item = queue.lease("w1", ttl_s=10.0)
    assert on_disk()["state"] == "leased"
    queue.complete(item["id"], "w1", "ee" * 32)
    assert on_disk()["state"] == "done"
    assert on_disk()["state"] in ITEM_STATES
