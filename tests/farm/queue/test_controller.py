"""QueueController: cache pass, idempotent writes, expiry recovery.

Everything here runs in-process with a fake clock — points are executed
inline via :func:`execute_point` where a row is needed, so the suite
covers the whole lease/complete/expire state machine without spawning a
single child or sleeping a single second.
"""

import json

import pytest

from repro.farm.points import execute_point, expand_family
from repro.farm.queue.controller import QueueController
from repro.farm.queue.jobqueue import FileJobQueue, LeaseError
from repro.farm.store import ResultStore
from repro.obs import MetricsRegistry

from .test_jobqueue import FakeClock


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def ctrl(tmp_path, clock):
    return QueueController(
        FileJobQueue(tmp_path / "q", clock=clock),
        store=ResultStore(tmp_path / "store"),
        registry=MetricsRegistry(),
        max_attempts=2,
        default_ttl_s=10.0,
    )


def _specs(n=3):
    return expand_family("selftest", "paper", {"modes": ("ok",) * n})


def _finish(ctrl, item):
    """Execute the leased item inline and report it complete."""
    row = execute_point(item["family"], item["params"])
    return ctrl.complete(item["id"], item["lease"]["worker"], row), row


def test_submit_lease_complete_files_rows_in_the_store(ctrl):
    job = ctrl.submit(_specs(2))
    assert job["cached"] == 0 and job["pending"] == 2
    for _ in range(2):
        item = ctrl.lease("w1")
        record, row = _finish(ctrl, item)
        assert record["state"] == "done"
        assert ctrl.store.get(record["result_key"])["row"] == row
    status = ctrl.job_status(job["id"])
    assert status["done"] and status["ok"]
    assert status["counts"]["done"] == 2
    rows = ctrl.job_rows(job["id"])
    assert [r["value"] for r in rows] == [0, 1]
    assert ctrl.registry.counter(
        "farm.queue.completed", family="selftest"
    ).value == 2


def test_submission_cache_pass_marks_stored_points_done(ctrl):
    specs = _specs(3)
    key = ctrl.item_key(specs[1].family, specs[1].params_dict)
    ctrl.store.put(key, {"row": {"value": 1}, "family": "selftest"})
    job = ctrl.submit(specs)
    assert job["cached"] == 1 and job["pending"] == 2
    leased = []
    while (item := ctrl.lease("w1")) is not None:
        leased.append(item["seq"])
        _finish(ctrl, item)
    assert leased == [0, 2]  # the cached point never reached a worker
    assert ctrl.job_status(job["id"])["ok"]


def test_lease_recheck_turns_duplicates_into_cache_hits(ctrl):
    # Two jobs carrying the same point: the second job's twin is pending
    # when the first completes, so its lease is short-circuited.
    ctrl.submit(_specs(1))
    job2 = ctrl.submit(_specs(1), use_cache=False)
    item = ctrl.lease("w1")
    _finish(ctrl, item)
    assert ctrl.lease("w1") is None  # twin resolved, not handed out
    status = ctrl.job_status(job2["id"])
    assert status["ok"]
    assert status["item_states"][0]["cached"]
    assert ctrl.store.count() == 1
    assert ctrl.registry.counter(
        "farm.queue.cached", family="selftest"
    ).value == 1


def test_complete_is_idempotent_on_the_store_key(ctrl):
    # A twin completion (re-leased work finishing twice) must not produce
    # a second record or overwrite the first one's bytes.
    ctrl.submit(_specs(1))
    item = ctrl.lease("w1")
    _, row = _finish(ctrl, item)
    key = ctrl.item_key(item["family"], item["params"])
    before = json.dumps(ctrl.store.get(key))

    ctrl.submit(_specs(1), use_cache=False)
    twin = ctrl.queue.lease("w2", 10.0)  # bypass the lease re-check
    ctrl.complete(twin["id"], "w2", dict(row), duration_s=99.0)
    assert ctrl.store.count() == 1
    assert json.dumps(ctrl.store.get(key)) == before  # untouched bytes
    assert ctrl.registry.counter(
        "farm.queue.duplicates", family="selftest"
    ).value == 1


def test_dead_worker_lease_expires_and_a_second_worker_recovers(ctrl, clock):
    """The ISSUE acceptance scenario, fake-clock edition: w1 dies mid-point,
    w2 re-leases after expiry, the row is byte-identical with exactly one
    store record."""
    ctrl.submit(_specs(1))
    item = ctrl.lease("w1")
    assert item["attempts"] == 1

    clock.advance(10.1)  # w1 goes silent past its TTL
    again = ctrl.lease("w2")
    assert again["id"] == item["id"]
    assert again["attempts"] == 2
    assert ctrl.registry.counter(
        "farm.queue.leases_expired", family="selftest"
    ).value == 1

    # the presumed-dead worker is locked out of every verb
    with pytest.raises(LeaseError):
        ctrl.heartbeat(item["id"], "w1")
    record, row = _finish(ctrl, again)
    assert record["state"] == "done"
    assert ctrl.store.count() == 1
    stored = ctrl.store.get(record["result_key"])["row"]
    assert json.dumps(stored) == json.dumps(
        execute_point("selftest", item["params"])
    )


def test_transient_failures_requeue_until_attempts_run_out(ctrl):
    ctrl.submit(_specs(1))
    item = ctrl.lease("w1")
    back = ctrl.fail(item["id"], "w1", "timeout", retryable=True)
    assert back["state"] == "pending"  # attempt 1 of 2: requeued
    item = ctrl.lease("w1")
    assert item["attempts"] == 2
    dead = ctrl.fail(item["id"], "w1", "timeout", retryable=True)
    assert dead["state"] == "failed"  # budget exhausted
    assert ctrl.registry.counter(
        "farm.queue.retried", family="selftest"
    ).value == 1
    assert ctrl.registry.counter(
        "farm.queue.failed", family="selftest"
    ).value == 1


def test_deterministic_failures_are_never_retried(ctrl):
    ctrl.submit(_specs(1))
    item = ctrl.lease("w1")
    dead = ctrl.fail(item["id"], "w1", "RuntimeError: injected", retryable=False)
    assert dead["state"] == "failed"
    assert dead["attempts"] == 1


def test_expiry_with_exhausted_attempts_fails_the_item(ctrl, clock):
    ctrl.submit(_specs(1))
    ctrl.lease("w1")
    clock.advance(10.1)
    item = ctrl.lease("w2")  # attempt 2 (the budget)
    clock.advance(10.1)  # w2 dies too
    ctrl.expire_leases()
    record = ctrl.queue.item(item["id"])
    assert record["state"] == "failed"
    assert "expired" in record["error"]
    assert ctrl.job_status(record["job"])["done"]


def test_stats_gauges_and_peaks(ctrl, clock):
    reg = ctrl.registry
    ctrl.submit(_specs(3))
    assert reg.gauge("farm.queue.depth").value == 3
    item = ctrl.lease("w1")
    ctrl.lease("w2")
    assert reg.gauge("farm.queue.depth").value == 1
    assert reg.gauge("farm.queue.leased").value == 2
    assert reg.gauge("farm.queue.workers").value == 2
    _finish(ctrl, item)
    stats = ctrl.stats()
    assert stats["pending"] == 1 and stats["leased"] == 1
    assert stats["done"] == 1 and stats["jobs"] == 1
    assert stats["workers"] == ["w2"]
    assert stats["peak_depth"] == 3
    assert stats["peak_leased"] == 2
    assert stats["workers_seen"] == ["w1", "w2"]


def test_max_attempts_validation(tmp_path, clock):
    with pytest.raises(ValueError):
        QueueController(
            FileJobQueue(tmp_path / "q", clock=clock), max_attempts=0
        )


def test_lease_ttl_validation(ctrl):
    with pytest.raises(ValueError):
        ctrl.lease("w1", ttl_s=0.0)
