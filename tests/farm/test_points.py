"""Point registry: expansion order, hashing, JSON-safety, execution."""

import json

import pytest

from repro.farm.points import (
    EXTENSION_FAMILIES,
    FAMILIES,
    FIGURE_FAMILIES,
    SCALING_FAMILIES,
    PointSpec,
    execute_point,
    expand_family,
    family_specs,
)

#: Expected paper-preset point counts (must track the sequential
#: generators' default sweeps).
EXPECTED_COUNTS = {
    "table1": 25,  # 5 networks x 5 node counts
    "fig8a": 6,
    "fig8b": 6,
    "fig8c": 6,
    "fig8d": 6,
    "table2": 7,  # SAGE SWEEP3D IS EP MG CG LU
    "fig10": 5,
    "fig11": 10,  # 5 proc counts x 2 variants
    "ablation_timeslice": 5,
    "ablation_buffered": 2,
    "ablation_kernel": 2,
}


#: Expected paper-preset counts of the extension studies (kept apart
#: from EXPECTED_COUNTS, which must stay == the paper's figure set).
EXTENSION_COUNTS = {
    "ext_ft": 1,
    "ext_pfs_qos": 4,  # 2 schedulers x (alone, with PFS)
    "ext_noise": 3,  # quiet / uncoordinated / coordinated
}


def test_every_figure_family_registered():
    assert set(EXPECTED_COUNTS) == set(FIGURE_FAMILIES)
    for name in FIGURE_FAMILIES:
        assert name in FAMILIES


def test_extension_families_registered_but_not_in_figure_set():
    assert set(EXTENSION_COUNTS) == set(EXTENSION_FAMILIES)
    for name in EXTENSION_FAMILIES:
        assert name in FAMILIES
        assert name not in FIGURE_FAMILIES
        assert FAMILIES[name].title.startswith("Extension:")


def test_scaling_families_registered_but_not_in_figure_set():
    assert SCALING_FAMILIES == ("scaling1024", "scaling16k", "scaling64k")
    for name in SCALING_FAMILIES:
        assert name in FAMILIES
        assert name not in FIGURE_FAMILIES
        assert name not in EXTENSION_FAMILIES


def test_scaling1024_expansion():
    specs = expand_family("scaling1024", "paper")
    # 2 networks x 4 power-of-two node counts, network-major order.
    assert len(specs) == 8
    params = [s.params_dict for s in specs]
    assert [p["n_nodes"] for p in params] == [128, 256, 512, 1024] * 2
    assert {p["network"] for p in params} == {"qsnet", "bluegene_l_torus"}
    assert [s.index for s in specs] == list(range(8))
    # smoke keeps only the cheap 128-node pair for CI.
    smoke = expand_family("scaling1024", "smoke")
    assert [p.params_dict["n_nodes"] for p in smoke] == [128, 128]


def test_scaling16k_expansion():
    specs = expand_family("scaling16k", "paper")
    # 2 networks x 4 power-of-two node counts, network-major order.
    assert len(specs) == 8
    params = [s.params_dict for s in specs]
    assert [p["n_nodes"] for p in params] == [2048, 4096, 8192, 16384] * 2
    assert {p["network"] for p in params} == {"qsnet", "bluegene_l_torus"}
    assert all(p["message_kib"] == 4 for p in params)
    # smoke keeps only the cheap 2048-node pair for CI.
    smoke = expand_family("scaling16k", "smoke")
    assert [p.params_dict["n_nodes"] for p in smoke] == [2048, 2048]
    assert all(p.params_dict["iterations"] == 12 for p in smoke)


def test_scaling64k_expansion():
    specs = expand_family("scaling64k", "paper")
    # 2 networks x 4 power-of-two node counts up to 64k, network-major.
    assert len(specs) == 8
    params = [s.params_dict for s in specs]
    assert [p["n_nodes"] for p in params] == [2048, 8192, 16384, 65536] * 2
    assert {p["network"] for p in params} == {"qsnet", "bluegene_l_torus"}
    assert all(p["message_kib"] == 4 for p in params)
    # The memory/GC trend columns ride on the row itself.
    assert "peak_rss_mib" in FAMILIES["scaling64k"].trend_columns
    assert "gc_collections" in FAMILIES["scaling64k"].trend_columns
    # smoke keeps only the 4096-node pair for CI.
    smoke = expand_family("scaling64k", "smoke")
    assert [p.params_dict["n_nodes"] for p in smoke] == [4096, 4096]
    assert all(p.params_dict["iterations"] == 12 for p in smoke)


@pytest.mark.parametrize("name", sorted(EXTENSION_COUNTS))
def test_extension_expansion_counts(name):
    specs = expand_family(name, "paper")
    assert len(specs) == EXTENSION_COUNTS[name]
    assert [s.index for s in specs] == list(range(len(specs)))
    # the smoke preset shrinks the work, never the point structure
    assert len(expand_family(name, "smoke")) == EXTENSION_COUNTS[name]


@pytest.mark.parametrize("name", sorted(EXPECTED_COUNTS))
def test_paper_expansion_counts(name):
    specs = expand_family(name, "paper")
    assert len(specs) == EXPECTED_COUNTS[name]
    assert [s.index for s in specs] == list(range(len(specs)))


@pytest.mark.parametrize("name", sorted(FAMILIES))
@pytest.mark.parametrize("preset", ["paper", "smoke"])
def test_params_are_json_safe(name, preset):
    for spec in expand_family(name, preset):
        decoded = json.loads(json.dumps(spec.params_dict))
        assert decoded == spec.params_dict


def test_smoke_preset_is_smaller():
    paper = sum(len(expand_family(n, "paper")) for n in FIGURE_FAMILIES)
    smoke = sum(len(expand_family(n, "smoke")) for n in FIGURE_FAMILIES)
    assert smoke < paper


def test_point_hash_is_stable_and_param_sensitive():
    a1 = expand_family("fig8a", "paper")[0]
    a2 = expand_family("fig8a", "paper")[0]
    b = expand_family("fig8a", "paper")[1]
    assert a1.point_hash() == a2.point_hash()
    assert a1.point_hash() != b.point_hash()
    # same params under a different family hash differently
    other = PointSpec("fig8c", 0, a1.params)
    assert other.point_hash() != a1.point_hash()


def test_hash_ignores_row_index():
    spec = expand_family("table1", "paper")[3]
    moved = PointSpec(spec.family, 99, spec.params)
    assert moved.point_hash() == spec.point_hash()


def test_unknown_family_rejected():
    with pytest.raises(ValueError, match="unknown family"):
        family_specs(["fig99"])
    with pytest.raises(ValueError, match="unknown point family"):
        execute_point("fig99", {})


def test_unknown_preset_rejected():
    with pytest.raises(ValueError, match="unknown preset"):
        expand_family("table1", "huge")


def test_empty_family_list_expands_nothing():
    assert family_specs([]) == {}


def test_selftest_execute_ok():
    row = execute_point("selftest", {"mode": "ok", "value": 21})
    assert row == {"mode": "ok", "value": 21, "doubled": 42}


def test_selftest_execute_error():
    with pytest.raises(RuntimeError, match="injected point failure"):
        execute_point("selftest", {"mode": "error", "value": 1})


def test_execute_point_matches_sequential_generator():
    # The cheapest real family: one Table 1 point vs the generator's row.
    from repro.harness.experiments import table1_rows

    spec = expand_family("table1", "smoke")[0]
    row = execute_point(spec.family, spec.params_dict)
    assert row == table1_rows(node_counts=(2,))[0]


def test_titles_match_harness_cli():
    # Farm tables must print under the same titles the sequential CLI uses.
    assert FAMILIES["table1"].title == "Table 1: BCS core mechanisms across networks"
    assert FAMILIES["table2"].title == "Fig 9 / Table 2: applications"
    assert FAMILIES["ablation_kernel"].title == "Ablation: kernel-level BCS"
