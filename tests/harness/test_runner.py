"""Tests for the experiment runner and reporting."""

import pytest

from repro.apps import barrier_benchmark
from repro.bcs import BcsConfig
from repro.harness import Comparison, compare_backends, nodes_for, run_workload
from repro.harness.report import format_table, print_table, slowdown_series
from repro.mpi.baseline import BaselineConfig
from repro.units import ms

PARAMS = dict(granularity=ms(2), iterations=2)
BC = BcsConfig(init_cost=0)
BL = BaselineConfig(init_cost=0)


def test_nodes_for_paper_placement():
    assert nodes_for(62) == 31
    assert nodes_for(3) == 2
    assert nodes_for(1) == 1


def test_run_workload_returns_metrics():
    result = run_workload(
        barrier_benchmark, 4, "bcs", params=PARAMS, bcs_config=BC
    )
    assert result.backend == "bcs"
    assert result.n_ranks == 4
    assert result.runtime_ns > 0
    assert result.runtime_s == result.runtime_ns / 1e9
    assert result.stats["slices"] > 0


def test_run_workload_baseline_backend():
    result = run_workload(
        barrier_benchmark, 4, "baseline", params=PARAMS, baseline_config=BL
    )
    assert result.backend == "baseline"
    assert "barriers" in result.stats


def test_unknown_backend_rejected():
    with pytest.raises(ValueError):
        run_workload(barrier_benchmark, 4, "openmpi", params=PARAMS)


def test_compare_backends_slowdown_sign():
    comparison = compare_backends(
        barrier_benchmark, 4, params=PARAMS, bcs_config=BC, baseline_config=BL
    )
    assert isinstance(comparison, Comparison)
    # Fine-grained barrier loop: BCS must be slower here.
    assert comparison.slowdown_pct > 0
    assert comparison.bcs.runtime_ns > comparison.baseline.runtime_ns


def test_run_workload_seed_changes_nothing_without_noise():
    a = run_workload(barrier_benchmark, 4, "bcs", params=PARAMS, bcs_config=BC, seed=1)
    b = run_workload(barrier_benchmark, 4, "bcs", params=PARAMS, bcs_config=BC, seed=2)
    # Noise-free runs are seed-independent (jitter streams are rank-keyed).
    assert a.runtime_ns == b.runtime_ns


# --- report -----------------------------------------------------------------


def test_format_table_alignment():
    text = format_table(["a", "long-header"], [[1, 2.5], [333, "x"]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("a")
    assert "2.50" in lines[2]
    assert "333" in lines[3]


def test_print_table_returns_text(capsys):
    text = print_table("title", ["h"], [[1]])
    out = capsys.readouterr().out
    assert "title" in out
    assert "title" in text


def test_slowdown_series_rows():
    comparison = compare_backends(
        barrier_benchmark, 4, params=PARAMS, bcs_config=BC, baseline_config=BL
    )
    rows = slowdown_series([(10, comparison)])
    assert rows[0]["x"] == 10
    assert rows[0]["slowdown_pct"] == comparison.slowdown_pct
