"""Tests for the experiment CLI."""

import pytest

from repro.harness.cli import COMMANDS, build_parser, main


def test_parser_accepts_known_experiments():
    args = build_parser().parse_args(["table1", "fig8a"])
    assert args.experiments == ["table1", "fig8a"]
    assert args.scale is None


def test_parser_options():
    args = build_parser().parse_args(
        ["table2", "--scale", "0.1", "--ranks", "8", "--apps", "EP", "IS"]
    )
    assert args.scale == 0.1
    assert args.ranks == 8
    assert args.apps == ["EP", "IS"]


def test_unknown_experiment_fails_cleanly(capsys):
    assert main(["fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_table1_runs(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "qsnet" in out
    assert "caw_us" in out


def test_table2_single_app_small(capsys):
    assert main(["table2", "--scale", "0.02", "--ranks", "4", "--apps", "EP"]) == 0
    out = capsys.readouterr().out
    assert "EP" in out
    assert "slowdown_pct" in out


def test_fig9_alias_dedupes(capsys):
    # fig9 and table2 share the implementation; asking for both runs once.
    assert main(["fig9", "table2", "--scale", "0.02", "--ranks", "4", "--apps", "EP"]) == 0
    out = capsys.readouterr().out
    assert out.count("Fig 9 / Table 2") == 1


def test_all_commands_registered():
    expected = {
        "table1", "fig8a", "fig8b", "fig8c", "fig8d",
        "table2", "fig9", "fig10", "fig11", "ablations",
    }
    assert set(COMMANDS) == expected


def test_save_writes_json(tmp_path, capsys):
    out = tmp_path / "rows.json"
    assert main(["table1", "--save", str(out)]) == 0
    import json

    data = json.loads(out.read_text())
    assert len(data) == 1
    rows = next(iter(data.values()))
    assert rows and "caw_us" in rows[0]
