"""Tests for the experiment CLI."""

import pytest

from repro.harness import cli
from repro.harness.cli import COMMANDS, build_parser, main


def test_parser_accepts_known_experiments():
    args = build_parser().parse_args(["table1", "fig8a"])
    assert args.experiments == ["table1", "fig8a"]
    assert args.scale is None


def test_parser_options():
    args = build_parser().parse_args(
        ["table2", "--scale", "0.1", "--ranks", "8", "--apps", "EP", "IS"]
    )
    assert args.scale == 0.1
    assert args.ranks == 8
    assert args.apps == ["EP", "IS"]


def test_unknown_experiment_fails_cleanly(capsys):
    assert main(["fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_table1_runs(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "qsnet" in out
    assert "caw_us" in out


def test_table2_single_app_small(capsys):
    assert main(["table2", "--scale", "0.02", "--ranks", "4", "--apps", "EP"]) == 0
    out = capsys.readouterr().out
    assert "EP" in out
    assert "slowdown_pct" in out


def test_fig9_alias_dedupes(capsys):
    # fig9 and table2 share the implementation; asking for both runs once.
    assert main(["fig9", "table2", "--scale", "0.02", "--ranks", "4", "--apps", "EP"]) == 0
    out = capsys.readouterr().out
    assert out.count("Fig 9 / Table 2") == 1


def test_all_commands_registered():
    expected = {
        "table1", "fig8a", "fig8b", "fig8c", "fig8d",
        "table2", "fig9", "fig10", "fig11", "ablations",
    }
    assert set(COMMANDS) == expected


def test_save_writes_json(tmp_path, capsys):
    out = tmp_path / "rows.json"
    assert main(["table1", "--save", str(out)]) == 0
    import json

    data = json.loads(out.read_text())
    assert len(data) == 1
    rows = next(iter(data.values()))
    assert rows and "caw_us" in rows[0]


# --- smoke coverage: every registered command on a tiny configuration --------

#: flags shrinking every experiment to a few-rank, aggressively scaled run.
TINY = ["--ranks", "4", "--procs", "2", "4", "--scale", "0.02", "--apps", "EP"]


@pytest.mark.parametrize("name", sorted(COMMANDS))
def test_every_command_smokes_on_tiny_config(name, capsys):
    assert main([name] + TINY) == 0
    out = capsys.readouterr().out
    assert "(no rows)" not in out
    assert "==" in out  # at least one titled table printed
    for title, rows in cli._collected.items():
        assert rows, f"{name} printed an empty table: {title}"


# --- farm subcommand family --------------------------------------------------


def test_farm_list(capsys):
    assert main(["farm", "list"]) == 0
    out = capsys.readouterr().out
    assert "table1" in out
    assert "points total" in out


def test_farm_rejects_unknown_family(tmp_path, capsys):
    assert main(["farm", "figures", "fig99", "--store", str(tmp_path)]) == 2
    assert "unknown family" in capsys.readouterr().err


@pytest.mark.farm_subprocess
def test_farm_figures_runs_caches_and_expects_cached(tmp_path, capsys):
    store = str(tmp_path / "store")
    argv = ["farm", "figures", "table1", "--preset", "smoke", "-j", "2",
            "--store", store, "--no-progress"]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert "Table 1: BCS core mechanisms across networks" in first
    assert "0 cached" in first

    # second run: pure cache replay, byte-identical table
    assert main(argv + ["--expect-cached"]) == 0
    second = capsys.readouterr().out
    assert "0 executed" in second
    table = lambda text: [l for l in text.splitlines() if l.startswith(("gige", "qsnet"))]
    assert table(first) == table(second)

    # --no-cache forces execution, so --expect-cached now fails
    assert main(argv + ["--expect-cached", "--no-cache"]) == 3


@pytest.mark.farm_subprocess
def test_farm_save_and_metrics(tmp_path, capsys):
    store = str(tmp_path / "store")
    saved = tmp_path / "rows.json"
    argv = [
        "farm", "figures", "table1", "--preset", "smoke", "-j", "1",
        "--store", store, "--no-progress", "--save", str(saved), "--metrics",
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "farm metrics" in out
    assert "farm.points.completed" in out

    import json

    data = json.loads(saved.read_text())
    rows = data["Table 1: BCS core mechanisms across networks"]
    assert rows and "caw_us" in rows[0]

    assert main(["farm", "metrics", "--store", store]) == 0
    assert "last farm run" in capsys.readouterr().out


def test_farm_metrics_without_run_fails_cleanly(tmp_path, capsys):
    assert main(["farm", "metrics", "--store", str(tmp_path / "empty")]) == 1
    assert "no farm run" in capsys.readouterr().err


@pytest.mark.farm_subprocess
def test_farm_clean(tmp_path, capsys):
    store = str(tmp_path / "store")
    assert main(["farm", "figures", "table1", "--preset", "smoke", "-j", "1",
                 "--store", store, "--no-progress"]) == 0
    capsys.readouterr()
    assert main(["farm", "clean", "--store", store]) == 0
    assert "removed 10" in capsys.readouterr().out


def test_explain_prints_blame_and_writes_outputs(tmp_path, capsys):
    blame = tmp_path / "blame.json"
    trace = tmp_path / "trace.json"
    rc = main(
        [
            "explain",
            "fig8-p2p",
            "--ranks",
            "4",
            "--json",
            str(blame),
            "--trace",
            str(trace),
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "critical path of fig8-p2p" in out
    assert "makespan" in out and "100.0%" in out

    import json

    payload = json.loads(blame.read_text())
    assert payload["schema"] == 1
    assert sum(payload["categories_ns"].values()) == payload["makespan_ns"]
    doc = json.loads(trace.read_text())
    assert any(e.get("cat") == "msgflow" for e in doc["traceEvents"])


def test_explain_rejects_unknown_experiment(capsys):
    with pytest.raises(SystemExit):
        main(["explain", "nope"])
    assert "invalid choice" in capsys.readouterr().err


def test_explain_unwritable_output_exits_2(tmp_path, capsys):
    rc = main(
        ["explain", "fig8", "--ranks", "4", "--json", str(tmp_path / "no" / "x.json")]
    )
    assert rc == 2
    assert "cannot write" in capsys.readouterr().err
