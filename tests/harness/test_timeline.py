"""Tests for the slice-timeline analysis."""

import pytest

from repro.apps import nearest_neighbor_benchmark
from repro.bcs import BcsConfig, BcsRuntime
from repro.harness.timeline import SliceRecord, Timeline
from repro.network import Cluster, ClusterSpec
from repro.sim import Trace
from repro.storm import JobSpec
from repro.units import kib, ms, seconds, us


def run_traced(app, params, n_ranks=8):
    trace = Trace(categories=["bcs.microphase"])
    cluster = Cluster(ClusterSpec(n_nodes=n_ranks // 2), trace=trace)
    runtime = BcsRuntime(cluster, BcsConfig(init_cost=0))
    runtime.run_job(
        JobSpec(app=app, n_ranks=n_ranks, params=params), max_time=seconds(30)
    )
    return Timeline.from_trace(trace, timeslice=runtime.config.timeslice)


def test_timeline_captures_active_slices():
    timeline = run_traced(
        nearest_neighbor_benchmark,
        dict(granularity=ms(2), iterations=5, message_bytes=kib(4)),
    )
    assert timeline.n_active_slices >= 5
    means = timeline.mean_phase_durations()
    assert "DEM" in means and "MSM" in means and "P2P" in means


def test_scheduling_phase_matches_paper_budget():
    """Mean DEM+MSM sits at the configured ~125 us minimum."""
    timeline = run_traced(
        nearest_neighbor_benchmark,
        dict(granularity=ms(2), iterations=5, message_bytes=kib(4)),
    )
    sched = timeline.scheduling_phase_us()
    assert sched is not None
    assert 120.0 <= sched <= 200.0


def test_utilization_strip_shape():
    timeline = run_traced(
        nearest_neighbor_benchmark,
        dict(granularity=ms(2), iterations=5, message_bytes=kib(4)),
    )
    strip = timeline.utilization_strip(width=40)
    assert 0 < len(strip) <= 40
    assert any(ch != " " for ch in strip)


def test_report_is_readable():
    timeline = run_traced(
        nearest_neighbor_benchmark,
        dict(granularity=ms(2), iterations=3, message_bytes=kib(4)),
    )
    text = timeline.report()
    assert "active slices" in text
    assert "DEM" in text
    assert "utilization" in text


def test_empty_timeline():
    timeline = Timeline([], timeslice=us(500))
    assert timeline.n_active_slices == 0
    assert timeline.utilization_strip() == ""
    assert timeline.scheduling_phase_us() is None
    assert "active slices: 0" in timeline.report()


def test_manual_records_and_utilization():
    rec = SliceRecord(slice_no=3, start=0, phases={"DEM": us(100), "P2P": us(150)})
    timeline = Timeline([rec], timeslice=us(500))
    assert timeline.utilization(rec) == pytest.approx(0.5)
    assert timeline.mean_phase_durations()["P2P"] == pytest.approx(150.0)


def test_invalid_timeslice_rejected():
    with pytest.raises(ValueError):
        Timeline([], timeslice=0)


def test_chrome_trace_export(tmp_path):
    timeline = run_traced(
        nearest_neighbor_benchmark,
        dict(granularity=ms(2), iterations=3, message_bytes=kib(4)),
    )
    events = timeline.to_chrome_trace()
    assert events
    assert all(e["ph"] == "X" for e in events)
    assert all(e["dur"] > 0 for e in events)
    phases = {e["name"] for e in events}
    assert {"DEM", "MSM"} <= phases
    # Events within one slice are ordered and non-overlapping.
    by_slice = {}
    for e in events:
        by_slice.setdefault(e["args"]["slice"], []).append(e)
    for evs in by_slice.values():
        for a, b in zip(evs, evs[1:]):
            assert b["ts"] >= a["ts"] + a["dur"] - 1e-9

    path = tmp_path / "trace.json"
    timeline.save_chrome_trace(path)
    import json

    data = json.loads(path.read_text())
    assert len(data["traceEvents"]) == len(events)
