"""Validate the analytical model against the simulator.

The paper's claim that a deterministic globally scheduled system is
"simpler to model" is tested literally: the closed-form predictions in
:mod:`repro.harness.modeling` must track the simulation within a few
percent.
"""

import pytest

from repro.apps import barrier_benchmark
from repro.bcs import BcsConfig, BcsRuntime
from repro.harness import compare_backends
from repro.harness.modeling import BcsModel
from repro.mpi.baseline import BaselineConfig
from repro.network import Cluster, ClusterSpec
from repro.storm import JobSpec
from repro.units import kib, ms, seconds, us


CFG = BcsConfig(init_cost=0)
MODEL = BcsModel(CFG)


def test_blocking_recv_delay_model_matches_simulation():
    """Measured mean receive delay ≈ the 1.5-slice prediction."""
    delays = []

    def app(ctx, phase):
        yield from ctx.comm.barrier()
        yield from ctx.compute(phase)
        t0 = ctx.now
        if ctx.rank == 0:
            yield from ctx.comm.send(None, dest=1, size=64)
        else:
            yield from ctx.comm.recv(source=0)
            delays.append(ctx.now - t0)

    # Sample posting phases across the slice.
    for phase_us in (30, 120, 230, 340, 450):
        cluster = Cluster(ClusterSpec(n_nodes=1))
        runtime = BcsRuntime(cluster, CFG.with_(nm_compute_tax=0.0))
        runtime.run_job(
            JobSpec(app=app, n_ranks=2, params=dict(phase=us(phase_us))),
            max_time=seconds(5),
        )
    measured_mean = sum(delays) / len(delays)
    predicted = MODEL.blocking_recv_delay()
    assert measured_mean == pytest.approx(predicted, rel=0.25)


def test_chunked_message_slices_model():
    budget = CFG.p2p_slice_budget_bytes(305e6)
    assert MODEL.message_slices(budget) == 1
    assert MODEL.message_slices(budget + 1) == 2
    assert MODEL.message_slices(10 * budget) == 10
    assert MODEL.message_slices(0) == 1
    # Two streams sharing a link halve the per-stream budget.
    assert MODEL.message_slices(budget, streams_per_link=2) == 2


def test_bulk_synchronous_slowdown_tracks_fig8():
    """Model vs simulator across the Fig 8(a) granularity sweep."""
    for g_ms in (2, 5, 10, 30):
        comparison = compare_backends(
            barrier_benchmark,
            16,
            params=dict(granularity=ms(g_ms), iterations=10),
            bcs_config=CFG,
            baseline_config=BaselineConfig(init_cost=0),
        )
        predicted = MODEL.bulk_synchronous_slowdown(ms(g_ms))
        measured = comparison.slowdown_pct
        # Mean-case model: within 2.5 pp or 20% relative (the finest
        # granularities phase-lock toward the worst case, which a
        # mean-delay model intentionally ignores).
        tolerance = max(2.5, 0.20 * measured)
        assert abs(predicted - measured) < tolerance, (
            f"g={g_ms}ms predicted {predicted:.1f}% measured {measured:.1f}%"
        )


def test_slowdown_model_monotone_decreasing():
    values = [MODEL.bulk_synchronous_slowdown(ms(g)) for g in (1, 5, 10, 50)]
    assert values == sorted(values, reverse=True)


def test_crossover_granularity_consistency():
    """The granularity the model says gives 10% must map back to ~10%."""
    g = MODEL.crossover_granularity(10.0)
    assert MODEL.bulk_synchronous_slowdown(int(g)) == pytest.approx(10.0, abs=0.2)
    # And the knee is in the handful-of-ms range the paper shows.
    assert ms(3) < g < ms(12)


def test_crossover_below_tax_floor_rejected():
    with pytest.raises(ValueError):
        MODEL.crossover_granularity(0.01)


def test_large_recv_delay_grows_with_size():
    small = MODEL.large_recv_delay(kib(4))
    large = MODEL.large_recv_delay(kib(4) * 200)
    assert large > small
    assert small == MODEL.blocking_recv_delay()
