"""Tests for the per-figure experiment definitions (small instances)."""

import pytest

from repro.harness.experiments import (
    APP_EXPERIMENTS,
    PAPER_TABLE2,
    run_app_experiment,
    table1_rows,
)


def test_every_table2_app_has_an_experiment():
    assert set(APP_EXPERIMENTS) == set(PAPER_TABLE2)


def test_table1_rows_structure():
    rows = table1_rows(node_counts=(2, 4))
    networks = {r["network"] for r in rows}
    assert networks == {"gige", "myrinet", "infiniband", "qsnet", "bluegene_l"}
    for r in rows:
        assert r["caw_us"] > 0
        assert r["xfer_aggregate_mb_s"] > 0


def test_table1_qsnet_flat_conditional():
    rows = [r for r in table1_rows(node_counts=(2, 32)) if r["network"] == "qsnet"]
    assert all(r["caw_us"] < 10 for r in rows)


def test_table1_emulated_networks_scale_with_log_n():
    rows = {
        (r["network"], r["nodes"]): r["caw_us"]
        for r in table1_rows(node_counts=(2, 16))
    }
    assert rows[("gige", 16)] == pytest.approx(4 * rows[("gige", 2)], rel=0.01)


def test_run_app_experiment_tiny_scale():
    comparison = run_app_experiment("EP", n_ranks=4, scale=0.01)
    assert comparison.bcs.runtime_ns > 0
    assert comparison.baseline.runtime_ns > 0
    # EP at any scale: BCS pays init + tax, so it must be slower.
    assert comparison.slowdown_pct > 0


def test_scale_preserves_init_ratio_direction():
    """Bigger scale => same app structure; IS slowdown stays ~init share."""
    small = run_app_experiment("IS", n_ranks=4, scale=0.1)
    # The init/runtime ratio is scale-invariant by construction, so the
    # slowdown should not explode at small scale.
    assert 0 < small.slowdown_pct < 40
