"""Tests for the global address space."""

from repro.core import GlobalAddressSpace, MemoryRegion


def test_region_read_write_defaults():
    region = MemoryRegion(3)
    assert region.read("x") is None
    assert region.read("x", default=7) == 7
    region.write("x", 42)
    assert region.read("x") == 42
    assert region.contains("x")
    assert not region.contains("y")


def test_gas_per_node_isolation():
    gas = GlobalAddressSpace(4)
    gas.write(0, "v", "zero")
    gas.write(1, "v", "one")
    assert gas.read(0, "v") == "zero"
    assert gas.read(1, "v") == "one"
    assert gas.read(2, "v") is None


def test_write_all_atomic_view():
    gas = GlobalAddressSpace(5)
    gas.write_all([1, 3], "flag", True)
    assert gas.gather(range(5), "flag") == [None, True, None, True, None]


def test_gather_defaults():
    gas = GlobalAddressSpace(3)
    assert gas.gather([0, 1, 2], "nope", default=0) == [0, 0, 0]


def test_len_and_region_access():
    gas = GlobalAddressSpace(2)
    assert len(gas) == 2
    assert gas.region(1).node_id == 1


def test_tuple_addresses():
    """Composite addresses (the runtime uses (name, job, comm) keys)."""
    gas = GlobalAddressSpace(2)
    gas.write(0, ("cflag", 1, 0), 5)
    assert gas.read(0, ("cflag", 1, 0)) == 5
    assert gas.read(0, ("cflag", 1, 1)) is None
