"""Tests for the BCS core primitives against the paper's §2 semantics."""

import pytest

from repro.core import BcsCore
from repro.network import Cluster, ClusterSpec
from repro.units import KiB


def make_core(n=4):
    cluster = Cluster(ClusterSpec(n_nodes=n))
    return cluster, BcsCore(cluster)


# --- Xfer-And-Signal -----------------------------------------------------------


def test_xfer_writes_global_data_on_single_node():
    cluster, core = make_core()

    def body():
        core.xfer_and_signal(0, 2, size=1 * KiB, addr="x", value=42, remote_event="done")
        yield from core.test_event(2, "done")
        return core.gas.read(2, "x")

    assert cluster.run(until=cluster.env.process(body())) == 42


def test_xfer_multicast_writes_all_destinations():
    cluster, core = make_core(n=8)

    def body():
        core.xfer_and_signal(
            0, range(1, 8), size=256, addr="flag", value="set", remote_event="e"
        )
        for node in range(1, 8):
            yield from core.test_event(node, "e")
        return core.gas.gather(range(1, 8), "flag")

    assert cluster.run(until=cluster.env.process(body())) == ["set"] * 7


def test_xfer_is_nonblocking_and_signals_local_event():
    cluster, core = make_core()
    t_posted = []

    def body():
        core.xfer_and_signal(0, 1, size=64 * KiB, local_event="sent")
        t_posted.append(cluster.env.now)  # must be immediate
        yield from core.test_event(0, "sent")
        return cluster.env.now

    t_done = cluster.run(until=cluster.env.process(body()))
    assert t_posted == [0]
    assert t_done > 0


def test_xfer_atomicity_no_partial_state_before_completion():
    """Global data must not appear at any destination before commit."""
    cluster, core = make_core(n=4)
    observed = []

    def observer():
        # Sample all destinations halfway through the transfer.
        yield cluster.env.timeout(1)
        observed.append(core.gas.gather([1, 2, 3], "v"))

    def body():
        core.xfer_and_signal(0, [1, 2, 3], size=1 * KiB, addr="v", value=7, remote_event="e")
        for node in (1, 2, 3):
            yield from core.test_event(node, "e")
        observed.append(core.gas.gather([1, 2, 3], "v"))

    cluster.env.process(observer())
    cluster.run(until=cluster.env.process(body()))
    assert observed[0] == [None, None, None]  # nothing mid-flight
    assert observed[1] == [7, 7, 7]  # everything after commit


def test_xfer_payload_writer_called_per_destination():
    cluster, core = make_core(n=4)
    deposited = []

    def body():
        core.xfer_and_signal(
            0,
            [1, 3],
            size=128,
            remote_event="e",
            payload_writer=lambda node: deposited.append(node),
        )
        yield from core.test_event(1, "e")
        yield from core.test_event(3, "e")

    cluster.run(until=cluster.env.process(body()))
    assert deposited == [1, 3]


def test_xfer_requires_destinations():
    cluster, core = make_core()
    with pytest.raises(ValueError):
        core.xfer_and_signal(0, [], size=1)


# --- Test-Event ------------------------------------------------------------------


def test_test_event_poll_nonblocking():
    cluster, core = make_core()
    assert core.test_event_poll(1, "never") is False
    cluster.node(1).nic.event("never").signal()
    assert core.test_event_poll(1, "never") is True
    assert core.test_event_poll(1, "never") is False  # consumed


def test_test_event_blocking_waits_for_signal():
    cluster, core = make_core()

    def waiter():
        yield from core.test_event(0, "sig")
        return cluster.env.now

    def signaler():
        yield cluster.env.timeout(500)
        cluster.node(0).nic.event("sig").signal()

    proc = cluster.env.process(waiter())
    cluster.env.process(signaler())
    assert cluster.run(until=proc) == 500


def test_event_counts_accumulate():
    cluster, core = make_core()
    ev = cluster.node(0).nic.event("acc")
    ev.signal(3)

    def body():
        yield from core.test_event(0, "acc")
        yield from core.test_event(0, "acc")
        yield from core.test_event(0, "acc")
        return cluster.env.now

    assert cluster.run(until=cluster.env.process(body())) == 0


# --- Compare-And-Write ----------------------------------------------------------------


def test_caw_true_on_all_nodes():
    cluster, core = make_core(n=4)
    for n in range(4):
        core.gas.write(n, "ready", 1)

    def body():
        ok = yield from core.compare_and_write(0, range(4), "ready", ">=", 1)
        return ok

    assert cluster.run(until=cluster.env.process(body())) is True


def test_caw_false_if_any_node_fails():
    cluster, core = make_core(n=4)
    for n in range(3):
        core.gas.write(n, "ready", 1)
    core.gas.write(3, "ready", 0)

    def body():
        ok = yield from core.compare_and_write(0, range(4), "ready", ">=", 1)
        return ok

    assert cluster.run(until=cluster.env.process(body())) is False


def test_caw_conditional_write_applied_only_when_true():
    cluster, core = make_core(n=4)
    for n in range(4):
        core.gas.write(n, "phase", 2)

    def body():
        ok = yield from core.compare_and_write(
            0, range(4), "phase", "==", 2, write_addr="go", write_value="now"
        )
        assert ok
        # Now a failing one: write must not happen.
        ok2 = yield from core.compare_and_write(
            0, range(4), "phase", "==", 99, write_addr="go2", write_value="x"
        )
        assert not ok2
        return core.gas.gather(range(4), "go"), core.gas.gather(range(4), "go2")

    go, go2 = cluster.run(until=cluster.env.process(body()))
    assert go == ["now"] * 4
    assert go2 == [None] * 4


def test_caw_all_operators():
    cluster, core = make_core(n=2)
    core.gas.write(0, "v", 5)
    core.gas.write(1, "v", 5)

    def body():
        results = {}
        for op, ref, expect in [
            (">=", 5, True),
            (">=", 6, False),
            ("<", 6, True),
            ("<", 5, False),
            ("==", 5, True),
            ("!=", 4, True),
            ("!=", 5, False),
        ]:
            got = yield from core.compare_and_write(0, [0, 1], "v", op, ref)
            results[(op, ref)] = got
        return [results[k] == e for (k), e in []] or results

    results = cluster.run(until=cluster.env.process(body()))
    assert results[(">=", 5)] and not results[(">=", 6)]
    assert results[("<", 6)] and not results[("<", 5)]
    assert results[("==", 5)]
    assert results[("!=", 4)] and not results[("!=", 5)]


def test_caw_rejects_unknown_operator():
    cluster, core = make_core()

    def body():
        yield from core.compare_and_write(0, [0], "v", "<=", 1)

    proc = cluster.env.process(body())
    with pytest.raises(ValueError):
        cluster.run(until=proc)


def test_caw_takes_table1_latency():
    cluster, core = make_core(n=16)

    def body():
        yield from core.compare_and_write(0, range(16), "v", "==", None)
        return cluster.env.now

    assert cluster.run(until=cluster.env.process(body())) == cluster.spec.model.cw_latency(16)


def test_caw_default_for_unwritten_variables():
    cluster, core = make_core(n=2)

    def body():
        ok = yield from core.compare_and_write(0, [0, 1], "nope", "==", 0, default=0)
        return ok

    assert cluster.run(until=cluster.env.process(body())) is True


def test_concurrent_caw_sequential_consistency():
    """Overlapping conditional writes leave one final value everywhere."""
    cluster, core = make_core(n=4)
    for n in range(4):
        core.gas.write(n, "token", 0)

    def writer(val):
        ok = yield from core.compare_and_write(
            0, range(4), "token", ">=", 0, write_addr="winner", write_value=val
        )
        assert ok

    cluster.env.process(writer("a"))
    cluster.env.process(writer("b"))
    cluster.run()
    values = set(core.gas.gather(range(4), "winner"))
    assert len(values) == 1  # all nodes agree on the same final value
