"""STORM job-launch bench (the substrate result BCS-MPI builds on, §2).

The paper's companion system STORM [8] demonstrated that, implemented
on the BCS core primitives, resource management becomes "orders of
magnitude faster than existing production-level software".  This bench
regenerates the launch-time-vs-machine-size series on our simulated
cluster: binary distribution rides the hardware multicast, completion
detection is one Compare-And-Write, and launch time is nearly flat in
the node count.
"""

import pytest

from repro.core import BcsCore
from repro.harness.report import print_table
from repro.network import Cluster, ClusterSpec
from repro.storm import StormLauncher
from repro.units import mib

NODE_COUNTS = (4, 8, 16, 32, 64, 128)
BINARY = mib(8)


def launch_time(n_nodes: int) -> dict:
    cluster = Cluster(ClusterSpec(n_nodes=n_nodes))
    core = BcsCore(cluster)
    launcher = StormLauncher(core, cluster.management_node.id)

    def body():
        report = yield from launcher.launch_binary(list(range(n_nodes)), BINARY)
        return report

    report = cluster.run(until=cluster.env.process(body()))
    return {
        "nodes": n_nodes,
        "transfer_ms": report.transfer_ns / 1e6,
        "total_ms": report.total_ns / 1e6,
    }


def _sweep():
    return [launch_time(n) for n in NODE_COUNTS]


def test_storm_launch_scales_flat(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print_table(
        "STORM launch of an 8 MiB binary vs machine size",
        ["nodes", "binary transfer (ms)", "total launch (ms)"],
        [[r["nodes"], f"{r['transfer_ms']:.2f}", f"{r['total_ms']:.2f}"] for r in rows],
    )
    totals = [r["total_ms"] for r in rows]
    # 32x the nodes costs less than 1.5x the time: the multicast tree
    # does the fan-out (the "lightning-fast" STORM result).
    assert totals[-1] < 1.5 * totals[0]
    # And absolute launch stays in the tens-of-ms class, not seconds.
    assert all(t < 200 for t in totals)
