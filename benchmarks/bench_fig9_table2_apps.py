"""Figure 9 + Table 2: NAS benchmarks, SAGE, SWEEP3D (paper §5.3).

Paper's Table 2 (slowdown of BCS-MPI vs Quadrics MPI):

    SAGE -0.42%   SWEEP3D -2.23%   IS 10.14%   EP 5.35%
    MG 4.37%      CG 10.83%        LU 15.04%

Shape criteria: coarse-grained bulk-synchronous codes (EP, MG) show
moderate single-digit slowdowns; the short-running IS pays ~10 % of
runtime-initialization overhead; blocking-call-heavy CG and LU sit at
10-15 %; SAGE and the non-blocking SWEEP3D are within ~2.5 % of the
production MPI (the paper reports slight wins).
"""

import pytest

from repro.harness.experiments import PAPER_TABLE2, fig9_table2_rows
from repro.harness.report import print_table

#: |measured - paper| tolerance per app, percentage points.
TOLERANCE = {
    "SAGE": 2.5,
    "SWEEP3D": 5.0,
    "IS": 4.0,
    "EP": 2.5,
    "MG": 2.5,
    "CG": 6.0,
    "LU": 8.0,
}


def test_fig9_table2_applications(benchmark, repro_ranks, repro_scale):
    rows = benchmark.pedantic(
        lambda: fig9_table2_rows(n_ranks=repro_ranks, scale=repro_scale),
        rounds=1,
        iterations=1,
    )
    print_table(
        "Fig 9 / Table 2: application runtimes and slowdowns",
        ["app", "Quadrics-MPI model (s)", "BCS-MPI (s)", "slowdown %", "paper %"],
        [
            [
                r["app"],
                f"{r['baseline_s']:.2f}",
                f"{r['bcs_s']:.2f}",
                f"{r['slowdown_pct']:+.2f}",
                f"{r['paper_slowdown_pct']:+.2f}",
            ]
            for r in rows
        ],
    )
    measured = {r["app"]: r["slowdown_pct"] for r in rows}

    # Per-app agreement with the paper within tolerance.
    for app, paper in PAPER_TABLE2.items():
        assert abs(measured[app] - paper) <= TOLERANCE[app], (
            f"{app}: measured {measured[app]:+.2f}% vs paper {paper:+.2f}%"
        )

    # Orderings the paper's analysis rests on:
    # overlap-friendly codes beat the blocking-heavy ones...
    assert measured["SAGE"] < measured["MG"] < measured["CG"]
    # ...IS pays the init price despite friendly communication...
    assert measured["IS"] > measured["EP"]
    # ...and LU (finest-grained blocking) is the worst NAS slowdown.
    assert measured["LU"] >= measured["CG"] - 1.0
    # SAGE / SWEEP3D run at production-MPI speed (within noise).
    assert abs(measured["SAGE"]) < 2.5
    assert abs(measured["SWEEP3D"]) < 5.0
