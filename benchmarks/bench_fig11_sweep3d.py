"""Figure 11: SWEEP3D, blocking vs non-blocking (paper §5.4).

Shape criteria:

- 11(a): the original blocking code runs ~30 % slower under BCS (the
  paper's number; our simulator lands in the 30-55 % band) at *every*
  process count — the penalty is structural, not a scaling artifact.
- 11(b): after the <50-line Isend/Irecv+Waitall transform the BCS curve
  matches the production MPI within a few percent (the paper reports a
  slight BCS win).
"""

import pytest

from repro.harness.experiments import fig11_sweep3d
from repro.harness.report import print_table


def test_fig11_sweep3d_blocking_vs_nonblocking(benchmark):
    rows = benchmark.pedantic(fig11_sweep3d, rounds=1, iterations=1)
    print_table(
        "Fig 11: SWEEP3D runtime, blocking (a) and non-blocking (b)",
        ["processes", "variant", "Quadrics-MPI model (s)", "BCS-MPI (s)", "slowdown %"],
        [
            [
                r["processes"],
                r["variant"],
                f"{r['baseline_s']:.3f}",
                f"{r['bcs_s']:.3f}",
                f"{r['slowdown_pct']:+.2f}",
            ]
            for r in rows
        ],
    )
    blocking = {r["processes"]: r["slowdown_pct"] for r in rows if r["variant"] == "blocking"}
    nonblocking = {
        r["processes"]: r["slowdown_pct"] for r in rows if r["variant"] == "nonblocking"
    }
    # 11(a): a large, structural blocking penalty at every size.
    for p, s in blocking.items():
        assert 20.0 <= s <= 80.0, f"blocking at p={p}: {s:.1f}%"
    # 11(b): the transform brings BCS to production-MPI speed.
    for p, s in nonblocking.items():
        assert abs(s) < 6.0, f"nonblocking at p={p}: {s:.1f}%"
    # The transform wins big at every process count.
    for p in blocking:
        assert blocking[p] - nonblocking[p] > 15.0
