"""Shared benchmark configuration.

Every benchmark regenerates one table or figure from the paper's
evaluation (§5) and prints the same rows/series the paper reports.
``pytest-benchmark`` wraps the run so timings land in the benchmark
report; the printed tables carry the reproduced numbers.

Environment knobs:

- ``REPRO_SCALE``: override the per-experiment default scale (e.g. 1.0
  for full class-C instances; expect long runs).
- ``REPRO_RANKS``: override the 62-process full-machine size.
"""

import os

import pytest


def scale_override():
    """REPRO_SCALE env var as float, or None for per-experiment defaults."""
    value = os.environ.get("REPRO_SCALE")
    return float(value) if value else None


def ranks_override():
    """REPRO_RANKS env var as int, or None for per-experiment defaults."""
    value = os.environ.get("REPRO_RANKS")
    return int(value) if value else None


@pytest.fixture(scope="session")
def repro_scale():
    return scale_override()


@pytest.fixture(scope="session")
def repro_ranks():
    return ranks_override()
