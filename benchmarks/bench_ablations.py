"""Ablation benches for the design choices DESIGN.md §6 calls out.

Not figures from the paper — these quantify the knobs the paper fixes:

- time-slice length (the paper uses 500 us everywhere),
- buffered vs strict blocking-send completion (the B in BCS),
- gang scheduling as the multiprogramming remedy of §5.4,
- OS noise: coordinated vs uncoordinated daemons (§1 / [20]).
"""

import pytest

from repro.apps import sweep3d_blocking
from repro.bcs import BcsConfig, BcsRuntime
from repro.harness.experiments import (
    ablation_buffered_sends,
    ablation_kernel_level,
    ablation_timeslice,
)
from repro.harness.extensions import NOISE_SCENARIOS, ext_noise_point
from repro.harness.report import print_table
from repro.network import Cluster, ClusterSpec
from repro.storm import GangScheduler, JobSpec


def test_ablation_timeslice(benchmark):
    rows = benchmark.pedantic(ablation_timeslice, rounds=1, iterations=1)
    print_table(
        "Ablation: blocking wavefront vs time-slice length (16 ranks)",
        ["timeslice (us)", "baseline (s)", "BCS (s)", "slowdown %"],
        [
            [r["timeslice_us"], f"{r['baseline_s']:.3f}", f"{r['bcs_s']:.3f}", f"{r['slowdown_pct']:.1f}"]
            for r in rows
        ],
    )
    # Blocking penalty grows with the slice length (quantization cost).
    slowdowns = [r["slowdown_pct"] for r in rows]
    assert slowdowns[-1] > slowdowns[0]


def test_ablation_buffered_sends(benchmark):
    rows = benchmark.pedantic(ablation_buffered_sends, rounds=1, iterations=1)
    print_table(
        "Ablation: buffered vs strict blocking sends (the B in BCS)",
        ["buffered", "baseline (s)", "BCS (s)", "slowdown %"],
        [
            [r["buffered_sends"], f"{r['baseline_s']:.3f}", f"{r['bcs_s']:.3f}", f"{r['slowdown_pct']:.1f}"]
            for r in rows
        ],
    )
    buffered = next(r for r in rows if r["buffered_sends"])
    strict = next(r for r in rows if not r["buffered_sends"])
    # Buffering the sends removes a large share of the blocking penalty.
    assert buffered["slowdown_pct"] < strict["slowdown_pct"] - 10.0


def test_ablation_kernel_level_bcs(benchmark):
    rows = benchmark.pedantic(ablation_kernel_level, rounds=1, iterations=1)
    print_table(
        "Ablation: user-level vs kernel-level BCS (barrier @10 ms, 62 ranks)",
        ["implementation", "baseline (s)", "BCS (s)", "slowdown %"],
        [
            [r["implementation"], f"{r['baseline_s']:.3f}", f"{r['bcs_s']:.3f}", f"{r['slowdown_pct']:.2f}"]
            for r in rows
        ],
    )
    user = next(r for r in rows if r["implementation"] == "user-level")
    kernel = next(r for r in rows if r["implementation"] == "kernel-level")
    # Moving the NM into the kernel removes the scheduling tax (§4.5).
    assert kernel["slowdown_pct"] < user["slowdown_pct"]


def _gang_runs():
    params = dict(octants=2, kblocks=4)

    def run(n_jobs, gang):
        cluster = Cluster(ClusterSpec(n_nodes=8))
        runtime = BcsRuntime(cluster, BcsConfig(init_cost=0))
        scheduler = GangScheduler(runtime) if gang else None
        jobs = []
        for i in range(n_jobs):
            job = runtime.launch(
                JobSpec(app=sweep3d_blocking, n_ranks=16, name=f"j{i}", params=params)
            )
            if scheduler:
                scheduler.add_job(job)
            jobs.append(job)
        cluster.env.run(until=cluster.env.all_of([j.done for j in jobs]))
        return cluster.env.now

    one = run(1, False)
    two_gang = run(2, True)
    return one, two_gang


def test_ablation_gang_scheduling(benchmark):
    one, two_gang = benchmark.pedantic(_gang_runs, rounds=1, iterations=1)
    print_table(
        "Ablation: gang scheduling two blocking-heavy jobs (MPL=2)",
        ["configuration", "makespan (s)"],
        [
            ["1 job", f"{one / 1e9:.3f}"],
            ["2 jobs gang-scheduled", f"{two_gang / 1e9:.3f}"],
            ["2 jobs back-to-back", f"{2 * one / 1e9:.3f}"],
        ],
    )
    # Coscheduling reclaims blocked-CPU time: well under 2x one job.
    assert two_gang < 1.85 * one


def _noise_runs():
    # The same study function the farm's ext_noise family executes.
    runs = {
        scenario: ext_noise_point(scenario)["runtime_s"] * 1e9
        for scenario in NOISE_SCENARIOS
    }
    return runs["quiet"], runs["uncoordinated"], runs["coordinated"]


def test_ablation_noise_coordination(benchmark):
    quiet, uncoord, coord = benchmark.pedantic(_noise_runs, rounds=1, iterations=1)
    print_table(
        "Ablation: OS noise on a fine-grained barrier code (32 ranks)",
        ["scenario", "runtime (s)", "vs quiet"],
        [
            ["no noise", f"{quiet / 1e9:.3f}", "--"],
            ["uncoordinated daemons", f"{uncoord / 1e9:.3f}", f"+{100 * (uncoord / quiet - 1):.0f}%"],
            ["coordinated daemons", f"{coord / 1e9:.3f}", f"+{100 * (coord / quiet - 1):.0f}%"],
        ],
    )
    # The coscheduling argument: coordination removes most of the damage.
    assert uncoord > coord > quiet * 0.98
