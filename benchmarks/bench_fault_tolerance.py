"""Fault-tolerance bench: checkpoint interval vs completion time.

Not a paper figure — the paper names system-level fault tolerance as its
main future-work direction (§6), arguing the deterministic slice
boundaries make coordinated checkpointing cheap.  This bench quantifies
the classic trade-off on top of our implementation: frequent checkpoints
cost steady-state pause time, rare ones cost lost work on failure — the
optimum sits in between (the Young/Daly shape).
"""

import pytest

from repro.apps import resilient_stencil
from repro.bcs import BcsConfig, BcsRuntime
from repro.ft import CheckpointConfig, RecoveryManager
from repro.harness.report import print_table
from repro.network import Cluster, ClusterSpec
from repro.units import mib, ms

TOTAL_STEPS = 120
STEP = ms(5)
FAILURES = [(ms(300), 1), (ms(520), 2)]


def run_with_interval(interval_ms: float) -> dict:
    cluster = Cluster(ClusterSpec(n_nodes=8))
    runtime = BcsRuntime(cluster, BcsConfig(init_cost=0))
    manager = RecoveryManager(
        runtime,
        CheckpointConfig(
            interval=ms(interval_ms), image_bytes=mib(32), storage_bandwidth=4e9
        ),
        reboot_delay=ms(30),
    )
    report = manager.run_to_completion(
        resilient_stencil,
        n_ranks=16,
        total_steps=TOTAL_STEPS,
        params=dict(step_compute=STEP),
        failures=list(FAILURES),
    )
    return {
        "interval_ms": interval_ms,
        "total_s": report.total_ns / 1e9,
        "checkpoints": report.checkpoints,
        "lost_steps": report.lost_steps,
        "restarts": report.restarts,
    }


def _sweep():
    return [run_with_interval(iv) for iv in (15, 50, 120, 400, 10000)]


def test_checkpoint_interval_tradeoff(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print_table(
        "Checkpoint interval vs completion under 2 node failures (16 ranks)",
        ["interval (ms)", "total (s)", "checkpoints", "lost steps", "restarts"],
        [
            [r["interval_ms"], f"{r['total_s']:.3f}", r["checkpoints"], r["lost_steps"], r["restarts"]]
            for r in rows
        ],
    )
    by_iv = {r["interval_ms"]: r for r in rows}
    # Every configuration survives the failures.
    assert all(r["restarts"] >= 1 for r in rows)
    # Checkpoint counts decrease with the interval.
    counts = [r["checkpoints"] for r in rows]
    assert counts == sorted(counts, reverse=True)
    # Lost work grows as checkpoints get rarer.
    assert by_iv[10000]["lost_steps"] >= by_iv[50]["lost_steps"]
    # Both extremes are worse than (or equal to) the mid-range optimum.
    best_mid = min(by_iv[50]["total_s"], by_iv[120]["total_s"])
    assert by_iv[10000]["total_s"] >= best_mid
    assert by_iv[15]["total_s"] >= best_mid * 0.98
