"""Figure 8: the synthetic benchmarks (paper §5.2).

- 8(a): slowdown vs computation granularity, barrier benchmark, 62 procs
- 8(b): slowdown vs process count, barrier benchmark, 10 ms granularity
- 8(c): slowdown vs granularity, nearest-neighbour (4 peers, 4 KB msgs)
- 8(d): slowdown vs process count, nearest-neighbour, 10 ms granularity

Shape criteria (the paper's claims): slowdown decreases monotonically
with granularity, dropping to single digits at 10 ms (paper: <7.5 %
barrier, <8 % p2p); and is roughly flat in the process count.
"""

import pytest

from repro.harness.experiments import (
    fig8a_barrier_vs_granularity,
    fig8b_barrier_vs_procs,
    fig8c_p2p_vs_granularity,
    fig8d_p2p_vs_procs,
)
from repro.harness.report import print_table


def _print(title, x_name, rows):
    print_table(
        title,
        [x_name, "Quadrics-MPI model (s)", "BCS-MPI (s)", "slowdown %"],
        [
            [r[x_name], f"{r['baseline_s']:.3f}", f"{r['bcs_s']:.3f}", f"{r['slowdown_pct']:.2f}"]
            for r in rows
        ],
    )


def test_fig8a_barrier_vs_granularity(benchmark, repro_ranks):
    rows = benchmark.pedantic(
        lambda: fig8a_barrier_vs_granularity(n_ranks=repro_ranks or 62),
        rounds=1,
        iterations=1,
    )
    _print("Fig 8(a): computation + barrier, slowdown vs granularity", "granularity_ms", rows)
    slowdowns = [r["slowdown_pct"] for r in rows]
    # Monotone decreasing (allow tiny jitter) and single-digit by 10 ms.
    for a, b in zip(slowdowns, slowdowns[1:]):
        assert b <= a * 1.15
    at10 = next(r for r in rows if r["granularity_ms"] == 10)
    assert at10["slowdown_pct"] < 12.0
    assert slowdowns[-1] < 5.0


def test_fig8b_barrier_vs_procs(benchmark):
    rows = benchmark.pedantic(fig8b_barrier_vs_procs, rounds=1, iterations=1)
    _print("Fig 8(b): computation + barrier, 10 ms, slowdown vs processes", "processes", rows)
    slowdowns = [r["slowdown_pct"] for r in rows]
    # Paper: "almost insensitive to the number of processors".
    assert max(slowdowns) - min(slowdowns) < 6.0
    assert all(s < 14.0 for s in slowdowns)


def test_fig8c_p2p_vs_granularity(benchmark, repro_ranks):
    rows = benchmark.pedantic(
        lambda: fig8c_p2p_vs_granularity(n_ranks=repro_ranks or 62),
        rounds=1,
        iterations=1,
    )
    _print("Fig 8(c): computation + nearest-neighbour, slowdown vs granularity", "granularity_ms", rows)
    slowdowns = [r["slowdown_pct"] for r in rows]
    for a, b in zip(slowdowns, slowdowns[1:]):
        assert b <= a * 1.15
    at10 = next(r for r in rows if r["granularity_ms"] == 10)
    assert at10["slowdown_pct"] < 12.0


def test_fig8d_p2p_vs_procs(benchmark):
    rows = benchmark.pedantic(fig8d_p2p_vs_procs, rounds=1, iterations=1)
    _print("Fig 8(d): computation + nearest-neighbour, 10 ms, vs processes", "processes", rows)
    slowdowns = [r["slowdown_pct"] for r in rows]
    assert max(slowdowns) - min(slowdowns) < 6.0
    assert all(s < 14.0 for s in slowdowns)
