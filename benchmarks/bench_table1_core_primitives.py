"""Table 1: BCS core mechanism performance across network models.

Paper row (measured/expected):

    Network     Compare-And-Write        Xfer-And-Signal
    GigE        46 log n  us             n/a
    Myrinet     20 log n  us             ~15n MB/s
    Infiniband  20 log n  us             n/a
    QsNet       < 10 us                  > 150n MB/s
    BlueGene/L  < 2 us                   700n MB/s

The bench measures both primitives on every simulated network and
checks the table's *shapes*: log-scaling on the emulated networks, flat
sub-10-us conditionals on QsNet, and aggregate multicast bandwidth
growing linearly in n.
"""

from repro.harness.experiments import table1_rows
from repro.harness.report import print_table
from repro.units import us


def _run():
    return table1_rows(node_counts=(2, 4, 8, 16, 32))


def test_table1_core_primitives(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_table(
        "Table 1: BCS core mechanisms vs network (measured on the simulator)",
        ["network", "nodes", "CaW (us)", "XaS aggregate (MB/s)", "per node (MB/s)"],
        [
            [
                r["network"],
                r["nodes"],
                f"{r['caw_us']:.2f}",
                f"{r['xfer_aggregate_mb_s']:.0f}",
                f"{r['xfer_mb_s_per_node']:.0f}",
            ]
            for r in rows
        ],
    )

    by_net = {}
    for r in rows:
        by_net.setdefault(r["network"], []).append(r)

    # QsNet: conditionals stay < 10 us at every size (Table 1 row 4).
    assert all(r["caw_us"] < 10 for r in by_net["qsnet"])
    # BlueGene/L: < 2 us.
    assert all(r["caw_us"] < 2 for r in by_net["bluegene_l"])
    # Emulated networks: CaW grows ~log n; GigE at 32 nodes ~ 5x its 2-node cost.
    gige = {r["nodes"]: r["caw_us"] for r in by_net["gige"]}
    assert 4.0 <= gige[32] / gige[2] <= 6.0
    # Aggregate Xfer-And-Signal bandwidth grows with n (hardware tree).
    for net in ("qsnet", "bluegene_l"):
        series = [r["xfer_aggregate_mb_s"] for r in by_net[net]]
        assert series == sorted(series)
    # QsNet per-node multicast bandwidth > 150 MB/s => aggregate > 150n.
    assert all(r["xfer_mb_s_per_node"] > 110 for r in by_net["qsnet"])
