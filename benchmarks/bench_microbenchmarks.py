"""Point-to-point microbenchmarks: latency and bandwidth vs message size.

Not a numbered figure, but the heart of the paper's argument (§1): BCS
deliberately *loses* the point-to-point latency race — a small message
costs ~1.5 time slices instead of ~5 µs — and wins it back at the
application level through global scheduling and overlap.  These are the
osu_latency/osu_bw-style curves that quantify the trade:

- baseline latency: flat microseconds for eager sizes, a rendezvous
  step, then bandwidth-limited growth;
- BCS latency: flat ~1.5 slices until the message exceeds the per-slice
  chunk budget, then one extra slice per budget's worth of data;
- large-message *bandwidth* converges: the chunk budget admits most of
  the link rate (0.8 duty cycle), so streaming transfers are competitive.
"""

import pytest

from repro.bcs import BcsConfig, BcsRuntime
from repro.harness.report import print_table
from repro.mpi.baseline import BaselineConfig, BaselineRuntime
from repro.network import Cluster, ClusterSpec
from repro.storm import JobSpec
from repro.units import KiB, MiB, seconds, us

SIZES = (64, KiB, 32 * KiB, 256 * KiB, 1 * MiB, 8 * MiB)


def pingpong_time(backend: str, size: int, reps: int = 3) -> float:
    """Mean one-way time (ns) of a ping-pong at ``size`` bytes."""

    def app(ctx):
        yield from ctx.comm.barrier()
        t0 = ctx.now
        for i in range(reps):
            if ctx.rank == 0:
                yield from ctx.comm.send(None, dest=1, tag=i, size=size)
                yield from ctx.comm.recv(source=1, tag=i, size=size)
            else:
                yield from ctx.comm.recv(source=0, tag=i, size=size)
                yield from ctx.comm.send(None, dest=0, tag=i, size=size)
        return (ctx.now - t0) / (2 * reps)

    cluster = Cluster(ClusterSpec(n_nodes=2))
    if backend == "bcs":
        runtime = BcsRuntime(cluster, BcsConfig(init_cost=0))
    else:
        runtime = BaselineRuntime(cluster, BaselineConfig(init_cost=0))
    # One rank per node: we are measuring the wire, not loopback DMA.
    job = runtime.run_job(
        JobSpec(app=app, n_ranks=2), placement=[0, 1], max_time=seconds(60)
    )
    return job.results[0]


def _sweep():
    rows = []
    for size in SIZES:
        base = pingpong_time("baseline", size)
        bcs = pingpong_time("bcs", size)
        rows.append(
            {
                "size": size,
                "baseline_us": base / 1000.0,
                "bcs_us": bcs / 1000.0,
                "baseline_mb_s": size / base * 1000.0 if base else 0.0,
                "bcs_mb_s": size / bcs * 1000.0 if bcs else 0.0,
            }
        )
    return rows


def test_p2p_latency_bandwidth_curves(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print_table(
        "Ping-pong one-way time and bandwidth vs message size",
        ["size (B)", "Quadrics model (us)", "BCS (us)", "Quadrics (MB/s)", "BCS (MB/s)"],
        [
            [
                r["size"],
                f"{r['baseline_us']:.1f}",
                f"{r['bcs_us']:.1f}",
                f"{r['baseline_mb_s']:.0f}",
                f"{r['bcs_mb_s']:.0f}",
            ]
            for r in rows
        ],
    )
    by_size = {r["size"]: r for r in rows}

    # Small messages: the baseline wins by orders of magnitude...
    assert by_size[64]["baseline_us"] < 20
    assert 500 <= by_size[64]["bcs_us"] <= 1500  # 1-2 slices + wake
    # ...and the BCS latency is FLAT until the chunk budget is exceeded.
    assert by_size[32 * KiB]["bcs_us"] < 1.6 * by_size[64]["bcs_us"]
    # Large messages: bandwidths converge within ~2.5x.
    big = by_size[8 * MiB]
    assert big["bcs_mb_s"] > big["baseline_mb_s"] / 2.5
    # And BCS streaming bandwidth reaches a respectable share of the link.
    assert big["bcs_mb_s"] > 100


def windowed_bandwidth(backend: str, size: int = 256 * KiB, window: int = 16) -> float:
    """osu_bw-style: ``window`` outstanding isends, then waitall; MB/s."""

    def app(ctx):
        yield from ctx.comm.barrier()
        t0 = ctx.now
        if ctx.rank == 0:
            reqs = [
                ctx.comm.isend(None, dest=1, tag=i, size=size) for i in range(window)
            ]
            yield from ctx.comm.waitall(reqs)
            yield from ctx.comm.recv(source=1, tag=999)  # remote completion ack
        else:
            reqs = [
                ctx.comm.irecv(source=0, tag=i, size=size) for i in range(window)
            ]
            yield from ctx.comm.waitall(reqs)
            yield from ctx.comm.send(None, dest=0, tag=999, size=8)
        return ctx.now - t0

    cluster = Cluster(ClusterSpec(n_nodes=2))
    if backend == "bcs":
        runtime = BcsRuntime(cluster, BcsConfig(init_cost=0))
    else:
        runtime = BaselineRuntime(cluster, BaselineConfig(init_cost=0))
    job = runtime.run_job(
        JobSpec(app=app, n_ranks=2), placement=[0, 1], max_time=seconds(60)
    )
    elapsed = max(job.results)
    return window * size / elapsed * 1000.0  # MB/s


def test_windowed_bandwidth(benchmark):
    out = benchmark.pedantic(
        lambda: {b: windowed_bandwidth(b) for b in ("baseline", "bcs")},
        rounds=1,
        iterations=1,
    )
    print_table(
        "Windowed streaming bandwidth (16 x 256 KiB outstanding)",
        ["backend", "MB/s"],
        [[b, f"{v:.0f}"] for b, v in out.items()],
    )
    # Pipelined chunks amortize the slice machinery: BCS streams at a
    # solid fraction of the production MPI's rate.
    assert out["bcs"] > out["baseline"] * 0.45
    assert out["baseline"] > 200
