"""Figure 10: SAGE runtime vs process count, both MPIs (paper §5.3).

Shape criteria: the two curves sit on top of each other at every size
(SAGE's non-blocking stencil + one allreduce per step is BCS-MPI's best
case), with BCS within ~2.5 % everywhere; runtime per step stays flat-ish
(weak-scaling behaviour of the timing.input problem).
"""

import pytest

from repro.harness.experiments import fig10_sage_scaling
from repro.harness.report import print_table


def test_fig10_sage_scaling(benchmark):
    rows = benchmark.pedantic(fig10_sage_scaling, rounds=1, iterations=1)
    print_table(
        "Fig 10: SAGE, timing.input-like problem, runtime vs processes",
        ["processes", "Quadrics-MPI model (s)", "BCS-MPI (s)", "slowdown %"],
        [
            [
                r["processes"],
                f"{r['baseline_s']:.3f}",
                f"{r['bcs_s']:.3f}",
                f"{r['slowdown_pct']:+.2f}",
            ]
            for r in rows
        ],
    )
    # The curves coincide: |slowdown| small at every process count.
    # (Non-cubic process grids shift the baseline's exposed-transfer
    # cost by a few percent, always in BCS's favour.)
    for r in rows:
        assert abs(r["slowdown_pct"]) < 6.5, r
    # And scaling is sane: runtime does not blow up with process count.
    runtimes = [r["bcs_s"] for r in rows]
    assert max(runtimes) < 1.6 * min(runtimes)
