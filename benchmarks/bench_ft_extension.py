"""Extension bench: NPB FT — the kernel the paper could not run.

FT was excluded from the paper's evaluation because BCS-MPI lacked MPI
groups (§4.5).  This implementation supports communicator splitting, so
the bench completes the NAS picture: FT's global transpose (a large
MPI_Alltoall inside row sub-communicators) is the suite's heaviest
collective pattern, and the non-blocking exchange means BCS stays in
the same performance class as the production MPI.
"""

import pytest

from repro.apps.nas import NAS_APPS
from repro.bcs import BcsConfig
from repro.harness import compare_backends
from repro.harness.report import print_table
from repro.mpi.baseline import BaselineConfig
from repro.units import seconds

PARAMS = dict(iterations=3, grid_points=256)


def _run():
    return compare_backends(
        NAS_APPS["FT"],
        32,
        params=PARAMS,
        bcs_config=BcsConfig(init_cost=seconds(0.12)),
        baseline_config=BaselineConfig(init_cost=seconds(0.015)),
        name="FT",
    )


def test_ft_extension(benchmark):
    comparison = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_table(
        "Extension: NPB FT (class-C-like transpose) on 32 ranks",
        ["backend", "runtime (s)"],
        [
            ["Quadrics-MPI model", f"{comparison.baseline.runtime_s:.2f}"],
            ["BCS-MPI", f"{comparison.bcs.runtime_s:.2f}"],
            ["slowdown", f"{comparison.slowdown_pct:+.2f}%"],
        ],
    )
    # Checksums agree (the transpose really moves matching data flow).
    assert comparison.bcs.results == comparison.baseline.results
    # FT's exchanges are non-blocking: BCS stays in the same class.
    assert comparison.slowdown_pct < 25.0
