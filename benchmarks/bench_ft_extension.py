"""Extension bench: NPB FT — the kernel the paper could not run.

FT was excluded from the paper's evaluation because BCS-MPI lacked MPI
groups (§4.5).  This implementation supports communicator splitting, so
the bench completes the NAS picture: FT's global transpose (a large
MPI_Alltoall inside row sub-communicators) is the suite's heaviest
collective pattern, and the non-blocking exchange means BCS stays in
the same performance class as the production MPI.

The row itself comes from :func:`repro.harness.extensions.ext_ft_point`
— the same function the farm's ``ext_ft`` family executes — so this
bench is a thin assertion layer over the shared study.
"""

import pytest

from repro.harness.extensions import ext_ft_point
from repro.harness.report import print_table


def test_ft_extension(benchmark):
    row = benchmark.pedantic(ext_ft_point, rounds=1, iterations=1)
    print_table(
        "Extension: NPB FT (class-C-like transpose) on 32 ranks",
        ["backend", "runtime (s)"],
        [
            ["Quadrics-MPI model", f"{row['baseline_s']:.2f}"],
            ["BCS-MPI", f"{row['bcs_s']:.2f}"],
            ["slowdown", f"{row['slowdown_pct']:+.2f}%"],
        ],
    )
    # Checksums agree (the transpose really moves matching data flow).
    assert row["results_match"]
    # FT's exchanges are non-blocking: BCS stays in the same class.
    assert row["slowdown_pct"] < 25.0
