"""Deterministic-replay debugging tools (paper §1)."""

from .diagnostics import diagnose
from .recorder import CATEGORIES, Divergence, FlightRecorder, assert_replayable, diff_logs

__all__ = [
    "CATEGORIES",
    "Divergence",
    "FlightRecorder",
    "assert_replayable",
    "diagnose",
    "diff_logs",
]
