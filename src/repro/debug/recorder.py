"""Deterministic-replay debugging.

Paper §1: "the communication state of all processes is known at the
beginning of every time slice [which] facilitates the implementation of
checkpointing and debugging mechanisms."  Because this runtime is
bit-deterministic, the strongest debugging primitive is *replay
comparison*: record the communication log of a run, re-run, and diff.
Any divergence pinpoints the first nondeterministic (or changed) event
— the debugging workflow a SIMD-style global OS makes possible.

Usage::

    recorder = FlightRecorder()
    cluster = Cluster(spec, trace=recorder.trace)
    ... run ...
    log = recorder.log()

    divergence = diff_logs(log_a, log_b)   # [] when runs are identical
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..sim import Trace

#: Trace categories the recorder needs captured.
CATEGORIES = ("fabric.unicast", "fabric.multicast", "bcs.microphase")


@dataclass(frozen=True)
class Divergence:
    """First point where two communication logs disagree."""

    index: int
    left: Optional[tuple]
    right: Optional[tuple]

    def __str__(self) -> str:
        return (
            f"logs diverge at event {self.index}:\n"
            f"  run A: {self.left}\n"
            f"  run B: {self.right}"
        )


class FlightRecorder:
    """Captures a run's ordered communication log."""

    def __init__(self):
        self.trace = Trace(categories=list(CATEGORIES))

    def log(self) -> List[tuple]:
        """The normalized event log, in simulation order.

        Each entry is a plain tuple (hashable, diffable):
        ``(time, kind, details...)``.
        """
        out: List[tuple] = []
        for rec in self.trace.records:
            if rec.category == "fabric.unicast":
                out.append(
                    (
                        rec.time,
                        "unicast",
                        rec.fields["src"],
                        rec.fields["dst"],
                        rec.fields["size"],
                        rec.fields.get("label", ""),
                    )
                )
            elif rec.category == "fabric.multicast":
                out.append(
                    (
                        rec.time,
                        "multicast",
                        rec.fields["src"],
                        rec.fields["dests"],
                        rec.fields["size"],
                    )
                )
            elif rec.category == "bcs.microphase":
                out.append(
                    (
                        rec.time,
                        "phase",
                        rec.fields["slice"],
                        rec.fields["phase"],
                        rec.fields["duration"],
                    )
                )
        return out


def diff_logs(a: List[tuple], b: List[tuple]) -> List[Divergence]:
    """Compare two communication logs; empty list means identical.

    Reports the first divergence (different event, or one log ending
    early) — with a deterministic runtime that is exactly where the two
    executions started to differ.
    """
    for i, (ea, eb) in enumerate(zip(a, b)):
        if ea != eb:
            return [Divergence(i, ea, eb)]
    if len(a) != len(b):
        i = min(len(a), len(b))
        return [
            Divergence(
                i,
                a[i] if i < len(a) else None,
                b[i] if i < len(b) else None,
            )
        ]
    return []


def assert_replayable(run_fn) -> List[tuple]:
    """Run ``run_fn(trace)`` twice and assert identical logs.

    ``run_fn`` must accept a :class:`Trace` and perform a complete run
    against a *fresh* cluster wired to it.  Returns the (verified) log.
    """
    logs = []
    for _ in range(2):
        recorder = FlightRecorder()
        run_fn(recorder.trace)
        logs.append(recorder.log())
    divergences = diff_logs(logs[0], logs[1])
    if divergences:
        raise AssertionError(f"run is not replayable:\n{divergences[0]}")
    return logs[0]
