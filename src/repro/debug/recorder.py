"""Deterministic-replay debugging.

Paper §1: "the communication state of all processes is known at the
beginning of every time slice [which] facilitates the implementation of
checkpointing and debugging mechanisms."  Because this runtime is
bit-deterministic, the strongest debugging primitive is *replay
comparison*: record the communication log of a run, re-run, and diff.
Any divergence pinpoints the first nondeterministic (or changed) event
— the debugging workflow a SIMD-style global OS makes possible.

Event aggregation goes through a :class:`repro.obs.MetricsRegistry`
(one counter per event kind, a bytes counter per kind) instead of
private tallies, so the recorder's statistics render with the same
machinery as the runtime's slice telemetry.

Usage::

    recorder = FlightRecorder()
    cluster = Cluster(spec, trace=recorder.trace)
    ... run ...
    log = recorder.log()

    divergence = diff_logs(log_a, log_b)   # [] when runs are identical
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..obs import MetricsRegistry
from ..sim import Trace

#: Trace categories the recorder needs captured.
CATEGORIES = ("fabric.unicast", "fabric.multicast", "bcs.microphase")


@dataclass(frozen=True)
class Divergence:
    """First point where two communication logs disagree."""

    index: int
    left: Optional[tuple]
    right: Optional[tuple]

    def __str__(self) -> str:
        return (
            f"logs diverge at event {self.index}:\n"
            f"  run A: {self.left}\n"
            f"  run B: {self.right}"
        )


def _normalize_unicast(rec) -> Tuple[tuple, int]:
    f = rec.fields
    entry = (rec.time, "unicast", f["src"], f["dst"], f["size"], f.get("label", ""))
    return entry, f["size"]


def _normalize_multicast(rec) -> Tuple[tuple, int]:
    f = rec.fields
    entry = (rec.time, "multicast", f["src"], f["dests"], f["size"])
    return entry, f["size"] * len(f["dests"])


def _normalize_phase(rec) -> Tuple[tuple, int]:
    f = rec.fields
    entry = (rec.time, "phase", f["slice"], f["phase"], f["duration"])
    return entry, 0


#: category -> (kind label, normalizer) — the single place the log
#: format is defined (log(), counters, and diffing all share it).
_NORMALIZERS = {
    "fabric.unicast": ("unicast", _normalize_unicast),
    "fabric.multicast": ("multicast", _normalize_multicast),
    "bcs.microphase": ("phase", _normalize_phase),
}


class FlightRecorder:
    """Captures a run's ordered communication log."""

    def __init__(self):
        self.trace = Trace(categories=list(CATEGORIES))
        #: Aggregated event statistics (``replay.events``/``replay.bytes``
        #: counters, labeled by event kind), rebuilt by :meth:`log`.
        self.registry = MetricsRegistry()

    def log(self) -> List[tuple]:
        """The normalized event log, in simulation order.

        Each entry is a plain tuple (hashable, diffable):
        ``(time, kind, details...)``.  As a side effect the recorder's
        :attr:`registry` is rebuilt with per-kind event/byte counters.
        """
        self.registry.reset()
        out: List[tuple] = []
        for rec in self.trace.records:
            spec = _NORMALIZERS.get(rec.category)
            if spec is None:
                continue
            kind, normalize = spec
            entry, nbytes = normalize(rec)
            out.append(entry)
            self.registry.counter("replay.events", kind=kind).inc()
            if nbytes:
                self.registry.counter("replay.bytes", kind=kind).inc(nbytes)
        return out

    def summary(self) -> str:
        """Deterministic text summary of the recorded event mix."""
        self.log()
        return self.registry.render()


def diff_logs(a: List[tuple], b: List[tuple]) -> List[Divergence]:
    """Compare two communication logs; empty list means identical.

    Reports the first divergence (different event, or one log ending
    early) — with a deterministic runtime that is exactly where the two
    executions started to differ.
    """
    for i, (ea, eb) in enumerate(zip(a, b)):
        if ea != eb:
            return [Divergence(i, ea, eb)]
    if len(a) != len(b):
        i = min(len(a), len(b))
        return [
            Divergence(
                i,
                a[i] if i < len(a) else None,
                b[i] if i < len(b) else None,
            )
        ]
    return []


def assert_replayable(run_fn) -> List[tuple]:
    """Run ``run_fn(trace)`` twice and assert identical logs.

    ``run_fn`` must accept a :class:`Trace` and perform a complete run
    against a *fresh* cluster wired to it.  Returns the (verified) log.
    """
    logs = []
    for _ in range(2):
        recorder = FlightRecorder()
        run_fn(recorder.trace)
        logs.append(recorder.log())
    divergences = diff_logs(logs[0], logs[1])
    if divergences:
        raise AssertionError(f"run is not replayable:\n{divergences[0]}")
    return logs[0]
