"""Stall diagnosis: explain *why* an application is stuck.

Because the global communication state is explicit (paper §1), a hung
run can be diagnosed mechanically: every blocked rank, every unmatched
descriptor, and every half-posted collective is sitting in a queue
somewhere.  :func:`diagnose` renders that into the report a developer
needs; the runtime watchdog attaches it to the timeout error.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from ..bcs.descriptors import ANY_SOURCE, ANY_TAG

if TYPE_CHECKING:  # pragma: no cover
    from ..bcs.runtime import BcsRuntime


def _fmt_src(src: int) -> str:
    return "ANY" if src == ANY_SOURCE else str(src)


def _fmt_tag(tag: int) -> str:
    return "ANY" if tag == ANY_TAG else str(tag)


def diagnose(runtime: "BcsRuntime") -> str:
    """Human-readable stall report for a runtime's current state."""
    lines: List[str] = []

    # Which ranks are still alive, and are they blocked?
    from ..sim.events import Timeout

    for (job_id, rank), proc in sorted(runtime.rank_procs.items()):
        if not proc.is_alive:
            continue
        if proc.target is None:
            state = "runnable"
        elif isinstance(proc.target, Timeout):
            state = "computing"
        else:
            name = proc.target.name or type(proc.target).__name__
            state = f"blocked on {name}"
        lines.append(f"job {job_id} rank {rank}: {state}")

    # Unmatched traffic per node.  Only materialized nodes can hold
    # state worth reporting; never-touched flyweight slots have no
    # matcher and therefore nothing unmatched.
    from ..bcs.runtime import existing_node_runtimes

    for nrt in existing_node_runtimes(runtime.node_runtimes):
        for send in nrt.matcher.unexpected:
            lines.append(
                f"node {nrt.node_id}: send {send.src_rank}->{send.dst_rank} "
                f"tag={send.tag} size={send.size} has NO matching receive "
                f"(job {send.job_id})"
            )
        for recv in nrt.matcher.posted:
            lines.append(
                f"node {nrt.node_id}: recv rank={recv.rank} "
                f"from={_fmt_src(recv.src_rank)} tag={_fmt_tag(recv.tag)} "
                f"has NO matching send (job {recv.job_id})"
            )

        # Collectives waiting for stragglers.
        for (job_id, comm_id), epochs in nrt.coll_state.items():
            info = runtime.comm_info(job_id, comm_id)
            expected = len(info.node_ranks.get(nrt.node_id, ()))
            for epoch, ep in sorted(epochs.items()):
                if ep.executed:
                    continue
                posted = {d.rank for d in ep.descs}
                missing = [
                    r for r in info.node_ranks.get(nrt.node_id, ()) if r not in posted
                ]
                if missing:
                    lines.append(
                        f"node {nrt.node_id}: collective {ep.kind or '?'} epoch "
                        f"{epoch} (job {job_id}, comm {comm_id}) waiting for "
                        f"local ranks {missing}"
                    )

    backlog = runtime.scheduler.backlog_bytes
    if backlog:
        lines.append(f"scheduler backlog: {backlog} bytes still in flight")

    lines.extend(_telemetry_lines(runtime))

    if not lines:
        return "no pending communication state (pure-compute stall?)"
    return "\n".join(lines)


def _telemetry_lines(runtime: "BcsRuntime") -> List[str]:
    """Slice-telemetry footer for the stall report.

    When the run is instrumented (``runtime.obs``), the metrics registry
    already aggregates slice counts, queue depths, and microphase
    durations — render the ``bcs.*`` series instead of re-counting
    queues here.
    """
    obs = getattr(runtime, "obs", None)
    if obs is None:
        return []
    rendered = [
        line
        for line in obs.registry.render().splitlines()
        if line.startswith("bcs.")
    ]
    if not rendered:
        return []
    return ["", "telemetry at stall time:"] + [f"  {line}" for line in rendered]
