"""The BCS core primitives (paper §2): the three-function abstraction layer
all system software is built on."""

from .global_memory import GlobalAddressSpace, MemoryRegion
from .primitives import COMPARE_OPS, BcsCore

__all__ = ["BcsCore", "COMPARE_OPS", "GlobalAddressSpace", "MemoryRegion"]
