"""The three BCS core primitives (paper §2).

- :meth:`BcsCore.xfer_and_signal` — non-blocking atomic put of a block of
  data to the global memory of a set of nodes, optionally signaling a
  local and/or remote NIC event on completion.  The only way to observe
  completion is Test-Event.
- :meth:`BcsCore.test_event` — poll (or block on) a local NIC event.
- :meth:`BcsCore.compare_and_write` — blocking global conditional: compare
  a global variable on a set of nodes against a local value; if the
  condition holds on *all* nodes, optionally write a value to a (possibly
  different) global variable on those nodes.

Atomicity and sequential consistency (paper §2, points 2): the engine is
a single deterministic event loop, and each primitive commits its global
writes at a single instant, so all nodes observe the same final value of
any global variable — the Lamport condition the paper requires.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Generator, Hashable, Iterable, Optional, Sequence

from ..network import Cluster
from ..sim import Process
from .global_memory import GlobalAddressSpace

#: Comparison operators Compare-And-Write supports (paper §2).
COMPARE_OPS: dict[str, Callable[[Any, Any], bool]] = {
    ">=": operator.ge,
    "<": operator.lt,
    "==": operator.eq,
    "!=": operator.ne,
}


class BcsCore:
    """The BCS core primitive layer bound to one cluster."""

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self.env = cluster.env
        self.fabric = cluster.fabric
        self.gas = GlobalAddressSpace(len(cluster.nodes))

    # -- Xfer-And-Signal ---------------------------------------------------------

    def xfer_and_signal(
        self,
        src: int,
        dests: int | Iterable[int],
        size: int,
        addr: Optional[Hashable] = None,
        value: Any = None,
        local_event: Optional[str] = None,
        remote_event: Optional[str] = None,
        payload_writer: Optional[Callable[[int], None]] = None,
    ) -> Process:
        """Start a non-blocking global put; returns the transfer process.

        ``size`` drives timing; ``addr``/``value`` is the global-memory
        effect (optional: pure-signal transfers carry no variable).  When
        ``payload_writer`` is given it is invoked once per destination at
        commit time with the destination node id — this is how higher
        layers deposit real payloads (e.g. message chunks) without the
        core knowing their structure.

        Completion is observable *only* through ``local_event`` (signaled
        at the source NIC) / ``remote_event`` (signaled at each
        destination NIC) — the paper's semantics, point 3.
        """
        dest_list = sorted({dests} if isinstance(dests, int) else set(dests))
        if not dest_list:
            raise ValueError("Xfer-And-Signal needs at least one destination")
        if size < 0:
            raise ValueError("negative size")

        def transfer() -> Generator:
            if len(dest_list) == 1:
                yield from self.fabric.unicast(src, dest_list[0], size, label="xfer")
            else:
                yield from self.fabric.multicast(src, dest_list, size, label="xfer")
            # Commit: atomic across the destination set (all or nothing).
            if addr is not None:
                self.gas.write_all(dest_list, addr, value)
            if payload_writer is not None:
                for d in dest_list:
                    payload_writer(d)
            if remote_event is not None:
                for d in dest_list:
                    self.cluster.node(d).nic.event(remote_event).signal()
            if local_event is not None:
                self.cluster.node(src).nic.event(local_event).signal()

        return self.env.process(transfer(), name=f"xfer:{src}->{dest_list}")

    # -- Test-Event -----------------------------------------------------------------

    def test_event_poll(self, node: int, event_name: str) -> bool:
        """Non-blocking Test-Event: consume one signal if present."""
        return self.cluster.node(node).nic.event(event_name).poll()

    def test_event(self, node: int, event_name: str) -> Generator:
        """Blocking Test-Event: wait until the local event is signaled."""
        yield from self.cluster.node(node).nic.event(event_name).wait()

    # -- Compare-And-Write -------------------------------------------------------------

    def compare_and_write(
        self,
        src: int,
        dests: Iterable[int],
        addr: Hashable,
        op: str,
        value: Any,
        write_addr: Optional[Hashable] = None,
        write_value: Any = None,
        default: Any = None,
    ) -> Generator:
        """Blocking global conditional; yields, then returns the verdict.

        Compares global variable ``addr`` on every node in ``dests``
        against the local ``value`` using ``op`` (one of ``>= < == !=``).
        Returns True iff the condition holds on *all* nodes; in that case
        and if ``write_addr`` is given, atomically writes ``write_value``
        there on all of ``dests``.
        """
        try:
            cmp = COMPARE_OPS[op]
        except KeyError:
            raise ValueError(
                f"unsupported comparison {op!r}; choose from {sorted(COMPARE_OPS)}"
            ) from None
        dest_list = sorted(set(dests))
        if not dest_list:
            raise ValueError("Compare-And-Write needs at least one destination")

        yield from self.fabric.conditional(src, n_nodes=len(dest_list))
        verdict = all(
            cmp(self.gas.read(d, addr, default), value) for d in dest_list
        )
        if verdict and write_addr is not None:
            self.gas.write_all(dest_list, write_addr, write_value)
        return verdict
