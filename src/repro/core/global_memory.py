"""Global memory: data at the same virtual address on all nodes.

The BCS core primitives operate on *global data*: "data at the same
virtual address on all nodes" (paper §2).  We model virtual addresses as
symbolic keys.  Each node has a :class:`MemoryRegion`; a
:class:`GlobalAddressSpace` groups the per-node regions of one machine so
primitives can write "the variable ``x`` on nodes {2,5,7}".
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, List


class MemoryRegion:
    """One node's slice of the global address space."""

    def __init__(self, node_id: int):
        self.node_id = node_id
        self._mem: Dict[Hashable, Any] = {}

    def read(self, addr: Hashable, default: Any = None) -> Any:
        """Read the value at ``addr`` (default if never written)."""
        return self._mem.get(addr, default)

    def write(self, addr: Hashable, value: Any) -> None:
        """Write ``value`` at ``addr``."""
        self._mem[addr] = value

    def contains(self, addr: Hashable) -> bool:
        """Whether ``addr`` has ever been written on this node."""
        return addr in self._mem

    def __repr__(self) -> str:
        return f"<MemoryRegion node={self.node_id} vars={len(self._mem)}>"


class GlobalAddressSpace:
    """The union of all nodes' memory regions."""

    def __init__(self, n_nodes: int):
        self.regions: List[MemoryRegion] = [MemoryRegion(i) for i in range(n_nodes)]

    def __len__(self) -> int:
        return len(self.regions)

    def region(self, node_id: int) -> MemoryRegion:
        """The memory region of one node."""
        return self.regions[node_id]

    def read(self, node_id: int, addr: Hashable, default: Any = None) -> Any:
        """Read ``addr`` on one node."""
        return self.regions[node_id].read(addr, default)

    def write(self, node_id: int, addr: Hashable, value: Any) -> None:
        """Write ``addr`` on one node."""
        self.regions[node_id].write(addr, value)

    def write_all(self, node_ids: Iterable[int], addr: Hashable, value: Any) -> None:
        """Write the same value at ``addr`` on a set of nodes (atomically).

        This is the commit step of ``Xfer-And-Signal``/``Compare-And-Write``:
        either all nodes see the value or none do — we model network errors
        as absent, so "all".
        """
        for nid in node_ids:
            self.regions[nid].write(addr, value)

    def gather(self, node_ids: Iterable[int], addr: Hashable, default: Any = None) -> list:
        """Read ``addr`` on each of ``node_ids`` (for conditionals)."""
        return [self.regions[nid].read(addr, default) for nid in node_ids]
