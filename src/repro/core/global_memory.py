"""Global memory: data at the same virtual address on all nodes.

The BCS core primitives operate on *global data*: "data at the same
virtual address on all nodes" (paper §2).  We model virtual addresses as
symbolic keys.  Each node has a :class:`MemoryRegion`; a
:class:`GlobalAddressSpace` groups the per-node regions of one machine so
primitives can write "the variable ``x`` on nodes {2,5,7}".

Two scale features keep the address space flat at 64k nodes:

- **Lazy regions** — a node's :class:`MemoryRegion` is only materialized
  on its first write (or explicit :meth:`~GlobalAddressSpace.region`
  access).  Reads of never-written addresses return the default either
  way, so laziness is observationally identical to eager construction
  while an idle node costs nothing.
- **Array-backed slots** — a hot address that holds one scalar per node
  (e.g. the strobe protocol's ``"mphase_done"`` counters) can be backed
  by a single SoA array via :meth:`~GlobalAddressSpace.register_array`.
  Reads and writes through the normal API are transparently redirected
  to the array, and :meth:`~GlobalAddressSpace.increment_batch` updates
  a whole node set in one vectorized operation instead of a per-node
  ``write`` loop.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, Sequence


class MemoryRegion:
    """One node's slice of the global address space."""

    def __init__(self, node_id: int):
        self.node_id = node_id
        self._mem: Dict[Hashable, Any] = {}

    def read(self, addr: Hashable, default: Any = None) -> Any:
        """Read the value at ``addr`` (default if never written)."""
        return self._mem.get(addr, default)

    def write(self, addr: Hashable, value: Any) -> None:
        """Write ``value`` at ``addr``."""
        self._mem[addr] = value

    def contains(self, addr: Hashable) -> bool:
        """Whether ``addr`` has ever been written on this node."""
        return addr in self._mem

    def __repr__(self) -> str:
        return f"<MemoryRegion node={self.node_id} vars={len(self._mem)}>"


class GlobalAddressSpace:
    """The union of all nodes' memory regions."""

    def __init__(self, n_nodes: int):
        self.n_nodes = n_nodes
        #: node_id -> region, created on first write (lazy flyweight).
        self._regions: Dict[int, MemoryRegion] = {}
        #: addr -> SoA array holding that addr's value for every node.
        self._arrays: Dict[Hashable, Any] = {}

    def __len__(self) -> int:
        return self.n_nodes

    def register_array(self, addr: Hashable, array) -> None:
        """Back ``addr`` with a per-node SoA ``array`` (len >= n_nodes).

        After registration, reads/writes of ``addr`` on any node go to
        ``array[node_id]`` instead of the node's dict region; whatever
        owns the array (e.g. the BCS node arena) sees every update.
        """
        if len(array) < self.n_nodes:
            raise ValueError(
                f"array for {addr!r} holds {len(array)} slots, "
                f"need {self.n_nodes}"
            )
        self._arrays[addr] = array

    def region(self, node_id: int) -> MemoryRegion:
        """The memory region of one node (materialized on demand)."""
        if not 0 <= node_id < self.n_nodes:
            raise IndexError(f"node {node_id} outside [0, {self.n_nodes})")
        region = self._regions.get(node_id)
        if region is None:
            region = self._regions[node_id] = MemoryRegion(node_id)
        return region

    def read(self, node_id: int, addr: Hashable, default: Any = None) -> Any:
        """Read ``addr`` on one node."""
        arr = self._arrays.get(addr)
        if arr is not None:
            return int(arr[node_id])
        region = self._regions.get(node_id)
        if region is None:
            return default
        return region.read(addr, default)

    def write(self, node_id: int, addr: Hashable, value: Any) -> None:
        """Write ``addr`` on one node."""
        arr = self._arrays.get(addr)
        if arr is not None:
            arr[node_id] = value
            return
        self.region(node_id).write(addr, value)

    def write_all(self, node_ids: Iterable[int], addr: Hashable, value: Any) -> None:
        """Write the same value at ``addr`` on a set of nodes (atomically).

        This is the commit step of ``Xfer-And-Signal``/``Compare-And-Write``:
        either all nodes see the value or none do — we model network errors
        as absent, so "all".
        """
        arr = self._arrays.get(addr)
        if arr is not None:
            for nid in node_ids:
                arr[nid] = value
            return
        for nid in node_ids:
            self.region(nid).write(addr, value)

    def increment_batch(
        self, node_ids: Sequence[int], addr: Hashable, delta: int = 1
    ) -> None:
        """Add ``delta`` to ``addr`` on every node in ``node_ids`` at once.

        The strobe hot path's replacement for N separate ``write`` calls:
        on an array-backed slot this is one fancy-indexed update.
        """
        arr = self._arrays.get(addr)
        if arr is not None:
            if len(node_ids) < 8:
                for nid in node_ids:
                    arr[nid] += delta
            else:
                arr[node_ids] += delta
            return
        for nid in node_ids:
            region = self.region(nid)
            region.write(addr, region.read(addr, 0) + delta)

    def gather(self, node_ids: Iterable[int], addr: Hashable, default: Any = None) -> list:
        """Read ``addr`` on each of ``node_ids`` (for conditionals)."""
        return [self.read(nid, addr, default) for nid in node_ids]
