"""OS noise injection (uncoordinated dæmons vs global coordination)."""

from .model import NoiseConfig, NoiseInjector

__all__ = ["NoiseConfig", "NoiseInjector"]
