"""OS noise injection.

The paper motivates global coordination partly by the damage that
uncoordinated system dæmons do to fine-grained parallel programs
("computational holes of several hundreds of ms", §1, citing [20]).  This
module injects that noise: per-node daemon processes that periodically
grab a CPU for a while, delaying whatever computation is queued behind
them.

Two modes:

- ``coordinated=False`` (default, the real-world situation): each node's
  daemon has a random phase, so across N nodes *some* node is almost
  always perturbed — the noise a bulk-synchronous app feels is the max
  over nodes.
- ``coordinated=True`` (what a BCS-style global OS achieves): all daemons
  fire in the same window on every node, so the app pays the cost once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..network import Cluster
from ..units import ms


@dataclass(frozen=True)
class NoiseConfig:
    """Daemon noise parameters."""

    #: Mean period between daemon wakeups per node, ns.
    period: int = ms(100)
    #: Mean CPU time consumed per wakeup, ns.
    duration: int = ms(2)
    #: All nodes fire together (True) or with independent phases (False).
    coordinated: bool = False
    #: How many daemons per node.
    daemons_per_node: int = 1
    #: Preemption quantum forced onto affected nodes (ns): long app
    #: computations release the CPU at this granularity so daemons can
    #: actually interleave (a non-preemptive resource would otherwise let
    #: a monolithic compute starve the daemon, hiding the noise).
    preempt_quantum: int = ms(1)

    def __post_init__(self):
        if self.period <= 0 or self.duration <= 0:
            raise ValueError("period and duration must be positive")
        if self.duration >= self.period:
            raise ValueError("noise duty cycle must be < 1")


class NoiseInjector:
    """Spawns daemon processes on a cluster's compute nodes."""

    def __init__(self, cluster: Cluster, config: Optional[NoiseConfig] = None):
        self.cluster = cluster
        self.env = cluster.env
        self.config = config or NoiseConfig()
        self.started = False
        #: Total CPU time stolen, per node id (for reporting).
        self.stolen: dict[int, int] = {}

    def start(self, nodes: Optional[List[int]] = None) -> None:
        """Begin injecting noise on the given nodes (default: all)."""
        if self.started:
            raise RuntimeError("noise injector already started")
        self.started = True
        node_ids = (
            [n.id for n in self.cluster.compute_nodes] if nodes is None else nodes
        )
        for node_id in node_ids:
            self.stolen[node_id] = 0
            self.cluster.node(node_id).preempt_quantum = self.config.preempt_quantum
            for d in range(self.config.daemons_per_node):
                self.env.process(
                    self._daemon(node_id, d), name=f"noise{node_id}.{d}"
                )

    def _daemon(self, node_id: int, idx: int):
        import numpy as np

        from ..sim.rng import derive_seed

        cfg = self.config
        node = self.cluster.node(node_id)
        # Coordinated daemons on different nodes draw the *same* random
        # sequence (same seed, distinct generator instances), so their
        # bursts land in the same windows everywhere; uncoordinated ones
        # get independent per-node streams.
        stream_name = (
            f"noise/coordinated/{idx}"
            if cfg.coordinated
            else f"noise/{node_id}/{idx}"
        )
        rng = np.random.default_rng(
            derive_seed(self.cluster.rng.root_seed, stream_name)
        )

        yield self.env.timeout(int(rng.uniform(0, cfg.period)))

        while True:
            burst = max(1, int(rng.exponential(cfg.duration)))
            yield from node.cpu.held(burst)
            self.stolen[node_id] += burst
            gap = max(1, int(rng.exponential(cfg.period - cfg.duration)))
            yield self.env.timeout(gap)

    @property
    def total_stolen(self) -> int:
        """CPU time stolen across all nodes, ns."""
        return sum(self.stolen.values())
