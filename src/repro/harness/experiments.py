"""Per-figure/table experiment definitions (the paper's evaluation, §5).

Every public function regenerates one table or figure of the paper and
returns structured rows; the benchmark harness in ``benchmarks/`` prints
them.  ``scale`` shrinks iteration counts (and, proportionally, the
one-time runtime-initialization costs, so the init/runtime ratio that
drives the IS and EP results is preserved) — see EXPERIMENTS.md.

Each figure/table decomposes into independent *points* — one
``<family>_point`` call per row.  The sequential generators below are
plain comprehensions over those point functions, and ``repro.farm``
executes exactly the same point functions in isolated worker processes,
so the two paths produce byte-identical rows (see docs/FARM.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..apps import (
    barrier_benchmark,
    nearest_neighbor_benchmark,
    sage,
    sweep3d_blocking,
    sweep3d_nonblocking,
)
from ..apps.nas import NAS_APPS
from ..bcs import BcsConfig
from ..core import BcsCore
from ..mpi.baseline import BaselineConfig
from ..network import Cluster, ClusterSpec, by_name
from ..units import MiB, kib, ms, seconds, to_us, us
from .runner import Comparison, compare_backends

#: The paper's full-machine process count (31 dual-CPU nodes).
FULL_MACHINE = 62

#: Paper-reported values, for side-by-side reporting (Table 2).
PAPER_TABLE2 = {
    "SAGE": -0.42,
    "SWEEP3D": -2.23,
    "IS": 10.14,
    "EP": 5.35,
    "MG": 4.37,
    "CG": 10.83,
    "LU": 15.04,
}


def _synthetic_configs():
    # Synthetic benchmarks measure the loop only (no init phase).
    return BcsConfig(init_cost=0), BaselineConfig(init_cost=0)


# --- Table 1 -----------------------------------------------------------------


#: Network models measured by Table 1, in row order.
TABLE1_NETWORKS = ("gige", "myrinet", "infiniband", "qsnet", "bluegene_l")


def table1_point(network: str, nodes: int, payload: int = 1 * MiB) -> dict:
    """One Table 1 row: CaW latency + XaS bandwidth on one (network, n)."""
    cluster = Cluster(ClusterSpec(n_nodes=nodes, model=by_name(network)))
    core = BcsCore(cluster)

    def caw():
        t0 = cluster.env.now
        yield from core.compare_and_write(
            cluster.management_node.id, range(nodes), "x", "==", None
        )
        return cluster.env.now - t0

    caw_ns = cluster.run(until=cluster.env.process(caw()))

    def mcast():
        t0 = cluster.env.now
        core.xfer_and_signal(
            cluster.management_node.id,
            range(nodes),
            size=payload,
            local_event="done",
        )
        yield from core.test_event(cluster.management_node.id, "done")
        return cluster.env.now - t0

    mcast_ns = cluster.run(until=cluster.env.process(mcast()))
    aggregate_mb_s = (payload * nodes) / (mcast_ns / 1e9) / 1e6
    return {
        "network": network,
        "nodes": nodes,
        "caw_us": to_us(caw_ns),
        "xfer_aggregate_mb_s": aggregate_mb_s,
        "xfer_mb_s_per_node": aggregate_mb_s / nodes,
    }


def table1_rows(
    node_counts: Sequence[int] = (2, 4, 8, 16, 32),
    payload: int = 1 * MiB,
) -> List[dict]:
    """Measured Compare-And-Write latency and Xfer-And-Signal aggregate
    bandwidth on every network model (Table 1)."""
    return [
        table1_point(model_name, n, payload)
        for model_name in TABLE1_NETWORKS
        for n in node_counts
    ]


# --- Figure 8 ---------------------------------------------------------------------


def fig8a_point(
    granularity_ms: float, n_ranks: int = FULL_MACHINE, iterations: int = 15
) -> dict:
    """One Fig 8a row: barrier slowdown at one granularity."""
    bc, bl = _synthetic_configs()
    comparison = compare_backends(
        barrier_benchmark,
        n_ranks,
        params=dict(granularity=ms(granularity_ms), iterations=iterations),
        bcs_config=bc,
        baseline_config=bl,
        name="barrier",
    )
    return _point("granularity_ms", granularity_ms, comparison)


def fig8a_barrier_vs_granularity(
    granularities_ms: Sequence[float] = (1, 2, 5, 10, 20, 50),
    n_ranks: int = FULL_MACHINE,
    iterations: int = 15,
) -> List[dict]:
    """Slowdown vs computation granularity; barrier benchmark (Fig 8a)."""
    return [fig8a_point(g, n_ranks, iterations) for g in granularities_ms]


def fig8b_point(
    processes: int, granularity_ms: float = 10, iterations: int = 15
) -> dict:
    """One Fig 8b row: barrier slowdown at one process count."""
    bc, bl = _synthetic_configs()
    comparison = compare_backends(
        barrier_benchmark,
        processes,
        params=dict(granularity=ms(granularity_ms), iterations=iterations),
        bcs_config=bc,
        baseline_config=bl,
        name="barrier",
    )
    return _point("processes", processes, comparison)


def fig8b_barrier_vs_procs(
    proc_counts: Sequence[int] = (4, 8, 16, 32, 48, 62),
    granularity_ms: float = 10,
    iterations: int = 15,
) -> List[dict]:
    """Slowdown vs process count; barrier benchmark, 10 ms (Fig 8b)."""
    return [fig8b_point(p, granularity_ms, iterations) for p in proc_counts]


def fig8c_point(
    granularity_ms: float, n_ranks: int = FULL_MACHINE, iterations: int = 15
) -> dict:
    """One Fig 8c row: nearest-neighbour slowdown at one granularity."""
    bc, bl = _synthetic_configs()
    comparison = compare_backends(
        nearest_neighbor_benchmark,
        n_ranks,
        params=dict(
            granularity=ms(granularity_ms),
            iterations=iterations,
            n_neighbors=4,
            message_bytes=kib(4),
        ),
        bcs_config=bc,
        baseline_config=bl,
        name="p2p",
    )
    return _point("granularity_ms", granularity_ms, comparison)


def fig8c_p2p_vs_granularity(
    granularities_ms: Sequence[float] = (1, 2, 5, 10, 20, 50),
    n_ranks: int = FULL_MACHINE,
    iterations: int = 15,
) -> List[dict]:
    """Slowdown vs granularity; nearest-neighbour benchmark, 4 neighbours,
    4 KB messages (Fig 8c)."""
    return [fig8c_point(g, n_ranks, iterations) for g in granularities_ms]


def fig8d_point(
    processes: int, granularity_ms: float = 10, iterations: int = 15
) -> dict:
    """One Fig 8d row: nearest-neighbour slowdown at one process count."""
    bc, bl = _synthetic_configs()
    comparison = compare_backends(
        nearest_neighbor_benchmark,
        processes,
        params=dict(
            granularity=ms(granularity_ms),
            iterations=iterations,
            n_neighbors=4,
            message_bytes=kib(4),
        ),
        bcs_config=bc,
        baseline_config=bl,
        name="p2p",
    )
    return _point("processes", processes, comparison)


def fig8d_p2p_vs_procs(
    proc_counts: Sequence[int] = (4, 8, 16, 32, 48, 62),
    granularity_ms: float = 10,
    iterations: int = 15,
) -> List[dict]:
    """Slowdown vs process count; nearest-neighbour benchmark (Fig 8d)."""
    return [fig8d_point(p, granularity_ms, iterations) for p in proc_counts]


# --- Figure 9 / Table 2 ------------------------------------------------------------


@dataclass(frozen=True)
class AppExperiment:
    """One application row of Fig 9 / Table 2."""

    name: str
    app: object
    #: params for scale=1.0 (the class-C-like / full-input problem).
    full_params: dict
    #: which params shrink with scale (iteration-like counts).
    scaled_params: tuple
    #: scale used by default benches (keeps event counts tractable while
    #: preserving per-iteration structure and the init/runtime ratio).
    default_scale: float = 0.25
    #: default process count.  The NPB 2.4 kernels require power-of-two
    #: process counts, so the paper's NAS rows are 32-process runs; only
    #: SAGE and SWEEP3D use the full 62-process machine.
    n_ranks: int = 32


APP_EXPERIMENTS: Dict[str, AppExperiment] = {
    "SAGE": AppExperiment(
        "SAGE", sage, dict(steps=1200), ("steps",), default_scale=0.05,
        n_ranks=FULL_MACHINE,
    ),
    "SWEEP3D": AppExperiment(
        "SWEEP3D",
        sweep3d_nonblocking,
        dict(octants=4096, kblocks=4),
        ("octants",),
        default_scale=0.02,
        n_ranks=FULL_MACHINE,
    ),
    "IS": AppExperiment(
        "IS",
        NAS_APPS["IS"],
        dict(iterations=11, total_keys=2**27),
        ("iterations",),
        default_scale=0.5,
    ),
    "EP": AppExperiment(
        "EP",
        NAS_APPS["EP"],
        dict(total_compute=seconds(22)),
        ("total_compute",),
        default_scale=0.25,
    ),
    "MG": AppExperiment(
        "MG", NAS_APPS["MG"], dict(iterations=20), ("iterations",), default_scale=0.25
    ),
    "CG": AppExperiment(
        "CG",
        NAS_APPS["CG"],
        dict(outer_iterations=75, inner_iterations=25),
        ("outer_iterations",),
        default_scale=0.1,
    ),
    "LU": AppExperiment(
        "LU",
        NAS_APPS["LU"],
        dict(iterations=250, kblocks=16),
        ("iterations",),
        default_scale=0.04,
    ),
}

#: Full-scale runtime-initialization costs (see DESIGN.md §7).
BCS_INIT_FULL = seconds(1.2)
BASELINE_INIT_FULL = seconds(0.15)


def run_app_experiment(
    name: str,
    n_ranks: Optional[int] = None,
    scale: Optional[float] = None,
) -> Comparison:
    """Run one Fig 9 / Table 2 application at the given scale.

    Iteration-like parameters *and* the one-time init costs shrink by
    ``scale`` together, preserving the init/runtime ratio that drives
    the IS and EP slowdowns.  ``scale=None`` uses the experiment's
    tractable default; ``n_ranks=None`` uses the paper's size for that
    application (62 for SAGE/SWEEP3D, 32 for the NPB kernels).
    """
    exp = APP_EXPERIMENTS[name]
    if scale is None:
        scale = exp.default_scale
    if n_ranks is None:
        n_ranks = exp.n_ranks
    params = dict(exp.full_params)
    for key in exp.scaled_params:
        params[key] = max(int(round(params[key] * scale)), 1)
    bc = BcsConfig(init_cost=int(BCS_INIT_FULL * scale))
    bl = BaselineConfig(init_cost=int(BASELINE_INIT_FULL * scale))
    return compare_backends(
        exp.app,
        n_ranks,
        params=params,
        bcs_config=bc,
        baseline_config=bl,
        name=name,
    )


def table2_point(
    app: str,
    n_ranks: Optional[int] = None,
    scale: Optional[float] = None,
) -> dict:
    """One Fig 9 / Table 2 row: one application vs the paper's number."""
    comparison = run_app_experiment(app, n_ranks, scale)
    return {
        "app": app,
        "baseline_s": comparison.baseline.runtime_s,
        "bcs_s": comparison.bcs.runtime_s,
        "slowdown_pct": comparison.slowdown_pct,
        "paper_slowdown_pct": PAPER_TABLE2.get(app),
    }


def fig9_table2_rows(
    n_ranks: Optional[int] = None,
    scale: Optional[float] = None,
    apps: Optional[Sequence[str]] = None,
) -> List[dict]:
    """Runtimes + slowdowns for every application (Fig 9 and Table 2)."""
    return [table2_point(name, n_ranks, scale) for name in apps or APP_EXPERIMENTS]


# --- Figure 10 -----------------------------------------------------------------------


def fig10_point(processes: int, scale: Optional[float] = 0.02) -> dict:
    """One Fig 10 row: SAGE at one process count."""
    comparison = run_app_experiment("SAGE", processes, scale)
    return _point("processes", processes, comparison)


def fig10_sage_scaling(
    proc_counts: Sequence[int] = (8, 16, 32, 48, 62),
    scale: Optional[float] = 0.02,
) -> List[dict]:
    """SAGE runtime vs process count for both MPIs (Fig 10)."""
    return [fig10_point(p, scale) for p in proc_counts]


# --- Figure 11 ------------------------------------------------------------------------


#: Fig 11 variants in row order.
FIG11_VARIANTS = ("blocking", "nonblocking")


def fig11_point(
    processes: int, variant: str, octants: int = 4, kblocks: int = 4
) -> dict:
    """One Fig 11 row: SWEEP3D, one variant, one process count."""
    app = {"blocking": sweep3d_blocking, "nonblocking": sweep3d_nonblocking}[variant]
    bc, bl = _synthetic_configs()
    comparison = compare_backends(
        app,
        processes,
        params=dict(octants=octants, kblocks=kblocks),
        bcs_config=bc,
        baseline_config=bl,
        name=f"sweep3d_{variant}",
    )
    row = _point("processes", processes, comparison)
    row["variant"] = variant
    return row


def fig11_sweep3d(
    proc_counts: Sequence[int] = (8, 16, 32, 48, 62),
    octants: int = 4,
    kblocks: int = 4,
) -> List[dict]:
    """SWEEP3D blocking (11a) and non-blocking (11b) vs process count."""
    return [
        fig11_point(p, variant, octants, kblocks)
        for p in proc_counts
        for variant in FIG11_VARIANTS
    ]


# --- Ablations (design-choice benches; DESIGN.md §6) -----------------------------------


def ablation_timeslice_point(timeslice_us: float, n_ranks: int = 16) -> dict:
    """One time-slice ablation row: ping-pong cost at one slice length."""
    bc = BcsConfig(
        init_cost=0,
        timeslice=us(timeslice_us),
        dem_min_duration=us(min(65, timeslice_us * 0.13)),
        msm_min_duration=us(min(60, timeslice_us * 0.12)),
    )
    comparison = compare_backends(
        sweep3d_blocking,
        n_ranks,
        params=dict(octants=2, kblocks=4),
        bcs_config=bc,
        baseline_config=BaselineConfig(init_cost=0),
        name="timeslice",
    )
    return _point("timeslice_us", timeslice_us, comparison)


def ablation_timeslice(
    timeslices_us: Sequence[float] = (125, 250, 500, 1000, 2000),
    n_ranks: int = 16,
) -> List[dict]:
    """Blocking ping-pong cost vs time-slice length."""
    return [ablation_timeslice_point(ts, n_ranks) for ts in timeslices_us]


#: Kernel-level ablation implementations in row order.
KERNEL_IMPLEMENTATIONS = ("user-level", "kernel-level")


def ablation_kernel_point(
    implementation: str,
    n_ranks: int = FULL_MACHINE,
    granularity_ms: float = 10,
    iterations: int = 15,
) -> dict:
    """One §4.5 ablation row: user-level or kernel-level BCS."""
    bc = {
        "user-level": BcsConfig(init_cost=0),
        "kernel-level": BcsConfig.kernel_level(init_cost=0),
    }[implementation]
    comparison = compare_backends(
        barrier_benchmark,
        n_ranks,
        params=dict(granularity=ms(granularity_ms), iterations=iterations),
        bcs_config=bc,
        baseline_config=BaselineConfig(init_cost=0),
        name="kernel",
    )
    return _point("implementation", implementation, comparison)


def ablation_kernel_level(
    n_ranks: int = FULL_MACHINE,
    granularity_ms: float = 10,
    iterations: int = 15,
) -> List[dict]:
    """User-level vs kernel-level BCS (§4.5): the NM tax disappears."""
    return [
        ablation_kernel_point(label, n_ranks, granularity_ms, iterations)
        for label in KERNEL_IMPLEMENTATIONS
    ]


def ablation_buffered_point(buffered: bool, n_ranks: int = 16) -> dict:
    """One buffered-sends ablation row."""
    bc = BcsConfig(init_cost=0, buffered_sends=buffered)
    comparison = compare_backends(
        sweep3d_blocking,
        n_ranks,
        params=dict(octants=2, kblocks=4),
        bcs_config=bc,
        baseline_config=BaselineConfig(init_cost=0),
        name="buffered",
    )
    return _point("buffered_sends", buffered, comparison)


def ablation_buffered_sends(n_ranks: int = 16) -> List[dict]:
    """Buffered vs strict blocking-send completion (the B in BCS)."""
    return [ablation_buffered_point(buffered, n_ranks) for buffered in (True, False)]


def _point(x_name: str, x, comparison: Comparison) -> dict:
    return {
        x_name: x,
        "baseline_s": comparison.baseline.runtime_s,
        "bcs_s": comparison.bcs.runtime_s,
        "slowdown_pct": comparison.slowdown_pct,
    }
