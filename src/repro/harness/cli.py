"""Command-line interface: regenerate any table or figure.

::

    python -m repro.harness.cli table1
    python -m repro.harness.cli fig8a fig8b
    python -m repro.harness.cli table2 --scale 0.1 --apps SAGE IS
    python -m repro.harness.cli fig11 --procs 8 16 32
    python -m repro.harness.cli all

Each command prints the same rows the corresponding paper table/figure
reports (see EXPERIMENTS.md for the expected values).

Observability subcommands (see docs/OBSERVABILITY.md)::

    python -m repro.harness.cli trace fig8 --out trace.json
    python -m repro.harness.cli metrics fig8 --ranks 8
    python -m repro.harness.cli explain fig8 --ranks 8 --json blame.json

``trace`` runs one instrumented experiment and writes a Perfetto
trace-event JSON (open in ui.perfetto.dev); ``metrics`` prints the
slice-level metrics report and the per-rank MPI profile; ``explain``
traces every message through its lifecycle and prints the virtual-time
critical-path blame breakdown (who the makespan waited on, per
microphase / rank / job, plus the longest message chains).  All are
deterministic: two runs with the same seed produce byte-identical
output.

Farm subcommands (see docs/FARM.md)::

    python -m repro.harness.cli farm figures -j 4
    python -m repro.harness.cli farm list

``farm figures`` regenerates the same tables through a parallel,
fault-isolated worker pool with content-addressed result caching; the
rows are byte-identical to the sequential commands above.

Distributed farm (see docs/FARM.md, "Distributed execution")::

    python -m repro.harness.cli serve --port 8642
    python -m repro.harness.cli worker http://host:8642 --drain
    python -m repro.harness.cli farm submit http://host:8642 table1 --wait

``serve`` runs the queue-backed job service (HTTP submission API +
lease-based worker protocol); ``worker`` pulls and executes points from
any host; ``farm submit`` enqueues families over HTTP and replays the
same byte-identical tables.

Live telemetry (see docs/OBSERVABILITY.md, "Live telemetry")::

    python -m repro.harness.cli dashboard --port 8643

``dashboard`` serves the static farm dashboard (stat tiles, per-family
sparklines, SSE live updates) plus ``/metrics?format=prometheus`` over
the result store and trend store — no queue service required.  The
same pages are also mounted on ``repro serve`` itself.

Trend subcommands (see docs/TRENDS.md)::

    python -m repro.harness.cli trend record --farm-store .farm-store
    python -m repro.harness.cli trend report
    python -m repro.harness.cli trend check --series 'farm.*'

``trend`` tracks per-family wall-clock performance across runs
(append-only JSONL store, median+MAD regression detection, ASCII
sparklines) and gates CI on per-experiment regressions.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import experiments
from .report import print_table


#: Rows produced during this invocation, keyed by experiment title
#: (collected for --save).
_collected: dict = {}


def _rows_to_table(title: str, rows: List[dict]) -> None:
    _collected[title] = rows
    if not rows:
        print(f"== {title} == (no rows)")
        return
    headers = list(rows[0].keys())
    print_table(title, headers, [[row[h] for h in headers] for row in rows])


def cmd_table1(args) -> None:
    _rows_to_table(
        "Table 1: BCS core mechanisms across networks",
        experiments.table1_rows(),
    )


def cmd_fig8a(args) -> None:
    _rows_to_table(
        "Fig 8(a): barrier benchmark vs granularity",
        experiments.fig8a_barrier_vs_granularity(n_ranks=args.ranks or 62),
    )


def cmd_fig8b(args) -> None:
    _rows_to_table(
        "Fig 8(b): barrier benchmark vs processes",
        experiments.fig8b_barrier_vs_procs(
            proc_counts=args.procs or (4, 8, 16, 32, 48, 62)
        ),
    )


def cmd_fig8c(args) -> None:
    _rows_to_table(
        "Fig 8(c): nearest-neighbour benchmark vs granularity",
        experiments.fig8c_p2p_vs_granularity(n_ranks=args.ranks or 62),
    )


def cmd_fig8d(args) -> None:
    _rows_to_table(
        "Fig 8(d): nearest-neighbour benchmark vs processes",
        experiments.fig8d_p2p_vs_procs(
            proc_counts=args.procs or (4, 8, 16, 32, 48, 62)
        ),
    )


def cmd_table2(args) -> None:
    _rows_to_table(
        "Fig 9 / Table 2: applications",
        experiments.fig9_table2_rows(
            n_ranks=args.ranks, scale=args.scale, apps=args.apps
        ),
    )


def cmd_fig10(args) -> None:
    _rows_to_table(
        "Fig 10: SAGE scaling",
        experiments.fig10_sage_scaling(
            proc_counts=args.procs or (8, 16, 32, 48, 62),
            scale=args.scale if args.scale is not None else 0.02,
        ),
    )


def cmd_fig11(args) -> None:
    _rows_to_table(
        "Fig 11: SWEEP3D blocking vs non-blocking",
        experiments.fig11_sweep3d(proc_counts=args.procs or (8, 16, 32, 48, 62)),
    )


def cmd_ablations(args) -> None:
    _rows_to_table(
        "Ablation: time slice",
        experiments.ablation_timeslice(n_ranks=args.ranks or 16),
    )
    _rows_to_table(
        "Ablation: buffered sends",
        experiments.ablation_buffered_sends(n_ranks=args.ranks or 16),
    )
    _rows_to_table(
        "Ablation: kernel-level BCS",
        experiments.ablation_kernel_level(n_ranks=args.ranks or experiments.FULL_MACHINE),
    )


COMMANDS = {
    "table1": cmd_table1,
    "fig8a": cmd_fig8a,
    "fig8b": cmd_fig8b,
    "fig8c": cmd_fig8c,
    "fig8d": cmd_fig8d,
    "table2": cmd_table2,
    "fig9": cmd_table2,  # alias: Fig 9 and Table 2 share the data
    "fig10": cmd_fig10,
    "fig11": cmd_fig11,
    "ablations": cmd_ablations,
}


# --- observability subcommands -------------------------------------------------


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_obs_parser(command: str) -> argparse.ArgumentParser:
    """Parser for the ``trace``/``metrics``/``explain`` subcommands."""
    from .obs_runs import INSTRUMENTED

    what = {
        "trace": "export a Perfetto trace (ui.perfetto.dev).",
        "explain": "print the virtual-time critical-path blame breakdown.",
    }.get(command, "print slice metrics and the per-rank MPI profile.")
    parser = argparse.ArgumentParser(
        prog=f"repro {command}",
        description="Run one instrumented experiment and " + what,
    )
    parser.add_argument(
        "experiment",
        choices=sorted(INSTRUMENTED),
        help="instrumented experiment to run",
    )
    parser.add_argument(
        "--ranks", type=_positive_int, default=8, help="process count (default 8)"
    )
    parser.add_argument("--seed", type=int, default=0, help="cluster RNG seed")
    if command == "trace":
        parser.add_argument(
            "--out",
            metavar="PATH",
            default="trace.json",
            help="output trace file (default trace.json)",
        )
    if command == "explain":
        parser.add_argument(
            "--top",
            type=_positive_int,
            default=8,
            help="how many longest message chains to report (default 8)",
        )
        parser.add_argument(
            "--json",
            metavar="PATH",
            default=None,
            help="also write the blame report as canonical JSON",
        )
        parser.add_argument(
            "--trace",
            metavar="PATH",
            default=None,
            help="also write the Perfetto trace (with message flow arrows)",
        )
    return parser


def cmd_trace(argv: List[str]) -> int:
    """``repro trace <experiment> --out trace.json``"""
    args = build_obs_parser("trace").parse_args(argv)
    from .obs_runs import run_instrumented

    run = run_instrumented(args.experiment, n_ranks=args.ranks, seed=args.seed)
    try:
        run.obs.perfetto.save(args.out)
    except OSError as exc:
        print(f"repro trace: cannot write {args.out}: {exc}", file=sys.stderr)
        return 2
    print(
        f"{args.experiment}: {run.result.runtime_ns} ns simulated, "
        f"{run.obs.perfetto.n_events} trace events -> {args.out}"
    )
    print("open in https://ui.perfetto.dev (or chrome://tracing)")
    return 0


def cmd_metrics(argv: List[str]) -> int:
    """``repro metrics <experiment>``"""
    args = build_obs_parser("metrics").parse_args(argv)
    from .obs_runs import run_instrumented
    from .report import metrics_report

    run = run_instrumented(args.experiment, n_ranks=args.ranks, seed=args.seed)
    print(
        f"== {args.experiment}: {run.result.n_ranks} ranks, "
        f"{run.result.runtime_ns} ns simulated ==\n"
    )
    print(metrics_report(run.obs))
    if run.obs.profiler is not None:
        print("\n== MPI profile ==")
        print(run.obs.profiler.report())
    return 0


def cmd_explain(argv: List[str]) -> int:
    """``repro explain <experiment> [--json blame.json] [--trace t.json]``"""
    args = build_obs_parser("explain").parse_args(argv)
    from ..obs.critpath import blame_payload, render_blame, to_json_bytes
    from .obs_runs import explain_run

    run, report = explain_run(
        args.experiment,
        n_ranks=args.ranks,
        seed=args.seed,
        top=args.top,
        perfetto=args.trace is not None,
    )
    title = (
        f"{args.experiment}: {run.result.n_ranks} ranks, "
        f"{run.result.runtime_ns} ns simulated"
    )
    print(render_blame(report, title))
    payload = to_json_bytes(
        blame_payload(
            report, experiment=args.experiment, ranks=args.ranks, seed=args.seed
        )
    )
    try:
        if args.json is not None:
            with open(args.json, "wb") as fh:
                fh.write(payload)
            print(f"blame report -> {args.json}")
        if args.trace is not None:
            run.obs.perfetto.save(args.trace)
            print(f"trace with flow arrows -> {args.trace}")
    except OSError as exc:
        print(f"repro explain: cannot write output: {exc}", file=sys.stderr)
        return 2
    return 0


def cmd_farm(argv: List[str]) -> int:
    """``repro farm figures|list|metrics|clean ...`` (see docs/FARM.md)."""
    from ..farm.cli import main as farm_main

    return farm_main(list(argv))


def cmd_trend(argv: List[str]) -> int:
    """``repro trend record|report|check|chart|list ...`` (see docs/TRENDS.md)."""
    from ..obs.trends.cli import main as trend_main

    return trend_main(list(argv))


def cmd_serve(argv: List[str]) -> int:
    """``repro serve --port N ...`` — the farm queue service (docs/FARM.md)."""
    from ..farm.queue.cli import serve_main

    return serve_main(list(argv))


def cmd_worker(argv: List[str]) -> int:
    """``repro worker URL ...`` — one pull-based farm worker (docs/FARM.md)."""
    from ..farm.queue.cli import worker_main

    return worker_main(list(argv))


def cmd_dashboard(argv: List[str]) -> int:
    """``repro dashboard ...`` — standalone telemetry dashboard
    (docs/OBSERVABILITY.md, "Live telemetry")."""
    from ..obs.live.cli import dashboard_main

    return dashboard_main(list(argv))


#: Subcommands with their own argument structure (dispatched before the
#: experiment parser so ``repro table1 fig8a`` keeps working unchanged).
OBS_COMMANDS = {
    "trace": cmd_trace,
    "metrics": cmd_metrics,
    "explain": cmd_explain,
    "farm": cmd_farm,
    "trend": cmd_trend,
    "serve": cmd_serve,
    "worker": cmd_worker,
    "dashboard": cmd_dashboard,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the BCS-MPI paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        metavar="EXPERIMENT",
        help=f"one or more of: {', '.join(sorted(COMMANDS))}, all",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="application scale factor (default: per-experiment; 1.0 = full size)",
    )
    parser.add_argument(
        "--ranks", type=int, default=None, help="override the process count"
    )
    parser.add_argument(
        "--procs",
        type=int,
        nargs="+",
        default=None,
        help="process counts for scaling figures (fig10/fig11)",
    )
    parser.add_argument(
        "--apps",
        nargs="+",
        default=None,
        help="restrict table2 to these applications (e.g. SAGE IS LU)",
    )
    parser.add_argument(
        "--save",
        metavar="PATH",
        default=None,
        help="also write the rows of every experiment run as JSON",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:  # pragma: no cover - interactive entry
        argv = sys.argv[1:]
    if argv and argv[0] in OBS_COMMANDS:
        return OBS_COMMANDS[argv[0]](list(argv[1:]))
    args = build_parser().parse_args(argv)
    wanted = list(args.experiments)
    if "all" in wanted:
        wanted = list(COMMANDS)
    unknown = [w for w in wanted if w not in COMMANDS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"choose from: {', '.join(sorted(COMMANDS))}, all", file=sys.stderr)
        return 2
    _collected.clear()
    seen = set()
    for name in wanted:
        fn = COMMANDS[name]
        if fn in seen:
            continue
        seen.add(fn)
        fn(args)
    if args.save:
        import json

        with open(args.save, "w") as fh:
            json.dump(_collected, fh, indent=2, default=str)
        print(f"\nsaved {len(_collected)} experiment(s) to {args.save}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
