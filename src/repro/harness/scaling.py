"""The 1024-node scaling study: simulator throughput vs machine size.

The BCS design brief is a machine one order of magnitude past the
paper's 62-node testbed, so the simulator itself must stay usable at
1024 nodes.  The dominant cost at that scale used to be the strobe
loop's per-slice full scans — every slice touched every
``NodeRuntime`` even when one small job was active.  This study pins
the fix: it runs one small barrier job (a realistic "mostly idle
machine" shape) on clusters of growing size and measures *simulator
wall-clock* slices/sec with the incremental active sets on
(``BcsConfig.incremental_active_sets=True``, the default) against the
historical full-scan path, asserting virtual timings stay identical.

Rows are JSON-safe so :mod:`repro.farm.points` can register the study
as the ``scaling1024`` family.  Wall-clock fields are measurements of
*this host*, not of the simulated machine — the family therefore stays
out of the deterministic figure set.
"""

from __future__ import annotations

import gc
import time
from typing import List, Sequence

from ..apps import barrier_benchmark, nearest_neighbor_benchmark
from ..bcs import BcsConfig, BcsRuntime
from ..network import Cluster, ClusterSpec, by_name
from ..storm import JobSpec
from ..units import kib, seconds, us

__all__ = [
    "SCALING_NETWORKS",
    "gc_counters",
    "scaling16k_point",
    "scaling16k_rows",
    "scaling64k_point",
    "scaling64k_rows",
    "scaling_point",
    "scaling_rows",
    "tune_gc",
]

#: Network models exercised by the study, in row order: the paper's
#: testbed fabric and the BlueGene/L torus it anticipates.
SCALING_NETWORKS = ("qsnet", "bluegene_l_torus")


def _timed_run(
    network: str,
    n_nodes: int,
    active_ranks: int,
    iterations: int,
    granularity_us: float,
    incremental: bool,
):
    """One job on a fresh ``n_nodes`` cluster; returns (virtual_ns, slices, wall_s)."""
    cluster = Cluster(ClusterSpec(n_nodes=n_nodes, model=by_name(network)))
    cfg = BcsConfig(init_cost=0, incremental_active_sets=incremental)
    runtime = BcsRuntime(cluster, cfg)
    spec = JobSpec(
        app=barrier_benchmark,
        n_ranks=active_ranks,
        name="scaling",
        params=dict(granularity=us(granularity_us), iterations=iterations),
    )
    t0 = time.perf_counter()
    job = runtime.run_job(spec, max_time=seconds(3600))
    wall_s = time.perf_counter() - t0
    return job.runtime, runtime.stats["slices"], wall_s


def scaling_point(
    network: str = "qsnet",
    n_nodes: int = 1024,
    active_ranks: int = 8,
    iterations: int = 60,
    granularity_us: float = 400.0,
) -> dict:
    """One scaling row: incremental active sets vs the full-scan oracle.

    Both runs simulate the identical workload — ``active_ranks`` ranks
    of the barrier benchmark on an ``n_nodes``-node cluster — and must
    agree on virtual time and slice count to the byte; only the host
    wall-clock (and hence ``speedup``) may differ.
    """
    # Warm both code paths on a toy cluster so the first timed run does
    # not absorb the interpreter's cold-start cost (farm workers are
    # fresh processes).
    for warm in (True, False):
        _timed_run(network, 8, 2, 2, granularity_us, warm)
    inc_ns, inc_slices, inc_wall = _timed_run(
        network, n_nodes, active_ranks, iterations, granularity_us, True
    )
    scan_ns, scan_slices, scan_wall = _timed_run(
        network, n_nodes, active_ranks, iterations, granularity_us, False
    )
    return {
        "network": network,
        "n_nodes": n_nodes,
        "active_ranks": active_ranks,
        "iterations": iterations,
        "virtual_ms": inc_ns / 1e6,
        "slices": inc_slices,
        "slices_per_sec": inc_slices / inc_wall if inc_wall > 0 else 0.0,
        "scan_slices_per_sec": scan_slices / scan_wall if scan_wall > 0 else 0.0,
        "speedup": scan_wall / inc_wall if inc_wall > 0 else 0.0,
        "virtual_identical": inc_ns == scan_ns and inc_slices == scan_slices,
        "wall_s": inc_wall,
        "scan_wall_s": scan_wall,
    }


def scaling_rows(
    node_counts: Sequence[int] = (128, 256, 512, 1024),
    networks: Sequence[str] = SCALING_NETWORKS,
    active_ranks: int = 8,
    iterations: int = 60,
    granularity_us: float = 400.0,
) -> List[dict]:
    """The full scaling table (network-major, node-count-minor order)."""
    return [
        scaling_point(m, n, active_ranks, iterations, granularity_us)
        for m in networks
        for n in node_counts
    ]


# -- the 16k study: batched slice engine vs the object-path oracle -------------


def _timed_run16k(
    network: str,
    n_nodes: int,
    active_ranks: int,
    iterations: int,
    granularity_us: float,
    message_kib: int,
    batched: bool,
):
    """One nearest-neighbour job on a fresh cluster.

    Returns ``(virtual_ns, slices, wall_s)``.  Both legs keep the
    incremental active sets on — at 16k nodes the per-slice full scan
    would measure PR 5's fix again, not this study's batching.
    """
    cluster = Cluster(ClusterSpec(n_nodes=n_nodes, model=by_name(network)))
    cfg = BcsConfig(init_cost=0, batched_matching=batched)
    runtime = BcsRuntime(cluster, cfg)
    spec = JobSpec(
        app=nearest_neighbor_benchmark,
        n_ranks=active_ranks,
        name="scaling16k",
        params=dict(
            granularity=us(granularity_us),
            iterations=iterations,
            message_bytes=kib(message_kib),
        ),
    )
    # Building a 16k-node cluster leaves the young generations full of
    # short-lived construction garbage; collect it now so the timed
    # region measures the slice machine, not a GC pass over the graph.
    gc.collect()
    t0 = time.perf_counter()
    job = runtime.run_job(spec, max_time=seconds(3600))
    wall_s = time.perf_counter() - t0
    return job.runtime, runtime.stats["slices"], wall_s


def scaling16k_point(
    network: str = "qsnet",
    n_nodes: int = 16384,
    active_ranks: int = 32,
    iterations: int = 30,
    granularity_us: float = 400.0,
    message_kib: int = 4,
    reps: int = 2,
) -> dict:
    """One 16k-study row: batched slice engine vs the object-path oracle.

    The workload is point-to-point heavy (nearest-neighbour exchange) so
    the batched descriptor/matching engine is what's actually measured.
    Both runs simulate the identical workload and must agree on virtual
    time and slice count to the byte (``virtual_identical``); only the
    host wall-clock (and hence ``speedup``) may differ.  Legs are
    interleaved best-of-``reps``: at 16k nodes a single leg's wall-clock
    is dominated by GC churn from the just-built cluster graph, so
    one-shot timings swing tens of percent either way.
    """
    for warm in (True, False):
        _timed_run16k(network, 8, 2, 2, granularity_us, message_kib, warm)
    bat_wall = obj_wall = float("inf")
    bat_ns = bat_slices = obj_ns = obj_slices = 0
    for _ in range(max(1, reps)):
        bat_ns, bat_slices, wall = _timed_run16k(
            network, n_nodes, active_ranks, iterations, granularity_us,
            message_kib, True,
        )
        bat_wall = min(bat_wall, wall)
        obj_ns, obj_slices, wall = _timed_run16k(
            network, n_nodes, active_ranks, iterations, granularity_us,
            message_kib, False,
        )
        obj_wall = min(obj_wall, wall)
    if bat_ns != obj_ns or bat_slices != obj_slices:
        # Divergence is a correctness bug, not a data point: fail the
        # farm point so CI stops instead of recording a broken row.
        raise AssertionError(
            f"scaling16k[{network},{n_nodes}]: batched engine diverged from "
            f"the object-path oracle — {bat_ns} ns/{bat_slices} slices vs "
            f"{obj_ns} ns/{obj_slices} slices"
        )
    return {
        "network": network,
        "n_nodes": n_nodes,
        "active_ranks": active_ranks,
        "iterations": iterations,
        "message_kib": message_kib,
        "virtual_ms": bat_ns / 1e6,
        "slices": bat_slices,
        "slices_per_sec": bat_slices / bat_wall if bat_wall > 0 else 0.0,
        "object_slices_per_sec": obj_slices / obj_wall if obj_wall > 0 else 0.0,
        "speedup": obj_wall / bat_wall if bat_wall > 0 else 0.0,
        "virtual_identical": bat_ns == obj_ns and bat_slices == obj_slices,
        "wall_s": bat_wall,
        "object_wall_s": obj_wall,
    }


def scaling16k_rows(
    node_counts: Sequence[int] = (2048, 4096, 8192, 16384),
    networks: Sequence[str] = SCALING_NETWORKS,
    active_ranks: int = 32,
    iterations: int = 30,
    granularity_us: float = 400.0,
    message_kib: int = 4,
) -> List[dict]:
    """The 16k scaling table (network-major, node-count-minor order)."""
    return [
        scaling16k_point(
            m, n, active_ranks, iterations, granularity_us, message_kib
        )
        for m in networks
        for n in node_counts
    ]


# -- the 64k study: arena node state + aggregated strobe vs the oracle ---------


def tune_gc(threshold0: int = 50_000) -> None:
    """Freeze the warm interpreter graph and relax the gen-0 trigger.

    At 64k nodes the long-lived object population (arena arrays, the
    engine, module graph) is large enough that cyclic-GC passes walking
    it dominate wall-clock noise.  After warm-up the survivors are
    effectively permanent: ``gc.freeze`` moves them to the permanent
    generation so collections never traverse them again, and a raised
    gen-0 threshold keeps the collector from firing on every burst of
    short-lived slice garbage.  Benchmark harnesses and farm workers
    call this once, after their warm-up runs, inside a process that
    exists only to take the measurement — the tuning is deliberately
    not undone.
    """
    gc.collect()
    gc.freeze()
    gc.set_threshold(threshold0, 50, 50)


def gc_counters() -> tuple:
    """Current ``(collections, tracked_objects)`` for trend recording.

    ``collections`` sums every generation's lifetime collection count;
    deltas across a timed region show how often the collector fired
    inside it.  ``tracked_objects`` is the live cyclic-GC population —
    the flat-footprint signal the arena representation is meant to
    hold down.
    """
    collections = sum(s["collections"] for s in gc.get_stats())
    return collections, len(gc.get_objects())


def _peak_rss_mib() -> float:
    """Process peak RSS in MiB (``ru_maxrss`` is KiB on Linux)."""
    import resource

    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _timed_run64k(
    network: str,
    n_nodes: int,
    active_ranks: int,
    iterations: int,
    granularity_us: float,
    message_kib: int,
    aggregated: bool,
):
    """One nearest-neighbour job on a fresh cluster.

    Returns ``(virtual_ns, slices, wall_s, gc_collections_delta)``.
    The aggregated leg also gets the lazy node directory — flyweight
    nodes are half of what makes 64k clusters affordable — while the
    oracle leg builds every node eagerly, exactly like the pre-arena
    engine did.
    """
    cluster = Cluster(
        ClusterSpec(
            n_nodes=n_nodes, model=by_name(network), lazy_nodes=aggregated
        )
    )
    cfg = BcsConfig(init_cost=0, aggregated_strobe=aggregated)
    runtime = BcsRuntime(cluster, cfg)
    spec = JobSpec(
        app=nearest_neighbor_benchmark,
        n_ranks=active_ranks,
        name="scaling64k",
        params=dict(
            granularity=us(granularity_us),
            iterations=iterations,
            message_bytes=kib(message_kib),
        ),
    )
    gc.collect()
    gc0, _ = gc_counters()
    t0 = time.perf_counter()
    job = runtime.run_job(spec, max_time=seconds(3600))
    wall_s = time.perf_counter() - t0
    gc1, _ = gc_counters()
    return job.runtime, runtime.stats["slices"], wall_s, gc1 - gc0


def scaling64k_point(
    network: str = "qsnet",
    n_nodes: int = 65536,
    active_ranks: int = 32,
    iterations: int = 30,
    granularity_us: float = 400.0,
    message_kib: int = 4,
    reps: int = 2,
) -> dict:
    """One 64k-study row: aggregated strobe + arena vs the scan oracle.

    The aggregated leg runs *first* and the process peak RSS is
    snapshotted immediately after it: ``ru_maxrss`` is a cumulative
    high-water mark, so sampling before the eager oracle leg builds its
    full object graph makes ``peak_rss_mib`` the aggregated stack's own
    footprint.  Farm workers execute each point in a fresh spawned
    child, so the snapshot is not polluted by earlier points either.

    Both legs simulate the identical workload and must agree on virtual
    time and slice count to the byte; divergence raises instead of
    recording a broken row.
    """
    for warm in (True, False):
        _timed_run64k(
            network, 8, 2, 2, granularity_us, message_kib, warm
        )
    tune_gc()
    agg_wall = orc_wall = float("inf")
    agg_ns = agg_slices = orc_ns = orc_slices = 0
    gc_delta = 0
    peak_rss = 0.0
    gc_objects = 0
    for rep in range(max(1, reps)):
        agg_ns, agg_slices, wall, delta = _timed_run64k(
            network, n_nodes, active_ranks, iterations, granularity_us,
            message_kib, True,
        )
        agg_wall = min(agg_wall, wall)
        gc_delta = max(gc_delta, delta)
        if rep == 0:
            peak_rss = _peak_rss_mib()
            _, gc_objects = gc_counters()
        orc_ns, orc_slices, wall, _ = _timed_run64k(
            network, n_nodes, active_ranks, iterations, granularity_us,
            message_kib, False,
        )
        orc_wall = min(orc_wall, wall)
    if agg_ns != orc_ns or agg_slices != orc_slices:
        raise AssertionError(
            f"scaling64k[{network},{n_nodes}]: aggregated strobe diverged "
            f"from the per-destination oracle — {agg_ns} ns/{agg_slices} "
            f"slices vs {orc_ns} ns/{orc_slices} slices"
        )
    return {
        "network": network,
        "n_nodes": n_nodes,
        "active_ranks": active_ranks,
        "iterations": iterations,
        "message_kib": message_kib,
        "virtual_ms": agg_ns / 1e6,
        "slices": agg_slices,
        "slices_per_sec": agg_slices / agg_wall if agg_wall > 0 else 0.0,
        "oracle_slices_per_sec": orc_slices / orc_wall if orc_wall > 0 else 0.0,
        "speedup": orc_wall / agg_wall if agg_wall > 0 else 0.0,
        "virtual_identical": agg_ns == orc_ns and agg_slices == orc_slices,
        "wall_s": agg_wall,
        "oracle_wall_s": orc_wall,
        "peak_rss_mib": peak_rss,
        "gc_collections": gc_delta,
        "gc_objects": gc_objects,
    }


def scaling64k_rows(
    node_counts: Sequence[int] = (2048, 8192, 16384, 65536),
    networks: Sequence[str] = SCALING_NETWORKS,
    active_ranks: int = 32,
    iterations: int = 30,
    granularity_us: float = 400.0,
    message_kib: int = 4,
) -> List[dict]:
    """The 64k scaling table (network-major, node-count-minor order)."""
    return [
        scaling64k_point(
            m, n, active_ranks, iterations, granularity_us, message_kib
        )
        for m in networks
        for n in node_counts
    ]
