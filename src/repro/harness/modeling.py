"""Analytical performance model of BCS-MPI.

One of the paper's selling points is that a globally scheduled,
deterministic communication system is "much simpler to implement, debug
and model" (abstract, §1).  This module makes that concrete: closed-form
predictions of BCS-MPI behaviour that the benchmarks validate against
the simulator.

The model:

- a blocking receive posted uniformly at random within a slice completes
  ``1.5`` slices later on average (paper §3.1): the remainder of the
  posting slice (mean ``T/2``) plus one full slice of scheduling +
  transmission;
- a collective adds the same quantization, entering at the *last* rank's
  post;
- computation is stretched by the Node Manager tax;
- large messages progress at the per-slice chunk budget;
- therefore a bulk-synchronous loop of granularity ``g`` with one
  synchronization per iteration runs at

  ``slowdown(g) ≈ (g·(1+tax) + 1.5·T) / (g + t_sync_baseline) − 1``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..bcs.config import BcsConfig
from ..mpi.baseline import BaselineConfig
from ..units import us


@dataclass(frozen=True)
class BcsModel:
    """Closed-form BCS-MPI predictions for a given configuration."""

    config: BcsConfig
    link_bandwidth: float = 305e6

    # -- primitive costs ----------------------------------------------------------

    def blocking_recv_delay(self) -> float:
        """Mean post-to-restart delay of a blocking receive, ns (§3.1)."""
        return 1.5 * self.config.timeslice

    def collective_delay(self) -> float:
        """Mean delay of a blocking collective after the last arrival, ns.

        The last rank posts mid-slice on average; the operation is
        scheduled and executed in the following slice and the ranks are
        restarted at the next boundary.
        """
        return 1.5 * self.config.timeslice

    def message_slices(self, nbytes: int, streams_per_link: int = 1) -> int:
        """Slices needed to move ``nbytes`` with the chunk budget shared
        by ``streams_per_link`` concurrent messages on one link."""
        if nbytes <= 0:
            return 1
        budget = self.config.p2p_slice_budget_bytes(self.link_bandwidth)
        per_stream = max(budget // max(streams_per_link, 1), 1)
        return max(math.ceil(nbytes / per_stream), 1)

    def large_recv_delay(self, nbytes: int, streams_per_link: int = 1) -> float:
        """Mean blocking-receive delay for a chunked message, ns."""
        extra_slices = self.message_slices(nbytes, streams_per_link) - 1
        return self.blocking_recv_delay() + extra_slices * self.config.timeslice

    # -- loop-level predictions ------------------------------------------------------

    def effective_compute(self, granularity: int) -> float:
        """Computation time after the NM tax, ns."""
        return granularity * (1.0 + self.config.nm_compute_tax)

    def bulk_synchronous_slowdown(
        self,
        granularity: int,
        baseline_sync_ns: float = us(12),
        syncs_per_iteration: int = 1,
    ) -> float:
        """Predicted slowdown (%) of a compute+synchronize loop vs the
        production MPI (Fig. 8's curves)."""
        bcs_iter = self.effective_compute(granularity) + (
            syncs_per_iteration * self.collective_delay()
        )
        base_iter = granularity + syncs_per_iteration * baseline_sync_ns
        return 100.0 * (bcs_iter / base_iter - 1.0)

    def crossover_granularity(
        self, target_slowdown_pct: float, baseline_sync_ns: float = us(12)
    ) -> float:
        """Granularity (ns) at which the predicted slowdown falls to the
        target — where BCS becomes 'good enough' (Fig. 8's knee)."""
        s = target_slowdown_pct / 100.0
        tax = self.config.nm_compute_tax
        numerator = 1.5 * self.config.timeslice - (1 + s) * baseline_sync_ns
        denominator = (1 + s) - (1 + tax)
        if denominator <= 0:
            raise ValueError(
                f"target {target_slowdown_pct}% is below the NM-tax floor"
            )
        return numerator / denominator
