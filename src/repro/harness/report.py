"""Plain-text reporting: the tables and series the paper prints."""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """Print (and return) a titled table."""
    text = f"\n== {title} ==\n{format_table(headers, rows)}"
    print(text)
    return text


def slowdown_series(points: Sequence[tuple]) -> List[dict]:
    """Normalize (x, comparison) pairs into report rows."""
    rows = []
    for x, comparison in points:
        rows.append(
            {
                "x": x,
                "bcs_s": comparison.bcs.runtime_s,
                "baseline_s": comparison.baseline.runtime_s,
                "slowdown_pct": comparison.slowdown_pct,
            }
        )
    return rows
