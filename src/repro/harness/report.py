"""Plain-text reporting: the tables and series the paper prints."""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """Print (and return) a titled table."""
    text = f"\n== {title} ==\n{format_table(headers, rows)}"
    print(text)
    return text


def metrics_report(obs) -> str:
    """Render an :class:`repro.obs.Observability` hub as report sections.

    Three tables: per-slice utilization and microphase durations
    (p50/p95/p99 from the histograms), counters/gauges, and per-node
    NIC-thread occupancy.  Output is deterministic — identical runs
    render byte-identical reports.
    """
    registry = obs.registry
    sections: List[str] = []

    hist_rows = []
    for name in registry.names():
        if registry.kind(name) != "histogram":
            continue
        for labels, hist in sorted(registry.series(name).items()):
            s = hist.summary()
            if s["count"] == 0:
                continue
            label = ",".join(f"{k}={v}" for k, v in labels)
            hist_rows.append(
                [
                    name + (f"{{{label}}}" if label else ""),
                    s["count"],
                    s["mean"],
                    s["p50"],
                    s["p95"],
                    s["p99"],
                    s["max"],
                ]
            )
    if hist_rows:
        sections.append(
            "== distributions ==\n"
            + format_table(
                ["metric", "count", "mean", "p50", "p95", "p99", "max"], hist_rows
            )
        )

    scalar_rows = []
    for name in registry.names():
        kind = registry.kind(name)
        if kind == "histogram":
            continue
        for labels, inst in sorted(registry.series(name).items()):
            label = ",".join(f"{k}={v}" for k, v in labels)
            scalar_rows.append(
                [name + (f"{{{label}}}" if label else ""), kind, inst.value]
            )
    if scalar_rows:
        sections.append(
            "== counters & gauges ==\n"
            + format_table(["metric", "kind", "value"], scalar_rows)
        )

    occupancy = obs.nic_occupancy()
    if occupancy:
        sections.append(
            "== NIC thread occupancy ==\n"
            + format_table(
                ["node", "busy_fraction"],
                [[node, f"{frac:.4f}"] for node, frac in sorted(occupancy.items())],
            )
        )
    return "\n\n".join(sections)


def slowdown_series(points: Sequence[tuple]) -> List[dict]:
    """Normalize (x, comparison) pairs into report rows."""
    rows = []
    for x, comparison in points:
        rows.append(
            {
                "x": x,
                "bcs_s": comparison.bcs.runtime_s,
                "baseline_s": comparison.baseline.runtime_s,
                "slowdown_pct": comparison.slowdown_pct,
            }
        )
    return rows
