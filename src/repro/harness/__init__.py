"""Experiment harness: runners, per-figure experiments, reporting."""

from .runner import Comparison, RunResult, compare_backends, nodes_for, run_workload

__all__ = [
    "Comparison",
    "RunResult",
    "compare_backends",
    "nodes_for",
    "run_workload",
]
