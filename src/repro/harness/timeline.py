"""Slice-timeline analysis: what the runtime did with each time slice.

Build a :class:`Timeline` from a trace that captured the
``bcs.microphase`` category, then inspect per-slice microphase
durations, aggregate utilization, and a terminal-friendly utilization
strip — the observability layer a deterministic global scheduler makes
trivial (every slice has the same shape everywhere).

Usage::

    trace = Trace(categories=["bcs.microphase"])
    cluster = Cluster(spec, trace=trace)
    ... run ...
    timeline = Timeline.from_trace(trace, timeslice=us(500))
    print(timeline.report())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..sim import Trace
from ..units import to_us

#: Utilization strip glyphs, from idle to saturated.
_GLYPHS = " .:-=+*#%@"


@dataclass
class SliceRecord:
    """Microphase durations of one active slice."""

    slice_no: int
    start: int
    phases: Dict[str, int] = field(default_factory=dict)

    @property
    def busy_ns(self) -> int:
        """Total time spent in microphases this slice."""
        return sum(self.phases.values())


class Timeline:
    """Per-slice activity extracted from a trace."""

    def __init__(self, slices: List[SliceRecord], timeslice: int):
        if timeslice <= 0:
            raise ValueError("timeslice must be positive")
        self.slices = sorted(slices, key=lambda s: s.slice_no)
        self.timeslice = timeslice

    @classmethod
    def from_trace(cls, trace: Trace, timeslice: int) -> "Timeline":
        """Assemble slice records from ``bcs.microphase`` trace events."""
        by_slice: Dict[int, SliceRecord] = {}
        for rec in trace.by_category("bcs.microphase"):
            sl = rec.fields["slice"]
            entry = by_slice.get(sl)
            if entry is None:
                entry = SliceRecord(slice_no=sl, start=rec.fields["start"])
                by_slice[sl] = entry
            entry.start = min(entry.start, rec.fields["start"])
            entry.phases[rec.fields["phase"]] = (
                entry.phases.get(rec.fields["phase"], 0) + rec.fields["duration"]
            )
        return cls(list(by_slice.values()), timeslice)

    # -- aggregates ---------------------------------------------------------------

    @property
    def n_active_slices(self) -> int:
        """Slices that ran at least one microphase."""
        return len(self.slices)

    def utilization(self, record: SliceRecord) -> float:
        """Fraction of one slice spent in microphases (may exceed 1 on
        overrun)."""
        return record.busy_ns / self.timeslice

    def mean_phase_durations(self) -> Dict[str, float]:
        """Average duration (us) of each microphase over active slices."""
        totals: Dict[str, int] = {}
        counts: Dict[str, int] = {}
        for record in self.slices:
            for phase, duration in record.phases.items():
                totals[phase] = totals.get(phase, 0) + duration
                counts[phase] = counts.get(phase, 0) + 1
        return {p: to_us(totals[p] / counts[p]) for p in totals}

    def scheduling_phase_us(self) -> Optional[float]:
        """Mean DEM+MSM duration (us) — the paper's ~125 us quantity."""
        means = self.mean_phase_durations()
        if "DEM" not in means or "MSM" not in means:
            return None
        return means["DEM"] + means["MSM"]

    # -- rendering -------------------------------------------------------------------

    def utilization_strip(self, width: int = 60) -> str:
        """One character per bucket of slices, darker = busier."""
        if not self.slices:
            return ""
        first = self.slices[0].slice_no
        last = self.slices[-1].slice_no
        span = max(last - first + 1, 1)
        buckets = [0.0] * min(width, span)
        per_bucket = span / len(buckets)
        for record in self.slices:
            idx = min(int((record.slice_no - first) / per_bucket), len(buckets) - 1)
            buckets[idx] = max(buckets[idx], min(self.utilization(record), 1.0))
        return "".join(
            _GLYPHS[min(int(u * (len(_GLYPHS) - 1) + 0.5), len(_GLYPHS) - 1)]
            for u in buckets
        )

    def to_chrome_trace(self) -> list:
        """Export as Chrome trace-event JSON objects (``chrome://tracing``
        / Perfetto).  Each microphase becomes a complete ("X") event on
        the "BCS slice machine" track; timestamps are microseconds."""
        events = []
        for record in self.slices:
            t = record.start
            for phase in ("DEM", "MSM", "P2P", "BBM", "RM"):
                duration = record.phases.get(phase)
                if duration is None:
                    continue
                events.append(
                    {
                        "name": phase,
                        "cat": "microphase",
                        "ph": "X",
                        "ts": t / 1000.0,
                        "dur": duration / 1000.0,
                        "pid": 0,
                        "tid": 0,
                        "args": {"slice": record.slice_no},
                    }
                )
                t += duration
        return events

    def save_chrome_trace(self, path) -> None:
        """Write :meth:`to_chrome_trace` output as a JSON file."""
        import json

        with open(path, "w") as fh:
            json.dump({"traceEvents": self.to_chrome_trace()}, fh)

    def report(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"active slices: {self.n_active_slices}",
        ]
        means = self.mean_phase_durations()
        for phase in ("DEM", "MSM", "P2P", "BBM", "RM"):
            if phase in means:
                lines.append(f"  mean {phase}: {means[phase]:8.1f} us")
        sched = self.scheduling_phase_us()
        if sched is not None:
            lines.append(f"  global message scheduling (DEM+MSM): {sched:.1f} us")
        strip = self.utilization_strip()
        if strip:
            lines.append(f"utilization |{strip}|")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<Timeline active_slices={self.n_active_slices}>"
