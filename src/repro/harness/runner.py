"""Experiment runner: one workload, one backend, one measurement.

Wraps cluster construction, runtime selection, noise injection and
placement so experiments are one-liners:

    result = run_workload(sage, n_ranks=62, backend="bcs")
    comparison = compare_backends(sage, n_ranks=62)
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from ..bcs import BcsConfig, BcsRuntime
from ..mpi.baseline import BaselineConfig, BaselineRuntime
from ..network import Cluster, ClusterSpec
from ..noise import NoiseConfig, NoiseInjector
from ..storm import JobSpec
from ..units import seconds, to_seconds

#: Watchdog for every harness run (simulated time).
DEFAULT_MAX_TIME = seconds(3600)


@dataclass
class RunResult:
    """Outcome of one workload run."""

    backend: str
    app_name: str
    n_ranks: int
    runtime_ns: int
    stats: Dict[str, int]
    results: list

    @property
    def runtime_s(self) -> float:
        """Wall-clock (simulated) seconds."""
        return to_seconds(self.runtime_ns)


@dataclass
class Comparison:
    """BCS vs baseline on the same workload."""

    bcs: RunResult
    baseline: RunResult

    @property
    def slowdown_pct(self) -> float:
        """BCS slowdown relative to the baseline, percent.

        Positive = BCS slower (the usual case); negative = BCS wins
        (SAGE / non-blocking SWEEP3D in Table 2).
        """
        return 100.0 * (self.bcs.runtime_ns - self.baseline.runtime_ns) / self.baseline.runtime_ns


def nodes_for(n_ranks: int, cpus_per_node: int = 2) -> int:
    """Compute nodes needed for ``n_ranks`` (paper: 2 ranks per node)."""
    return math.ceil(n_ranks / cpus_per_node)


def run_workload(
    app: Callable,
    n_ranks: int,
    backend: str = "bcs",
    params: Optional[dict] = None,
    bcs_config: Optional[BcsConfig] = None,
    baseline_config: Optional[BaselineConfig] = None,
    cluster_spec: Optional[ClusterSpec] = None,
    noise: Optional[NoiseConfig] = None,
    seed: int = 0,
    max_time: int = DEFAULT_MAX_TIME,
    name: Optional[str] = None,
    obs: Optional[Any] = None,
) -> RunResult:
    """Run ``app`` on a fresh cluster under the chosen backend.

    ``obs`` is an optional :class:`repro.obs.Observability` hub; it is
    attached to the runtime before launch (BCS backend only — the
    baseline has no slice machine to instrument).
    """
    if cluster_spec is None:
        cluster_spec = ClusterSpec(n_nodes=nodes_for(n_ranks), seed=seed)
    cluster = Cluster(cluster_spec)
    if noise is not None:
        NoiseInjector(cluster, noise).start()

    if backend == "bcs":
        runtime: Any = BcsRuntime(cluster, bcs_config or BcsConfig())
        if obs is not None:
            runtime.attach_observability(obs)
    elif backend == "baseline":
        if obs is not None:
            raise ValueError("observability is only supported on the 'bcs' backend")
        runtime = BaselineRuntime(cluster, baseline_config or BaselineConfig())
    else:
        raise ValueError(f"unknown backend {backend!r}; use 'bcs' or 'baseline'")

    app_name = name or getattr(app, "__name__", "app")
    spec = JobSpec(app=app, n_ranks=n_ranks, name=app_name, params=params or {})
    job = runtime.run_job(spec, max_time=max_time)
    return RunResult(
        backend=backend,
        app_name=app_name,
        n_ranks=n_ranks,
        runtime_ns=job.runtime,
        stats=dict(runtime.stats),
        results=job.results,
    )


def compare_backends(
    app: Callable,
    n_ranks: int,
    params: Optional[dict] = None,
    bcs_config: Optional[BcsConfig] = None,
    baseline_config: Optional[BaselineConfig] = None,
    noise: Optional[NoiseConfig] = None,
    seed: int = 0,
    max_time: int = DEFAULT_MAX_TIME,
    name: Optional[str] = None,
) -> Comparison:
    """Run the same workload under both backends and compare runtimes."""
    common = dict(
        params=params, noise=noise, seed=seed, max_time=max_time, name=name
    )
    bcs = run_workload(app, n_ranks, "bcs", bcs_config=bcs_config, **common)
    base = run_workload(
        app, n_ranks, "baseline", baseline_config=baseline_config, **common
    )
    return Comparison(bcs=bcs, baseline=base)
