"""Extension experiments beyond the paper's evaluation, as farm points.

Three studies extend §5 and previously lived only as sequential benches
(``benchmarks/bench_ft_extension.py``, ``benchmarks/bench_pfs_qos.py``,
and the noise-coordination ablation in ``bench_ablations.py``):

- **NPB FT** — the kernel the paper could not run (no MPI groups,
  §4.5); this implementation supports communicator splitting, so FT's
  global transpose completes the NAS picture;
- **PFS QoS** — the §1 motivation quantified: parallel-file-system
  background traffic under the global BCS schedule vs an uncoordinated
  baseline;
- **noise coordination** — coordinated vs uncoordinated OS daemons on
  a fine-grained barrier code (§1 / [20]).

Each ``<family>_point`` function computes exactly one row from
JSON-safe scalar parameters, so :mod:`repro.farm.points` can register
the studies as point families: the full extension matrix rides the
content-addressed cache and feeds the cross-run trend store, and the
benches become thin assertions over the same rows.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..apps import barrier_benchmark, nearest_neighbor_benchmark
from ..apps.nas import NAS_APPS
from ..bcs import BcsConfig, BcsRuntime
from ..mpi.baseline import BaselineConfig, BaselineRuntime
from ..network import Cluster, ClusterSpec
from ..noise import NoiseConfig
from ..pfs import PfsService, UncoordinatedPfs
from ..storm import JobSpec
from ..units import kib, ms, seconds
from .runner import compare_backends, run_workload

__all__ = [
    "NOISE_SCENARIOS",
    "PFS_SCHEDULERS",
    "ext_ft_point",
    "ext_ft_rows",
    "ext_noise_point",
    "ext_noise_rows",
    "ext_pfs_point",
    "ext_pfs_rows",
]


# --- NPB FT ------------------------------------------------------------------


def ext_ft_point(n_ranks: int = 32, iterations: int = 3, grid_points: int = 256) -> dict:
    """One FT extension row: the transpose-heavy kernel on both backends."""
    comparison = compare_backends(
        NAS_APPS["FT"],
        n_ranks,
        params=dict(iterations=iterations, grid_points=grid_points),
        bcs_config=BcsConfig(init_cost=seconds(0.12)),
        baseline_config=BaselineConfig(init_cost=seconds(0.015)),
        name="FT",
    )
    return {
        "n_ranks": n_ranks,
        "baseline_s": comparison.baseline.runtime_s,
        "bcs_s": comparison.bcs.runtime_s,
        "slowdown_pct": comparison.slowdown_pct,
        # The transpose really moves matching data flow on both backends.
        "results_match": comparison.bcs.results == comparison.baseline.results,
    }


def ext_ft_rows(
    rank_counts: Sequence[int] = (32,),
    iterations: int = 3,
    grid_points: int = 256,
) -> List[dict]:
    """FT comparison at every requested machine size."""
    return [ext_ft_point(n, iterations, grid_points) for n in rank_counts]


# --- PFS QoS -----------------------------------------------------------------


#: Scheduler variants in row order.
PFS_SCHEDULERS = ("bcs", "baseline")


def ext_pfs_point(
    scheduler: str,
    with_pfs: bool,
    n_ranks: int = 16,
    pfs_files: int = 24,
    pfs_file_kib: int = 4096,
    granularity_ms: float = 3,
    iterations: int = 12,
    message_kib: int = 4,
) -> dict:
    """One QoS row: the latency-sensitive app with/without PFS traffic.

    Under BCS the PFS stripes are system-class matches that only get
    the link budget user messages leave over; under the uncoordinated
    baseline they contend head-of-line on the same links.
    """
    if scheduler not in PFS_SCHEDULERS:
        raise ValueError(f"unknown scheduler {scheduler!r}; choose from {PFS_SCHEDULERS}")
    cluster = Cluster(ClusterSpec(n_nodes=n_ranks // 2))
    io_nodes = list(range(n_ranks // 2))
    if scheduler == "bcs":
        runtime = BcsRuntime(cluster, BcsConfig(init_cost=0))
        pfs = PfsService(runtime, io_nodes=io_nodes) if with_pfs else None
    else:
        runtime = BaselineRuntime(cluster, BaselineConfig(init_cost=0))
        pfs = UncoordinatedPfs(cluster, io_nodes=io_nodes) if with_pfs else None
    if pfs is not None:

        def writer():
            for i in range(pfs_files):
                pfs.write(i % len(io_nodes), f"f{i}", pfs_file_kib * 1024)
                yield cluster.env.timeout(ms(4))

        cluster.env.process(writer(), name="pfs.bg")

    job = runtime.run_job(
        JobSpec(
            app=nearest_neighbor_benchmark,
            n_ranks=n_ranks,
            params=dict(
                granularity=ms(granularity_ms),
                iterations=iterations,
                message_bytes=kib(message_kib),
            ),
        ),
        max_time=seconds(120),
    )
    return {
        "scheduler": scheduler,
        "with_pfs": with_pfs,
        "runtime_s": job.runtime / 1e9,
    }


def ext_pfs_rows(
    schedulers: Sequence[str] = PFS_SCHEDULERS,
    n_ranks: int = 16,
    pfs_files: int = 24,
    pfs_file_kib: int = 4096,
    granularity_ms: float = 3,
    iterations: int = 12,
) -> List[dict]:
    """The 2x2 QoS matrix: each scheduler, app alone then app + PFS."""
    return [
        ext_pfs_point(
            scheduler,
            with_pfs,
            n_ranks=n_ranks,
            pfs_files=pfs_files,
            pfs_file_kib=pfs_file_kib,
            granularity_ms=granularity_ms,
            iterations=iterations,
        )
        for scheduler in schedulers
        for with_pfs in (False, True)
    ]


# --- noise coordination ------------------------------------------------------


#: Noise scenarios in row order.
NOISE_SCENARIOS = ("quiet", "uncoordinated", "coordinated")


def ext_noise_point(
    scenario: str,
    n_ranks: int = 32,
    granularity_ms: float = 2,
    iterations: int = 30,
    period_ms: float = 20,
    duration_ms: float = 2,
    seed: int = 7,
) -> dict:
    """One noise row: a fine-grained barrier code under one daemon regime."""
    if scenario not in NOISE_SCENARIOS:
        raise ValueError(f"unknown scenario {scenario!r}; choose from {NOISE_SCENARIOS}")
    noise: Optional[NoiseConfig] = None
    if scenario != "quiet":
        noise = NoiseConfig(
            period=ms(period_ms),
            duration=ms(duration_ms),
            coordinated=(scenario == "coordinated"),
        )
    result = run_workload(
        barrier_benchmark,
        n_ranks,
        "baseline",
        params=dict(granularity=ms(granularity_ms), iterations=iterations, jitter=0.0),
        baseline_config=BaselineConfig(init_cost=0),
        noise=noise,
        seed=seed,
    )
    return {"scenario": scenario, "runtime_s": result.runtime_ns / 1e9}


def ext_noise_rows(
    scenarios: Sequence[str] = NOISE_SCENARIOS,
    n_ranks: int = 32,
    granularity_ms: float = 2,
    iterations: int = 30,
) -> List[dict]:
    """Runtime under every noise scenario (quiet / uncoordinated / coordinated)."""
    return [
        ext_noise_point(
            s, n_ranks=n_ranks, granularity_ms=granularity_ms, iterations=iterations
        )
        for s in scenarios
    ]
