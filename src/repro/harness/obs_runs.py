"""Instrumented experiment runs for ``repro trace`` / ``repro metrics``.

Each entry in :data:`INSTRUMENTED` is one canonical workload that can be
run with full observability attached: slice telemetry into the metrics
registry, a Perfetto trace, and the per-rank MPI profile.  These are the
paper's synthetic/application workloads at smoke-test sizes — big enough
to exercise every microphase, small enough to trace interactively.

Usage::

    run = run_instrumented("fig8", n_ranks=8)
    run.obs.perfetto.save("trace.json")
    print(run.obs.registry.render())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..apps import (
    barrier_benchmark,
    nearest_neighbor_benchmark,
    sage,
    sweep3d_blocking,
)
from ..bcs import BcsConfig
from ..obs import Observability
from ..units import kib, ms
from .runner import RunResult, run_workload

#: name -> (app, default params).  Synthetic runs skip the 1.2 s init
#: phase so the trace starts at the first interesting slice.
INSTRUMENTED: Dict[str, Tuple[object, dict]] = {
    "fig8": (barrier_benchmark, dict(granularity=ms(2), iterations=5)),
    "fig8-p2p": (
        nearest_neighbor_benchmark,
        dict(granularity=ms(2), iterations=5, message_bytes=kib(64)),
    ),
    "sage": (sage, dict(steps=3, step_compute=ms(5))),
    "sweep3d": (sweep3d_blocking, dict(octants=2, kblocks=2)),
}


@dataclass
class InstrumentedRun:
    """One instrumented run: the workload result plus its telemetry."""

    result: RunResult
    obs: Observability


def run_instrumented(
    name: str,
    n_ranks: int = 8,
    seed: int = 0,
    params: Optional[dict] = None,
    obs: Optional[Observability] = None,
) -> InstrumentedRun:
    """Run one :data:`INSTRUMENTED` experiment with telemetry attached."""
    try:
        app, default_params = INSTRUMENTED[name]
    except KeyError:
        raise ValueError(
            f"unknown instrumented experiment {name!r}; "
            f"choose from: {', '.join(sorted(INSTRUMENTED))}"
        ) from None
    if obs is None:
        obs = Observability()
    result = run_workload(
        app,
        n_ranks,
        "bcs",
        params=params if params is not None else dict(default_params),
        bcs_config=BcsConfig(init_cost=0),
        seed=seed,
        obs=obs,
    )
    return InstrumentedRun(result=result, obs=obs)


def explain_run(
    name: str,
    n_ranks: int = 8,
    seed: int = 0,
    top: int = 8,
    perfetto: bool = True,
):
    """Run one experiment with span tracing and extract its blame report.

    Returns ``(run, report)`` where ``report`` is a
    :class:`~repro.obs.critpath.BlameReport` whose category totals sum
    to the run's virtual makespan exactly.
    """
    from ..obs.critpath import critical_path

    obs = Observability(perfetto=perfetto, profile=False, spans=True)
    run = run_instrumented(name, n_ranks=n_ranks, seed=seed, obs=obs)
    report = critical_path(obs.spans, makespan_ns=run.result.runtime_ns, top=top)
    return run, report


#: Blame-share columns recorded per critpath farm point (and mirrored
#: into the trend store via ``Family.trend_columns``).
CRITPATH_COLUMNS = (
    "compute_pct",
    "dem_pct",
    "msm_pct",
    "p2p_pct",
    "coll_pct",
    "wait_pct",
)


def critpath_point(experiment: str, n_ranks: int = 8, seed: int = 0) -> dict:
    """One critical-path farm point: the blame composition of one run.

    Pure function of its parameters (content-addressed by the farm);
    shares are percentages of the run's virtual makespan, grouped so
    gating catches DEM/MSM/transmission composition shifts.
    """
    _run, report = explain_run(
        experiment, n_ranks=n_ranks, seed=seed, perfetto=False
    )
    makespan = report.makespan_ns or 1

    def pct(*cats: str) -> float:
        return round(
            100.0 * sum(report.categories_ns.get(c, 0) for c in cats) / makespan, 3
        )

    return {
        "experiment": experiment,
        "ranks": n_ranks,
        "makespan_ns": report.makespan_ns,
        "compute_pct": pct("compute"),
        "dem_pct": pct("post_wait", "DEM"),
        "msm_pct": pct("MSM"),
        "p2p_pct": pct("P2P"),
        "coll_pct": pct("BBM", "RM"),
        "wait_pct": pct("launch_wait", "restart_wait", "wait_other"),
        "hops": report.n_hops,
    }
