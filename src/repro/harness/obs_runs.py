"""Instrumented experiment runs for ``repro trace`` / ``repro metrics``.

Each entry in :data:`INSTRUMENTED` is one canonical workload that can be
run with full observability attached: slice telemetry into the metrics
registry, a Perfetto trace, and the per-rank MPI profile.  These are the
paper's synthetic/application workloads at smoke-test sizes — big enough
to exercise every microphase, small enough to trace interactively.

Usage::

    run = run_instrumented("fig8", n_ranks=8)
    run.obs.perfetto.save("trace.json")
    print(run.obs.registry.render())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..apps import (
    barrier_benchmark,
    nearest_neighbor_benchmark,
    sage,
    sweep3d_blocking,
)
from ..bcs import BcsConfig
from ..obs import Observability
from ..units import kib, ms
from .runner import RunResult, run_workload

#: name -> (app, default params).  Synthetic runs skip the 1.2 s init
#: phase so the trace starts at the first interesting slice.
INSTRUMENTED: Dict[str, Tuple[object, dict]] = {
    "fig8": (barrier_benchmark, dict(granularity=ms(2), iterations=5)),
    "fig8-p2p": (
        nearest_neighbor_benchmark,
        dict(granularity=ms(2), iterations=5, message_bytes=kib(64)),
    ),
    "sage": (sage, dict(steps=3, step_compute=ms(5))),
    "sweep3d": (sweep3d_blocking, dict(octants=2, kblocks=2)),
}


@dataclass
class InstrumentedRun:
    """One instrumented run: the workload result plus its telemetry."""

    result: RunResult
    obs: Observability


def run_instrumented(
    name: str,
    n_ranks: int = 8,
    seed: int = 0,
    params: Optional[dict] = None,
    obs: Optional[Observability] = None,
) -> InstrumentedRun:
    """Run one :data:`INSTRUMENTED` experiment with telemetry attached."""
    try:
        app, default_params = INSTRUMENTED[name]
    except KeyError:
        raise ValueError(
            f"unknown instrumented experiment {name!r}; "
            f"choose from: {', '.join(sorted(INSTRUMENTED))}"
        ) from None
    if obs is None:
        obs = Observability()
    result = run_workload(
        app,
        n_ranks,
        "bcs",
        params=params if params is not None else dict(default_params),
        bcs_config=BcsConfig(init_cost=0),
        seed=seed,
        obs=obs,
    )
    return InstrumentedRun(result=result, obs=obs)
