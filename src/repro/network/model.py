"""Parametrized interconnect models.

One :class:`NetworkModel` instance per network family the paper discusses
(Table 1): Gigabit Ethernet, Myrinet, Infiniband, QsNet, BlueGene/L.  The
models expose exactly the quantities the BCS core primitives need:

- point-to-point link bandwidth and latency (per hop),
- hardware-multicast per-destination bandwidth (``Xfer-And-Signal`` row of
  Table 1: aggregate multicast bandwidth grows as ``bw_mcast * n``),
- ``Compare-And-Write`` latency as a function of node count (flat where the
  hardware has native network conditionals, ``c * log2(n)`` where a software
  emulation tree is required).

All constants are calibration inputs (see DESIGN.md §7), taken from the
paper's Table 1 and the Quadrics literature it cites.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..units import KiB, MiB, us

#: 1 MB/s in bytes/second (networking MB = 1e6 bytes, as in the paper's table).
MB = 1_000_000


@dataclass(frozen=True)
class NetworkModel:
    """Timing parameters of one interconnect family."""

    name: str
    #: Point-to-point link bandwidth, bytes/s (what a single DMA stream gets).
    link_bandwidth: float
    #: Base wire/NIC latency for a minimal packet, ns.
    base_latency: int
    #: Additional latency per switch hop, ns.
    per_hop_latency: int
    #: Per-destination bandwidth of Xfer-And-Signal multicast, bytes/s.
    #: Aggregate delivered bandwidth is ``mcast_bandwidth * n`` (Table 1).
    mcast_bandwidth: float
    #: True when the network has a native ordered hardware multicast.
    hw_multicast: bool
    #: True when the network has native network conditionals.
    hw_conditional: bool
    #: Compare-And-Write latency: flat component, ns.
    cw_base_latency: int
    #: Compare-And-Write latency: per-log2(n) component, ns (0 if flat).
    cw_log_latency: int
    #: Per-packet/DMA startup overhead charged once per transfer, ns.
    dma_startup: int = us(1)
    #: Protocol header bytes added to every transfer.
    header_bytes: int = 64
    #: Switch radix for the fat-tree topology (QsNet Elite is 4-ary).
    radix: int = 4
    #: Topology family the fabric routes over (``repro.network.topology``
    #: registry name): ``"fattree"`` or ``"torus3d"``.
    topology: str = "fattree"

    def latency(self, hops: int) -> int:
        """One-way latency (ns) across ``hops`` switch stages."""
        return self.base_latency + self.per_hop_latency * max(hops, 0)

    def cw_latency(self, n_nodes: int) -> int:
        """Compare-And-Write completion latency (ns) over ``n_nodes``.

        Matches the Table 1 shapes: ``46 log n`` µs for GigE,
        ``20 log n`` µs for Myrinet/Infiniband, < 10 µs flat for QsNet,
        < 2 µs for BlueGene/L.
        """
        if n_nodes <= 1:
            return self.cw_base_latency
        return self.cw_base_latency + int(
            self.cw_log_latency * math.log2(n_nodes)
        )

    def multicast_latency(self, n_nodes: int) -> int:
        """Latency (ns) for a multicast to reach all of ``n_nodes``.

        Hardware multicast pays tree depth in per-hop latencies; emulated
        multicast pays a software store-and-forward stage per tree level.
        This is the single tree-shaped cost the aggregated strobe model
        charges per microphase, whatever the destination count.
        """
        if n_nodes <= 1:
            return self.base_latency
        depth = max(1, math.ceil(math.log(n_nodes, self.radix)))
        if self.hw_multicast:
            return self.base_latency + 2 * depth * self.per_hop_latency
        # Software binomial tree: one full message latency per level.
        levels = math.ceil(math.log2(n_nodes))
        return levels * (self.base_latency + 2 * self.per_hop_latency)

    #: Backward-compatible alias (pre-rename spelling).
    mcast_latency = multicast_latency


def qsnet() -> NetworkModel:
    """Quadrics QsNet / Elan3 (the paper's testbed network).

    Elan3 over 66 MHz/64-bit PCI: ~300 MB/s sustained MPI bandwidth,
    ~5 µs MPI latency, hardware multicast > 150 MB/s per node, network
    conditionals < 10 µs.
    """
    return NetworkModel(
        name="qsnet",
        link_bandwidth=305 * MB,
        base_latency=us(2.2),
        per_hop_latency=us(0.35),
        mcast_bandwidth=160 * MB,
        hw_multicast=True,
        hw_conditional=True,
        cw_base_latency=us(4.0),
        cw_log_latency=us(0.7),
        dma_startup=us(1.0),
        header_bytes=64,
        radix=4,
    )


def gigabit_ethernet() -> NetworkModel:
    """Gigabit Ethernet (EMP-style OS-bypass): Table 1 row 1."""
    return NetworkModel(
        name="gige",
        link_bandwidth=110 * MB,
        base_latency=us(20),
        per_hop_latency=us(5),
        mcast_bandwidth=25 * MB,
        hw_multicast=False,
        hw_conditional=False,
        cw_base_latency=0,
        cw_log_latency=us(46),
        dma_startup=us(6),
        header_bytes=96,
        radix=8,
    )


def myrinet() -> NetworkModel:
    """Myrinet/GM with NIC-assisted multicast: Table 1 row 2."""
    return NetworkModel(
        name="myrinet",
        link_bandwidth=245 * MB,
        base_latency=us(7),
        per_hop_latency=us(0.5),
        mcast_bandwidth=15 * MB,
        hw_multicast=False,
        hw_conditional=False,
        cw_base_latency=0,
        cw_log_latency=us(20),
        dma_startup=us(2),
        header_bytes=64,
        radix=8,
    )


def infiniband() -> NetworkModel:
    """Infiniband 4x (2003-era): Table 1 row 3."""
    return NetworkModel(
        name="infiniband",
        link_bandwidth=820 * MB,
        base_latency=us(6),
        per_hop_latency=us(0.3),
        mcast_bandwidth=120 * MB,
        hw_multicast=True,
        hw_conditional=False,
        cw_base_latency=0,
        cw_log_latency=us(20),
        dma_startup=us(1.5),
        header_bytes=64,
        radix=8,
    )


def bluegene_l() -> NetworkModel:
    """BlueGene/L tree network: Table 1 row 4."""
    return NetworkModel(
        name="bluegene_l",
        link_bandwidth=350 * MB,
        base_latency=us(1.3),
        per_hop_latency=us(0.1),
        mcast_bandwidth=700 * MB,
        hw_multicast=True,
        hw_conditional=True,
        cw_base_latency=us(1.2),
        cw_log_latency=us(0.05),
        dma_startup=us(0.5),
        header_bytes=32,
        radix=4,
    )


def bluegene_l_torus() -> NetworkModel:
    """BlueGene/L with its 3D-torus data network routed explicitly.

    The plain ``bluegene_l`` model treats the machine as its tree
    network; this variant moves point-to-point traffic over the 3D torus
    (175 MB/s per link direction, wraparound Manhattan routing) while
    collectives — hardware multicast and Compare-And-Write — keep the
    dedicated tree/interrupt networks' characteristics, which is how the
    real machine splits its traffic.
    """
    return NetworkModel(
        name="bluegene_l_torus",
        link_bandwidth=175 * MB,
        base_latency=us(1.5),
        per_hop_latency=us(0.1),
        mcast_bandwidth=350 * MB,
        hw_multicast=True,
        hw_conditional=True,
        cw_base_latency=us(1.2),
        cw_log_latency=us(0.05),
        dma_startup=us(0.5),
        header_bytes=32,
        radix=4,
        topology="torus3d",
    )


#: Registry of all Table 1 network models by name.
MODELS = {
    "qsnet": qsnet,
    "gige": gigabit_ethernet,
    "myrinet": myrinet,
    "infiniband": infiniband,
    "bluegene_l": bluegene_l,
    "bluegene_l_torus": bluegene_l_torus,
}


def by_name(name: str) -> NetworkModel:
    """Look up a network model by its registry name."""
    try:
        return MODELS[name]()
    except KeyError:
        raise KeyError(
            f"unknown network model {name!r}; choose from {sorted(MODELS)}"
        ) from None
