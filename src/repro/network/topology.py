"""Interconnect topologies: QsNet-style fat tree and BlueGene/L 3D torus.

QsNet builds quaternary fat trees: each Elite switch has 8 links, 4 down
and 4 up.  Nodes are leaves; the distance between two nodes is twice the
number of levels to their lowest common ancestor.  BlueGene/L moves bulk
data over a 3D torus where the distance is the wraparound Manhattan
metric.  We only need hop counts (for latency) and stage counts (for
multicast depth), so both topologies are computed arithmetically rather
than materialized as graphs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class FatTree:
    """A ``radix``-ary fat tree over ``n_nodes`` leaves."""

    n_nodes: int
    radix: int = 4

    def __post_init__(self):
        if self.n_nodes < 1:
            raise ValueError("need at least one node")
        if self.radix < 2:
            raise ValueError("radix must be >= 2")
        # Route table built lazily: hop counts are pure functions of the
        # (unordered) node pair, and the fabric asks for the same pairs on
        # every transfer.  The cache is undeclared state on a frozen
        # dataclass, so it stays out of __eq__/__repr__.
        object.__setattr__(self, "_hop_cache", {})

    @property
    def levels(self) -> int:
        """Number of switch levels needed to connect all leaves."""
        if self.n_nodes == 1:
            return 1
        return max(1, math.ceil(math.log(self.n_nodes, self.radix)))

    def _ancestor_level(self, a: int, b: int) -> int:
        """Level (1-based) of the lowest common ancestor switch of a, b."""
        self._check(a)
        self._check(b)
        level = 1
        span = self.radix
        while a // span != b // span:
            level += 1
            span *= self.radix
        return level

    def hops(self, a: int, b: int) -> int:
        """Switch hops on the route from node ``a`` to node ``b``.

        Up to the lowest common ancestor and back down: ``2 * level``.
        Same node: 0 (loopback never enters the network).
        """
        if a == b:
            self._check(a)
            return 0
        key = (a, b) if a < b else (b, a)
        cached = self._hop_cache.get(key)
        if cached is None:
            cached = self._hop_cache[key] = 2 * self._ancestor_level(a, b)
        return cached

    def multicast_hops(self, n_dests: int) -> int:
        """Stages traversed by a hardware multicast covering ``n_dests``."""
        if n_dests <= 1:
            return 2
        depth = max(1, math.ceil(math.log(n_dests, self.radix)))
        return 2 * depth

    def max_hops(self) -> int:
        """Network diameter in hops."""
        return 2 * self.levels

    def _check(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise IndexError(f"node {node} outside [0, {self.n_nodes})")

    def __repr__(self) -> str:
        return f"<FatTree n={self.n_nodes} radix={self.radix} levels={self.levels}>"


def _near_cubic_dims(n: int) -> tuple:
    """Smallest near-cubic ``(dx, dy, dz)`` with ``dx*dy*dz >= n``.

    Mirrors how BlueGene/L partitions are carved: as close to a cube as
    the node count allows (1024 nodes plus a management node fits in
    11 x 10 x 10).  Axes are sorted descending so the mapping is stable.
    """
    if n <= 1:
        return (1, 1, 1)
    dx = max(1, math.ceil(n ** (1.0 / 3.0)))
    # ceil can land one too high on exact cubes (floating error).
    while (dx - 1) ** 3 >= n:
        dx -= 1
    dy = max(1, math.ceil(math.sqrt(n / dx)))
    while dy > 1 and dx * (dy - 1) * (dy - 1) >= n:
        dy -= 1
    dz = max(1, math.ceil(n / (dx * dy)))
    return tuple(sorted((dx, dy, dz), reverse=True))


@dataclass(frozen=True)
class Torus3D:
    """A 3D torus (BlueGene/L style) over ``n_nodes`` row-major slots.

    ``dims`` defaults to the smallest near-cubic box covering all nodes;
    slots past ``n_nodes`` are simply unpopulated.  Distance is the
    wraparound Manhattan metric.  Routing state is precomputed once —
    node coordinates plus a per-axis circular-distance table — so
    ``hops`` is three table lookups with no per-pair cache to grow: the
    whole route table for a 1024-node machine is ~3k small integers.
    """

    n_nodes: int
    dims: tuple = ()

    def __post_init__(self):
        if self.n_nodes < 1:
            raise ValueError("need at least one node")
        dims = self.dims or _near_cubic_dims(self.n_nodes)
        dims = tuple(int(d) for d in dims)
        if len(dims) != 3 or any(d < 1 for d in dims):
            raise ValueError(f"dims must be three positive extents: {dims!r}")
        if dims[0] * dims[1] * dims[2] < self.n_nodes:
            raise ValueError(
                f"dims {dims} hold {dims[0] * dims[1] * dims[2]} slots, "
                f"need {self.n_nodes}"
            )
        object.__setattr__(self, "dims", dims)
        dx, dy, dz = dims
        # Coordinates as three flat int32 arrays (SoA) instead of one
        # tuple per node: a 64k-node torus costs ~0.75 MiB of untracked
        # array storage rather than 64k GC-traced tuples.
        nodes = np.arange(self.n_nodes, dtype=np.int64)
        x, rem = np.divmod(nodes, dy * dz)
        y, z = np.divmod(rem, dz)
        # Undeclared caches on the frozen dataclass (as in FatTree):
        # stay out of __eq__/__repr__.
        object.__setattr__(self, "_cx", x.astype(np.int32))
        object.__setattr__(self, "_cy", y.astype(np.int32))
        object.__setattr__(self, "_cz", z.astype(np.int32))
        object.__setattr__(
            self,
            "_axis_dist",
            tuple(
                tuple(min(d, dim - d) for d in range(dim)) for dim in dims
            ),
        )

    def coords(self, node: int) -> tuple:
        """The ``(x, y, z)`` torus coordinate of ``node``."""
        self._check(node)
        return (int(self._cx[node]), int(self._cy[node]), int(self._cz[node]))

    def hops(self, a: int, b: int) -> int:
        """Wraparound Manhattan distance between nodes ``a`` and ``b``."""
        self._check(a)
        self._check(b)
        if a == b:
            return 0
        dist = self._axis_dist
        return (
            dist[0][abs(int(self._cx[a]) - int(self._cx[b]))]
            + dist[1][abs(int(self._cy[a]) - int(self._cy[b]))]
            + dist[2][abs(int(self._cz[a]) - int(self._cz[b]))]
        )

    def multicast_hops(self, n_dests: int) -> int:
        """Stages to reach ``n_dests`` nodes: radius of the covering box.

        BlueGene/L control multicasts ride the dedicated tree network,
        but a torus-local spanning broadcast is bounded by the radius of
        the smallest sub-torus holding the destinations.
        """
        if n_dests <= 1:
            return 2
        sub = _near_cubic_dims(min(n_dests, self.n_nodes))
        return max(2, sum(d // 2 for d in sub))

    def max_hops(self) -> int:
        """Network diameter: sum of the per-axis wraparound radii."""
        return sum(d // 2 for d in self.dims)

    def _check(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise IndexError(f"node {node} outside [0, {self.n_nodes})")

    def __repr__(self) -> str:
        dx, dy, dz = self.dims
        return f"<Torus3D n={self.n_nodes} dims={dx}x{dy}x{dz}>"


#: Topology constructors by registry name (NetworkModel.topology).
TOPOLOGIES = {
    "fattree": lambda n_nodes, radix: FatTree(n_nodes, radix=radix),
    "torus3d": lambda n_nodes, radix: Torus3D(n_nodes),
}


def build_topology(kind: str, n_nodes: int, radix: int = 4):
    """Construct the topology named ``kind`` over ``n_nodes`` nodes."""
    try:
        factory = TOPOLOGIES[kind]
    except KeyError:
        raise KeyError(
            f"unknown topology {kind!r}; choose from {sorted(TOPOLOGIES)}"
        ) from None
    return factory(n_nodes, radix)
