"""Fat-tree topology (QsNet Elite style).

QsNet builds quaternary fat trees: each Elite switch has 8 links, 4 down
and 4 up.  Nodes are leaves; the distance between two nodes is twice the
number of levels to their lowest common ancestor.  We only need hop counts
(for latency) and stage counts (for multicast depth), so the topology is
computed arithmetically rather than materialized as a graph.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class FatTree:
    """A ``radix``-ary fat tree over ``n_nodes`` leaves."""

    n_nodes: int
    radix: int = 4

    def __post_init__(self):
        if self.n_nodes < 1:
            raise ValueError("need at least one node")
        if self.radix < 2:
            raise ValueError("radix must be >= 2")
        # Route table built lazily: hop counts are pure functions of the
        # (unordered) node pair, and the fabric asks for the same pairs on
        # every transfer.  The cache is undeclared state on a frozen
        # dataclass, so it stays out of __eq__/__repr__.
        object.__setattr__(self, "_hop_cache", {})

    @property
    def levels(self) -> int:
        """Number of switch levels needed to connect all leaves."""
        if self.n_nodes == 1:
            return 1
        return max(1, math.ceil(math.log(self.n_nodes, self.radix)))

    def _ancestor_level(self, a: int, b: int) -> int:
        """Level (1-based) of the lowest common ancestor switch of a, b."""
        self._check(a)
        self._check(b)
        level = 1
        span = self.radix
        while a // span != b // span:
            level += 1
            span *= self.radix
        return level

    def hops(self, a: int, b: int) -> int:
        """Switch hops on the route from node ``a`` to node ``b``.

        Up to the lowest common ancestor and back down: ``2 * level``.
        Same node: 0 (loopback never enters the network).
        """
        if a == b:
            self._check(a)
            return 0
        key = (a, b) if a < b else (b, a)
        cached = self._hop_cache.get(key)
        if cached is None:
            cached = self._hop_cache[key] = 2 * self._ancestor_level(a, b)
        return cached

    def multicast_hops(self, n_dests: int) -> int:
        """Stages traversed by a hardware multicast covering ``n_dests``."""
        if n_dests <= 1:
            return 2
        depth = max(1, math.ceil(math.log(n_dests, self.radix)))
        return 2 * depth

    def max_hops(self) -> int:
        """Network diameter in hops."""
        return 2 * self.levels

    def _check(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise IndexError(f"node {node} outside [0, {self.n_nodes})")

    def __repr__(self) -> str:
        return f"<FatTree n={self.n_nodes} radix={self.radix} levels={self.levels}>"
