"""The interconnect fabric: timed delivery of unicasts and multicasts.

The fabric knows nothing about MPI or BCS; it moves opaque payloads of a
given size between NICs with first-order contention: a transfer occupies
the sender's ``tx`` half and each receiver's ``rx`` half for the
serialization time, then pays wire latency.  Link halves are acquired in a
fixed global order (tx before rx, rx in ascending node id), which makes
the acquisition graph acyclic and the fabric deadlock-free by
construction.

Why endpoint-only contention is the right fidelity for QsNet: the
quaternary fat tree is a *full-bisection* network — every subtree has as
many up-links as leaves, so permutation traffic never contends inside
the switch stages; congestion materializes at the endpoints (many-to-one
fan-in saturating an rx link), which this model captures exactly.
Internal hot-spotting would only appear under adversarial adaptive-
routing collisions that QsNet's dispersive routing is built to avoid.
"""

from __future__ import annotations

from typing import Generator, Iterable, Sequence

from ..sim import Engine, Trace
from ..units import bw_time
from .model import NetworkModel
from .nic import Nic
from .topology import build_topology


class Fabric:
    """Timed transport between a fixed set of NICs."""

    def __init__(
        self,
        env: Engine,
        model: NetworkModel,
        nics: Sequence[Nic],
        trace: Trace | None = None,
    ):
        self.env = env
        self.model = model
        # Kept as whatever sequence the cluster hands over: a plain list
        # (eager assembly) or a lazy NIC view over the node directory —
        # only len() and indexing are used, so flyweight NICs stay
        # unmaterialized until a transfer actually touches them.
        self.nics = nics
        self.tree = build_topology(
            model.topology, len(self.nics), radix=model.radix
        )
        self.trace = trace
        #: Total payload bytes moved (excluding headers), for reporting.
        self.bytes_moved = 0
        self.transfers = 0

    @property
    def n_nodes(self) -> int:
        """Number of NICs attached to the fabric."""
        return len(self.nics)

    # -- point-to-point ---------------------------------------------------------

    def unicast(self, src: int, dst: int, size: int, label: str = "") -> Generator:
        """Move ``size`` payload bytes from node ``src`` to node ``dst``.

        Completes when the last byte has arrived at ``dst``.  Loopback
        (src == dst) costs only the DMA startup: Elan local DMA does not
        enter the network.
        """
        if size < 0:
            raise ValueError("negative transfer size")
        model = self.model
        self.transfers += 1
        self.bytes_moved += size

        if src == dst:
            yield self.env.timeout(model.dma_startup + bw_time(size, model.link_bandwidth))
            return

        src_nic = self.nics[src]
        dst_nic = self.nics[dst]
        wire = bw_time(size + model.header_bytes, model.link_bandwidth)

        # Fast path: when both link halves are free with no queued
        # claimants, a request() pair would be granted right here at the
        # current instant — claim synchronously and skip two event hops.
        # Contended transfers fall back to the ordered acquisition that
        # keeps the fabric deadlock-free.
        if src_nic.tx.try_acquire():
            if not dst_nic.rx.try_acquire():
                src_nic.tx.release()
                yield src_nic.tx.request()
                yield dst_nic.rx.request()
        else:
            yield src_nic.tx.request()
            yield dst_nic.rx.request()
        start = self.env.now
        try:
            yield self.env.timeout(model.dma_startup + wire)
        finally:
            src_nic.tx.release()
            dst_nic.rx.release()
        yield self.env.timeout(model.latency(self.tree.hops(src, dst)))
        if self.trace is not None:
            self.trace.emit(
                self.env.now,
                "fabric.unicast",
                src=src,
                dst=dst,
                size=size,
                start=start,
                label=label,
            )

    # -- multicast -----------------------------------------------------------------

    def control_multicast(
        self,
        src: int,
        dests: Iterable[int],
        size: int,
        n_dests: int | None = None,
    ) -> Generator:
        """Tiny control multicast (strobes): pays latency, skips link queues.

        Microstrobes are minimal packets on QsNet's prioritized virtual
        channel; modelling per-receiver link occupancy for them would add
        thousands of simulator events per slice for sub-microsecond
        serializations, so they are charged latency + startup only.

        Only the *number* of distinct destinations matters for timing.
        Callers that already know it (the Strobe Sender keeps a sorted,
        deduplicated active-node list) pass ``n_dests`` so the five
        microstrobes per slice don't rebuild a set each time.

        This generator is the aggregated strobe model's *oracle* path
        (``BcsConfig.aggregated_strobe=False``); the aggregated path
        charges the identical duration via :meth:`strobe_latency` with a
        reusable timeout, skipping the generator machinery per strobe.
        """
        n = len(set(dests)) if n_dests is None else n_dests
        if n == 0:
            return
        yield self.env.timeout(self.strobe_latency(size, n))

    def strobe_latency(self, size: int, n_dests: int) -> int:
        """Duration (ns) of one control multicast to ``n_dests`` nodes.

        Pure arithmetic — DMA startup + serialization at the multicast
        bandwidth + the tree-shaped :meth:`NetworkModel.multicast_latency`
        — so the Strobe Sender can cache it per active-set size and
        charge a single aggregated timeout per microphase.
        """
        return (
            self.model.dma_startup
            + bw_time(size + self.model.header_bytes, self.model.mcast_bandwidth)
            + self.model.multicast_latency(n_dests)
        )

    def multicast(
        self, src: int, dests: Iterable[int], size: int, label: str = ""
    ) -> Generator:
        """Deliver ``size`` bytes from ``src`` to every node in ``dests``.

        With hardware multicast the switch tree replicates the packet, so
        the source pays one serialization and every destination receives
        at :attr:`NetworkModel.mcast_bandwidth`.  Without it, a software
        binomial tree is emulated via the same per-destination bandwidth
        plus log2(n) store-and-forward latencies (captured in
        :meth:`NetworkModel.multicast_latency`).

        Completes when the last destination has received the payload.
        """
        dest_list = sorted(set(dests))
        if not dest_list:
            return
        model = self.model
        self.transfers += 1
        self.bytes_moved += size * len(dest_list)

        src_nic = self.nics[src]
        remote = [d for d in dest_list if d != src]
        wire = bw_time(size + model.header_bytes, model.mcast_bandwidth)

        # Batched acquisition fast path: when the tx half and *every*
        # receiver's rx half are free with no queued claimants, the
        # sequential request chain below would grant them all at this
        # same instant — claim the whole set synchronously and skip
        # len(remote) + 1 event hops.  Any busy link falls back to the
        # ordered sequential acquisition (tx first, rx in ascending node
        # id), preserving the deadlock-freedom discipline.
        nics = self.nics
        held_rx = []
        if src_nic.tx.try_acquire():
            for d in remote:
                if nics[d].rx.try_acquire():
                    held_rx.append(d)
                else:
                    src_nic.tx.release()
                    for h in held_rx:
                        nics[h].rx.release()
                    held_rx = []
                    break
            else:
                try:
                    yield self.env.timeout(model.dma_startup + wire)
                finally:
                    src_nic.tx.release()
                    for d in held_rx:
                        nics[d].rx.release()
                yield self.env.timeout(model.multicast_latency(len(dest_list)))
                if self.trace is not None:
                    self.trace.emit(
                        self.env.now,
                        "fabric.multicast",
                        src=src,
                        dests=tuple(dest_list),
                        size=size,
                        label=label,
                    )
                return

        yield src_nic.tx.request()
        held_rx = []
        try:
            for d in remote:
                yield nics[d].rx.request()
                held_rx.append(d)
            yield self.env.timeout(model.dma_startup + wire)
        finally:
            src_nic.tx.release()
            for d in held_rx:
                nics[d].rx.release()
        yield self.env.timeout(model.multicast_latency(len(dest_list)))
        if self.trace is not None:
            self.trace.emit(
                self.env.now,
                "fabric.multicast",
                src=src,
                dests=tuple(dest_list),
                size=size,
                label=label,
            )

    # -- network conditional ----------------------------------------------------------

    def conditional(self, src: int, n_nodes: int | None = None) -> Generator:
        """Timing of one network-conditional round issued from ``src``.

        The caller evaluates the predicate against global state once this
        completes; the fabric only charges the Table 1 latency.  The
        conditional uses dedicated switch logic (QsNet) or a tiny
        software reduction (emulated networks); either way it does not
        contend with bulk data on the links, so no link resources are
        held.
        """
        n = self.n_nodes if n_nodes is None else n_nodes
        yield self.env.timeout(self.model.cw_latency(n))

    def __repr__(self) -> str:
        return f"<Fabric {self.model.name} n={self.n_nodes} transfers={self.transfers}>"
