"""Network interface card model.

Each node owns one NIC.  The NIC models what the BCS runtime relies on in
the Quadrics Elan3:

- full-duplex link halves (``tx``/``rx``) with bandwidth serialization,
- *NIC events*: counters that can be signaled locally or remotely and
  waited on (the Elan event mechanism behind ``Test-Event``),
- a thread processor that runs NIC threads (BS/BR/DH/CH/RH); their
  per-operation compute costs serialize on it,
- named descriptor FIFOs in NIC memory, where host processes post
  communication descriptors without a system call (paper §4.5).
"""

from __future__ import annotations

from typing import Dict, Generator

from ..sim import Engine, Event, Resource, Store


class NicEvent:
    """A counting event word in NIC memory (Elan event).

    ``signal()`` increments the counter and wakes one waiter per count;
    ``wait()`` (generator) blocks until a count is available and consumes
    it; ``poll()`` consumes one count if available without blocking.
    """

    __slots__ = ("env", "name", "_count", "_waiters")

    def __init__(self, env: Engine, name: str = "nic-event"):
        self.env = env
        self.name = name
        self._count = 0
        self._waiters: list[Event] = []

    @property
    def count(self) -> int:
        """Number of pending (unconsumed) signals."""
        return self._count

    def signal(self, n: int = 1) -> None:
        """Add ``n`` signals, waking up to ``n`` waiters."""
        if n < 1:
            raise ValueError("signal count must be >= 1")
        self._count += n
        while self._count > 0 and self._waiters:
            waiter = self._waiters.pop(0)
            if waiter.triggered:
                continue
            self._count -= 1
            waiter.succeed(None)

    def poll(self) -> bool:
        """Consume one signal if present; never blocks."""
        if self._count > 0 and not self._waiters:
            self._count -= 1
            return True
        return False

    def peek(self) -> bool:
        """True if at least one signal is pending (non-consuming)."""
        return self._count > 0

    def wait(self) -> Generator:
        """Block until signaled, consuming one signal."""
        if self._count > 0 and not self._waiters:
            self._count -= 1
            if False:  # pragma: no cover - keep generator shape
                yield
            return
        ev = Event(self.env, name=f"wait:{self.name}")
        self._waiters.append(ev)
        yield ev

    def __repr__(self) -> str:
        return f"<NicEvent {self.name!r} count={self._count} waiters={len(self._waiters)}>"


class Nic:
    """One node's network interface."""

    def __init__(self, env: Engine, node_id: int, thread_op_cost: int = 0):
        self.env = env
        self.node_id = node_id
        #: Transmit half of the link (bandwidth serialization).
        self.tx = Resource(env, capacity=1, name=f"nic{node_id}.tx")
        #: Receive half of the link.
        self.rx = Resource(env, capacity=1, name=f"nic{node_id}.rx")
        #: The Elan thread processor: NIC thread compute serializes here.
        self.thread_processor = Resource(
            env, capacity=1, name=f"nic{node_id}.tproc"
        )
        #: Default per-operation cost of NIC thread work, ns.
        self.thread_op_cost = thread_op_cost
        #: Telemetry hub (set by ``BcsRuntime.attach_observability``);
        #: when present, :meth:`compute` reports thread occupancy spans.
        self.obs = None
        self._events: Dict[str, NicEvent] = {}
        self._fifos: Dict[str, Store] = {}

    def event(self, name: str) -> NicEvent:
        """Get (creating on first use) the NIC event word ``name``."""
        ev = self._events.get(name)
        if ev is None:
            ev = NicEvent(self.env, name=f"nic{self.node_id}:{name}")
            self._events[name] = ev
        return ev

    def fifo(self, name: str) -> Store:
        """Get (creating on first use) the descriptor FIFO ``name``.

        These model the shared-memory FIFO queues the paper uses to post
        descriptors without a system call.
        """
        q = self._fifos.get(name)
        if q is None:
            q = Store(self.env, name=f"nic{self.node_id}:{name}")
            self._fifos[name] = q
        return q

    def compute(self, duration: int = -1) -> Generator:
        """Run ``duration`` ns of NIC thread work on the thread processor.

        Defaults to :attr:`thread_op_cost`.  Zero-duration work is free
        (no serialization round-trip), which keeps disabled cost models
        cheap.
        """
        if duration < 0:
            duration = self.thread_op_cost
        if duration == 0:
            return
        if self.obs is not None:
            t0 = self.env.now
            yield from self.thread_processor.held(duration)
            self.obs.nic_busy(self.node_id, t0, self.env.now, duration)
            return
        yield from self.thread_processor.held(duration)

    def compute_batch(self, duration: int, n: int) -> Generator:
        """Run ``n`` back-to-back thread operations of ``duration`` ns each.

        Virtual time is identical to ``n`` sequential :meth:`compute`
        calls — the thread processor is held for exactly
        ``n * duration`` ns — but the simulator pays for one hold instead
        of ``n`` event/heap round-trips.  This is the batched slice
        engine's NIC leg (``BcsConfig.batched_matching``).

        Once granted, a hold occupies the processor contiguously, so the
        per-operation telemetry windows are synthesized by slicing the
        actual busy interval — byte-identical to the sequential path
        whenever the processor was uncontended (the only case on the
        DEM/MSM paths, where each node's NIC threads run one at a time).
        """
        if duration < 0:
            duration = self.thread_op_cost
        total = duration * n
        if total == 0:
            return
        tproc = self.thread_processor
        if tproc.try_acquire():
            try:
                yield self.env.timeout(total, name="nic.compute_batch")
            finally:
                tproc.release()
        else:
            yield from tproc.held(total)
        if self.obs is not None:
            t1 = self.env.now
            t0 = t1 - total
            nic_busy = self.obs.nic_busy
            for k in range(n):
                nic_busy(
                    self.node_id, t0 + k * duration, t0 + (k + 1) * duration, duration
                )

    def __repr__(self) -> str:
        return f"<Nic node={self.node_id}>"
