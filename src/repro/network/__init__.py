"""Cluster and interconnect substrate (the simulated QsNet testbed)."""

from .cluster import Cluster, ClusterSpec, Node
from .fabric import Fabric
from .model import (
    MODELS,
    NetworkModel,
    bluegene_l,
    bluegene_l_torus,
    by_name,
    gigabit_ethernet,
    infiniband,
    myrinet,
    qsnet,
)
from .nic import Nic, NicEvent
from .topology import FatTree, Torus3D, build_topology

__all__ = [
    "Cluster",
    "ClusterSpec",
    "Fabric",
    "FatTree",
    "MODELS",
    "NetworkModel",
    "Nic",
    "NicEvent",
    "Node",
    "Torus3D",
    "bluegene_l",
    "bluegene_l_torus",
    "build_topology",
    "by_name",
    "gigabit_ethernet",
    "infiniband",
    "myrinet",
    "qsnet",
]
