"""Cluster and interconnect substrate (the simulated QsNet testbed)."""

from .cluster import Cluster, ClusterSpec, Node
from .fabric import Fabric
from .model import (
    MODELS,
    NetworkModel,
    bluegene_l,
    by_name,
    gigabit_ethernet,
    infiniband,
    myrinet,
    qsnet,
)
from .nic import Nic, NicEvent
from .topology import FatTree

__all__ = [
    "Cluster",
    "ClusterSpec",
    "Fabric",
    "FatTree",
    "MODELS",
    "NetworkModel",
    "Nic",
    "NicEvent",
    "Node",
    "bluegene_l",
    "by_name",
    "gigabit_ethernet",
    "infiniband",
    "myrinet",
    "qsnet",
]
