"""Cluster assembly: nodes, NICs, fabric.

A :class:`Cluster` is the simulated analogue of the paper's "crescendo"
testbed: ``n_nodes`` compute nodes (dual-CPU by default) plus one
management node, all on one interconnect.  The management node is always
the *last* index (``cluster.management_node``), mirroring the paper's
separate Dell 2550; compute ranks use indices ``0..n_nodes-1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional

from ..sim import Engine, NullTrace, Resource, RngRegistry, Trace
from .fabric import Fabric
from .model import NetworkModel, qsnet
from .nic import Nic


@dataclass(frozen=True)
class ClusterSpec:
    """Static description of a cluster."""

    n_nodes: int = 32
    cpus_per_node: int = 2
    model: NetworkModel = field(default_factory=qsnet)
    #: Per-operation NIC thread cost, ns (0 disables the cost model).
    nic_thread_op_cost: int = 200
    seed: int = 0

    def __post_init__(self):
        if self.n_nodes < 1:
            raise ValueError("need at least one compute node")
        if self.cpus_per_node < 1:
            raise ValueError("need at least one CPU per node")


class Node:
    """One compute (or management) node."""

    def __init__(self, env: Engine, node_id: int, cpus: int, nic: Nic):
        self.env = env
        self.id = node_id
        self.nic = nic
        #: Host CPUs; computation and host-side MPI overhead serialize here.
        self.cpu = Resource(env, capacity=cpus, name=f"node{node_id}.cpu")
        #: Arbitrary per-node key/value state (global memory attaches here).
        self.state: dict = {}
        #: When > 0, long computations release the CPU every this many ns
        #: so competing daemons (noise) can preempt.  Zero keeps compute
        #: monolithic and cheap; the noise injector turns this on.
        self.preempt_quantum = 0

    def host_compute(self, duration: int) -> Generator:
        """Occupy one host CPU for ``duration`` ns (quantized if enabled)."""
        if duration <= 0:
            return
        quantum = self.preempt_quantum
        if quantum <= 0 or duration <= quantum:
            yield from self.cpu.held(duration)
            return
        remaining = duration
        while remaining > 0:
            step = quantum if remaining > quantum else remaining
            yield from self.cpu.held(step)
            remaining -= step

    def __repr__(self) -> str:
        return f"<Node {self.id} cpus={self.cpu.capacity}>"


class Cluster:
    """A simulated cluster: engine + nodes + fabric + RNG + trace."""

    def __init__(self, spec: ClusterSpec | None = None, trace: Optional[Trace] = None):
        self.spec = spec or ClusterSpec()
        self.trace = trace if trace is not None else NullTrace()
        self.env = Engine(trace=self.trace)
        self.rng = RngRegistry(self.spec.seed)

        total = self.spec.n_nodes + 1  # + management node
        self.nodes: List[Node] = []
        nics = []
        for node_id in range(total):
            nic = Nic(
                self.env, node_id, thread_op_cost=self.spec.nic_thread_op_cost
            )
            nics.append(nic)
            self.nodes.append(
                Node(self.env, node_id, self.spec.cpus_per_node, nic)
            )
        self.fabric = Fabric(self.env, self.spec.model, nics, trace=self.trace)

    @property
    def n_compute_nodes(self) -> int:
        """Number of compute nodes (excludes the management node)."""
        return self.spec.n_nodes

    @property
    def management_node(self) -> Node:
        """The management node (runs the MM / Strobe Sender)."""
        return self.nodes[-1]

    @property
    def compute_nodes(self) -> List[Node]:
        """All compute nodes, in id order."""
        return self.nodes[: self.spec.n_nodes]

    def node(self, node_id: int) -> Node:
        """Node by id (compute ids first, management node last)."""
        return self.nodes[node_id]

    def run(self, until=None):
        """Run the underlying engine (convenience passthrough)."""
        return self.env.run(until=until)

    def __repr__(self) -> str:
        return (
            f"<Cluster n={self.spec.n_nodes}+mgmt model={self.spec.model.name} "
            f"t={self.env.now}>"
        )
