"""Cluster assembly: nodes, NICs, fabric.

A :class:`Cluster` is the simulated analogue of the paper's "crescendo"
testbed: ``n_nodes`` compute nodes (dual-CPU by default) plus one
management node, all on one interconnect.  The management node is always
the *last* index (``cluster.management_node``), mirroring the paper's
separate Dell 2550; compute ranks use indices ``0..n_nodes-1``.

With ``ClusterSpec.lazy_nodes`` (the default) the per-node ``Node``/
``Nic`` objects are flyweights materialized on first access: a 64k-node
machine where one small job runs only ever builds the node objects the
job touches.  Construction of a ``Node`` creates no simulation events,
so lazy and eager assembly are observationally identical — the eager
path (``lazy_nodes=False``) is kept as the footprint oracle for the
scaling studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional

from ..sim import Engine, NullTrace, Resource, RngRegistry, Trace
from .fabric import Fabric
from .model import NetworkModel, qsnet
from .nic import Nic


@dataclass(frozen=True)
class ClusterSpec:
    """Static description of a cluster."""

    n_nodes: int = 32
    cpus_per_node: int = 2
    model: NetworkModel = field(default_factory=qsnet)
    #: Per-operation NIC thread cost, ns (0 disables the cost model).
    nic_thread_op_cost: int = 200
    seed: int = 0
    #: Materialize Node/Nic objects on first access instead of eagerly
    #: at construction (pure footprint optimization; see module doc).
    lazy_nodes: bool = True

    def __post_init__(self):
        if self.n_nodes < 1:
            raise ValueError("need at least one compute node")
        if self.cpus_per_node < 1:
            raise ValueError("need at least one CPU per node")


class Node:
    """One compute (or management) node."""

    def __init__(self, env: Engine, node_id: int, cpus: int, nic: Nic):
        self.env = env
        self.id = node_id
        self.nic = nic
        #: Host CPUs; computation and host-side MPI overhead serialize here.
        self.cpu = Resource(env, capacity=cpus, name=f"node{node_id}.cpu")
        #: Arbitrary per-node key/value state (global memory attaches here).
        self.state: dict = {}
        #: When > 0, long computations release the CPU every this many ns
        #: so competing daemons (noise) can preempt.  Zero keeps compute
        #: monolithic and cheap; the noise injector turns this on.
        self.preempt_quantum = 0

    def host_compute(self, duration: int) -> Generator:
        """Occupy one host CPU for ``duration`` ns (quantized if enabled)."""
        if duration <= 0:
            return
        quantum = self.preempt_quantum
        if quantum <= 0 or duration <= quantum:
            yield from self.cpu.held(duration)
            return
        remaining = duration
        while remaining > 0:
            step = quantum if remaining > quantum else remaining
            yield from self.cpu.held(step)
            remaining -= step

    def __repr__(self) -> str:
        return f"<Node {self.id} cpus={self.cpu.capacity}>"


class NodeDirectory:
    """Lazy sequence of a cluster's nodes (flyweight materialization).

    Indexing materializes the node (and its NIC) on first access;
    iteration and slicing materialize everything they touch, so code
    that genuinely walks the whole machine (diagnostics, full-scan
    oracles, fault-tolerance sweeps) still sees every node.
    """

    __slots__ = ("_cluster", "_slots", "_materialized")

    def __init__(self, cluster: "Cluster", total: int):
        self._cluster = cluster
        self._slots: List[Optional[Node]] = [None] * total
        self._materialized = 0

    def __len__(self) -> int:
        return len(self._slots)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self._slots)))]
        if index < 0:
            index += len(self._slots)
        node = self._slots[index]
        if node is None:
            node = self._slots[index] = self._cluster._make_node(index)
            self._materialized += 1
        return node

    def __iter__(self):
        for i in range(len(self._slots)):
            yield self[i]

    @property
    def materialized_count(self) -> int:
        """How many nodes exist as Python objects right now."""
        return self._materialized

    def __repr__(self) -> str:
        return (
            f"<NodeDirectory {self._materialized}/{len(self._slots)} "
            "materialized>"
        )


class _NicView:
    """The fabric's view of the node directory: NICs by node id."""

    __slots__ = ("_nodes",)

    def __init__(self, nodes):
        self._nodes = nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __getitem__(self, index) -> Nic:
        return self._nodes[index].nic

    def __iter__(self):
        for node in self._nodes:
            yield node.nic


class Cluster:
    """A simulated cluster: engine + nodes + fabric + RNG + trace."""

    def __init__(self, spec: ClusterSpec | None = None, trace: Optional[Trace] = None):
        self.spec = spec or ClusterSpec()
        self.trace = trace if trace is not None else NullTrace()
        self.env = Engine(trace=self.trace)
        self.rng = RngRegistry(self.spec.seed)

        total = self.spec.n_nodes + 1  # + management node
        if self.spec.lazy_nodes:
            self.nodes = NodeDirectory(self, total)
            nics = _NicView(self.nodes)
        else:
            self.nodes = [self._make_node(node_id) for node_id in range(total)]
            nics = [node.nic for node in self.nodes]
        self.fabric = Fabric(self.env, self.spec.model, nics, trace=self.trace)

    def _make_node(self, node_id: int) -> Node:
        nic = Nic(
            self.env, node_id, thread_op_cost=self.spec.nic_thread_op_cost
        )
        return Node(self.env, node_id, self.spec.cpus_per_node, nic)

    @property
    def n_compute_nodes(self) -> int:
        """Number of compute nodes (excludes the management node)."""
        return self.spec.n_nodes

    @property
    def management_node(self) -> Node:
        """The management node (runs the MM / Strobe Sender)."""
        return self.nodes[-1]

    @property
    def compute_nodes(self) -> List[Node]:
        """All compute nodes, in id order (materializes every node)."""
        return self.nodes[: self.spec.n_nodes]

    def node(self, node_id: int) -> Node:
        """Node by id (compute ids first, management node last)."""
        return self.nodes[node_id]

    def run(self, until=None):
        """Run the underlying engine (convenience passthrough)."""
        return self.env.run(until=until)

    def __repr__(self) -> str:
        return (
            f"<Cluster n={self.spec.n_nodes}+mgmt model={self.spec.model.name} "
            f"t={self.env.now}>"
        )
