"""Communication descriptors and requests.

When an application process invokes a communication primitive, it posts a
*descriptor* to NIC memory (paper §3) and, if the call is blocking,
suspends.  Descriptors carry everything the NIC threads need to complete
the operation without further host involvement.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from ..sim import Event

#: Wildcards for receive matching (MPI_ANY_SOURCE / MPI_ANY_TAG).
ANY_SOURCE = -1
ANY_TAG = -1

_desc_ids = itertools.count()


class BcsRequest:
    """Completion handle for one posted operation (paper's BCS_Request).

    The NIC signals completion by triggering :attr:`done`; processes poll
    it (``bcs_test``) or block on it (``bcs_test(blocking)``), in which
    case the Node Manager restarts them at the next slice boundary.
    """

    __slots__ = (
        "env",
        "kind",
        "done",
        "payload",
        "source",
        "tag",
        "size",
        "error",
        "posted_at",
        "completed_at",
    )

    def __init__(self, env, kind: str):
        self.env = env
        self.kind = kind
        self.done: Event = env.event(name=f"req:{kind}")
        #: Delivered payload (receives and value-returning collectives).
        self.payload: Any = None
        #: Matched source rank (receives).
        self.source: Optional[int] = None
        #: Matched tag (receives).
        self.tag: Optional[int] = None
        #: Matched message size in bytes (receives).
        self.size: Optional[int] = None
        self.error: Optional[BaseException] = None
        self.posted_at: int = env.now
        self.completed_at: Optional[int] = None

    @property
    def complete(self) -> bool:
        """Whether the operation has finished (NIC-visible state)."""
        return self.done.triggered

    def _finish(self) -> None:
        self.completed_at = self.env.now
        self.done.succeed(self)

    def __repr__(self) -> str:
        state = "done" if self.complete else "pending"
        return f"<BcsRequest {self.kind} {state}>"


def payload_nbytes(payload: Any, declared: Optional[int] = None) -> int:
    """Size in bytes of a message payload.

    numpy arrays and scalars report their buffer size; ``bytes`` its
    length; None falls back to the declared size (pure-timing messages);
    any other Python object is sized by its pickled representation (the
    mpi4py lowercase-method convention).
    """
    if declared is not None:
        return declared
    if isinstance(payload, np.ndarray):
        return payload.nbytes
    if isinstance(payload, np.generic):
        return payload.dtype.itemsize
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if payload is None:
        return 0
    if isinstance(payload, (int, float, bool)):
        return 8
    import pickle

    return len(pickle.dumps(payload))


@dataclass
class SendDescriptor:
    """A posted send (blocking or not — the NIC treats them alike)."""

    job_id: int
    comm_id: int
    src_rank: int
    dst_rank: int
    tag: int
    size: int
    request: BcsRequest
    payload: Any = None
    #: Per (job, comm, src, dst) monotonic counter: MPI non-overtaking order.
    seq: int = 0
    posted_at: int = 0
    desc_id: int = field(default_factory=lambda: next(_desc_ids))

    def __repr__(self) -> str:
        return (
            f"<Send j{self.job_id} {self.src_rank}->{self.dst_rank} "
            f"tag={self.tag} size={self.size} seq={self.seq}>"
        )


@dataclass
class RecvDescriptor:
    """A posted receive with (source, tag) matching criteria."""

    job_id: int
    comm_id: int
    rank: int
    src_rank: int  # may be ANY_SOURCE
    tag: int  # may be ANY_TAG
    capacity: int
    request: BcsRequest
    posted_at: int = 0
    desc_id: int = field(default_factory=lambda: next(_desc_ids))

    def matches(self, send: "SendDescriptor") -> bool:
        """MPI matching rule against an arrived send descriptor."""
        if send.job_id != self.job_id or send.comm_id != self.comm_id:
            return False
        if send.dst_rank != self.rank:
            return False
        if self.src_rank != ANY_SOURCE and send.src_rank != self.src_rank:
            return False
        if self.tag != ANY_TAG and send.tag != self.tag:
            return False
        return True

    def __repr__(self) -> str:
        return (
            f"<Recv j{self.job_id} rank={self.rank} from={self.src_rank} "
            f"tag={self.tag}>"
        )


@dataclass
class CollectiveDescriptor:
    """A posted collective operation (barrier / bcast / reduce)."""

    job_id: int
    comm_id: int
    kind: str  # "barrier" | "bcast" | "reduce" | "allreduce"
    rank: int
    root: int
    #: Per (job, comm) collective sequence number; drives the CaW flag check.
    epoch: int
    request: BcsRequest
    op: Optional[str] = None
    size: int = 0
    payload: Any = None
    posted_at: int = 0
    desc_id: int = field(default_factory=lambda: next(_desc_ids))

    def __repr__(self) -> str:
        return (
            f"<Coll {self.kind} j{self.job_id} rank={self.rank} "
            f"epoch={self.epoch} root={self.root}>"
        )


@dataclass
class Match:
    """A matched send/recv pair being moved by the DMA Helper.

    Built by the Buffer Receiver in the Message Scheduling Microphase; if
    the message exceeds the slice budget it is *chunked* and carried over
    multiple slices (paper §4.3).
    """

    send: SendDescriptor
    recv: RecvDescriptor
    src_node: int
    dst_node: int
    total_bytes: int
    bytes_done: int = 0
    #: Bytes granted for the current slice by the MSM scheduler.
    scheduled_now: int = 0
    #: True for system-level traffic (parallel file system, migration):
    #: scheduled into whatever budget user traffic leaves over — the
    #: QoS guarantee a single global scheduler provides (paper §1).
    system: bool = False
    #: Which descriptor completed the pair: "send" (an arrival met a
    #: posted receive) or "recv" (a post drained an unexpected send).
    #: Causal attribution for span tracing; empty for system matches
    #: built outside the matchers.
    matched_via: str = ""

    @property
    def remaining(self) -> int:
        """Bytes not yet transferred."""
        return self.total_bytes - self.bytes_done

    @property
    def finished(self) -> bool:
        """True once every byte has moved."""
        return self.bytes_done >= self.total_bytes

    def __repr__(self) -> str:
        return (
            f"<Match {self.send.src_rank}->{self.recv.rank} "
            f"{self.bytes_done}/{self.total_bytes}B>"
        )
