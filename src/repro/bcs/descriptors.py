"""Communication descriptors and requests.

When an application process invokes a communication primitive, it posts a
*descriptor* to NIC memory (paper §3) and, if the call is blocking,
suspends.  Descriptors carry everything the NIC threads need to complete
the operation without further host involvement.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from ..sim import Event

#: Wildcards for receive matching (MPI_ANY_SOURCE / MPI_ANY_TAG).
ANY_SOURCE = -1
ANY_TAG = -1

_desc_ids = itertools.count()


class BcsRequest:
    """Completion handle for one posted operation (paper's BCS_Request).

    The NIC signals completion by triggering :attr:`done`; processes poll
    it (``bcs_test``) or block on it (``bcs_test(blocking)``), in which
    case the Node Manager restarts them at the next slice boundary.
    """

    __slots__ = (
        "env",
        "kind",
        "done",
        "payload",
        "source",
        "tag",
        "size",
        "error",
        "posted_at",
        "completed_at",
    )

    def __init__(self, env, kind: str):
        self.env = env
        self.kind = kind
        self.done: Event = env.event(name=f"req:{kind}")
        #: Delivered payload (receives and value-returning collectives).
        self.payload: Any = None
        #: Matched source rank (receives).
        self.source: Optional[int] = None
        #: Matched tag (receives).
        self.tag: Optional[int] = None
        #: Matched message size in bytes (receives).
        self.size: Optional[int] = None
        self.error: Optional[BaseException] = None
        self.posted_at: int = env.now
        self.completed_at: Optional[int] = None

    @property
    def complete(self) -> bool:
        """Whether the operation has finished (NIC-visible state)."""
        return self.done.triggered

    def _finish(self) -> None:
        self.completed_at = self.env.now
        self.done.succeed(self)

    def __repr__(self) -> str:
        state = "done" if self.complete else "pending"
        return f"<BcsRequest {self.kind} {state}>"


def payload_nbytes(payload: Any, declared: Optional[int] = None) -> int:
    """Size in bytes of a message payload.

    numpy arrays and scalars report their buffer size; ``bytes`` its
    length; None falls back to the declared size (pure-timing messages);
    any other Python object is sized by its pickled representation (the
    mpi4py lowercase-method convention).
    """
    if declared is not None:
        return declared
    if isinstance(payload, np.ndarray):
        return payload.nbytes
    if isinstance(payload, np.generic):
        return payload.dtype.itemsize
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if payload is None:
        return 0
    if isinstance(payload, (int, float, bool)):
        return 8
    import pickle

    return len(pickle.dumps(payload))


@dataclass
class SendDescriptor:
    """A posted send (blocking or not — the NIC treats them alike)."""

    job_id: int
    comm_id: int
    src_rank: int
    dst_rank: int
    tag: int
    size: int
    request: BcsRequest
    payload: Any = None
    #: Per (job, comm, src, dst) monotonic counter: MPI non-overtaking order.
    seq: int = 0
    posted_at: int = 0
    desc_id: int = field(default_factory=lambda: next(_desc_ids))

    def __repr__(self) -> str:
        return (
            f"<Send j{self.job_id} {self.src_rank}->{self.dst_rank} "
            f"tag={self.tag} size={self.size} seq={self.seq}>"
        )


@dataclass
class RecvDescriptor:
    """A posted receive with (source, tag) matching criteria."""

    job_id: int
    comm_id: int
    rank: int
    src_rank: int  # may be ANY_SOURCE
    tag: int  # may be ANY_TAG
    capacity: int
    request: BcsRequest
    posted_at: int = 0
    desc_id: int = field(default_factory=lambda: next(_desc_ids))

    def matches(self, send: "SendDescriptor") -> bool:
        """MPI matching rule against an arrived send descriptor."""
        if send.job_id != self.job_id or send.comm_id != self.comm_id:
            return False
        if send.dst_rank != self.rank:
            return False
        if self.src_rank != ANY_SOURCE and send.src_rank != self.src_rank:
            return False
        if self.tag != ANY_TAG and send.tag != self.tag:
            return False
        return True

    def __repr__(self) -> str:
        return (
            f"<Recv j{self.job_id} rank={self.rank} from={self.src_rank} "
            f"tag={self.tag}>"
        )


@dataclass
class CollectiveDescriptor:
    """A posted collective operation (barrier / bcast / reduce)."""

    job_id: int
    comm_id: int
    kind: str  # "barrier" | "bcast" | "reduce" | "allreduce"
    rank: int
    root: int
    #: Per (job, comm) collective sequence number; drives the CaW flag check.
    epoch: int
    request: BcsRequest
    op: Optional[str] = None
    size: int = 0
    payload: Any = None
    posted_at: int = 0
    desc_id: int = field(default_factory=lambda: next(_desc_ids))

    def __repr__(self) -> str:
        return (
            f"<Coll {self.kind} j{self.job_id} rank={self.rank} "
            f"epoch={self.epoch} root={self.root}>"
        )


@dataclass
class Match:
    """A matched send/recv pair being moved by the DMA Helper.

    Built by the Buffer Receiver in the Message Scheduling Microphase; if
    the message exceeds the slice budget it is *chunked* and carried over
    multiple slices (paper §4.3).
    """

    send: SendDescriptor
    recv: RecvDescriptor
    src_node: int
    dst_node: int
    total_bytes: int
    bytes_done: int = 0
    #: Bytes granted for the current slice by the MSM scheduler.
    scheduled_now: int = 0
    #: True for system-level traffic (parallel file system, migration):
    #: scheduled into whatever budget user traffic leaves over — the
    #: QoS guarantee a single global scheduler provides (paper §1).
    system: bool = False
    #: Which descriptor completed the pair: "send" (an arrival met a
    #: posted receive) or "recv" (a post drained an unexpected send).
    #: Causal attribution for span tracing; empty for system matches
    #: built outside the matchers.
    matched_via: str = ""

    @property
    def remaining(self) -> int:
        """Bytes not yet transferred."""
        return self.total_bytes - self.bytes_done

    @property
    def finished(self) -> bool:
        """True once every byte has moved."""
        return self.bytes_done >= self.total_bytes

    def __repr__(self) -> str:
        return (
            f"<Match {self.send.src_rank}->{self.recv.rank} "
            f"{self.bytes_done}/{self.total_bytes}B>"
        )


class _FreeList:
    """A bounded LIFO free list of recyclable objects."""

    __slots__ = ("_free", "cap")

    def __init__(self, cap: int = 8192):
        self._free: list = []
        self.cap = cap

    def get(self):
        return self._free.pop() if self._free else None

    def put(self, obj) -> None:
        if len(self._free) < self.cap:
            self._free.append(obj)

    def __len__(self) -> int:
        return len(self._free)


class DescriptorPools:
    """Free-list pools for the per-message hot-path objects.

    Steady-state slices churn through Send/Recv/Collective descriptors
    and :class:`BcsRequest` handles at a rate proportional to message
    count; pooling them makes those slices allocate near zero (the
    batched slice engine, ``BcsConfig.batched_matching``).

    Safety rules:

    - ``acquire`` reinitializes **every** field and draws a **fresh**
      ``desc_id``, so any stale index keyed by descriptor id (matcher
      buckets, span tables) can never alias a recycled object;
    - ``release`` is only called from sites where the runtime can prove
      no live reference remains (retired matches, completed collective
      epochs, provably-private barrier requests);
    - a recycled ``BcsRequest`` gets a **fresh** :class:`Event` — done
      events are one-shot and are never re-armed.

    Pools are best-effort and bounded; an empty pool simply constructs.
    """

    __slots__ = ("_sends", "_recvs", "_colls", "_reqs")

    def __init__(self):
        self._sends = _FreeList()
        self._recvs = _FreeList()
        self._colls = _FreeList()
        self._reqs = _FreeList()

    # -- acquire ---------------------------------------------------------------

    def send(
        self, job_id, comm_id, src_rank, dst_rank, tag, size, request,
        payload=None, seq=0, posted_at=0,
    ) -> SendDescriptor:
        d = self._sends.get()
        if d is None:
            return SendDescriptor(
                job_id, comm_id, src_rank, dst_rank, tag, size, request,
                payload=payload, seq=seq, posted_at=posted_at,
            )
        d.job_id = job_id
        d.comm_id = comm_id
        d.src_rank = src_rank
        d.dst_rank = dst_rank
        d.tag = tag
        d.size = size
        d.request = request
        d.payload = payload
        d.seq = seq
        d.posted_at = posted_at
        d.desc_id = next(_desc_ids)
        return d

    def recv(
        self, job_id, comm_id, rank, src_rank, tag, capacity, request,
        posted_at=0,
    ) -> RecvDescriptor:
        d = self._recvs.get()
        if d is None:
            return RecvDescriptor(
                job_id, comm_id, rank, src_rank, tag, capacity, request,
                posted_at=posted_at,
            )
        d.job_id = job_id
        d.comm_id = comm_id
        d.rank = rank
        d.src_rank = src_rank
        d.tag = tag
        d.capacity = capacity
        d.request = request
        d.posted_at = posted_at
        d.desc_id = next(_desc_ids)
        return d

    def coll(
        self, job_id, comm_id, kind, rank, root, epoch, request,
        op=None, size=0, payload=None, posted_at=0,
    ) -> CollectiveDescriptor:
        d = self._colls.get()
        if d is None:
            return CollectiveDescriptor(
                job_id, comm_id, kind, rank, root, epoch, request,
                op=op, size=size, payload=payload, posted_at=posted_at,
            )
        d.job_id = job_id
        d.comm_id = comm_id
        d.kind = kind
        d.rank = rank
        d.root = root
        d.epoch = epoch
        d.request = request
        d.op = op
        d.size = size
        d.payload = payload
        d.posted_at = posted_at
        d.desc_id = next(_desc_ids)
        return d

    def request(self, env, kind: str) -> BcsRequest:
        r = self._reqs.get()
        if r is None:
            return BcsRequest(env, kind)
        r.env = env
        r.kind = kind
        r.done = env.event(name=f"req:{kind}")
        r.payload = None
        r.source = None
        r.tag = None
        r.size = None
        r.error = None
        r.posted_at = env.now
        r.completed_at = None
        return r

    # -- release ---------------------------------------------------------------

    def release_send(self, d: SendDescriptor) -> None:
        d.request = None
        d.payload = None
        self._sends.put(d)

    def release_recv(self, d: RecvDescriptor) -> None:
        d.request = None
        self._recvs.put(d)

    def release_coll(self, d: CollectiveDescriptor) -> None:
        d.request = None
        d.payload = None
        self._colls.put(d)

    def release_request(self, r: BcsRequest) -> None:
        r.payload = None
        r.error = None
        self._reqs.put(r)
