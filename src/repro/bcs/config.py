"""BCS-MPI runtime configuration.

Centralizes every timing constant of the global synchronization protocol
(paper §4.2) so experiments and ablations can sweep them.  Defaults are
calibrated to the paper's testbed: 500 µs time slices; descriptor exchange
plus message scheduling ≈ 125 µs (paper §4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..units import seconds, us


@dataclass(frozen=True)
class BcsConfig:
    """Tunable parameters of the BCS-MPI runtime."""

    #: Global time slice (paper §5.1 uses 500 µs everywhere).
    timeslice: int = us(500)
    #: Minimum duration of the Descriptor Exchange Microphase.
    dem_min_duration: int = us(65)
    #: Minimum duration of the Message Scheduling Microphase.
    #: dem + msm ≈ the paper's 125 µs global-message-scheduling phase.
    msm_min_duration: int = us(60)
    #: Bytes of one communication descriptor on the wire (DEM traffic).
    descriptor_bytes: int = 128
    #: Bytes of a microstrobe packet.
    strobe_bytes: int = 64
    #: Host-CPU cost for a process to post one descriptor to NIC memory
    #: (shared-memory FIFO, no system call — paper §4.5).
    descriptor_post_cost: int = us(0.6)
    #: NIC thread cost to process one descriptor (match, schedule, ...).
    nic_descriptor_cost: int = us(1.0)
    #: NIC reduce cost per element (softfloat on the FPU-less NIC).
    nic_reduce_cost_per_element: int = us(0.45)
    #: Fraction of the post-scheduling slice remainder budgeted for
    #: point-to-point data (the rest is reserved for BBM + RM).
    p2p_budget_fraction: float = 0.80
    #: Hard cap on a single scheduled chunk, bytes (0 = no cap).
    max_chunk_bytes: int = 0
    #: Multiplicative compute tax from the user-level NM daemon stealing
    #: host cycles every slice (paper §4.5's scheduling anomaly).
    #: Calibrated so the 10 ms-granularity synthetic benchmarks land at
    #: the paper's ~7.5 % (Fig. 8) and EP at ~5-6 % (Table 2).
    nm_compute_tax: float = 0.005
    #: One-time BCS runtime/job initialization cost (daemon + NIC thread
    #: setup; what makes short runs like IS pay a visible price, §5.3).
    init_cost: int = seconds(1.2)
    #: Whether the Reduce Helper computes with the softfloat library
    #: (bit-exact NIC arithmetic) or defers to numpy for speed.
    reduce_use_softfloat: bool = False
    #: Buffered sends (the B in BCS): the runtime snapshots the payload
    #: when the descriptor is posted and a *blocking* send completes
    #: immediately — only receives pay the 1.5-slice average delay.
    #: False gives strict synchronous sends (complete at delivery), the
    #: ablation baseline.
    buffered_sends: bool = True
    #: Stop the strobe loop automatically when no jobs remain.
    auto_stop: bool = True
    #: Skip idle slices in one jump when the cluster has no pending work
    #: and no event can create any before the next-event time (pure
    #: simulator wall-clock optimization; virtual timings are identical).
    idle_fast_forward: bool = True
    #: MPI matching implementation: "hash" (bucketed, O(1) amortized) or
    #: "linear" (reference list scan).  Identical match sequences.
    matcher: str = "hash"
    #: Answer the Strobe Sender's per-slice questions (``any_work``,
    #: ``dem/msm/bbm/rm_nodes``, slice-boundary wake pulses) from
    #: incrementally maintained active-node sets instead of scanning
    #: every node runtime.  Per-slice cost becomes O(active nodes); the
    #: full-scan path is kept as the reference oracle (pure simulator
    #: wall-clock optimization; virtual timings are identical).
    incremental_active_sets: bool = True
    #: Batched slice engine: during the DEM/MSM microphases the NIC
    #: threads gather a node's pending descriptors into per-slice
    #: batches — one NIC hold covers the whole batch (same total cost,
    #: fewer simulator events) and the matcher resolves the batch with
    #: vectorized numpy bucket joins, falling back to the object path
    #: for wildcard (``ANY_SOURCE``/``ANY_TAG``) descriptors so MPI
    #: ordering semantics are preserved exactly.  The per-descriptor
    #: object path is kept as the differential oracle (pure simulator
    #: wall-clock optimization; virtual timings are identical).
    batched_matching: bool = True
    #: Aggregated strobe + arena node state: the Strobe Sender charges
    #: one tree-shaped multicast event (latency from
    #: ``NetworkModel.multicast_latency``, cached per active-set size)
    #: instead of walking the per-destination control-multicast path,
    #: reports microphase completion with one batched arena increment
    #: instead of a per-node ``gas.write`` loop, and the runtime
    #: materializes per-node objects (NodeRuntime, NIC threads, Strobe
    #: Receiver) lazily — only nodes that host ranks or receive traffic
    #: ever exist as Python objects, so a 64k-node machine costs O(active
    #: nodes) per slice and O(active nodes) in object-graph footprint.
    #: The eager per-destination path is kept as the differential oracle
    #: (pure simulator wall-clock/footprint optimization; virtual
    #: timings are identical).
    aggregated_strobe: bool = True

    def __post_init__(self):
        if self.timeslice <= 0:
            raise ValueError("timeslice must be positive")
        if self.matcher not in ("hash", "linear"):
            raise ValueError(
                f"matcher must be 'hash' or 'linear', not {self.matcher!r}"
            )
        sched = self.dem_min_duration + self.msm_min_duration
        if sched >= self.timeslice:
            raise ValueError(
                f"scheduling phase ({sched} ns) must fit in the "
                f"timeslice ({self.timeslice} ns)"
            )
        if not 0.0 < self.p2p_budget_fraction <= 1.0:
            raise ValueError("p2p_budget_fraction must be in (0, 1]")
        if self.nm_compute_tax < 0:
            raise ValueError("nm_compute_tax must be >= 0")

    @property
    def scheduling_duration(self) -> int:
        """Minimum length of the global message scheduling phase."""
        return self.dem_min_duration + self.msm_min_duration

    def transmission_budget(self) -> int:
        """Time (ns) nominally available for the transmission phase."""
        return self.timeslice - self.scheduling_duration

    def p2p_slice_budget_bytes(self, link_bandwidth: float) -> int:
        """Max point-to-point payload bytes per link per slice.

        This is what the Message Scheduling Microphase uses to decide
        how much of a large message fits into the current slice (the
        chunking rule of paper §4.3).
        """
        budget_ns = int(self.transmission_budget() * self.p2p_budget_fraction)
        max_bytes = int(budget_ns * link_bandwidth / 1_000_000_000)
        if self.max_chunk_bytes:
            max_bytes = min(max_bytes, self.max_chunk_bytes)
        return max(max_bytes, 1)

    def with_(self, **kw) -> "BcsConfig":
        """A copy with the given fields replaced."""
        return replace(self, **kw)

    @classmethod
    def kernel_level(cls, **kw) -> "BcsConfig":
        """The kernel-based implementation the paper §4.5 announces.

        Process scheduling moves from the user-level NM dæmon into the
        kernel, removing the per-slice scheduling noise (tax -> 0) and
        the shared-memory descriptor FIFO indirection (cheaper posts).
        Everything else — the slice machine, microphases, NIC threads —
        is unchanged.
        """
        defaults = dict(nm_compute_tax=0.0, descriptor_post_cost=300)
        defaults.update(kw)
        return cls(**defaults)
