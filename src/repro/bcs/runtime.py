"""The BCS-MPI runtime: wiring the whole machine together.

A :class:`BcsRuntime` owns, for one cluster:

- the BCS core primitive layer (:class:`repro.core.BcsCore`),
- one :class:`~repro.bcs.threads.NodeRuntime` (+ BS/BR/DH/CH/RH NIC
  threads, Strobe Receiver and Node Manager) per compute node,
- the Strobe Sender on the management node (the Machine Manager's NIC
  thread),
- the global slice scheduler and job/communicator registries.

Jobs are launched with :meth:`launch`; each rank runs as a simulation
process whose MPI calls go through the BCS API.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence

from ..core import BcsCore
from ..network import Cluster
from ..storm.job import Job, JobSpec, block_placement
from .config import BcsConfig
from .descriptors import DescriptorPools
from .matching import MatcherTotals
from .node_manager import NodeArena, NodeManager
from .scheduler import SliceScheduler
from .strobe import StrobeReceiver, StrobeSender
from .threads import (
    BufferReceiver,
    BufferSender,
    CollectiveHelper,
    DmaHelper,
    NodeRuntime,
    ReduceHelper,
)


# Retention predicates for the incrementally maintained active-node sets.
# A node *joins* a set when the corresponding state is created (descriptor
# post, remote delivery, epoch creation) and is *evicted lazily* when a
# query finds the predicate false.  Each predicate must be true whenever
# the set's query predicate is true (it may be a superset — e.g. a
# collective epoch can become schedulable without any new post, so the
# collective set retains nodes for as long as any epoch is in flight).


def _dem_pending(nrt) -> bool:
    return bool(nrt.posted_sends or nrt.posted_recvs or nrt.posted_colls)


def _arrived_pending(nrt) -> bool:
    return bool(nrt.arrived_sends)


def _coll_pending(nrt) -> bool:
    return nrt.pending_epochs > 0


class HookList:
    """Slice-boundary hook registry with mutation-safe firing.

    The Strobe Sender used to snapshot ``list(on_slice_start)`` on every
    slice so hooks could deregister themselves while running.  That copy
    is pure overhead in the steady state (hooks change rarely: gang
    scheduler setup, failure teardown).  Here the snapshot is a cached
    tuple, rebuilt only when the registry is mutated; :meth:`fire`
    iterates the cache, so a hook removed mid-fire still runs for the
    slice that started firing — byte-for-byte the old semantics — and an
    unchanged registry costs zero copies per slice.
    """

    __slots__ = ("_hooks", "_snapshot")

    def __init__(self):
        self._hooks: List = []
        self._snapshot: Optional[tuple] = ()

    def append(self, hook) -> None:
        """Register a hook (called with the slice number)."""
        self._hooks.append(hook)
        self._snapshot = None

    def remove(self, hook) -> None:
        """Deregister a hook; safe to call from inside :meth:`fire`."""
        self._hooks.remove(hook)
        self._snapshot = None

    def fire(self, slice_no: int) -> None:
        """Invoke every registered hook with ``slice_no``."""
        snap = self._snapshot
        if snap is None:
            snap = self._snapshot = tuple(self._hooks)
        for hook in snap:
            hook(slice_no)

    def __iter__(self):
        return iter(self._hooks)

    def __len__(self) -> int:
        return len(self._hooks)

    def __bool__(self) -> bool:
        return bool(self._hooks)

    def __contains__(self, hook) -> bool:
        return hook in self._hooks

    def __repr__(self) -> str:
        return f"<HookList n={len(self._hooks)}>"


class CommInfo:
    """One communicator's mapping onto the machine.

    Ranks inside descriptors are communicator-relative; this object maps
    them to world ranks and nodes.  The world communicator of a job is
    always ``comm_id == 0``.
    """

    def __init__(self, job: Job, comm_id: int, world_ranks: Sequence[int]):
        self.job = job
        self.comm_id = comm_id
        self.world_ranks = list(world_ranks)
        if len(set(self.world_ranks)) != len(self.world_ranks):
            raise ValueError("duplicate ranks in communicator")
        #: comm ranks hosted on each node.
        self.node_ranks: Dict[int, List[int]] = {}
        for crank, wrank in enumerate(self.world_ranks):
            node = job.placement[wrank]
            self.node_ranks.setdefault(node, []).append(crank)
        self.nodes = sorted(self.node_ranks)

    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        return len(self.world_ranks)

    def node_of(self, comm_rank: int) -> int:
        """Node hosting a communicator-relative rank."""
        return self.job.placement[self.world_ranks[comm_rank]]

    @property
    def root_node(self) -> int:
        """Node of the communicator's rank 0 (its master process)."""
        return self.node_of(0)

    def __repr__(self) -> str:
        return f"<CommInfo job={self.job.id} comm={self.comm_id} size={self.size}>"


class NodeAgents:
    """The five NIC threads plus the Node Manager of one node."""

    def __init__(self, nrt: NodeRuntime):
        self.bs = BufferSender(nrt)
        self.br = BufferReceiver(nrt)
        self.dh = DmaHelper(nrt)
        self.ch = CollectiveHelper(nrt)
        self.rh = ReduceHelper(nrt)
        self.nm = NodeManager(nrt)


class NodeTable:
    """Lazy list-like table of :class:`NodeRuntime` flyweights.

    Used in aggregated-strobe mode: indexing materializes the node's
    runtime on first access, so only nodes that host ranks or receive
    traffic ever exist as Python objects.  Iteration materializes every
    node — full-scan oracles and whole-machine sweeps stay correct (a
    just-materialized idle node contributes exactly what an eagerly
    built idle node would: nothing).  Materialization creates no
    simulation events, so it can never perturb virtual time.
    """

    __slots__ = ("_runtime", "_slots", "_count")

    def __init__(self, runtime: "BcsRuntime", n_nodes: int):
        self._runtime = runtime
        self._slots: List[Optional[NodeRuntime]] = [None] * n_nodes
        self._count = 0

    def __len__(self) -> int:
        return len(self._slots)

    def __getitem__(self, node_id: int) -> NodeRuntime:
        nrt = self._slots[node_id]
        if nrt is None:
            nrt = self._slots[node_id] = NodeRuntime(self._runtime, node_id)
            self._count += 1
        return nrt

    def __iter__(self):
        for i in range(len(self._slots)):
            yield self[i]

    def materialized(self):
        """Existing node runtimes in id order (no materialization)."""
        for nrt in self._slots:
            if nrt is not None:
                yield nrt

    @property
    def materialized_count(self) -> int:
        """How many node runtimes exist as Python objects right now."""
        return self._count

    def __repr__(self) -> str:
        return f"<NodeTable {self._count}/{len(self._slots)} materialized>"


def existing_node_runtimes(node_runtimes):
    """Materialized-only view of a runtime's node table.

    Whole-machine consumers that only care about nodes *with state*
    (telemetry binding, job purges, state snapshots, stall diagnostics)
    iterate this instead of the table itself, so they never force a 64k
    lazy table to materialize.  On an eager list it is the identity.
    """
    if isinstance(node_runtimes, NodeTable):
        return node_runtimes.materialized()
    return node_runtimes


class _LazyNodeMap:
    """Dict-like lazy map of per-node companions (agents/receivers).

    ``map[node_id]`` materializes on first access via the subclass
    factory; the view methods (``values``/``items``/``keys``/``len``)
    cover only materialized entries, which is exactly the population an
    eager dict would show for the nodes that ever did anything.
    """

    __slots__ = ("_runtime", "_entries")

    def __init__(self, runtime: "BcsRuntime"):
        self._runtime = runtime
        self._entries: Dict[int, object] = {}

    def _make(self, node_id: int):
        raise NotImplementedError

    def __getitem__(self, node_id: int):
        entry = self._entries.get(node_id)
        if entry is None:
            entry = self._entries[node_id] = self._make(node_id)
        return entry

    def get(self, node_id: int, default=None):
        return self._entries.get(node_id, default)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(sorted(self._entries))

    def keys(self):
        return sorted(self._entries)

    def values(self):
        return [self._entries[k] for k in sorted(self._entries)]

    def items(self):
        return [(k, self._entries[k]) for k in sorted(self._entries)]


class _AgentMap(_LazyNodeMap):
    """Lazy ``node_id -> NodeAgents``."""

    def _make(self, node_id: int):
        return NodeAgents(self._runtime.node_runtimes[node_id])


class _ReceiverMap(_LazyNodeMap):
    """Lazy ``node_id -> StrobeReceiver``.

    Materializing an entry spawns the receiver's simulation process, so
    hot paths never index this map for a node that might not exist yet:
    :meth:`BcsRuntime.launch` materializes every node a job touches
    up front (a fresh receiver's init event is inert — it blocks on an
    empty inbox — so launch-time creation is virtual-time neutral).
    """

    def _make(self, node_id: int):
        return StrobeReceiver(self._runtime.node_runtimes[node_id])


class RankHandle:
    """Runtime-side state of one application process (one rank)."""

    def __init__(self, runtime: "BcsRuntime", job: Job, world_rank: int):
        self.runtime = runtime
        self.job = job
        self.world_rank = world_rank
        self.node_id = job.placement[world_rank]
        self.nrt = runtime.node_rt(self.node_id)
        self.nm = runtime.agents[self.node_id].nm
        #: Per-(comm_id, dst) send sequence counters (non-overtaking order).
        self.send_seq: Dict[tuple, int] = {}
        #: Per-comm_id collective epoch counters.
        self.coll_seq: Dict[int, int] = {}
        #: Host-call overhead accumulated since the last yield point.
        self.pending_overhead = 0

    def next_send_seq(self, comm_id: int, dst: int) -> int:
        key = (comm_id, dst)
        seq = self.send_seq.get(key, 0)
        self.send_seq[key] = seq + 1
        return seq

    def next_epoch(self, comm_id: int) -> int:
        epoch = self.coll_seq.get(comm_id, 0) + 1
        self.coll_seq[comm_id] = epoch
        return epoch

    def take_overhead(self) -> int:
        t, self.pending_overhead = self.pending_overhead, 0
        return t

    def __repr__(self) -> str:
        return f"<RankHandle job={self.job.id} rank={self.world_rank}>"


class BcsRuntime:
    """The buffered-coscheduled MPI runtime for one cluster."""

    def __init__(self, cluster: Cluster, config: Optional[BcsConfig] = None):
        self.cluster = cluster
        self.env = cluster.env
        self.config = config or BcsConfig()
        self.core = BcsCore(cluster)
        self.scheduler = SliceScheduler(self.config, cluster.spec.model.link_bandwidth)

        #: Answer per-slice queries from incremental sets (config flag).
        self._incremental = self.config.incremental_active_sets
        #: Aggregated strobe + lazy arena node representation (config
        #: flag); False selects the eager per-destination oracle path.
        self._aggregated = self.config.aggregated_strobe
        #: Free-list pools for descriptors/requests (the batched slice
        #: engine's allocation leg; recycling only happens with
        #: ``config.batched_matching`` — acquire falls through to plain
        #: construction when the pools are empty).
        self.pools = DescriptorPools()
        #: Machine-wide matcher aggregates, shared by every node matcher.
        self.matcher_totals = MatcherTotals()
        # Incrementally maintained active-node id sets (see the module-
        # level retention predicates).  Maintained unconditionally — the
        # bookkeeping is O(1) per mutation — so the scan and incremental
        # query paths can be flipped per run and compared differentially.
        self._dem_set: set = set()
        self._arrived_set: set = set()
        self._coll_set: set = set()
        self._match_set: set = set()
        #: Nodes with at least one process waiting on their slice signal.
        self._slice_waiters: set = set()
        #: Start time of the current slice (shared by every NodeRuntime;
        #: written once per slice by the Strobe Sender instead of an
        #: O(nodes) begin_slice loop).
        self.slice_start_time = 0

        #: SoA arena for per-node scalars; the ``mphase_done`` counters
        #: are array-backed GAS slots, so the oracle path's per-node
        #: ``gas.write`` and the aggregated path's batched increment
        #: update identical storage.
        self.arena = NodeArena(len(cluster.nodes))
        self.core.gas.register_array("mphase_done", self.arena.mphase_done)

        n_compute = cluster.n_compute_nodes
        if self._aggregated:
            # Flyweight node machinery: materialized per node on first
            # touch (launch() pre-materializes a job's nodes).
            self.node_runtimes = NodeTable(self, n_compute)
            self.agents = _AgentMap(self)
            self.receivers = _ReceiverMap(self)
        else:
            self.node_runtimes: List[NodeRuntime] = [
                NodeRuntime(self, node.id) for node in cluster.compute_nodes
            ]
            self.agents: Dict[int, NodeAgents] = {
                nrt.node_id: NodeAgents(nrt) for nrt in self.node_runtimes
            }
            self.receivers: Dict[int, StrobeReceiver] = {
                nrt.node_id: StrobeReceiver(nrt) for nrt in self.node_runtimes
            }
        self.ss = StrobeSender(self)

        self.jobs: Dict[int, Job] = {}
        #: Per-job usage counters (cpu_ns, blocked_ns, messages, bytes,
        #: collectives) — STORM's accounting role (paper §1).
        self.job_stats: Dict[int, Counter] = {}
        self.comms: Dict[tuple, CommInfo] = {}
        self._comm_by_members: Dict[tuple, CommInfo] = {}
        #: Two-level (job -> comm -> info) mirror of ``comms``: the hot
        #: paths look a communicator up per descriptor, and the flat
        #: tuple key would allocate a fresh ``(job, comm)`` tuple each
        #: time.  Communicators are never unregistered, so this never
        #: goes stale.
        self._comm_cache: Dict[int, Dict[int, CommInfo]] = {}
        #: Live rank processes: (job_id, rank) -> sim Process (for
        #: failure injection / fault tolerance).
        self.rank_procs: Dict[tuple, object] = {}
        self.slice_no = 0
        self.stopped = False
        self.stats: Counter = Counter()
        #: Nodes hosting at least one rank of any job (strobe targets).
        self.active_node_ids: List[int] = []
        #: Hooks invoked at every slice boundary with the new slice number
        #: (gang scheduler, instrumentation, ...).  A non-empty registry
        #: also disables idle fast-forward: hooks may create work.
        self.on_slice_start = HookList()
        #: Telemetry hub (:class:`repro.obs.Observability`) or None.
        #: Hot paths guard on this — a bare runtime pays one attribute
        #: read per hook point and nothing else.
        self.obs = None

    def attach_observability(self, obs) -> "BcsRuntime":
        """Wire a telemetry hub into the runtime, scheduler, and NICs.

        Instrumentation is passive (it never enters the event queue), so
        attaching observability does not change simulated timings.
        Returns the runtime for chaining.
        """
        self.obs = obs
        obs.bind(self)
        return self

    # -- registry ------------------------------------------------------------------

    def node_rt(self, node_id: int) -> NodeRuntime:
        """NodeRuntime by node id."""
        return self.node_runtimes[node_id]

    def comm_info(self, job_id: int, comm_id: int) -> CommInfo:
        """Communicator metadata (allocation-free interned lookup)."""
        try:
            return self._comm_cache[job_id][comm_id]
        except KeyError:
            info = self.comms[(job_id, comm_id)]
            self._comm_cache.setdefault(job_id, {})[comm_id] = info
            return info

    def register_comm(self, job: Job, world_ranks: Sequence[int]) -> CommInfo:
        """Create (or fetch) the communicator over a subset of a job's ranks.

        Every member rank calls split() independently; deduplication by
        member set makes them all land on the same communicator, the way
        a real MPI_Comm_split agrees collectively.
        """
        member_key = (job.id, tuple(world_ranks))
        existing = self._comm_by_members.get(member_key)
        if existing is not None:
            return existing
        comm_id = sum(1 for key in self.comms if key[0] == job.id)
        info = CommInfo(job, comm_id, world_ranks)
        self.comms[(job.id, comm_id)] = info
        self._comm_cache.setdefault(job.id, {})[comm_id] = info
        self._comm_by_members[member_key] = info
        return info

    # -- job lifecycle ------------------------------------------------------------------

    def launch(self, spec: JobSpec, placement: Optional[List[int]] = None) -> Job:
        """Start a job: STORM-style gang launch of one process per rank.

        Each rank pays the one-time BCS runtime initialization cost, then
        starts executing at a slice boundary.
        """
        if placement is None:
            placement = block_placement(
                spec.n_ranks,
                self.cluster.n_compute_nodes,
                self.cluster.spec.cpus_per_node,
            )
        job = Job(self.env, spec, placement)
        job.started_at = self.env.now
        self.jobs[job.id] = job
        self.job_stats[job.id] = Counter()
        self.register_comm(job, range(spec.n_ranks))  # comm 0 = world
        self.arena.activate(job.nodes)
        self.active_node_ids = sorted(
            set(self.active_node_ids) | set(job.nodes)
        )
        if self._aggregated:
            # Materialize the per-node machinery (NodeRuntime + Strobe
            # Receiver) for every node the job touches, in ascending id
            # order, *before* the strobe loop and the rank processes
            # start.  A fresh receiver's init event is inert — it blocks
            # on an empty inbox, exactly like an eagerly built receiver
            # that has been idle — so launch-time materialization keeps
            # the event sequence, and therefore virtual time, identical
            # to the eager oracle.
            for node_id in job.nodes:
                self.receivers[node_id]
        self.stopped = False
        self.ss.start()

        from ..mpi.bcs_backend import BcsCommunicator  # avoid import cycle
        from ..mpi.context import AppContext

        for rank in range(spec.n_ranks):
            handle = RankHandle(self, job, rank)
            comm = BcsCommunicator(self, handle, self.comm_info(job.id, 0), rank)
            ctx = AppContext(
                self.env,
                comm,
                handle.node_id,
                compute_fn=self._make_compute(handle),
                job=job,
                params=spec.params,
            )
            proc = self.env.process(
                self._rank_body(job, rank, ctx, handle),
                name=f"{spec.name}.r{rank}",
            )
            self.rank_procs[(job.id, rank)] = proc
        return job

    def _make_compute(self, handle: RankHandle):
        def compute(node_id: int, duration: int):
            overhead = handle.take_overhead()
            yield from handle.nm.compute(handle.job.id, duration + overhead)

        return compute

    def _rank_body(self, job: Job, rank: int, ctx, handle: RankHandle):
        from ..sim.errors import Interrupt

        try:
            t_launch = self.env.now
            if self.config.init_cost:
                yield self.env.timeout(self.config.init_cost)
            # Processes start executing at a slice boundary (gang launch).
            yield handle.nrt.slice_start.wait()
            obs = self.obs
            if obs is not None and obs.spans is not None:
                obs.spans.rank_started(job.id, rank, t_launch, self.env.now)
            result = yield from job.spec.app(ctx, **job.spec.params)
        except Interrupt as intr:
            # Killed by failure injection: the job is torn down.
            self.stats["ranks_killed"] += 1
            job.mark_failed(intr.cause)
            return
        finally:
            self.rank_procs.pop((job.id, rank), None)
        job.rank_finished(rank, result)
        obs = self.obs
        if obs is not None and obs.spans is not None:
            obs.spans.rank_finished(job.id, rank, self.env.now)

    def run_job(
        self,
        spec: JobSpec,
        placement: Optional[List[int]] = None,
        max_time: Optional[int] = None,
    ) -> Job:
        """Launch a job and run the simulation until it completes.

        ``max_time`` (ns of simulated time) is a watchdog: an application
        deadlock (e.g. an unmatched blocking send) would otherwise spin
        the strobe loop forever.
        """
        job = self.launch(spec, placement)
        if max_time is None:
            self.env.run(until=job.done)
        else:
            self.env.run(until=self.env.any_of([job.done, self.env.timeout(max_time)]))
            if not job.complete:
                from ..debug.diagnostics import diagnose

                raise RuntimeError(
                    f"job {spec.name!r} did not finish within {max_time} ns "
                    "(likely an application communication deadlock).\n"
                    f"stall diagnosis:\n{diagnose(self)}"
                )
        return job

    def stop(self) -> None:
        """Ask the Strobe Sender to stop at the next slice boundary."""
        self.stopped = True

    def idle(self) -> bool:
        """Nothing left to do: no running jobs (failed count as
        terminal) and no backlog (e.g. system/PFS transfers)."""
        return (
            all(job.terminal for job in self.jobs.values()) and not self.any_work()
        )

    def kill_job(self, job: Job, cause: str = "failure") -> None:
        """Tear a job down: interrupt every live rank now, purge its
        runtime state at the next slice boundary.

        The deferral is the paper's checkpointing insight in action: in
        the middle of a slice, NIC threads may be blocked on partner
        events of an in-flight collective, and yanking that state would
        wedge the microphase barrier.  At the slice boundary the global
        communication state is consistent and can be dropped wholesale.
        """
        job.mark_failed(cause)
        for (job_id, rank), proc in list(self.rank_procs.items()):
            if job_id == job.id and proc.is_alive and proc.target is not None:
                proc.interrupt(cause)

        def purge_hook(_slice_no):
            self.purge_job(job.id)
            self.on_slice_start.remove(purge_hook)

        self.on_slice_start.append(purge_hook)

    def purge_job(self, job_id: int) -> None:
        """Drop every trace of a job from the runtime's queues.

        Used after a failure so a relaunched instance starts from clean
        communication state (the paper's checkpointing rationale: at a
        slice boundary the global communication state is known, so it
        can be discarded and rebuilt consistently).
        """

        def keep(desc) -> bool:
            return desc.job_id != job_id

        # Only materialized nodes can hold job state (descriptors are
        # posted and delivered through node runtimes), so the purge
        # never needs to force a lazy table.
        for nrt in existing_node_runtimes(self.node_runtimes):
            nrt.posted_sends = [d for d in nrt.posted_sends if keep(d)]
            nrt.posted_recvs = [d for d in nrt.posted_recvs if keep(d)]
            nrt.posted_colls = [d for d in nrt.posted_colls if keep(d)]
            nrt.arrived_sends = [d for d in nrt.arrived_sends if keep(d)]
            nrt.new_matches = [m for m in nrt.new_matches if keep(m.send)]
            nrt.matcher.purge_job(job_id)
            dropped = [
                key for key in nrt.coll_state if key[0] == job_id
            ]
            for key in dropped:
                nrt.pending_epochs -= sum(
                    0 if ep.executed else 1 for ep in nrt.coll_state[key].values()
                )
                del nrt.coll_state[key]
            nrt.reduce_inbox = {
                k: v for k, v in nrt.reduce_inbox.items() if k[0] != job_id
            }
        self.scheduler.in_flight = [
            m for m in self.scheduler.in_flight if keep(m.send)
        ]
        self.stats["jobs_purged"] += 1

    # -- slice coordination hooks (called by the Strobe Sender) -------------------------
    #
    # Every query below has two implementations returning identical
    # results: the incremental one reads the lazily pruned active-node
    # sets (O(members) per slice), the ``*_scan`` one recomputes from
    # every node runtime (O(cluster) per slice).  The scan path is the
    # reference oracle — selectable with
    # ``BcsConfig(incremental_active_sets=False)`` and pinned against the
    # incremental path by ``tests/bcs/test_active_sets.py``.

    def _prune_live(self, node_set: set, pred) -> bool:
        """Evict stale members of ``node_set``; True if any remain.

        Allocation-free in the steady state: the eviction list is only
        materialized when a stale member is actually found.
        """
        if not node_set:
            return False
        rts = self.node_runtimes
        dead = None
        for n in node_set:
            if not pred(rts[n]):
                if dead is None:
                    dead = [n]
                else:
                    dead.append(n)
        if dead is not None:
            node_set.difference_update(dead)
        return bool(node_set)

    def _live_sorted(self, node_set: set, pred) -> List[int]:
        """Sorted live members of ``node_set`` (stale ones evicted)."""
        self._prune_live(node_set, pred)
        return sorted(node_set)

    def any_work(self) -> bool:
        """Anything at all for this slice's microphases?"""
        if self.scheduler.in_flight:
            return True
        if self._incremental:
            return (
                self._prune_live(self._dem_set, _dem_pending)
                or self._prune_live(self._arrived_set, _arrived_pending)
                or self._prune_live(self._coll_set, _coll_pending)
            )
        return any(nrt.has_work() for nrt in self.node_runtimes)

    def any_work_scan(self) -> bool:
        """Full-scan oracle for :meth:`any_work`."""
        return bool(self.scheduler.in_flight) or any(
            nrt.has_work() for nrt in self.node_runtimes
        )

    def slice_work(self) -> tuple:
        """Combined per-slice query: ``(any_work(), dem_nodes())``.

        The Strobe Sender needs both answers back to back with no yield
        point in between, so one DEM-set prune can serve both instead of
        pruning it once for ``any_work`` and again for ``dem_nodes``.
        Results are identical to calling the two queries in sequence.
        """
        dem = self.dem_nodes()
        if dem or self.scheduler.in_flight:
            return True, dem
        if self._incremental:
            active = self._prune_live(
                self._arrived_set, _arrived_pending
            ) or self._prune_live(self._coll_set, _coll_pending)
        else:
            active = any(
                nrt.arrived_sends or nrt.pending_epochs
                for nrt in self.node_runtimes
            )
        return active, dem

    def dem_nodes(self) -> List[int]:
        """Nodes with descriptors to drain/exchange."""
        if self._incremental:
            return self._live_sorted(self._dem_set, _dem_pending)
        return self.dem_nodes_scan()

    def dem_nodes_scan(self) -> List[int]:
        """Full-scan oracle for :meth:`dem_nodes`."""
        return [
            nrt.node_id
            for nrt in self.node_runtimes
            if nrt.posted_sends or nrt.posted_recvs or nrt.posted_colls
        ]

    def _msm_schedulable(self, nrt) -> bool:
        """Does ``nrt`` host a root with an epoch ready to CaW-schedule?"""
        for (job_id, comm_id), epochs in nrt.coll_state.items():
            info = self.comm_info(job_id, comm_id)
            if info.root_node != nrt.node_id:
                continue
            nxt = nrt.sched_flag.get((job_id, comm_id), 0) + 1
            ep = epochs.get(nxt)
            if ep is not None and not ep.scheduled and ep.descs:
                return True
        return False

    def msm_nodes(self) -> List[int]:
        """Nodes with arrived sends to match or collectives to schedule."""
        if not self._incremental:
            return self.msm_nodes_scan()
        self._prune_live(self._arrived_set, _arrived_pending)
        out = set(self._arrived_set)
        if self._prune_live(self._coll_set, _coll_pending):
            rts = self.node_runtimes
            for node_id in self._coll_set:
                if node_id not in out and self._msm_schedulable(rts[node_id]):
                    out.add(node_id)
        return sorted(out)

    def msm_nodes_scan(self) -> List[int]:
        """Full-scan oracle for :meth:`msm_nodes`."""
        out = []
        for nrt in self.node_runtimes:
            if nrt.arrived_sends:
                out.append(nrt.node_id)
                continue
            if self._msm_schedulable(nrt):
                out.append(nrt.node_id)
        return out

    def _node_has_scheduled(self, nrt, kinds: tuple, driver_only: bool) -> bool:
        for (job_id, comm_id), epochs in nrt.coll_state.items():
            info = self.comm_info(job_id, comm_id)
            for epoch, ep in epochs.items():
                if ep.executed or ep.kind not in kinds:
                    continue
                if not self.core.gas.read(
                    nrt.node_id, ("go", job_id, comm_id, epoch), False
                ):
                    continue
                if driver_only:
                    root = ep.root or 0
                    if info.node_of(root) == nrt.node_id:
                        return True
                else:
                    return True
        return False

    def _nodes_with_scheduled(self, kinds: tuple, driver_only: bool) -> List[int]:
        rts = self.node_runtimes
        if self._incremental:
            if not self._prune_live(self._coll_set, _coll_pending):
                return []
            out = [
                node_id
                for node_id in self._coll_set
                if self._node_has_scheduled(rts[node_id], kinds, driver_only)
            ]
            out.sort()
            return out
        return [
            node_id
            for node_id in range(len(rts))
            if self._node_has_scheduled(rts[node_id], kinds, driver_only)
        ]

    def bbm_nodes(self) -> List[int]:
        """Nodes driving a scheduled barrier/broadcast this slice."""
        return self._nodes_with_scheduled(("barrier", "bcast"), driver_only=True)

    def rm_nodes(self) -> List[int]:
        """Nodes participating in a scheduled reduce this slice."""
        return self._nodes_with_scheduled(("reduce", "allreduce"), driver_only=False)

    def global_schedule(self):
        """Collect MSM matches and grant this slice's chunks."""
        rts = self.node_runtimes
        if self._incremental:
            for node_id in sorted(self._match_set):
                nrt = rts[node_id]
                if nrt.new_matches:
                    self.scheduler.add_matches(nrt.new_matches)
                    nrt.new_matches = []
        else:
            for nrt in rts:
                if nrt.new_matches:
                    self.scheduler.add_matches(nrt.new_matches)
                    nrt.new_matches = []
        self._match_set.clear()
        return self.scheduler.schedule_slice()

    # -- telemetry accessors (read-only; never enter the event queue) -------------------

    def queue_depths(self) -> tuple:
        """Machine totals ``(posted_sends, posted_recvs, posted_colls,
        arrived_sends)`` — O(active nodes) on the incremental path."""
        rts = self.node_runtimes
        if self._incremental:
            sends = recvs = colls = 0
            for node_id in self._live_sorted(self._dem_set, _dem_pending):
                nrt = rts[node_id]
                sends += len(nrt.posted_sends)
                recvs += len(nrt.posted_recvs)
                colls += len(nrt.posted_colls)
            arrived = sum(
                len(rts[n].arrived_sends)
                for n in self._live_sorted(self._arrived_set, _arrived_pending)
            )
            return sends, recvs, colls, arrived
        sends = recvs = colls = arrived = 0
        for nrt in rts:
            sends += len(nrt.posted_sends)
            recvs += len(nrt.posted_recvs)
            colls += len(nrt.posted_colls)
            arrived += len(nrt.arrived_sends)
        return sends, recvs, colls, arrived

    def matcher_pending_totals(self) -> tuple:
        """Machine totals ``(unexpected sends, posted receives)``.

        O(1) on the incremental path (the shared aggregate); the scan
        path polls every node's matcher, as telemetry originally did.
        """
        if self._incremental:
            totals = self.matcher_totals
            return totals.unexpected, totals.posted
        unexpected = posted = 0
        for nrt in self.node_runtimes:
            u, p = nrt.matcher.pending_counts
            unexpected += u
            posted += p
        return unexpected, posted

    def communication_state(self) -> dict:
        """Snapshot of the global communication state.

        The paper's §1 argument made concrete: "the fact that the
        communication state of all processes is known at the beginning
        of every time slice facilitates the implementation of
        checkpointing and debugging mechanisms."  At a slice boundary
        this dictionary *is* that state — everything in flight, per
        node, plus the scheduler backlog.  Deterministic runs produce
        identical snapshots at identical slices.
        """
        per_node = {}
        # Materialized-only: a node with no Python object by definition
        # has no in-flight state, and all-zero entries are filtered out
        # below anyway — the snapshot is byte-identical to a full scan.
        for nrt in existing_node_runtimes(self.node_runtimes):
            unexpected, posted = nrt.matcher.pending_counts
            entry = {
                "posted_sends": len(nrt.posted_sends),
                "posted_recvs": len(nrt.posted_recvs),
                "posted_collectives": len(nrt.posted_colls),
                "arrived_sends": len(nrt.arrived_sends),
                "unexpected": unexpected,
                "pending_recvs": posted,
                "pending_coll_epochs": nrt.pending_epochs,
            }
            if any(entry.values()):
                per_node[nrt.node_id] = entry
        return {
            "time": self.env.now,
            "slice": self.slice_no,
            "nodes": per_node,
            "in_flight_matches": len(self.scheduler.in_flight),
            "backlog_bytes": self.scheduler.backlog_bytes,
        }

    def __repr__(self) -> str:
        return (
            f"<BcsRuntime slice={self.slice_no} jobs={len(self.jobs)} "
            f"t={self.env.now}>"
        )
