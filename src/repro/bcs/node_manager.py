"""The Node Manager dæmon: local process scheduling.

In the paper's user-level prototype the NM (not the kernel) schedules the
application processes at every time slice (§4.5).  Two consequences are
modelled here:

1. **Restart at slice boundaries** — a process whose blocking operation
   completed during slice *i* is restarted at the beginning of slice
   *i+1* (the 1.5-slice average delay of §3.1).  Implemented by
   :meth:`block_on`, which the BCS API uses for every blocking call.
2. **The scheduling tax** — the NM daemon steals host cycles every slice;
   computation is stretched by ``nm_compute_tax`` (this is the §4.5
   "noise" anomaly of the user-level implementation, and what a
   kernel-level implementation would remove).

With gang scheduling (STORM extension), the NM additionally only lets a
job's processes compute while that job holds the node — see
:mod:`repro.storm.gang`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Sequence

import numpy as np

from ..sim import AllOf

if TYPE_CHECKING:  # pragma: no cover
    from .descriptors import BcsRequest
    from .threads import NodeRuntime


class NodeArena:
    """SoA arena for per-node scalar state (flyweight node records).

    At 64k nodes, keeping one Python object graph per node just to hold
    a handful of scalars makes the GC trace millions of objects per
    gen-2 pass.  The arena hoists those scalars into flat numpy arrays
    owned by the runtime — O(1) objects regardless of machine size:

    - ``mphase_done``: the strobe protocol's per-node microphase
      completion counters.  Registered as an array-backed slot in the
      :class:`~repro.core.global_memory.GlobalAddressSpace`, so the
      Strobe Receivers' per-node ``gas.write`` (oracle path) and the
      Strobe Sender's batched increment (aggregated path) update the
      same storage and every ``gas.read`` sees it transparently.
    - ``active``: which nodes host at least one rank of any job; the
      strobe multicast's destination set and the lazy materializer's
      "must exist" set.
    """

    __slots__ = ("n_nodes", "mphase_done", "active")

    def __init__(self, n_nodes: int):
        self.n_nodes = n_nodes
        self.mphase_done = np.zeros(n_nodes, dtype=np.int64)
        self.active = np.zeros(n_nodes, dtype=bool)

    def activate(self, node_ids: Iterable[int]) -> None:
        """Mark ``node_ids`` as hosting ranks (never un-set per job —
        matches the runtime's grow-only ``active_node_ids`` list)."""
        ids = list(node_ids)
        if ids:
            self.active[ids] = True

    def active_ids(self) -> List[int]:
        """Sorted ids of all active nodes."""
        return np.flatnonzero(self.active).tolist()

    @property
    def n_active(self) -> int:
        """Number of active nodes."""
        return int(self.active.sum())

    def __repr__(self) -> str:
        return f"<NodeArena n={self.n_nodes} active={self.n_active}>"


class NodeManager:
    """Per-node process scheduler of the BCS runtime."""

    def __init__(self, nrt: "NodeRuntime"):
        self.nrt = nrt
        self.env = nrt.env
        #: Optional gang-scheduling hook: job_id -> Gate (see storm.gang).
        self.job_gates: dict = {}

    # -- computation ------------------------------------------------------------

    def compute(self, job_id: int, duration: int):
        """Run ``duration`` ns of application computation.

        The effective duration includes the NM tax; the node's CPU
        resource serializes against other local processes and noise
        daemons.  Under gang scheduling the computation only progresses
        while the job holds the node.
        """
        if duration <= 0:
            return
        effective = duration + int(duration * self.nrt.config.nm_compute_tax)
        stats = self.nrt.runtime.job_stats.get(job_id)
        if stats is not None:
            stats["cpu_ns"] += effective
        gate = self.job_gates.get(job_id)
        if gate is None:
            yield from self.nrt.node.host_compute(effective)
            return
        # Gang-scheduled: compute in slice-bounded quanta while active.
        remaining = effective
        cfg = self.nrt.config
        while remaining > 0:
            yield gate.wait()
            quantum_end = self.nrt.slice_start_time + cfg.timeslice
            quantum = min(remaining, max(quantum_end - self.env.now, cfg.timeslice // 8))
            yield from self.nrt.node.cpu.held(quantum)
            remaining -= quantum

    # -- blocking -------------------------------------------------------------------

    def block_on(self, requests: Sequence["BcsRequest"]):
        """Suspend until every request completes, then restart the
        process at the next slice boundary.

        If everything is already complete the process continues
        immediately (this is what makes completed non-blocking
        communication free, §3.2)."""
        pending = [r.done for r in requests if not r.complete]
        if not pending:
            return
        if len(pending) == 1:
            yield pending[0]
        else:
            yield AllOf(self.env, pending)
        # NM restarts us at the next slice start.
        yield self.nrt.slice_start.wait()

    def __repr__(self) -> str:
        return f"<NodeManager node={self.nrt.node_id}>"
