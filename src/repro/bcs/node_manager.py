"""The Node Manager dæmon: local process scheduling.

In the paper's user-level prototype the NM (not the kernel) schedules the
application processes at every time slice (§4.5).  Two consequences are
modelled here:

1. **Restart at slice boundaries** — a process whose blocking operation
   completed during slice *i* is restarted at the beginning of slice
   *i+1* (the 1.5-slice average delay of §3.1).  Implemented by
   :meth:`block_on`, which the BCS API uses for every blocking call.
2. **The scheduling tax** — the NM daemon steals host cycles every slice;
   computation is stretched by ``nm_compute_tax`` (this is the §4.5
   "noise" anomaly of the user-level implementation, and what a
   kernel-level implementation would remove).

With gang scheduling (STORM extension), the NM additionally only lets a
job's processes compute while that job holds the node — see
:mod:`repro.storm.gang`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from ..sim import AllOf

if TYPE_CHECKING:  # pragma: no cover
    from .descriptors import BcsRequest
    from .threads import NodeRuntime


class NodeManager:
    """Per-node process scheduler of the BCS runtime."""

    def __init__(self, nrt: "NodeRuntime"):
        self.nrt = nrt
        self.env = nrt.env
        #: Optional gang-scheduling hook: job_id -> Gate (see storm.gang).
        self.job_gates: dict = {}

    # -- computation ------------------------------------------------------------

    def compute(self, job_id: int, duration: int):
        """Run ``duration`` ns of application computation.

        The effective duration includes the NM tax; the node's CPU
        resource serializes against other local processes and noise
        daemons.  Under gang scheduling the computation only progresses
        while the job holds the node.
        """
        if duration <= 0:
            return
        effective = duration + int(duration * self.nrt.config.nm_compute_tax)
        stats = self.nrt.runtime.job_stats.get(job_id)
        if stats is not None:
            stats["cpu_ns"] += effective
        gate = self.job_gates.get(job_id)
        if gate is None:
            yield from self.nrt.node.host_compute(effective)
            return
        # Gang-scheduled: compute in slice-bounded quanta while active.
        remaining = effective
        cfg = self.nrt.config
        while remaining > 0:
            yield gate.wait()
            quantum_end = self.nrt.slice_start_time + cfg.timeslice
            quantum = min(remaining, max(quantum_end - self.env.now, cfg.timeslice // 8))
            yield from self.nrt.node.cpu.held(quantum)
            remaining -= quantum

    # -- blocking -------------------------------------------------------------------

    def block_on(self, requests: Sequence["BcsRequest"]):
        """Suspend until every request completes, then restart the
        process at the next slice boundary.

        If everything is already complete the process continues
        immediately (this is what makes completed non-blocking
        communication free, §3.2)."""
        pending = [r.done for r in requests if not r.complete]
        if not pending:
            return
        if len(pending) == 1:
            yield pending[0]
        else:
            yield AllOf(self.env, pending)
        # NM restarts us at the next slice start.
        yield self.nrt.slice_start.wait()

    def __repr__(self) -> str:
        return f"<NodeManager node={self.nrt.node_id}>"
