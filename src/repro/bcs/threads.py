"""Per-node runtime state and the five NIC threads (paper §4.1).

Each compute node runs, on its NIC:

- **BS** (Buffer Sender): during the Descriptor Exchange Microphase,
  delivers every send descriptor posted in the previous slice to the
  Buffer Receiver of the destination node.
- **BR** (Buffer Receiver): drains locally posted receive and collective
  descriptors; in the Message Scheduling Microphase matches remote send
  descriptors against local receives, chunks oversized messages, and for
  collectives issues the Compare-And-Write query broadcast.
- **DH** (DMA Helper): performs the scheduled point-to-point gets in the
  point-to-point microphase.
- **CH** (Collective Helper): performs barrier/broadcast in the
  broadcast-and-barrier microphase.
- **RH** (Reduce Helper): performs reduce/allreduce on the NIC (softfloat)
  in the reduce microphase, using a binomial tree.

The Strobe Receiver logic that wakes these threads per microphase lives
in :mod:`repro.bcs.strobe`; this module holds the thread bodies and the
:class:`NodeRuntime` state they share.
"""

from __future__ import annotations

import copy
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from ..sim import Signal
from .config import BcsConfig
from .descriptors import (
    CollectiveDescriptor,
    Match,
    RecvDescriptor,
    SendDescriptor,
    payload_nbytes,
)
from .matching import make_matcher

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import BcsRuntime


def _copy_payload(payload):
    """Deep-enough copy of a message payload (arrays and bytes)."""
    if isinstance(payload, np.ndarray):
        return payload.copy()
    if isinstance(payload, (bytes, bytearray)):
        return bytes(payload)
    if payload is None:
        return None
    return copy.deepcopy(payload)


class CollEpoch:
    """Per-(job, comm, epoch) collective state on one node."""

    __slots__ = (
        "epoch",
        "kind",
        "root",
        "op",
        "size",
        "descs",
        "executed",
        "scheduled",
    )

    def __init__(self, epoch: int):
        self.epoch = epoch
        self.kind: Optional[str] = None
        self.root: Optional[int] = None
        self.op: Optional[str] = None
        self.size: int = 0
        #: Local descriptors (one per local rank that has posted).
        self.descs: List[CollectiveDescriptor] = []
        self.executed = False
        self.scheduled = False

    def absorb(self, desc: CollectiveDescriptor) -> None:
        """Record one local rank's descriptor (consistency-checked)."""
        if self.kind is None:
            self.kind = desc.kind
            self.root = desc.root
            self.op = desc.op
            self.size = desc.size
        elif (self.kind, self.root) != (desc.kind, desc.root):
            raise RuntimeError(
                f"collective mismatch at epoch {self.epoch}: "
                f"{self.kind}/{self.root} vs {desc.kind}/{desc.root}"
            )
        self.descs.append(desc)


class _SliceSignal(Signal):
    """Slice-boundary signal that registers its node as a wake target.

    The Strobe Sender only pulses signals that have waiters (in
    ascending node id, preserving the historical wake order); pulsing a
    waiter-less signal is a no-op, so skipping it cannot change what any
    process observes.  The first ``wait()`` since the last boundary adds
    the node to the runtime's wake set.
    """

    __slots__ = ("_nrt",)

    def __init__(self, nrt: "NodeRuntime"):
        super().__init__(nrt.env, name=f"n{nrt.node_id}.slice")
        self._nrt = nrt

    def wait(self):
        if not self._waiters:
            nrt = self._nrt
            nrt.runtime._slice_waiters.add(nrt.node_id)
        return super().wait()


class NodeRuntime:
    """Everything the BCS runtime keeps on one compute node."""

    def __init__(self, runtime: "BcsRuntime", node_id: int):
        self.runtime = runtime
        self.node_id = node_id
        self.node = runtime.cluster.node(node_id)
        self.nic = self.node.nic
        self.config: BcsConfig = runtime.config
        self.env = runtime.env
        # Lazily materialized nodes (aggregated-strobe mode) can be
        # created after observability was attached; inherit the hub and
        # register this node's trace tracks so the fresh NIC reports
        # occupancy spans like its eager peers.  (During eager
        # construction the runtime has no ``obs`` yet — binding covers
        # those nodes.)
        obs = getattr(runtime, "obs", None)
        if obs is not None:
            self.nic.obs = obs
            node_track = getattr(obs, "node_track", None)
            if node_track is not None:
                node_track(node_id)

        #: Pulsed by the Strobe Sender at every slice boundary; the Node
        #: Manager uses it to restart processes whose ops completed.
        self.slice_start = _SliceSignal(self)

        # Descriptor FIFOs (shared-memory post queues, paper §4.5).
        self.posted_sends: List[SendDescriptor] = []
        self.posted_recvs: List[RecvDescriptor] = []
        self.posted_colls: List[CollectiveDescriptor] = []

        # Active-set membership handles (shared with the runtime; a node
        # joins on the mutation that creates work, leaves lazily when a
        # query finds it idle — see repro.bcs.runtime).
        self._dem_set = runtime._dem_set
        self._arrived_set = runtime._arrived_set
        self._coll_set = runtime._coll_set

        # BR state.
        self.matcher = make_matcher(
            self.config.matcher, node_id, runtime.matcher_totals
        )
        #: Send descriptors delivered by remote BS threads this slice.
        self.arrived_sends: List[SendDescriptor] = []
        #: Matches created in the current MSM (collected by the runtime).
        self.new_matches: List[Match] = []
        #: Collective bookkeeping per (job_id, comm_id).  Executed epochs
        #: are pruned; this only ever holds in-flight epochs.
        self.coll_state: Dict[tuple, Dict[int, CollEpoch]] = {}
        #: Count of in-flight (not yet executed) collective epochs.
        self.pending_epochs = 0
        #: Highest epoch with all local ranks posted, per (job, comm).
        self.local_flag: Dict[tuple, int] = {}
        #: Highest epoch already CaW-scheduled, per (job, comm) (root node).
        self.sched_flag: Dict[tuple, int] = {}
        #: Reduce partial buffers delivered by remote RH threads.
        self.reduce_inbox: Dict[tuple, list] = {}

    # -- host-side posting (called from application processes) ---------------------

    def post_send(self, desc: SendDescriptor) -> None:
        """Append a send descriptor to the NIC FIFO (no system call)."""
        desc.posted_at = self.env.now
        self.posted_sends.append(desc)
        self._dem_set.add(self.node_id)
        self.runtime.stats["descriptors_posted"] += 1

    def post_recv(self, desc: RecvDescriptor) -> None:
        """Append a receive descriptor to the NIC FIFO."""
        desc.posted_at = self.env.now
        self.posted_recvs.append(desc)
        self._dem_set.add(self.node_id)
        self.runtime.stats["descriptors_posted"] += 1

    def post_collective(self, desc: CollectiveDescriptor) -> None:
        """Append a collective descriptor to the NIC FIFO."""
        desc.posted_at = self.env.now
        self.posted_colls.append(desc)
        self._dem_set.add(self.node_id)
        self.runtime.stats["descriptors_posted"] += 1

    def deliver_send(self, desc: SendDescriptor) -> None:
        """Accept a send descriptor shipped by a remote Buffer Sender."""
        self.arrived_sends.append(desc)
        self._arrived_set.add(self.node_id)

    def has_work(self) -> bool:
        """Anything for the next slice's microphases to do on this node?"""
        return bool(
            self.posted_sends
            or self.posted_recvs
            or self.posted_colls
            or self.arrived_sends
            or self.pending_epochs
        )

    @property
    def slice_start_time(self) -> int:
        """Start time of the current slice.

        Shared machine state written once per slice by the Strobe Sender
        (``runtime.slice_start_time``) — the per-node ``begin_slice``
        loop it replaces cost O(nodes) per slice on idle clusters.
        """
        return self.runtime.slice_start_time

    def _drain_posted(self, queue: list) -> list:
        """Remove and return descriptors posted before this slice's DEM.

        A descriptor posted exactly at the slice boundary (a process
        restarted by the NM posts immediately) still precedes the DEM,
        which starts one strobe latency later, so the comparison is
        inclusive.

        ``posted_at`` is monotone nondecreasing along the FIFO (posts
        stamp ``env.now``; purges preserve order), so the common whole
        queue / empty cases are O(1) checks at the ends and the mixed
        case is a binary-search split instead of two full list scans.
        """
        cutoff = self.slice_start_time
        if not queue or queue[0].posted_at > cutoff:
            return []
        if queue[-1].posted_at <= cutoff:
            take = queue[:]
            queue.clear()
            return take
        lo, hi = 0, len(queue)
        while lo < hi:
            mid = (lo + hi) // 2
            if queue[mid].posted_at <= cutoff:
                lo = mid + 1
            else:
                hi = mid
        take = queue[:lo]
        del queue[:lo]
        return take

    # -- collective helpers ------------------------------------------------------------

    def _epoch(self, job_id: int, comm_id: int, epoch: int) -> CollEpoch:
        epochs = self.coll_state.setdefault((job_id, comm_id), {})
        ep = epochs.get(epoch)
        if ep is None:
            ep = CollEpoch(epoch)
            epochs[epoch] = ep
            self.pending_epochs += 1
            self._coll_set.add(self.node_id)
        return ep

    def complete_collective(self, job_id: int, comm_id: int, epoch: int, value) -> None:
        """Finish every local request of one collective epoch.

        Invoked at data-commit time (broadcast payload writer, or the
        reduce finalization): each blocked local rank's request gets its
        result and its process becomes eligible for restart at the next
        slice boundary.  The epoch record is pruned afterwards so state
        stays bounded on long runs.
        """
        epochs = self.coll_state.get((job_id, comm_id), {})
        ep = epochs.get(epoch)
        if ep is None or ep.executed:
            return
        ep.executed = True
        self.pending_epochs -= 1
        del epochs[epoch]
        for desc in ep.descs:
            if desc.kind == "reduce":
                # Only the MPI root receives the reduced value.
                result = value if desc.rank == (desc.root or 0) else None
            else:
                result = value
            desc.request.payload = _copy_payload(result)
            desc.request._finish()
        self.runtime.stats["collectives_completed"] += 1
        obs = self.runtime.obs
        if obs is not None and obs.spans is not None:
            obs.spans.coll_completed(job_id, comm_id, epoch)
        if self.config.batched_matching:
            # The epoch record was the last holder of these descriptors.
            pools = self.runtime.pools
            for desc in ep.descs:
                pools.release_coll(desc)
            ep.descs.clear()

    def __repr__(self) -> str:
        return f"<NodeRuntime node={self.node_id}>"


# ---------------------------------------------------------------------------------
# NIC threads
# ---------------------------------------------------------------------------------


class BufferSender:
    """BS: ships posted send descriptors to destination BRs (DEM)."""

    def __init__(self, nrt: NodeRuntime):
        self.nrt = nrt

    def dem_phase(self):
        """Deliver each send descriptor posted in the previous slice."""
        nrt = self.nrt
        runtime = nrt.runtime
        obs = runtime.obs
        for desc in nrt._drain_posted(nrt.posted_sends):
            info = runtime.comm_info(desc.job_id, desc.comm_id)
            dst_node = info.node_of(desc.dst_rank)
            yield from nrt.nic.compute(nrt.config.nic_descriptor_cost)
            yield from runtime.cluster.fabric.unicast(
                nrt.node_id, dst_node, nrt.config.descriptor_bytes, label="desc"
            )
            runtime.node_rt(dst_node).deliver_send(desc)
            runtime.stats["descriptors_exchanged"] += 1
            if obs is not None and obs.spans is not None:
                obs.spans.msg_exchanged(desc, nrt.node_id, dst_node)


class BufferReceiver:
    """BR: drains local recv/collective descriptors (DEM) and matches (MSM)."""

    def __init__(self, nrt: NodeRuntime):
        self.nrt = nrt

    def dem_phase(self):
        """Pre-process local receive and collective descriptors.

        With ``BcsConfig.batched_matching`` the slice's descriptors are
        processed as one batch: a single NIC hold covers the whole run
        (the thread processor is uncontended during the BR's turn, so
        ``n`` sequential holds and one hold of ``n × cost`` end at the
        same instant) and the matcher consumes the receives through its
        vectorized batch API.  The per-descriptor loop below is the
        differential oracle.
        """
        nrt = self.nrt
        cost = nrt.config.nic_descriptor_cost
        if nrt.config.batched_matching:
            recvs = nrt._drain_posted(nrt.posted_recvs)
            if recvs:
                yield from nrt.nic.compute_batch(cost, len(recvs))
                for _, match in nrt.matcher.add_recv_batch(recvs):
                    self._register_match(match)
            colls = nrt._drain_posted(nrt.posted_colls)
            if colls:
                yield from nrt.nic.compute_batch(cost, len(colls))
                for desc in colls:
                    ep = nrt._epoch(desc.job_id, desc.comm_id, desc.epoch)
                    ep.absorb(desc)
            self._advance_local_flags()
            return

        for desc in nrt._drain_posted(nrt.posted_recvs):
            yield from nrt.nic.compute(cost)
            match = nrt.matcher.add_recv(desc)
            if match is not None:
                self._register_match(match)

        # Collectives: absorb descriptors; when all local ranks of a job
        # have posted an epoch, advance the node's local flag in global
        # memory (the variable the root's Compare-And-Write will test).
        for desc in nrt._drain_posted(nrt.posted_colls):
            yield from nrt.nic.compute(cost)
            ep = nrt._epoch(desc.job_id, desc.comm_id, desc.epoch)
            ep.absorb(desc)
        self._advance_local_flags()

    def _advance_local_flags(self):
        nrt = self.nrt
        runtime = nrt.runtime
        for (job_id, comm_id), epochs in nrt.coll_state.items():
            info = runtime.comm_info(job_id, comm_id)
            n_local = len(info.node_ranks.get(nrt.node_id, ()))
            flag = nrt.local_flag.get((job_id, comm_id), 0)
            while flag + 1 in epochs and len(epochs[flag + 1].descs) == n_local:
                flag += 1
            if flag != nrt.local_flag.get((job_id, comm_id), 0):
                nrt.local_flag[(job_id, comm_id)] = flag
                runtime.core.gas.write(
                    nrt.node_id, ("cflag", job_id, comm_id), flag
                )

    def msm_phase(self):
        """Match remote sends vs local recvs; CaW-schedule collectives."""
        nrt = self.nrt
        runtime = nrt.runtime

        arrived, nrt.arrived_sends = nrt.arrived_sends, []
        if arrived:
            if nrt.config.batched_matching:
                # Batched leg: one NIC hold, one vectorized matcher join.
                yield from nrt.nic.compute_batch(
                    nrt.config.nic_descriptor_cost, len(arrived)
                )
                for _, match in nrt.matcher.add_send_batch(arrived):
                    self._register_match(match)
            else:
                for send in arrived:
                    yield from nrt.nic.compute(nrt.config.nic_descriptor_cost)
                    match = nrt.matcher.add_send(send)
                    if match is not None:
                        self._register_match(match)

        # Collective scheduling: only the node hosting the communicator's
        # master process issues the query broadcast (paper §4.4).
        for (job_id, comm_id), epochs in nrt.coll_state.items():
            info = runtime.comm_info(job_id, comm_id)
            if info.root_node != nrt.node_id:
                continue
            next_epoch = nrt.sched_flag.get((job_id, comm_id), 0) + 1
            ep = epochs.get(next_epoch)
            if ep is None or ep.scheduled or not ep.descs:
                continue
            ready = yield from runtime.core.compare_and_write(
                nrt.node_id,
                info.nodes,
                ("cflag", job_id, comm_id),
                ">=",
                next_epoch,
                write_addr=("go", job_id, comm_id, next_epoch),
                write_value=True,
                default=0,
            )
            if ready:
                ep.scheduled = True
                nrt.sched_flag[(job_id, comm_id)] = next_epoch
                runtime.stats["collectives_scheduled"] += 1
                obs = runtime.obs
                if obs is not None and obs.spans is not None:
                    obs.spans.coll_scheduled(job_id, comm_id, next_epoch)

    def _register_match(self, match: Match) -> None:
        nrt = self.nrt
        info = nrt.runtime.comm_info(match.send.job_id, match.send.comm_id)
        match.src_node = info.node_of(match.send.src_rank)
        nrt.new_matches.append(match)
        nrt.runtime._match_set.add(nrt.node_id)
        nrt.runtime.stats["matches_created"] += 1
        obs = nrt.runtime.obs
        if obs is not None and obs.spans is not None:
            obs.spans.msg_matched(match)


class DmaHelper:
    """DH: executes the point-to-point gets scheduled for this slice."""

    def __init__(self, nrt: NodeRuntime):
        self.nrt = nrt

    def p2p_phase(self, granted: List[Match]):
        """Move every chunk whose destination is this node (in parallel)."""
        nrt = self.nrt
        mine = [m for m in granted if m.dst_node == nrt.node_id]
        if not mine:
            return
        procs = [
            nrt.env.process(self._move_chunk(m), name=f"dh{nrt.node_id}")
            for m in mine
        ]
        yield nrt.env.all_of(procs)

    def _move_chunk(self, match: Match):
        nrt = self.nrt
        runtime = nrt.runtime
        chunk = match.scheduled_now
        t0 = nrt.env.now
        yield from nrt.nic.compute(nrt.config.nic_descriptor_cost)
        # One-sided get: data flows src -> dst with no host involvement.
        yield from runtime.cluster.fabric.unicast(
            match.src_node, match.dst_node, chunk, label="p2p"
        )
        match.bytes_done += chunk
        match.scheduled_now = 0
        runtime.stats["bytes_transferred"] += chunk
        runtime.stats["chunks_moved"] += 1
        obs = runtime.obs
        if obs is not None and obs.spans is not None:
            obs.spans.msg_chunk(match, t0, nrt.env.now, chunk)
        if match.finished:
            self._deliver(match)

    def _deliver(self, match: Match) -> None:
        send, recv = match.send, match.recv
        recv.request.payload = _copy_payload(send.payload)
        recv.request.source = send.src_rank
        recv.request.tag = send.tag
        recv.request.size = send.size
        recv.request._finish()
        if not send.request.complete:  # strict (non-buffered) sends
            send.request._finish()
        runtime = self.nrt.runtime
        runtime.stats["messages_delivered"] += 1
        obs = runtime.obs
        if obs is not None and obs.spans is not None:
            obs.spans.msg_delivered(match)


class CollectiveHelper:
    """CH: performs scheduled barriers and broadcasts (BBM)."""

    def __init__(self, nrt: NodeRuntime):
        self.nrt = nrt

    def bbm_phase(self):
        """Run every barrier/bcast epoch CaW-scheduled for this slice.

        Only the root node's CH drives the hardware multicast; the
        payload writer completes requests on every participating node at
        commit time.
        """
        nrt = self.nrt
        runtime = nrt.runtime
        for (job_id, comm_id), epochs in nrt.coll_state.items():
            info = runtime.comm_info(job_id, comm_id)
            for epoch, ep in sorted(epochs.items()):
                if ep.executed or ep.kind not in ("barrier", "bcast"):
                    continue
                if not runtime.core.gas.read(
                    nrt.node_id, ("go", job_id, comm_id, epoch), False
                ):
                    continue
                root = ep.root if ep.kind == "bcast" else 0
                if info.node_of(root or 0) != nrt.node_id:
                    continue
                yield from self._run_bcast(info, ep)

    def _run_bcast(self, info, ep: CollEpoch):
        nrt = self.nrt
        runtime = nrt.runtime
        job_id, comm_id = info.job.id, info.comm_id
        if ep.kind == "bcast":
            root_desc = next(d for d in ep.descs if d.rank == (ep.root or 0))
            value = root_desc.payload
            size = ep.size
        else:  # barrier: a broadcast with no data (paper §4.4)
            value = None
            size = 0
        yield from nrt.nic.compute(nrt.config.nic_descriptor_cost)

        done = f"ch:{job_id}:{comm_id}:{ep.epoch}"
        runtime.core.xfer_and_signal(
            nrt.node_id,
            info.nodes,
            size=size,
            local_event=done,
            payload_writer=lambda node: runtime.node_rt(node).complete_collective(
                job_id, comm_id, ep.epoch, value
            ),
        )
        yield from runtime.core.test_event(nrt.node_id, done)


class ReduceHelper:
    """RH: performs scheduled reduces on the NIC via a binomial tree (RM)."""

    def __init__(self, nrt: NodeRuntime):
        self.nrt = nrt

    def rm_phase(self):
        """Participate in every reduce epoch scheduled for this slice."""
        nrt = self.nrt
        runtime = nrt.runtime
        work = []
        for (job_id, comm_id), epochs in nrt.coll_state.items():
            info = runtime.comm_info(job_id, comm_id)
            for epoch, ep in sorted(epochs.items()):
                if ep.executed or ep.kind not in ("reduce", "allreduce"):
                    continue
                if not runtime.core.gas.read(
                    nrt.node_id, ("go", job_id, comm_id, epoch), False
                ):
                    continue
                work.append((info, ep))
        for info, ep in work:
            yield from self._reduce_part(info, ep)

    def _combine_cost(self, buf) -> int:
        n_elements = buf.size if isinstance(buf, np.ndarray) else 1
        return n_elements * self.nrt.config.nic_reduce_cost_per_element

    def _combine(self, op: str, a, b):
        from ..softfloat import reduce_buffers

        path = "nic" if self.nrt.config.reduce_use_softfloat else "host"
        if isinstance(a, np.ndarray):
            return reduce_buffers(op, [a, b], path=path)
        # Scalars ride through 0-d arrays.
        return reduce_buffers(op, [np.asarray(a), np.asarray(b)], path=path).item()

    def _reduce_part(self, info, ep: CollEpoch):
        """This node's role in the binomial gather tree rooted at the
        MPI root's node, followed by the result/notification multicast."""
        nrt = self.nrt
        runtime = nrt.runtime
        job_id, comm_id = info.job.id, info.comm_id
        nodes = info.nodes
        n = len(nodes)
        root_node = info.node_of(ep.root or 0)
        my_idx = nodes.index(nrt.node_id)
        vidx = (my_idx - nodes.index(root_node)) % n

        # Fold local ranks' contributions first (rank order).
        locals_sorted = sorted(ep.descs, key=lambda d: d.rank)
        partial = _copy_payload(locals_sorted[0].payload)
        for desc in locals_sorted[1:]:
            yield from nrt.nic.compute(self._combine_cost(partial))
            partial = self._combine(ep.op, partial, desc.payload)

        key = (job_id, comm_id, ep.epoch)
        rnd = 0
        while (1 << rnd) < n:
            step = 1 << rnd
            if vidx % (step << 1) == 0:
                peer = vidx + step
                if peer < n:
                    yield from runtime.core.test_event(
                        nrt.node_id, f"rh:{key}:{rnd}"
                    )
                    incoming = nrt.reduce_inbox.pop(key + (rnd,))
                    yield from nrt.nic.compute(self._combine_cost(partial))
                    partial = self._combine(ep.op, partial, incoming)
            elif vidx % (step << 1) == step:
                dst_idx = vidx - step
                dst_node = nodes[(dst_idx + nodes.index(root_node)) % n]

                def deposit(node, buf=partial, k=key, r=rnd):
                    runtime.node_rt(node).reduce_inbox[k + (r,)] = buf

                runtime.core.xfer_and_signal(
                    nrt.node_id,
                    dst_node,
                    size=payload_nbytes(partial, ep.size),
                    remote_event=f"rh:{key}:{rnd}",
                    payload_writer=deposit,
                )
                return  # sent up the tree; our part is done
            rnd += 1

        # Only the root's RH reaches this point with the final result.
        yield from self._distribute(info, ep, partial)

    def _distribute(self, info, ep: CollEpoch, result):
        """Root RH: broadcast the result (allreduce) or a completion
        notification (reduce) and complete every node's requests."""
        nrt = self.nrt
        runtime = nrt.runtime
        job_id, comm_id = info.job.id, info.comm_id
        done = f"rhfin:{job_id}:{comm_id}:{ep.epoch}"
        size = (
            payload_nbytes(result, ep.size)
            if ep.kind == "allreduce"
            else nrt.config.descriptor_bytes
        )
        runtime.core.xfer_and_signal(
            nrt.node_id,
            info.nodes,
            size=size,
            local_event=done,
            payload_writer=lambda node: runtime.node_rt(node).complete_collective(
                job_id, comm_id, ep.epoch, result
            ),
        )
        yield from runtime.core.test_event(nrt.node_id, done)
