"""The Message Scheduling Microphase budget allocator.

Once the Buffer Receivers have built match descriptors, the scheduled
transfers for the slice must collectively fit into the transmission
phase.  The allocator grants each match a chunk bounded by the per-link
byte budget of both endpoints; what doesn't fit is carried to following
slices ("the first chunk of the message is scheduled during the current
time slice and the remaining chunks in the following time slices",
paper §4.3).

Grant order is deterministic: in-flight matches (partially transferred)
first, then new matches, each in creation order — so a large message
cannot starve behind a stream of later arrivals, and two runs of the
same program schedule identically.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List

from .config import BcsConfig
from .descriptors import Match


class SliceScheduler:
    """Allocates per-slice transfer budgets to matches."""

    def __init__(self, config: BcsConfig, link_bandwidth: float):
        self.config = config
        self.link_bandwidth = link_bandwidth
        self.budget_bytes = config.p2p_slice_budget_bytes(link_bandwidth)
        #: Matches with bytes still to move, oldest first.
        self.in_flight: List[Match] = []
        #: Telemetry hub (set by ``BcsRuntime.attach_observability``).
        self.obs = None

    def add_matches(self, matches: Iterable[Match]) -> None:
        """Queue freshly built matches behind the in-flight ones."""
        self.in_flight.extend(matches)

    def schedule_slice(self) -> List[Match]:
        """Grant this slice's chunks; returns matches with work to do.

        Resets every match's ``scheduled_now`` and assigns grants subject
        to each endpoint's remaining tx/rx budget for the slice.
        """
        tx_left: Dict[int, int] = defaultdict(lambda: self.budget_bytes)
        rx_left: Dict[int, int] = defaultdict(lambda: self.budget_bytes)
        granted: List[Match] = []

        # User traffic first, then system-class traffic (PFS etc.) into
        # the leftover budget: the QoS split of paper §1.
        ordered = [m for m in self.in_flight if not m.system] + [
            m for m in self.in_flight if m.system
        ]
        for match in ordered:
            match.scheduled_now = 0
            if match.total_bytes == 0:
                # Zero-byte messages (e.g. pure synchronization sends)
                # still need a delivery pass but consume no budget.
                granted.append(match)
                continue
            grant = min(
                match.remaining,
                tx_left[match.src_node],
                rx_left[match.dst_node],
            )
            if grant <= 0:
                continue
            match.scheduled_now = grant
            tx_left[match.src_node] -= grant
            rx_left[match.dst_node] -= grant
            granted.append(match)
        if self.obs is not None:
            self.obs.sched_slice(self, granted)
        return granted

    def retire_finished(self) -> List[Match]:
        """Drop completed matches from the in-flight list."""
        finished = [m for m in self.in_flight if m.finished]
        if finished:
            self.in_flight = [m for m in self.in_flight if not m.finished]
            if self.obs is not None:
                self.obs.sched_retired(finished)
        return finished

    @property
    def backlog_bytes(self) -> int:
        """Total bytes still waiting across all in-flight matches."""
        return sum(m.remaining for m in self.in_flight)

    def __repr__(self) -> str:
        return (
            f"<SliceScheduler in_flight={len(self.in_flight)} "
            f"budget={self.budget_bytes}B backlog={self.backlog_bytes}B>"
        )
