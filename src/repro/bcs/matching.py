"""MPI message matching, as performed by the Buffer Receiver.

During the Message Scheduling Microphase the BR "matches the remote send
descriptor list against the local receive descriptor list" (paper §4.3).
This module implements that matcher with full MPI semantics:

- (source, tag) matching with ``ANY_SOURCE`` / ``ANY_TAG`` wildcards,
- the non-overtaking rule: two sends on the same (comm, src, dst) pair
  match receives in the order they were posted,
- truncation detection when a matched message exceeds the receive buffer.

Two interchangeable implementations live here:

- :class:`LinearMatcher` — the original O(U×P) list scan.  Kept verbatim
  as the reference oracle for the differential tests, and selectable via
  ``BcsConfig(matcher="linear")``.
- :class:`HashMatcher` — hash-bucketed queues with ordered wildcard
  fallback lists.  Matching cost is O(1) per descriptor (amortized)
  instead of a scan over every pending descriptor, while producing the
  *identical* match sequence (`tests/bcs/test_matching_differential.py`
  pins this against the oracle for randomized streams).

``Matcher`` is an alias for the default implementation.

How the hashed structures preserve linear-scan semantics
--------------------------------------------------------

Both queues carry a shared arrival clock (``_seq``), so "first posted" /
"first arrived" is a min-seq question.

*Posted receives* live in exactly one bucket keyed by their own pattern
``(job, comm, rank, src, tag)`` — wildcards included, as literal key
components.  A send with concrete ``(src, tag)`` can only be matched by
receives whose pattern is one of four keys: ``(src, tag)``,
``(src, ANY)``, ``(ANY, tag)``, ``(ANY, ANY)``.  Probing those four
buckets and taking the live head with the smallest seq is therefore
exactly "the first posted receive that matches".

*Unexpected sends* are indexed in four families — one per receive
wildcard shape: exact ``(job, comm, dst, src, tag)``, by-source
``(job, comm, dst, src)``, by-tag ``(job, comm, dst, tag)``, and
catch-all ``(job, comm, dst)``.  A new receive consults the single
family matching its own wildcard shape, whose bucket holds — in arrival
order — precisely the sends its pattern matches.  Sends removed through
one family leave stale entries in the other three; entries are validated
lazily against the authoritative insertion-ordered dict (``_usends``)
and dropped when dead.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..sim.errors import SimError
from .descriptors import ANY_SOURCE, ANY_TAG, Match, RecvDescriptor, SendDescriptor

#: Below this many descriptors a batch takes the sequential object path —
#: the SoA column setup costs more than the vectorized join saves.
BATCH_MIN = 8


class TruncationError(SimError):
    """A matched message is larger than the posted receive buffer."""


class MatcherTotals:
    """Machine-wide (unexpected, posted) counts shared by all matchers.

    Every matcher keeps these aggregates current as descriptors are
    parked and matched, so telemetry that wants machine totals (the
    per-slice matcher gauges) reads two integers instead of polling all
    N per-node matchers.  The runtime hands one shared instance to every
    node's matcher; a matcher constructed without one gets its own.
    """

    __slots__ = ("unexpected", "posted")

    def __init__(self):
        self.unexpected = 0
        self.posted = 0

    def __repr__(self) -> str:
        return f"<MatcherTotals unexpected={self.unexpected} posted={self.posted}>"


class _MatcherBase:
    """Shared pairing / reporting logic of both matcher implementations."""

    node_id: int

    def _pair(self, send: SendDescriptor, recv: RecvDescriptor, via: str) -> Match:
        if send.size > recv.capacity:
            raise TruncationError(
                f"message of {send.size} B from rank {send.src_rank} "
                f"(tag {send.tag}) exceeds the {recv.capacity} B receive "
                f"buffer of rank {recv.rank}"
            )
        return Match(
            send=send,
            recv=recv,
            src_node=-1,  # filled in by the runtime, which knows placement
            dst_node=self.node_id,
            total_bytes=send.size,
            matched_via=via,
        )

    # -- batch feeds -----------------------------------------------------------

    def add_send_batch(
        self, sends: Sequence[SendDescriptor]
    ) -> List[Tuple[int, Match]]:
        """Feed a batch of arrived sends; returns ``[(index, match), ...]``.

        Reference semantics: exactly equivalent to calling
        :meth:`add_send` for each descriptor in order.  Subclasses may
        override with a vectorized implementation producing the
        identical match sequence.
        """
        out: List[Tuple[int, Match]] = []
        add = self.add_send
        for i, send in enumerate(sends):
            m = add(send)
            if m is not None:
                out.append((i, m))
        return out

    def add_recv_batch(
        self, recvs: Sequence[RecvDescriptor]
    ) -> List[Tuple[int, Match]]:
        """Feed a batch of posted receives; returns ``[(index, match), ...]``.

        Reference semantics: equivalent to sequential :meth:`add_recv`
        calls in order.
        """
        out: List[Tuple[int, Match]] = []
        add = self.add_recv
        for i, recv in enumerate(recvs):
            m = add(recv)
            if m is not None:
                out.append((i, m))
        return out

    @property
    def pending_counts(self) -> tuple[int, int]:
        """(unexpected sends, posted receives) still queued."""
        raise NotImplementedError

    def __repr__(self) -> str:
        u, p = self.pending_counts
        return f"<{type(self).__name__} node={self.node_id} unexpected={u} posted={p}>"


class LinearMatcher(_MatcherBase):
    """Per-node matcher holding the unexpected and posted queues.

    The straightforward list-scan implementation; also the reference
    oracle the hashed matcher is differentially tested against.
    """

    __slots__ = ("node_id", "totals", "unexpected", "posted")

    def __init__(self, node_id: int, totals: Optional[MatcherTotals] = None):
        self.node_id = node_id
        self.totals = totals if totals is not None else MatcherTotals()
        #: Arrived send descriptors not yet matched (arrival order).
        self.unexpected: List[SendDescriptor] = []
        #: Posted receive descriptors not yet matched (post order).
        self.posted: List[RecvDescriptor] = []

    # -- queue feeds -----------------------------------------------------------

    def add_send(self, send: SendDescriptor) -> Optional[Match]:
        """An arrived send descriptor: match or park as unexpected."""
        for i, recv in enumerate(self.posted):
            if recv.matches(send):
                del self.posted[i]
                self.totals.posted -= 1
                return self._pair(send, recv, "send")
        self.unexpected.append(send)
        self.totals.unexpected += 1
        return None

    def add_recv(self, recv: RecvDescriptor) -> Optional[Match]:
        """A posted receive: match the earliest arrived send, or park."""
        for i, send in enumerate(self.unexpected):
            if recv.matches(send):
                del self.unexpected[i]
                self.totals.unexpected -= 1
                return self._pair(send, recv, "recv")
        self.posted.append(recv)
        self.totals.posted += 1
        return None

    def purge_job(self, job_id: int) -> None:
        """Drop every descriptor belonging to ``job_id``."""
        kept_u = [d for d in self.unexpected if d.job_id != job_id]
        kept_p = [d for d in self.posted if d.job_id != job_id]
        self.totals.unexpected -= len(self.unexpected) - len(kept_u)
        self.totals.posted -= len(self.posted) - len(kept_p)
        self.unexpected = kept_u
        self.posted = kept_p

    @property
    def pending_counts(self) -> tuple[int, int]:
        """(unexpected sends, posted receives) still queued."""
        return len(self.unexpected), len(self.posted)


class HashMatcher(_MatcherBase):
    """Hash-bucketed matcher: O(1) amortized per descriptor.

    Semantically identical to :class:`LinearMatcher` — same match
    sequence, same truncation behavior, same queue ordering — but probes
    at most four buckets per operation instead of scanning every pending
    descriptor (see the module docstring for the invariants).
    """

    __slots__ = (
        "node_id",
        "totals",
        "_seq",
        "_usends",
        "_precvs",
        "_u_exact",
        "_u_src",
        "_u_tag",
        "_u_any",
        "_p_buckets",
        "_wild_posted",
    )

    def __init__(self, node_id: int, totals: Optional[MatcherTotals] = None):
        self.node_id = node_id
        self.totals = totals if totals is not None else MatcherTotals()
        #: Shared arrival clock across both queues.
        self._seq = 0
        #: Posted receives whose pattern contains a wildcard.  While this
        #: is zero, an arrived send can only match its exact bucket — the
        #: precondition for the vectorized batch join.
        self._wild_posted = 0
        #: Authoritative unexpected-send queue: desc_id -> (seq, send),
        #: insertion-ordered (= arrival order).
        self._usends: Dict[int, Tuple[int, SendDescriptor]] = {}
        #: Authoritative posted-receive queue: desc_id -> (seq, recv).
        self._precvs: Dict[int, Tuple[int, RecvDescriptor]] = {}
        # Unexpected-send index, one family per receive wildcard shape.
        self._u_exact: Dict[tuple, Deque[Tuple[int, SendDescriptor]]] = {}
        self._u_src: Dict[tuple, Deque[Tuple[int, SendDescriptor]]] = {}
        self._u_tag: Dict[tuple, Deque[Tuple[int, SendDescriptor]]] = {}
        self._u_any: Dict[tuple, Deque[Tuple[int, SendDescriptor]]] = {}
        #: Posted receives bucketed by their own (wildcard-literal) pattern.
        self._p_buckets: Dict[tuple, Deque[Tuple[int, RecvDescriptor]]] = {}

    # -- queue feeds -----------------------------------------------------------

    def add_send(self, send: SendDescriptor) -> Optional[Match]:
        """An arrived send descriptor: match or park as unexpected."""
        j, c, d = send.job_id, send.comm_id, send.dst_rank
        s, t = send.src_rank, send.tag
        precvs = self._precvs
        buckets = self._p_buckets

        best_seq = -1
        best_bucket: Optional[Deque[Tuple[int, RecvDescriptor]]] = None
        for key in (
            (j, c, d, s, t),
            (j, c, d, s, ANY_TAG),
            (j, c, d, ANY_SOURCE, t),
            (j, c, d, ANY_SOURCE, ANY_TAG),
        ):
            bucket = buckets.get(key)
            if not bucket:
                continue
            # Lazily drop heads whose receive was consumed via another path.
            while bucket and bucket[0][1].desc_id not in precvs:
                bucket.popleft()
            if not bucket:
                del buckets[key]
                continue
            seq = bucket[0][0]
            if best_bucket is None or seq < best_seq:
                best_seq = seq
                best_bucket = bucket

        if best_bucket is not None:
            _, recv = best_bucket.popleft()
            del precvs[recv.desc_id]
            self.totals.posted -= 1
            if recv.src_rank == ANY_SOURCE or recv.tag == ANY_TAG:
                self._wild_posted -= 1
            return self._pair(send, recv, "send")

        self._seq += 1
        self.totals.unexpected += 1
        entry = (self._seq, send)
        self._usends[send.desc_id] = entry
        _append(self._u_exact, (j, c, d, s, t), entry)
        _append(self._u_src, (j, c, d, s), entry)
        _append(self._u_tag, (j, c, d, t), entry)
        _append(self._u_any, (j, c, d), entry)
        return None

    def add_recv(self, recv: RecvDescriptor) -> Optional[Match]:
        """A posted receive: match the earliest arrived send, or park."""
        j, c, r = recv.job_id, recv.comm_id, recv.rank
        s, t = recv.src_rank, recv.tag
        if s != ANY_SOURCE:
            if t != ANY_TAG:
                family, key = self._u_exact, (j, c, r, s, t)
            else:
                family, key = self._u_src, (j, c, r, s)
        elif t != ANY_TAG:
            family, key = self._u_tag, (j, c, r, t)
        else:
            family, key = self._u_any, (j, c, r)

        bucket = family.get(key)
        if bucket:
            usends = self._usends
            while bucket:
                _, send = bucket.popleft()
                if send.desc_id in usends:
                    if not bucket:
                        del family[key]
                    del usends[send.desc_id]
                    self.totals.unexpected -= 1
                    return self._pair(send, recv, "recv")
            del family[key]

        self._seq += 1
        self.totals.posted += 1
        if s == ANY_SOURCE or t == ANY_TAG:
            self._wild_posted += 1
        self._precvs[recv.desc_id] = (self._seq, recv)
        _append(self._p_buckets, (j, c, r, s, t), (self._seq, recv))
        return None

    # -- batch feeds -----------------------------------------------------------

    def add_send_batch(
        self, sends: Sequence[SendDescriptor]
    ) -> List[Tuple[int, Match]]:
        """Vectorized arrived-send batch (identical sequence to add_send).

        Fast path precondition: no wildcard receive is posted, so every
        send can only match the posted bucket keyed by its own exact
        pattern.  The join is decided in one pass over SoA columns
        (stable lexsort grouping by ``(job, comm, dst, src, tag)``),
        then applied in original batch order so seqs, pops and
        truncation raises land exactly where the object path puts them.
        Wildcards present, or a tiny batch, fall back to the object path.
        """
        n = len(sends)
        if n < BATCH_MIN or self._wild_posted:
            return _MatcherBase.add_send_batch(self, sends)

        job = np.fromiter((s.job_id for s in sends), np.int64, n)
        comm = np.fromiter((s.comm_id for s in sends), np.int64, n)
        dst = np.fromiter((s.dst_rank for s in sends), np.int64, n)
        src = np.fromiter((s.src_rank for s in sends), np.int64, n)
        tag = np.fromiter((s.tag for s in sends), np.int64, n)
        # Stable sort: equal keys keep batch order, so the k-th group
        # member (in batch order) is the k-th claimant of its bucket.
        order = np.lexsort((tag, src, dst, comm, job))
        oj, oc, od, os_, ot = (
            job[order], comm[order], dst[order], src[order], tag[order],
        )
        newgrp = np.empty(n, dtype=bool)
        newgrp[0] = True
        newgrp[1:] = (
            (oj[1:] != oj[:-1])
            | (oc[1:] != oc[:-1])
            | (od[1:] != od[:-1])
            | (os_[1:] != os_[:-1])
            | (ot[1:] != ot[:-1])
        )
        grp = np.cumsum(newgrp) - 1
        starts = np.flatnonzero(newgrp)
        pos = np.arange(n)
        occ = pos - starts[grp]  # claim rank within the group

        precvs = self._precvs
        buckets = self._p_buckets
        # Per-group availability from the (compacted) exact bucket.
        # Removing stale entries eagerly is invisible to the object
        # path, which would drop them lazily at the head anyway.
        avail = np.zeros(len(starts), dtype=np.int64)
        group_buckets: List[Optional[Deque[Tuple[int, RecvDescriptor]]]] = []
        for g, st in enumerate(starts):
            s0 = sends[order[st]]
            key = (s0.job_id, s0.comm_id, s0.dst_rank, s0.src_rank, s0.tag)
            bucket = buckets.get(key)
            if bucket is not None:
                if any(e[1].desc_id not in precvs for e in bucket):
                    bucket = deque(
                        e for e in bucket if e[1].desc_id in precvs
                    )
                    if bucket:
                        buckets[key] = bucket
                    else:
                        del buckets[key]
                        bucket = None
            group_buckets.append(bucket)
            avail[g] = len(bucket) if bucket is not None else 0
        matched = occ < avail[grp]

        takes: Dict[int, Deque[Tuple[int, RecvDescriptor]]] = {}
        for p in np.flatnonzero(matched):
            takes[int(order[p])] = group_buckets[grp[p]]

        out: List[Tuple[int, Match]] = []
        totals = self.totals
        usends = self._usends
        for i, send in enumerate(sends):
            bucket = takes.get(i)
            if bucket is not None:
                _, recv = bucket.popleft()
                del precvs[recv.desc_id]
                totals.posted -= 1
                out.append((i, self._pair(send, recv, "send")))
            else:
                self._seq += 1
                totals.unexpected += 1
                entry = (self._seq, send)
                j, c, d = send.job_id, send.comm_id, send.dst_rank
                usends[send.desc_id] = entry
                _append(self._u_exact, (j, c, d, send.src_rank, send.tag), entry)
                _append(self._u_src, (j, c, d, send.src_rank), entry)
                _append(self._u_tag, (j, c, d, send.tag), entry)
                _append(self._u_any, (j, c, d), entry)
        return out

    def add_recv_batch(
        self, recvs: Sequence[RecvDescriptor]
    ) -> List[Tuple[int, Match]]:
        """Vectorized posted-receive batch (identical sequence to add_recv).

        The batch is split into maximal runs of exact-pattern receives
        (vectorizable: two exact receives with different keys can never
        compete for the same send, and same-key receives claim bucket
        entries in batch order) interleaved — in batch order — with
        wildcard receives handled one at a time on the object path.
        """
        n = len(recvs)
        if n < BATCH_MIN:
            return _MatcherBase.add_recv_batch(self, recvs)
        src = np.fromiter((r.src_rank for r in recvs), np.int64, n)
        tag = np.fromiter((r.tag for r in recvs), np.int64, n)
        wild = (src == ANY_SOURCE) | (tag == ANY_TAG)
        out: List[Tuple[int, Match]] = []
        bounds = np.flatnonzero(wild[1:] != wild[:-1]) + 1
        lo = 0
        for hi in [*bounds.tolist(), n]:
            if wild[lo]:
                add = self.add_recv
                for i in range(lo, hi):
                    m = add(recvs[i])
                    if m is not None:
                        out.append((i, m))
            else:
                self._recv_exact_run(recvs, lo, hi, out)
            lo = hi
        return out

    def _recv_exact_run(
        self,
        recvs: Sequence[RecvDescriptor],
        lo: int,
        hi: int,
        out: List[Tuple[int, Match]],
    ) -> None:
        """Vectorized join for a run of wildcard-free receives."""
        n = hi - lo
        run = range(lo, hi)
        job = np.fromiter((recvs[i].job_id for i in run), np.int64, n)
        comm = np.fromiter((recvs[i].comm_id for i in run), np.int64, n)
        rnk = np.fromiter((recvs[i].rank for i in run), np.int64, n)
        src = np.fromiter((recvs[i].src_rank for i in run), np.int64, n)
        tag = np.fromiter((recvs[i].tag for i in run), np.int64, n)
        order = np.lexsort((tag, src, rnk, comm, job))
        oj, oc, orr, os_, ot = (
            job[order], comm[order], rnk[order], src[order], tag[order],
        )
        newgrp = np.empty(n, dtype=bool)
        newgrp[0] = True
        newgrp[1:] = (
            (oj[1:] != oj[:-1])
            | (oc[1:] != oc[:-1])
            | (orr[1:] != orr[:-1])
            | (os_[1:] != os_[:-1])
            | (ot[1:] != ot[:-1])
        )
        grp = np.cumsum(newgrp) - 1
        starts = np.flatnonzero(newgrp)
        occ = np.arange(n) - starts[grp]

        usends = self._usends
        family = self._u_exact
        avail = np.zeros(len(starts), dtype=np.int64)
        group_info: List[Optional[tuple]] = []
        for g, st in enumerate(starts):
            r0 = recvs[lo + int(order[st])]
            key = (r0.job_id, r0.comm_id, r0.rank, r0.src_rank, r0.tag)
            bucket = family.get(key)
            if bucket is not None:
                if any(e[1].desc_id not in usends for e in bucket):
                    bucket = deque(
                        e for e in bucket if e[1].desc_id in usends
                    )
                    if bucket:
                        family[key] = bucket
                    else:
                        del family[key]
                        bucket = None
            group_info.append((key, bucket) if bucket is not None else None)
            avail[g] = len(bucket) if bucket is not None else 0
        matched = occ < avail[grp]

        takes: Dict[int, tuple] = {}
        for p in np.flatnonzero(matched):
            takes[lo + int(order[p])] = group_info[grp[p]]

        totals = self.totals
        for i in run:
            info = takes.get(i)
            recv = recvs[i]
            if info is not None:
                key, bucket = info
                _, send = bucket.popleft()
                if not bucket:
                    del family[key]
                del usends[send.desc_id]
                totals.unexpected -= 1
                out.append((i, self._pair(send, recv, "recv")))
            else:
                self._seq += 1
                totals.posted += 1
                entry = (self._seq, recv)
                self._precvs[recv.desc_id] = entry
                _append(
                    self._p_buckets,
                    (recv.job_id, recv.comm_id, recv.rank, recv.src_rank, recv.tag),
                    entry,
                )

    # -- maintenance -----------------------------------------------------------

    def purge_job(self, job_id: int) -> None:
        """Drop every descriptor belonging to ``job_id``.

        Rare (failure teardown), so it simply filters the authoritative
        queues and rebuilds the index buckets, preserving arrival seqs.
        """
        before_u, before_p = len(self._usends), len(self._precvs)
        self._usends = {
            k: v for k, v in self._usends.items() if v[1].job_id != job_id
        }
        self._precvs = {
            k: v for k, v in self._precvs.items() if v[1].job_id != job_id
        }
        self.totals.unexpected -= before_u - len(self._usends)
        self.totals.posted -= before_p - len(self._precvs)
        self._u_exact = {}
        self._u_src = {}
        self._u_tag = {}
        self._u_any = {}
        self._p_buckets = {}
        for entry in self._usends.values():
            send = entry[1]
            j, c, d = send.job_id, send.comm_id, send.dst_rank
            _append(self._u_exact, (j, c, d, send.src_rank, send.tag), entry)
            _append(self._u_src, (j, c, d, send.src_rank), entry)
            _append(self._u_tag, (j, c, d, send.tag), entry)
            _append(self._u_any, (j, c, d), entry)
        self._wild_posted = 0
        for entry in self._precvs.values():
            recv = entry[1]
            key = (recv.job_id, recv.comm_id, recv.rank, recv.src_rank, recv.tag)
            _append(self._p_buckets, key, entry)
            if recv.src_rank == ANY_SOURCE or recv.tag == ANY_TAG:
                self._wild_posted += 1

    # -- views -----------------------------------------------------------------

    @property
    def unexpected(self) -> List[SendDescriptor]:
        """Arrived-but-unmatched sends, in arrival order (snapshot)."""
        return [send for _, send in self._usends.values()]

    @property
    def posted(self) -> List[RecvDescriptor]:
        """Posted-but-unmatched receives, in post order (snapshot)."""
        return [recv for _, recv in self._precvs.values()]

    @property
    def pending_counts(self) -> tuple[int, int]:
        """(unexpected sends, posted receives) still queued — O(1)."""
        return len(self._usends), len(self._precvs)


def _append(family: dict, key: tuple, entry: tuple) -> None:
    bucket = family.get(key)
    if bucket is None:
        family[key] = deque((entry,))
    else:
        bucket.append(entry)


#: The default matcher implementation.
Matcher = HashMatcher

#: Implementations selectable through ``BcsConfig.matcher``.
MATCHERS = {"hash": HashMatcher, "linear": LinearMatcher}


def make_matcher(kind: str, node_id: int, totals: Optional[MatcherTotals] = None):
    """Instantiate the matcher implementation named ``kind``.

    ``totals`` is an optional shared :class:`MatcherTotals` aggregate
    (one per runtime); omitted, the matcher keeps a private one.
    """
    try:
        cls = MATCHERS[kind]
    except KeyError:
        raise ValueError(
            f"unknown matcher {kind!r}; choose from {sorted(MATCHERS)}"
        ) from None
    return cls(node_id, totals)
