"""MPI message matching, as performed by the Buffer Receiver.

During the Message Scheduling Microphase the BR "matches the remote send
descriptor list against the local receive descriptor list" (paper §4.3).
This module implements that matcher with full MPI semantics:

- (source, tag) matching with ``ANY_SOURCE`` / ``ANY_TAG`` wildcards,
- the non-overtaking rule: two sends on the same (comm, src, dst) pair
  match receives in the order they were posted,
- truncation detection when a matched message exceeds the receive buffer.
"""

from __future__ import annotations

from typing import List, Optional

from ..sim.errors import SimError
from .descriptors import Match, RecvDescriptor, SendDescriptor


class TruncationError(SimError):
    """A matched message is larger than the posted receive buffer."""


class Matcher:
    """Per-node matcher holding the unexpected and posted queues."""

    def __init__(self, node_id: int):
        self.node_id = node_id
        #: Arrived send descriptors not yet matched (arrival order).
        self.unexpected: List[SendDescriptor] = []
        #: Posted receive descriptors not yet matched (post order).
        self.posted: List[RecvDescriptor] = []

    # -- queue feeds -----------------------------------------------------------

    def add_send(self, send: SendDescriptor) -> Optional[Match]:
        """An arrived send descriptor: match or park as unexpected."""
        for i, recv in enumerate(self.posted):
            if recv.matches(send):
                del self.posted[i]
                return self._pair(send, recv)
        self.unexpected.append(send)
        return None

    def add_recv(self, recv: RecvDescriptor) -> Optional[Match]:
        """A posted receive: match the earliest arrived send, or park."""
        for i, send in enumerate(self.unexpected):
            if recv.matches(send):
                del self.unexpected[i]
                return self._pair(send, recv)
        self.posted.append(recv)
        return None

    # -- internals ----------------------------------------------------------------

    def _pair(self, send: SendDescriptor, recv: RecvDescriptor) -> Match:
        if send.size > recv.capacity:
            raise TruncationError(
                f"message of {send.size} B from rank {send.src_rank} "
                f"(tag {send.tag}) exceeds the {recv.capacity} B receive "
                f"buffer of rank {recv.rank}"
            )
        return Match(
            send=send,
            recv=recv,
            src_node=-1,  # filled in by the runtime, which knows placement
            dst_node=self.node_id,
            total_bytes=send.size,
        )

    @property
    def pending_counts(self) -> tuple[int, int]:
        """(unexpected sends, posted receives) still queued."""
        return len(self.unexpected), len(self.posted)

    def __repr__(self) -> str:
        u, p = self.pending_counts
        return f"<Matcher node={self.node_id} unexpected={u} posted={p}>"
