"""The global synchronization protocol (paper §4.2, Figure 5).

The **Strobe Sender** (SS), a NIC thread on the management node, drives
every time slice: it multicasts a *microstrobe* at the beginning of each
microphase, and before moving on checks that all nodes completed the
current microphase with a ``Compare-And-Write``.  The **Strobe Receiver**
(SR) on each compute node wakes the local NIC threads that must be active
in the new microphase and reports completion through global memory.

Slice structure (Figure 5):

    [ DEM | MSM ]  [ P2P | BBM | RM ]
    global message scheduling   message transmission
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, List

from ..sim import Latch, ReusableLatch, ReusableTimeout, Store

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import BcsRuntime
    from .threads import NodeRuntime

#: Microphase names, in slice order.
DEM, MSM, P2P, BBM, RM = "DEM", "MSM", "P2P", "BBM", "RM"
MICROPHASES = (DEM, MSM, P2P, BBM, RM)


@dataclass(slots=True)
class Strobe:
    """One microstrobe delivered to a Strobe Receiver.

    ``done`` is shared by every receiver of the same microphase: each SR
    counts it down once, and the Strobe Sender resumes when the last
    participant reports in.
    """

    phase: str
    slice_no: int
    payload: Any
    done: Latch


class StrobeReceiver:
    """SR: per-node dispatcher waking NIC threads per microphase."""

    def __init__(self, nrt: "NodeRuntime"):
        self.nrt = nrt
        self.inbox = Store(nrt.env, name=f"sr{nrt.node_id}")
        self.completed_phases = 0
        self._proc = nrt.env.process(self._run(), name=f"SR{nrt.node_id}")

    def _run(self):
        nrt = self.nrt
        aggregated = nrt.config.aggregated_strobe
        agents = nrt.runtime.agents[nrt.node_id]
        handlers = {
            DEM: lambda s: self._dem(agents),
            MSM: lambda s: agents.br.msm_phase(),
            P2P: lambda s: agents.dh.p2p_phase(s.payload),
            BBM: lambda s: agents.ch.bbm_phase(),
            RM: lambda s: agents.rh.rm_phase(),
        }
        while True:
            strobe = yield self.inbox.get()
            if strobe.phase == "STOP":
                strobe.done.count_down()
                return
            t0 = nrt.env.now
            yield from handlers[strobe.phase](strobe)
            self.completed_phases += 1
            # Report completion in global memory; the SS's
            # Compare-And-Write tests this counter.  In aggregated mode
            # the SS performs one batched arena increment for the whole
            # participant set instead of this per-node write — the
            # array-backed slot ends up with the identical value.
            if not aggregated:
                nrt.runtime.core.gas.write(
                    nrt.node_id, "mphase_done", self.completed_phases
                )
            obs = nrt.runtime.obs
            if obs is not None:
                obs.node_phase(
                    nrt.node_id, strobe.phase, strobe.slice_no, t0, nrt.env.now
                )
            strobe.done.count_down()

    def _dem(self, agents):
        yield from agents.bs.dem_phase()
        yield from agents.br.dem_phase()


class StrobeSender:
    """SS: the management-node NIC thread driving the slice machine."""

    def __init__(self, runtime: "BcsRuntime"):
        self.runtime = runtime
        self.env = runtime.env
        self._proc = None
        # Reusable microphase plumbing: one latch, one strobe record and
        # two timeouts serve every microphase of every slice when tracing
        # is off.  Safe because the SS is the only holder across cycles —
        # it always yields the latch/timeouts to completion before
        # re-arming, and every receiver drops its strobe reference at
        # count_down time.
        self._latch = ReusableLatch(self.env)
        self._strobe = Strobe("", 0, None, self._latch)
        self._pad = ReusableTimeout(self.env)
        self._sleep = ReusableTimeout(self.env)
        # Aggregated strobe model (``config.aggregated_strobe``): the
        # microstrobe is one tree-shaped multicast event whose duration
        # is cached per active-set size, charged through a reusable
        # timeout — no per-strobe generator, no per-destination walk.
        self._aggregated = runtime.config.aggregated_strobe
        self._strobe_timeout = ReusableTimeout(self.env)
        self._strobe_n = -1
        self._strobe_latency = 0
        #: "bcs.microphase" tracing, sampled once per strobe-loop launch
        #: (trace categories are fixed at cluster construction); gates
        #: the per-microphase trace emit and the named-latch allocation.
        self._trace_on = False

    def start(self) -> None:
        """Launch the strobe loop (idempotent)."""
        if self._proc is None or not self._proc.is_alive:
            self._trace_on = self.runtime.cluster.trace.enabled_for(
                "bcs.microphase"
            )
            self._proc = self.env.process(self._run(), name="SS")

    def _run(self):
        runtime = self.runtime
        cfg = runtime.config
        env = self.env
        timeslice = cfg.timeslice
        mins = {DEM: cfg.dem_min_duration, MSM: cfg.msm_min_duration}
        node_runtimes = runtime.node_runtimes
        hooks = runtime.on_slice_start
        fast_forward = cfg.idle_fast_forward
        incremental = runtime._incremental
        slice_waiters = runtime._slice_waiters

        while not runtime.stopped:
            start = env.now
            runtime.slice_no += 1
            runtime.stats["slices"] += 1
            runtime.slice_start_time = start
            if hooks:
                hooks.fire(runtime.slice_no)
            # Slice boundary: the NM restarts processes whose blocking
            # operations completed during the previous slice.  Only
            # signals with waiters are pulsed (ascending node id — the
            # historical wake order); the scan mode pulses every node,
            # preserving the original full-broadcast loop as reference.
            if incremental:
                if slice_waiters:
                    for node_id in sorted(slice_waiters):
                        node_runtimes[node_id].slice_start.pulse(runtime.slice_no)
                    slice_waiters.clear()
            else:
                for nrt in node_runtimes:
                    nrt.slice_start.pulse(runtime.slice_no)
                slice_waiters.clear()

            # Idle short-circuit: settle ``active`` before any telemetry
            # bookkeeping.  slice_work() only reads queues (and prunes
            # the runtime's lazy sets), so sampling it ahead of
            # slice_begin is observationally identical to the historical
            # order.  It also answers the DEM node query in the same
            # pass — there is no yield point between here and the DEM
            # microphase, so the two-call sequence it replaces saw the
            # exact same state.
            active, dem_nodes = runtime.slice_work()
            obs = runtime.obs
            if obs is not None:
                obs.slice_begin(runtime.slice_no, start)

            if active:
                runtime.stats["active_slices"] += 1
                yield from self._microphase(DEM, dem_nodes, mins[DEM])
                yield from self._microphase(MSM, runtime.msm_nodes(), mins[MSM])
                granted = runtime.global_schedule()
                yield from self._microphase(
                    P2P, sorted({m.dst_node for m in granted}), 0, payload=granted
                )
                retired = runtime.scheduler.retire_finished()
                if retired and cfg.batched_matching:
                    # A retired match was the last holder of its pair of
                    # descriptors (requests are completed at delivery and
                    # owned by the application): recycle them.
                    pools = runtime.pools
                    for m in retired:
                        pools.release_send(m.send)
                        pools.release_recv(m.recv)
                yield from self._microphase(BBM, runtime.bbm_nodes(), 0)
                yield from self._microphase(RM, runtime.rm_nodes(), 0)

            elapsed = env.now - start
            if elapsed < timeslice:
                if fast_forward and not active and not hooks:
                    if cfg.auto_stop and runtime.idle():
                        # The loop exits after this slice anyway.
                        pass
                    else:
                        # Idle fast-forward.  No work exists now, no hook
                        # can create any at a boundary, and cluster state
                        # cannot change before the next queued event at
                        # t_next — so every boundary strictly before
                        # t_next replays this slice verbatim: same empty
                        # queues, same zero-waiter pulses, same idle
                        # bookkeeping.  Skip straight to the first
                        # boundary at or after t_next in one timeout;
                        # events firing in between land within the final
                        # (partial) slice and are observed at the wake
                        # boundary exactly as without the skip.
                        t_next = env.peek()
                        if t_next is not None and t_next - start > timeslice:
                            skipped = -(-(t_next - start) // timeslice) - 1
                            runtime.slice_no += skipped
                            runtime.stats["slices"] += skipped
                            runtime.stats["idle_slices_skipped"] += skipped
                            if obs is not None:
                                first = runtime.slice_no - skipped
                                obs.slice_end(
                                    first, start, start + timeslice, False, False
                                )
                                obs.idle_skip(
                                    first + 1, start + timeslice, timeslice, skipped
                                )
                            yield self._sleep.rearm(
                                (skipped + 1) * timeslice - elapsed
                            )
                            continue
                yield self._sleep.rearm(timeslice - elapsed)
                overrun = False
            else:
                runtime.stats["slice_overruns"] += 1
                overrun = True
            if obs is not None:
                obs.slice_end(runtime.slice_no, start, env.now, active, overrun)
            if cfg.auto_stop and runtime.idle():
                return

    def _microphase(self, phase: str, nodes: List[int], min_duration: int, payload=None):
        """Strobe, dispatch, await completion, CaW-confirm, pad.

        ``nodes`` is the set with actual work; nodes outside it would run
        an empty handler and complete at strobe time, so they are not
        simulated (the strobe itself is still a full multicast).
        """
        runtime = self.runtime
        env = self.env
        t0 = env.now
        mgmt = runtime.cluster.management_node.id
        obs = runtime.obs
        if obs is not None:
            obs.phase_begin(phase, runtime.slice_no, t0)

        # Microstrobe: Xfer-And-Signal to every compute node's SR.  The
        # active-node list is kept sorted and deduplicated by the
        # runtime, so its length is passed straight through.
        if self._aggregated:
            # One aggregated tree multicast: identical duration to the
            # oracle's control_multicast (both are strobe_latency(n)),
            # but the duration is cached until the active set changes
            # size and the timeout object is re-armed in place.
            n_active = len(runtime.active_node_ids)
            if n_active:
                if n_active != self._strobe_n:
                    self._strobe_n = n_active
                    self._strobe_latency = runtime.cluster.fabric.strobe_latency(
                        runtime.config.strobe_bytes, n_active
                    )
                yield self._strobe_timeout.rearm(self._strobe_latency)
        else:
            yield from runtime.cluster.fabric.control_multicast(
                mgmt,
                runtime.active_node_ids,
                runtime.config.strobe_bytes,
                n_dests=len(runtime.active_node_ids),
            )

        if nodes:
            # One latch shared by all participants: the SS resumes when
            # the count reaches zero, without an N-event AllOf fan-in.
            # With tracing off, the latch, strobe record and pad timeout
            # are re-armed in place — every receiver drops its reference
            # at count_down time, and the SS yields each to completion
            # before the next microphase, so nothing can observe the
            # reuse (the name f-string only ever served trace debugging).
            if self._trace_on:
                done = Latch(env, len(nodes), name=f"{phase}:{runtime.slice_no}")
                strobe = Strobe(phase, runtime.slice_no, payload, done)
            else:
                done = self._latch.rearm(len(nodes))
                strobe = self._strobe
                strobe.phase = phase
                strobe.slice_no = runtime.slice_no
                strobe.payload = payload
            for node_id in nodes:
                runtime.receivers[node_id].inbox.put(strobe)
            yield done
            if self._aggregated:
                # Batched completion report: every participant finished
                # exactly one microphase, so one arena-wide increment
                # replaces the per-node ``gas.write`` loop the receivers
                # perform on the oracle path (same counters, same values
                # at the Compare-And-Write below).
                runtime.core.gas.increment_batch(nodes, "mphase_done")
            # SS verifies global completion with a Compare-And-Write on
            # the per-node microphase counters.
            yield from runtime.core.compare_and_write(
                mgmt, nodes, "mphase_done", ">=", 0, default=0
            )

        pad = min_duration - (env.now - t0)
        if pad > 0:
            yield self._pad.rearm(pad)

        if obs is not None:
            obs.phase_end(phase, runtime.slice_no, t0, env.now, len(nodes))
        if self._trace_on:
            trace = runtime.cluster.trace
            trace.emit(
                env.now,
                "bcs.microphase",
                slice=runtime.slice_no,
                phase=phase,
                start=t0,
                duration=env.now - t0,
                nodes=len(nodes),
            )
