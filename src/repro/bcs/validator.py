"""Protocol invariant checking from traces.

The BCS protocol makes strong structural promises: microphases run in
DEM → MSM → P2P → BBM → RM order within each slice, the scheduling
phase respects its minimum budget, point-to-point payload moves only
inside the point-to-point microphase, and slice boundaries are strict
multiples of the time slice.  :class:`ProtocolValidator` re-derives all
of that from a trace and reports violations — used by the property
tests to assert that *any* workload drives the machine correctly.

Capture both categories when building the cluster::

    trace = Trace(categories=["bcs.microphase", "fabric.unicast"])
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..sim import Trace
from .strobe import MICROPHASES

_PHASE_INDEX = {p: i for i, p in enumerate(MICROPHASES)}


@dataclass
class Violation:
    """One broken invariant."""

    kind: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.detail}"


class ProtocolValidator:
    """Validates slice-machine invariants recorded in a trace."""

    def __init__(self, trace: Trace, timeslice: int, scheduling_min: int = 0):
        self.trace = trace
        self.timeslice = timeslice
        self.scheduling_min = scheduling_min
        #: slice_no -> list of (phase, start, end)
        self.phases: Dict[int, List[Tuple[str, int, int]]] = {}
        for rec in trace.by_category("bcs.microphase"):
            self.phases.setdefault(rec.fields["slice"], []).append(
                (
                    rec.fields["phase"],
                    rec.fields["start"],
                    rec.fields["start"] + rec.fields["duration"],
                )
            )
        for spans in self.phases.values():
            spans.sort(key=lambda s: s[1])

    # -- individual checks --------------------------------------------------------

    def check_phase_order(self) -> List[Violation]:
        """Microphases appear in protocol order and never overlap."""
        out = []
        for slice_no, spans in self.phases.items():
            indices = [_PHASE_INDEX[p] for p, _, _ in spans]
            if indices != sorted(indices):
                out.append(
                    Violation(
                        "phase-order",
                        f"slice {slice_no}: phases {[p for p, _, _ in spans]}",
                    )
                )
            for (_, _, end_a), (_, start_b, _) in zip(spans, spans[1:]):
                if start_b < end_a:
                    out.append(
                        Violation(
                            "phase-overlap",
                            f"slice {slice_no}: next phase starts at {start_b} "
                            f"before previous ends at {end_a}",
                        )
                    )
        return out

    def check_slice_alignment(self) -> List[Violation]:
        """The first microphase of a slice starts at a slice boundary
        (modulo the strobe delivery latency, bounded by one slice)."""
        out = []
        for slice_no, spans in self.phases.items():
            first_start = spans[0][1]
            offset = first_start % self.timeslice
            if offset > self.timeslice // 2:
                out.append(
                    Violation(
                        "slice-alignment",
                        f"slice {slice_no}: DEM starts {offset} ns past a boundary",
                    )
                )
        return out

    def check_scheduling_budget(self) -> List[Violation]:
        """DEM+MSM meet the configured minimum in every active slice."""
        out = []
        if not self.scheduling_min:
            return out
        for slice_no, spans in self.phases.items():
            sched = sum(end - start for p, start, end in spans if p in ("DEM", "MSM"))
            have_both = {p for p, _, _ in spans} >= {"DEM", "MSM"}
            if have_both and sched < self.scheduling_min:
                out.append(
                    Violation(
                        "scheduling-budget",
                        f"slice {slice_no}: DEM+MSM = {sched} < {self.scheduling_min}",
                    )
                )
        return out

    def check_p2p_containment(self) -> List[Violation]:
        """Bulk p2p transfers complete inside a P2P microphase."""
        out = []
        p2p_windows: List[Tuple[int, int]] = [
            (start, end)
            for spans in self.phases.values()
            for p, start, end in spans
            if p == "P2P"
        ]
        for rec in self.trace.by_category("fabric.unicast"):
            if rec.fields.get("label") != "p2p":
                continue
            done = rec.time
            if not any(start <= done <= end for start, end in p2p_windows):
                out.append(
                    Violation(
                        "p2p-outside-phase",
                        f"transfer {rec.fields['src']}->{rec.fields['dst']} "
                        f"completed at {done} outside every P2P microphase",
                    )
                )
        return out

    def check_descriptor_containment(self) -> List[Violation]:
        """Descriptor exchanges complete inside a DEM microphase."""
        out = []
        dem_windows = [
            (start, end)
            for spans in self.phases.values()
            for p, start, end in spans
            if p == "DEM"
        ]
        for rec in self.trace.by_category("fabric.unicast"):
            if rec.fields.get("label") != "desc":
                continue
            done = rec.time
            if not any(start <= done <= end for start, end in dem_windows):
                out.append(
                    Violation(
                        "desc-outside-dem",
                        f"descriptor to node {rec.fields['dst']} delivered at "
                        f"{done} outside every DEM microphase",
                    )
                )
        return out

    # -- aggregate ---------------------------------------------------------------------

    def validate(self) -> List[Violation]:
        """Run every check; returns all violations (empty = clean)."""
        out: List[Violation] = []
        out += self.check_phase_order()
        out += self.check_slice_alignment()
        out += self.check_scheduling_budget()
        out += self.check_p2p_containment()
        out += self.check_descriptor_containment()
        return out

    def assert_clean(self) -> None:
        """Raise AssertionError listing violations, if any."""
        violations = self.validate()
        if violations:
            raise AssertionError(
                "protocol violations:\n" + "\n".join(str(v) for v in violations)
            )
