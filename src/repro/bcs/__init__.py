"""BCS-MPI runtime: the paper's primary contribution.

Globally coscheduled communication: descriptors, time slices,
microphases, strobes, and the five NIC threads.
"""

from .config import BcsConfig
from .descriptors import (
    ANY_SOURCE,
    ANY_TAG,
    BcsRequest,
    CollectiveDescriptor,
    Match,
    RecvDescriptor,
    SendDescriptor,
)
from .matching import Matcher, TruncationError
from .runtime import BcsRuntime, CommInfo, RankHandle
from .scheduler import SliceScheduler
from .strobe import MICROPHASES, StrobeReceiver, StrobeSender

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "BcsConfig",
    "BcsRequest",
    "BcsRuntime",
    "CollectiveDescriptor",
    "CommInfo",
    "MICROPHASES",
    "Match",
    "Matcher",
    "RankHandle",
    "RecvDescriptor",
    "SendDescriptor",
    "SliceScheduler",
    "StrobeReceiver",
    "StrobeSender",
    "TruncationError",
]
