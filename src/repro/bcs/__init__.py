"""BCS-MPI runtime: the paper's primary contribution.

Globally coscheduled communication: descriptors, time slices,
microphases, strobes, and the five NIC threads.
"""

from .config import BcsConfig
from .descriptors import (
    ANY_SOURCE,
    ANY_TAG,
    BcsRequest,
    CollectiveDescriptor,
    Match,
    RecvDescriptor,
    SendDescriptor,
)
from .matching import HashMatcher, LinearMatcher, Matcher, TruncationError, make_matcher
from .runtime import BcsRuntime, CommInfo, RankHandle
from .scheduler import SliceScheduler
from .strobe import MICROPHASES, StrobeReceiver, StrobeSender

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "BcsConfig",
    "BcsRequest",
    "BcsRuntime",
    "CollectiveDescriptor",
    "CommInfo",
    "HashMatcher",
    "LinearMatcher",
    "MICROPHASES",
    "Match",
    "Matcher",
    "make_matcher",
    "RankHandle",
    "RecvDescriptor",
    "SendDescriptor",
    "SliceScheduler",
    "StrobeReceiver",
    "StrobeSender",
    "TruncationError",
]
