"""Parallel file system substrate with BCS QoS (paper §1 / §6)."""

from .service import PFS_JOB_ID, PfsService, StripeMap, UncoordinatedPfs

__all__ = ["PFS_JOB_ID", "PfsService", "StripeMap", "UncoordinatedPfs"]
