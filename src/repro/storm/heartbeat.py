"""Machine Manager heartbeats.

STORM's MM "coordinates the use of system resources issuing regular
heartbeats" (paper §4.1).  In BCS-MPI the heartbeat *is* the strobe; this
module provides the standalone variant used for resource management when
no BCS runtime is active, plus liveness accounting useful for the fault
tolerance direction the paper sketches in §6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core import BcsCore
from ..units import ms


@dataclass
class HeartbeatStats:
    """Liveness bookkeeping."""

    sent: int = 0
    responses: Dict[int, int] = field(default_factory=dict)
    missed: Dict[int, int] = field(default_factory=dict)


class HeartbeatService:
    """Periodic multicast heartbeat with network-conditional liveness check."""

    def __init__(
        self,
        core: BcsCore,
        mgmt_node: int,
        nodes: List[int],
        period: int = ms(10),
    ):
        self.core = core
        self.mgmt_node = mgmt_node
        self.nodes = list(nodes)
        self.period = period
        self.stats = HeartbeatStats(responses={n: 0 for n in nodes}, missed={n: 0 for n in nodes})
        #: Nodes that stop echoing (simulated failures; see fail()).
        self._dead: set[int] = set()
        self._proc = None

    def start(self, rounds: Optional[int] = None) -> None:
        """Begin heartbeating (``rounds`` bounds the loop for tests)."""
        self._proc = self.core.env.process(self._run(rounds), name="heartbeat")

    def fail(self, node: int) -> None:
        """Mark a node dead: it stops acknowledging heartbeats."""
        self._dead.add(node)

    def alive(self) -> List[int]:
        """Nodes currently believed alive."""
        return [n for n in self.nodes if n not in self._dead]

    def _run(self, rounds: Optional[int]):
        env = self.core.env
        beat = 0
        while rounds is None or beat < rounds:
            beat += 1
            self.stats.sent += 1
            # Heartbeat out (Xfer-And-Signal to every node).
            self.core.xfer_and_signal(
                self.mgmt_node,
                self.nodes,
                size=64,
                addr="hb_seq",
                value=beat,
                local_event="hb_sent",
            )
            yield from self.core.test_event(self.mgmt_node, "hb_sent")
            # Live nodes echo by bumping their counter in global memory.
            for node in self.nodes:
                if node not in self._dead:
                    self.core.gas.write(node, "hb_ack", beat)
                    self.stats.responses[node] += 1
            # Liveness check: did *all* nodes ack this beat?
            all_alive = yield from self.core.compare_and_write(
                self.mgmt_node, self.nodes, "hb_ack", ">=", beat, default=0
            )
            if not all_alive:
                for node in self.nodes:
                    if self.core.gas.read(node, "hb_ack", 0) < beat:
                        self.stats.missed[node] += 1
            yield env.timeout(self.period)
