"""STORM accounting: per-job resource usage reports.

Paper §1 defines resource management as "the software infrastructure in
charge of resource allocation *and accounting*".  The BCS runtime
tracks, per job: CPU time consumed (with the NM tax), time blocked in
communication, messages/bytes posted and collectives issued; this module
renders the usage report an operator would bill from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List

from ..units import fmt_size, fmt_time

if TYPE_CHECKING:  # pragma: no cover
    from ..bcs.runtime import BcsRuntime


@dataclass(frozen=True)
class JobUsage:
    """Accounted usage of one job."""

    job_id: int
    name: str
    n_ranks: int
    wall_ns: int
    cpu_ns: int
    blocked_ns: int
    messages: int
    bytes_sent: int
    collectives: int

    @property
    def cpu_efficiency(self) -> float:
        """CPU time over (wall x ranks): how busy the allocation was."""
        if not self.wall_ns or not self.n_ranks:
            return 0.0
        return self.cpu_ns / (self.wall_ns * self.n_ranks)


def collect_usage(runtime: "BcsRuntime") -> List[JobUsage]:
    """Snapshot every job's accounted usage, in launch order."""
    out = []
    for job_id, job in sorted(runtime.jobs.items()):
        stats = runtime.job_stats.get(job_id, {})
        wall = job.runtime if job.runtime is not None else (
            runtime.env.now - (job.started_at or 0)
        )
        out.append(
            JobUsage(
                job_id=job_id,
                name=job.spec.name,
                n_ranks=job.n_ranks,
                wall_ns=wall,
                cpu_ns=stats.get("cpu_ns", 0),
                blocked_ns=stats.get("blocked_ns", 0),
                messages=stats.get("messages", 0),
                bytes_sent=stats.get("bytes", 0),
                collectives=stats.get("collectives", 0),
            )
        )
    return out


def usage_report(runtime: "BcsRuntime") -> str:
    """Human-readable accounting table for all jobs."""
    from ..harness.report import format_table

    rows = []
    for usage in collect_usage(runtime):
        rows.append(
            [
                usage.job_id,
                usage.name,
                usage.n_ranks,
                fmt_time(usage.wall_ns),
                fmt_time(usage.cpu_ns),
                f"{100 * usage.cpu_efficiency:.0f}%",
                fmt_time(usage.blocked_ns),
                usage.messages,
                fmt_size(usage.bytes_sent),
                usage.collectives,
            ]
        )
    return format_table(
        [
            "job",
            "name",
            "ranks",
            "wall",
            "cpu",
            "eff",
            "blocked",
            "msgs",
            "sent",
            "colls",
        ],
        rows,
    )
