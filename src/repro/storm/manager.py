"""STORM Machine Manager / Node Manager facade.

Ties the resource-management pieces together: job launch over the
hardware multicast, heartbeats, and (optionally) gang scheduling on top
of a BCS runtime.  This is the "single source of system services" story
of the paper's Figure 1: everything here is built from the same three
core primitives the communication library uses.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from ..core import BcsCore
from ..network import Cluster
from ..units import mib, ms
from .gang import GangScheduler
from .heartbeat import HeartbeatService
from .job import Job, JobSpec
from .launcher import LaunchReport, StormLauncher

if TYPE_CHECKING:  # pragma: no cover
    from ..bcs.runtime import BcsRuntime


class MachineManager:
    """The MM dæmon on the management node."""

    def __init__(self, runtime: "BcsRuntime", heartbeat_period: int = ms(10)):
        self.runtime = runtime
        self.cluster: Cluster = runtime.cluster
        self.core: BcsCore = runtime.core
        mgmt = self.cluster.management_node.id
        self.launcher = StormLauncher(self.core, mgmt)
        self.heartbeat = HeartbeatService(
            self.core,
            mgmt,
            [n.id for n in self.cluster.compute_nodes],
            period=heartbeat_period,
        )
        self.gang: Optional[GangScheduler] = None
        self.launch_reports: List[LaunchReport] = []

    def enable_gang_scheduling(self) -> GangScheduler:
        """Turn on slice-synchronous multiprogramming."""
        if self.gang is None:
            self.gang = GangScheduler(self.runtime)
        return self.gang

    def submit(self, spec: JobSpec, binary_bytes: int = mib(8)) -> Job:
        """Full STORM submission path: distribute binary, then start ranks.

        Returns the :class:`Job`; run the engine until ``job.done``.
        """
        env = self.runtime.env
        placement = None  # default block placement
        job_box: List[Job] = []

        def submission():
            # Figure out target nodes from the default placement.
            from ..storm.job import block_placement

            nodes = sorted(
                set(
                    block_placement(
                        spec.n_ranks,
                        self.cluster.n_compute_nodes,
                        self.cluster.spec.cpus_per_node,
                    )
                )
            )
            report = yield from self.launcher.launch_binary(
                nodes, binary_bytes, procs_per_node=self.cluster.spec.cpus_per_node
            )
            self.launch_reports.append(report)
            job = self.runtime.launch(spec, placement)
            job_box.append(job)
            if self.gang is not None:
                self.gang.add_job(job)

        proc = env.process(submission(), name=f"storm.submit:{spec.name}")
        env.run(until=proc)
        return job_box[0]
