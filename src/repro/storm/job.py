"""Parallel jobs: specification, placement, lifecycle.

STORM (the paper's resource manager, [8]) owns job descriptions and
placement; both MPI runtimes launch :class:`JobSpec` instances and track
them as :class:`Job` objects.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional

from ..sim import Engine, Event

_job_ids = itertools.count()


@dataclass(frozen=True)
class JobSpec:
    """Static description of a parallel job.

    ``app`` is a generator function ``app(ctx) -> Generator`` run once per
    rank; ``ctx`` is an :class:`repro.mpi.context.AppContext`.
    """

    app: Callable[..., Generator]
    n_ranks: int
    name: str = "job"
    #: Extra keyword arguments passed to every rank's ``app(ctx, **params)``.
    params: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.n_ranks < 1:
            raise ValueError("a job needs at least one rank")


def block_placement(n_ranks: int, n_nodes: int, per_node: int) -> List[int]:
    """Paper-style placement: fill each node with ``per_node`` ranks.

    Rank r runs on node ``r // per_node`` (ranks 0,1 on node 0; 2,3 on
    node 1; ... — two ranks per dual-CPU node on the crescendo cluster).
    """
    if n_ranks > n_nodes * per_node:
        raise ValueError(
            f"{n_ranks} ranks exceed capacity {n_nodes} nodes x {per_node}"
        )
    return [r // per_node for r in range(n_ranks)]


class Job:
    """A launched job: placement, per-rank state, completion event."""

    def __init__(self, env: Engine, spec: JobSpec, placement: List[int]):
        if len(placement) != spec.n_ranks:
            raise ValueError("placement must list one node per rank")
        self.env = env
        self.spec = spec
        self.id = next(_job_ids)
        #: node id for each rank.
        self.placement = list(placement)
        #: ranks hosted on each node.
        self.node_ranks: Dict[int, List[int]] = {}
        for rank, node in enumerate(self.placement):
            self.node_ranks.setdefault(node, []).append(rank)
        self.done: Event = env.event(name=f"job{self.id}.done")
        #: Triggered if the job is torn down by a failure (fault tolerance).
        self.failed: Event = env.event(name=f"job{self.id}.failed")
        self.started_at: Optional[int] = None
        self.finished_at: Optional[int] = None
        self._remaining = spec.n_ranks
        #: Per-rank return values of the app generators.
        self.results: List[Any] = [None] * spec.n_ranks

    @property
    def n_ranks(self) -> int:
        """Number of ranks in the job."""
        return self.spec.n_ranks

    @property
    def nodes(self) -> List[int]:
        """Sorted list of nodes hosting at least one rank."""
        return sorted(self.node_ranks)

    @property
    def root_node(self) -> int:
        """The node hosting the job master process (rank 0)."""
        return self.placement[0]

    @property
    def complete(self) -> bool:
        """True once every rank has finished."""
        return self._remaining == 0

    @property
    def runtime(self) -> Optional[int]:
        """Wall-clock span from launch to last rank exit, ns."""
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    @property
    def is_failed(self) -> bool:
        """True once the job has been torn down by a failure."""
        return self.failed.triggered

    @property
    def terminal(self) -> bool:
        """Completed or failed: no further progress possible."""
        return self.complete or self.is_failed

    def mark_failed(self, cause: Any = None) -> None:
        """Tear the job down (idempotent); fires ``failed``."""
        if not self.failed.triggered:
            self.failed.succeed(cause)

    def rank_finished(self, rank: int, result: Any) -> None:
        """Record one rank's completion; fires ``done`` on the last."""
        if self._remaining <= 0:
            raise RuntimeError(f"job {self.id}: too many rank completions")
        self.results[rank] = result
        self._remaining -= 1
        if self._remaining == 0:
            self.finished_at = self.env.now
            self.done.succeed(self)

    def __repr__(self) -> str:
        state = "done" if self.complete else "running"
        return f"<Job {self.id} {self.spec.name!r} ranks={self.n_ranks} {state}>"
