"""STORM job launching over the BCS core primitives.

STORM's headline result ([8]) is job launch orders of magnitude faster
than production launchers, achieved by pushing the binary and the launch
command through the hardware multicast (``Xfer-And-Signal``) and
collecting completion with the network conditional (``Compare-And-Write``).

This module reproduces that protocol on the simulated machine, and is
what :class:`repro.storm.manager.MachineManager` uses to start jobs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List

from ..core import BcsCore
from ..units import mib


@dataclass(frozen=True)
class LaunchReport:
    """Timing breakdown of one job launch."""

    binary_bytes: int
    nodes: int
    transfer_ns: int
    spawn_ns: int
    total_ns: int


class StormLauncher:
    """Launches job binaries onto compute nodes via hardware multicast."""

    #: Host cost to fork+exec one process once the binary is local.
    SPAWN_COST = 700_000  # 0.7 ms, per STORM's measurements

    def __init__(self, core: BcsCore, mgmt_node: int):
        self.core = core
        self.mgmt_node = mgmt_node
        self.reports: List[LaunchReport] = []

    def launch_binary(
        self, nodes: List[int], binary_bytes: int = mib(8), procs_per_node: int = 1
    ) -> Generator:
        """Push a binary to ``nodes`` and spawn processes; returns a report.

        Protocol (STORM):
        1. MM multicasts the binary image to all target nodes
           (Xfer-And-Signal).
        2. Each NM forks/execs the local processes.
        3. MM polls completion with Compare-And-Write until every node
           reports ready.
        """
        env = self.core.env
        t0 = env.now

        # 1. Binary distribution on the hardware multicast.
        self.core.xfer_and_signal(
            self.mgmt_node,
            nodes,
            size=binary_bytes,
            addr="storm_binary",
            value=binary_bytes,
            local_event="storm_launch_sent",
            remote_event="storm_binary_here",
        )
        yield from self.core.test_event(self.mgmt_node, "storm_launch_sent")
        t_transfer = env.now - t0

        # 2. Local spawn on every node (in parallel; we charge the cost once
        # since nodes work concurrently).
        spawn = self.SPAWN_COST * procs_per_node
        for node in nodes:
            self.core.gas.write(node, "storm_ready", 1)
        yield env.timeout(spawn)

        # 3. Completion check via the network conditional.
        ok = yield from self.core.compare_and_write(
            self.mgmt_node, nodes, "storm_ready", ">=", 1, default=0
        )
        if not ok:  # pragma: no cover - writes above guarantee readiness
            raise RuntimeError("launch completion check failed")

        report = LaunchReport(
            binary_bytes=binary_bytes,
            nodes=len(nodes),
            transfer_ns=t_transfer,
            spawn_ns=spawn,
            total_ns=env.now - t0,
        )
        self.reports.append(report)
        return report
