"""STORM: the resource-management substrate (paper [8])."""

from .accounting import JobUsage, collect_usage, usage_report
from .gang import GangScheduler
from .heartbeat import HeartbeatService
from .job import Job, JobSpec, block_placement
from .launcher import LaunchReport, StormLauncher
from .manager import MachineManager

__all__ = [
    "GangScheduler",
    "HeartbeatService",
    "Job",
    "JobSpec",
    "JobUsage",
    "LaunchReport",
    "MachineManager",
    "StormLauncher",
    "block_placement",
    "collect_usage",
    "usage_report",
]
