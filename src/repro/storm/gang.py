"""Gang scheduling / multiprogramming (MPL > 1).

The paper's first remedy for blocking-heavy applications: "schedule a
different parallel job whenever the application blocks for communication,
thus making use of the CPU" (§5.4).  STORM gang-schedules jobs in
lockstep with the BCS time slices: on every slice boundary one job is
*active* machine-wide; the Node Managers only let the active job's
processes compute.

Communication progresses for *all* jobs every slice (the NIC threads
don't care which job is active) — exactly the BCS property that makes
this form of multiprogramming cheap.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from ..sim import Gate
from .job import Job

if TYPE_CHECKING:  # pragma: no cover
    from ..bcs.runtime import BcsRuntime


class GangScheduler:
    """Slice-synchronous round-robin gang scheduler."""

    def __init__(self, runtime: "BcsRuntime"):
        self.runtime = runtime
        self.jobs: List[Job] = []
        #: (job_id, node_id) -> Gate controlling that job's compute there.
        self.gates: Dict[tuple, Gate] = {}
        #: slice-indexed log of which job was active (for tests/reports).
        self.schedule_log: List[int] = []
        runtime.on_slice_start.append(self._tick)

    def add_job(self, job: Job) -> None:
        """Bring a job under gang control (call right after launch)."""
        self.jobs.append(job)
        for node_id in job.nodes:
            gate = Gate(self.runtime.env, is_open=False, name=f"gang{job.id}@{node_id}")
            self.gates[(job.id, node_id)] = gate
            self.runtime.agents[node_id].nm.job_gates[job.id] = gate
        self._apply()

    @property
    def alive_jobs(self) -> List[Job]:
        """Jobs that still have running ranks, in admission order."""
        return [j for j in self.jobs if not j.complete]

    def active_job(self) -> Job | None:
        """The job that owns the current slice."""
        alive = self.alive_jobs
        if not alive:
            return None
        return alive[self.runtime.slice_no % len(alive)]

    def _tick(self, slice_no: int) -> None:
        self._apply()
        active = self.active_job()
        self.schedule_log.append(-1 if active is None else active.id)

    def _apply(self) -> None:
        active = self.active_job()
        for (job_id, _node), gate in self.gates.items():
            wants_open = active is not None and job_id == active.id
            # A finished job's gates open so stragglers can drain.
            job = next(j for j in self.jobs if j.id == job_id)
            if job.complete:
                wants_open = True
            if wants_open and not gate.is_open:
                gate.open()
            elif not wants_open and gate.is_open:
                gate.close()
