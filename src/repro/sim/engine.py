"""The discrete-event engine.

A deterministic event loop over integer-nanosecond timestamps.  Ties are
broken by a monotonically increasing sequence number so two runs of the
same program always process events in the same order.
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, Iterable, Optional

from .errors import Deadlock, StopEngine
from .events import AllOf, AnyOf, Event, Timeout
from .process import Process


class Engine:
    """Discrete-event simulation engine ("environment")."""

    __slots__ = ("_now", "_queue", "_seq", "_active_proc", "trace")

    def __init__(self, trace=None):
        self._now = 0
        self._queue: list = []  # heap of (time, priority, seq, event)
        self._seq = 0
        self._active_proc: Optional[Process] = None
        #: Optional :class:`repro.sim.trace.Trace` sink.
        self.trace = trace

    # -- time -----------------------------------------------------------------

    @property
    def now(self) -> int:
        """Current simulation time in integer nanoseconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_proc

    # -- event factories --------------------------------------------------------

    def event(self, name: str = "") -> Event:
        """Create a fresh untriggered event."""
        return Event(self, name=name)

    def timeout(self, delay: int, value: Any = None, name: str = "") -> Timeout:
        """Create an event that fires ``delay`` ns from now."""
        return Timeout(self, delay, value=value, name=name)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process from a generator."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event], name: str = "") -> AllOf:
        """Event that fires when all ``events`` have fired."""
        return AllOf(self, events, name=name)

    def any_of(self, events: Iterable[Event], name: str = "") -> AnyOf:
        """Event that fires when any of ``events`` has fired."""
        return AnyOf(self, events, name=name)

    # -- scheduling --------------------------------------------------------------

    def schedule(
        self, event: Event, delay: int = 0, priority: int = 0, _heappush=heapq.heappush
    ) -> None:
        """Queue a triggered event's callbacks to run ``delay`` ns from now.

        ``priority`` orders events scheduled for the same instant (lower
        runs first); within one (time, priority) bucket, insertion order
        wins.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._seq += 1
        _heappush(self._queue, (self._now + delay, priority, self._seq, event))

    def peek(self) -> Optional[int]:
        """Time of the next scheduled event, or None if the queue is empty."""
        return self._queue[0][0] if self._queue else None

    def step(self, _heappop=heapq.heappop) -> None:
        """Process the next scheduled event."""
        when, _prio, _seq, event = _heappop(self._queue)
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None
        for cb in callbacks:
            cb(event)
        if not event._ok and not event._defused:
            # An unhandled failure escaped every waiter: crash the run so
            # bugs don't silently vanish.
            raise event._value

    # -- run loops ----------------------------------------------------------------

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be: None (run to exhaustion), an integer time, or an
        :class:`Event` (run until it triggers; returns its value).
        Running until a time/event that is never reached raises
        :class:`Deadlock`.
        """
        stop_event: Optional[Event] = None
        stop_time: Optional[int] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
            if stop_event.callbacks is not None:
                stop_event.callbacks.append(self._stop_on_event)
        elif isinstance(until, int):
            if until < self._now:
                raise ValueError(f"until={until} is in the past (now={self._now})")
            stop_time = until
        else:
            raise TypeError(f"until must be None, int, or Event, not {type(until)!r}")

        try:
            queue = self._queue
            step = self.step
            if stop_time is None:
                while queue:
                    step()
            else:
                while queue:
                    if queue[0][0] > stop_time:
                        self._now = stop_time
                        return None
                    step()
        except StopEngine:
            assert stop_event is not None
            if not stop_event._ok:
                stop_event.defuse()
                raise stop_event._value from None
            return stop_event._value

        if stop_event is not None:
            if stop_event.triggered:
                if stop_event._ok:
                    return stop_event._value
                stop_event.defuse()
                raise stop_event._value
            raise Deadlock(
                f"no more events at t={self._now} but {stop_event!r} never triggered"
            )
        if stop_time is not None:
            self._now = stop_time
        return None

    @staticmethod
    def _stop_on_event(event: Event) -> None:
        raise StopEngine() from None

    def __repr__(self) -> str:
        return f"<Engine t={self._now} queued={len(self._queue)}>"
