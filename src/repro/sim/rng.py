"""Named, seeded random streams.

Every stochastic component draws from its own named stream derived from a
single root seed, so (a) runs are reproducible and (b) adding randomness to
one component never perturbs another's stream.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a stream name."""
    digest = hashlib.sha256(f"{root_seed}/{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class RngRegistry:
    """Factory of named :class:`numpy.random.Generator` streams."""

    def __init__(self, root_seed: int = 0):
        self.root_seed = int(root_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the stream for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self.root_seed, name))
            self._streams[name] = gen
        return gen

    def spawn(self, name: str) -> "RngRegistry":
        """A child registry whose streams are disjoint from the parent's."""
        return RngRegistry(derive_seed(self.root_seed, f"spawn/{name}"))

    def __repr__(self) -> str:
        return f"<RngRegistry seed={self.root_seed} streams={len(self._streams)}>"
