"""Tracing and counters.

A :class:`Trace` collects structured (time, category, fields) records and
named counters.  All hot paths guard emission behind ``enabled_for`` so a
disabled trace costs one dict lookup.

Histograms support exact percentile queries (:meth:`Trace.percentile`,
:meth:`Trace.summary`); access the raw samples through
:meth:`Trace.samples`, or reach for :class:`repro.obs.MetricsRegistry`
when you need labeled series.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One trace record."""

    time: int
    category: str
    fields: dict


class Trace:
    """Structured trace sink with per-category enable switches."""

    def __init__(self, categories: Optional[Iterable[str]] = None, capture_all: bool = False):
        self.capture_all = capture_all
        self.categories = set(categories or ())
        self.records: List[TraceRecord] = []
        self.counters: Counter = Counter()
        self._histograms: Dict[str, List[float]] = defaultdict(list)

    def enabled_for(self, category: str) -> bool:
        """Whether records of ``category`` are captured."""
        return self.capture_all or category in self.categories

    def emit(self, time: int, category: str, **fields: Any) -> None:
        """Record an event if its category is enabled."""
        if self.enabled_for(category):
            self.records.append(TraceRecord(time, category, fields))

    def count(self, name: str, amount: int = 1) -> None:
        """Increment a counter (always on; counters are cheap)."""
        self.counters[name] += amount

    def observe(self, name: str, value: float) -> None:
        """Append a sample to a named histogram."""
        self._histograms[name].append(value)

    # -- histogram queries ---------------------------------------------------------

    def samples(self, name: str) -> List[float]:
        """The raw samples of histogram ``name`` (empty if never observed)."""
        return list(self._histograms.get(name, ()))

    def percentile(self, name: str, p: float) -> float:
        """Nearest-rank percentile of histogram ``name``.

        Raises ``ValueError`` for an unknown/empty histogram or a ``p``
        outside [0, 100].
        """
        from ..obs.registry import percentile

        data = self._histograms.get(name)
        if not data:
            raise ValueError(f"histogram {name!r} has no samples")
        return percentile(data, p)

    def summary(self, name: str) -> dict:
        """count/mean/min/max/p50/p95/p99 digest of histogram ``name``.

        Returns ``{"count": 0}`` for an unknown or empty histogram.
        """
        data = self._histograms.get(name)
        if not data:
            return {"count": 0}
        return {
            "count": len(data),
            "sum": sum(data),
            "mean": sum(data) / len(data),
            "min": min(data),
            "max": max(data),
            "p50": self.percentile(name, 50),
            "p95": self.percentile(name, 95),
            "p99": self.percentile(name, 99),
        }

    def by_category(self, category: str) -> List[TraceRecord]:
        """All captured records of a category, in time order."""
        return [r for r in self.records if r.category == category]

    def clear(self) -> None:
        """Drop all records, counters, and histograms."""
        self.records.clear()
        self.counters.clear()
        self._histograms.clear()

    def __repr__(self) -> str:
        return (
            f"<Trace records={len(self.records)} "
            f"counters={len(self.counters)} on={sorted(self.categories)}>"
        )


class NullTrace(Trace):
    """A trace that captures nothing (default sink)."""

    def __init__(self):
        super().__init__()

    def enabled_for(self, category: str) -> bool:  # noqa: D102
        return False

    def emit(self, time: int, category: str, **fields: Any) -> None:  # noqa: D102
        return None
