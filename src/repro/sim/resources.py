"""Synchronization and resource primitives built on events.

- :class:`Resource` — counted resource with FIFO queueing (links, CPUs,
  DMA engines).
- :class:`Store` — unbounded FIFO of items with blocking ``get`` (mailboxes,
  descriptor queues).
- :class:`Signal` — re-armable broadcast: every waiter registered before a
  ``pulse`` is woken by it (microstrobes, slice boundaries).
- :class:`Gate` — level-triggered condition: ``wait`` completes immediately
  while open.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List, Optional

from .engine import Engine
from .events import Event


class Request(Event):
    """A pending claim on a :class:`Resource`; triggers when granted."""

    __slots__ = ("resource", "amount")

    def __init__(self, resource: "Resource", amount: int):
        super().__init__(resource.env, name=f"req:{resource.name}")
        self.resource = resource
        self.amount = amount

    def cancel(self) -> None:
        """Withdraw the claim (called when the waiter is interrupted).

        If the request was already granted the units go straight back;
        otherwise it is removed from the wait queue.
        """
        if self.triggered:
            self.resource.release(self.amount)
        else:
            try:
                self.resource._waiting.remove(self)
            except ValueError:  # pragma: no cover - already granted/raced
                pass
            self.resource._grant()


class Resource:
    """Counted resource with FIFO grant order.

    ``capacity`` units exist; a request for ``amount`` units blocks until
    that many are free *and* all earlier requests have been granted (strict
    FIFO: a large request at the head blocks smaller later ones, which
    keeps grant order deterministic and starvation-free).
    """

    __slots__ = ("env", "capacity", "name", "_in_use", "_waiting")

    def __init__(self, env: Engine, capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiting: Deque[Request] = deque()

    @property
    def in_use(self) -> int:
        """Units currently granted."""
        return self._in_use

    @property
    def available(self) -> int:
        """Units currently free."""
        return self.capacity - self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting."""
        return len(self._waiting)

    def request(self, amount: int = 1) -> Request:
        """Claim ``amount`` units; returns an event granted FIFO."""
        if amount < 1 or amount > self.capacity:
            raise ValueError(
                f"request of {amount} units on {self.name!r} "
                f"with capacity {self.capacity}"
            )
        req = Request(self, amount)
        self._waiting.append(req)
        self._grant()
        return req

    def try_acquire(self, amount: int = 1) -> bool:
        """Claim ``amount`` units synchronously, or do nothing.

        Succeeds only when no request is waiting *and* the units are
        free — exactly the situation where a ``request`` would be granted
        at the same instant — so the fast path cannot overtake a queued
        claimant.  Returns True on success; the caller must ``release``.
        """
        if amount < 1 or amount > self.capacity:
            raise ValueError(
                f"request of {amount} units on {self.name!r} "
                f"with capacity {self.capacity}"
            )
        if self._waiting or amount > self.capacity - self._in_use:
            return False
        self._in_use += amount
        return True

    def release(self, amount: int = 1) -> None:
        """Return ``amount`` units."""
        if amount > self._in_use:
            raise RuntimeError(
                f"release of {amount} exceeds in-use {self._in_use} on {self.name!r}"
            )
        self._in_use -= amount
        self._grant()

    def _grant(self) -> None:
        while self._waiting:
            head = self._waiting[0]
            if head.triggered:
                # Cancelled/interrupted externally; just drop it.
                self._waiting.popleft()
                continue
            if head.amount > self.capacity - self._in_use:
                break
            self._waiting.popleft()
            self._in_use += head.amount
            head.succeed(None)

    def acquire(self, amount: int = 1) -> Generator:
        """Sub-generator form: ``yield from res.acquire()``."""
        yield self.request(amount)

    def held(self, duration: int, amount: int = 1) -> Generator:
        """Acquire, hold for ``duration`` ns, release (common pattern)."""
        yield self.request(amount)
        try:
            yield self.env.timeout(duration)
        finally:
            self.release(amount)

    def __repr__(self) -> str:
        return (
            f"<Resource {self.name!r} {self._in_use}/{self.capacity} "
            f"queue={len(self._waiting)}>"
        )


class StoreGet(Event):
    """A pending ``get`` on a :class:`Store`; cancellable on interrupt."""

    __slots__ = ("store",)

    def __init__(self, store: "Store"):
        super().__init__(store.env, name=f"get:{store.name}")
        self.store = store

    def cancel(self) -> None:
        """Withdraw from the getter queue (no item is consumed)."""
        try:
            self.store._getters.remove(self)
        except ValueError:  # pragma: no cover - already served
            pass


class Store:
    """Unbounded FIFO of items with blocking ``get``.

    ``put`` never blocks.  ``get`` returns an event that triggers with the
    next item; concurrent getters are served FIFO.
    """

    __slots__ = ("env", "name", "_items", "_getters")

    def __init__(self, env: Engine, name: str = "store"):
        self.env = env
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> List[Any]:
        """Snapshot of queued items (oldest first)."""
        return list(self._items)

    def put(self, item: Any) -> None:
        """Append an item, waking the oldest pending getter if any."""
        self._items.append(item)
        self._dispatch()

    def get(self) -> Event:
        """Event that triggers with the next available item."""
        ev = StoreGet(self)
        self._getters.append(ev)
        self._dispatch()
        return ev

    def try_get(self) -> Optional[Any]:
        """Pop an item immediately, or None if empty or getters are queued."""
        if self._items and not self._getters:
            return self._items.popleft()
        return None

    def drain(self) -> List[Any]:
        """Remove and return all queued items (oldest first)."""
        out = list(self._items)
        self._items.clear()
        return out

    def _dispatch(self) -> None:
        while self._items and self._getters:
            getter = self._getters.popleft()
            if getter.triggered:
                continue
            getter.succeed(self._items.popleft())

    def __repr__(self) -> str:
        return f"<Store {self.name!r} items={len(self._items)} getters={len(self._getters)}>"


class Signal:
    """Re-armable broadcast event.

    ``wait()`` returns a fresh event; the next ``pulse(value)`` triggers
    every event handed out since the previous pulse.  Used for strobes and
    slice boundaries, where many parties wait for the same edge.
    """

    __slots__ = ("env", "name", "_waiters", "_pulses")

    def __init__(self, env: Engine, name: str = "signal"):
        self.env = env
        self.name = name
        self._waiters: List[Event] = []
        self._pulses = 0

    @property
    def pulse_count(self) -> int:
        """Number of pulses issued so far."""
        return self._pulses

    def wait(self) -> Event:
        """Event triggered by the next pulse."""
        ev = Event(self.env, name=f"wait:{self.name}")
        self._waiters.append(ev)
        return ev

    def pulse(self, value: Any = None) -> int:
        """Wake all current waiters with ``value``; returns how many."""
        waiters, self._waiters = self._waiters, []
        self._pulses += 1
        woken = 0
        for ev in waiters:
            if not ev.triggered:
                ev.succeed(value)
                woken += 1
        return woken

    def __repr__(self) -> str:
        return f"<Signal {self.name!r} waiters={len(self._waiters)} pulses={self._pulses}>"


class Gate:
    """Level-triggered condition.

    While *open*, ``wait()`` completes immediately; while *closed*, waiters
    queue until the next ``open()``.
    """

    __slots__ = ("env", "name", "_open", "_waiters")

    def __init__(self, env: Engine, is_open: bool = False, name: str = "gate"):
        self.env = env
        self.name = name
        self._open = is_open
        self._waiters: List[Event] = []

    @property
    def is_open(self) -> bool:
        """Current gate state."""
        return self._open

    def open(self) -> None:
        """Open the gate, releasing all waiters."""
        self._open = True
        waiters, self._waiters = self._waiters, []
        for ev in waiters:
            if not ev.triggered:
                ev.succeed(None)

    def close(self) -> None:
        """Close the gate; subsequent waiters block."""
        self._open = False

    def wait(self) -> Event:
        """Event that triggers when the gate is (or becomes) open."""
        ev = Event(self.env, name=f"wait:{self.name}")
        if self._open:
            ev.succeed(None)
        else:
            self._waiters.append(ev)
        return ev

    def __repr__(self) -> str:
        state = "open" if self._open else "closed"
        return f"<Gate {self.name!r} {state} waiters={len(self._waiters)}>"
