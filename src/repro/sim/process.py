"""Generator-coroutine processes.

A process wraps a generator.  The generator yields :class:`Event` objects;
each yield suspends the process until the event triggers, at which point
the event's value is sent back in (or its exception thrown in).  Blocking
sub-operations are ordinary sub-generators composed with ``yield from``.

A :class:`Process` is itself an event: it triggers with the generator's
return value when the generator finishes, so processes can wait on each
other.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from .errors import Interrupt
from .events import Event, PENDING


class Process(Event):
    """A running generator, resumable by the engine."""

    __slots__ = ("generator", "target", "_resume_scheduled")

    def __init__(self, env, generator: Generator, name: str = ""):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(
                f"process body must be a generator, got {type(generator).__name__}"
            )
        super().__init__(env, name=name or getattr(generator, "__name__", "proc"))
        self.generator = generator
        #: The event this process is currently waiting on (None if about to run).
        self.target: Optional[Event] = None
        # Kick off the process via an immediately-succeeding init event.
        init = Event(env, name=f"init:{self.name}")
        init.callbacks.append(self._resume)
        init.succeed(None)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The process stops waiting on its current target (the target event
        itself is unaffected and may trigger later without resuming us).
        """
        if not self.is_alive:
            raise RuntimeError(f"{self} has terminated and cannot be interrupted")
        if self.target is None:
            raise RuntimeError(f"{self} cannot interrupt itself")
        # Deliver through a fresh failed event so the engine resumes us
        # through the normal path at the current sim time.
        exc = Interrupt(cause)
        hit = Event(self.env, name=f"interrupt:{self.name}")
        hit.callbacks.append(self._resume)
        # Detach from the old target so a later trigger doesn't double-resume.
        old = self.target
        if old is not None and old.callbacks is not None:
            try:
                old.callbacks.remove(self._resume)
            except ValueError:
                pass
            # Events that hold claims (resource requests) must give them
            # back, or the capacity leaks to a process that no longer
            # exists.
            cancel = getattr(old, "cancel", None)
            if cancel is not None:
                cancel()
        self.target = None
        hit.fail(exc)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        self.env._active_proc = self
        self.target = None
        try:
            if event._ok:
                next_ev = self.generator.send(event._value)
            else:
                # The exception is being delivered; mark it handled.
                event.defuse()
                next_ev = self.generator.throw(event._value)
        except StopIteration as stop:
            self.env._active_proc = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.env._active_proc = None
            self.fail(exc)
            return
        self.env._active_proc = None

        if not isinstance(next_ev, Event):
            # Tell the generator it yielded garbage; this produces a clean
            # traceback inside the process body.
            hit = Event(self.env, name=f"badyield:{self.name}")
            hit.callbacks.append(self._resume)
            hit.fail(
                TypeError(
                    f"process {self.name!r} yielded {next_ev!r}; "
                    "processes must yield Event instances"
                )
            )
            return
        if next_ev.env is not self.env:
            hit = Event(self.env, name=f"foreign:{self.name}")
            hit.callbacks.append(self._resume)
            hit.fail(ValueError("yielded event belongs to a different engine"))
            return

        self.target = next_ev
        if next_ev.callbacks is None:
            # Already processed: resume on a fresh event carrying its value.
            carry = Event(self.env, name=f"carry:{self.name}")
            carry.callbacks.append(self._resume)
            self.target = carry
            carry.trigger(next_ev)
        else:
            next_ev.callbacks.append(self._resume)

    def __repr__(self) -> str:
        state = "alive" if self.is_alive else "done"
        return f"<Process {self.name!r} {state}>"
