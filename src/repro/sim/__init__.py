"""Discrete-event simulation kernel.

A from-scratch, deterministic, integer-time DES engine in the SimPy style:
processes are generator coroutines that yield :class:`Event` objects.
"""

from .engine import Engine
from .errors import Deadlock, EventAlreadyTriggered, Interrupt, SimError
from .events import (
    AllOf,
    AnyOf,
    Condition,
    Event,
    Latch,
    ReusableLatch,
    ReusableTimeout,
    Timeout,
)
from .process import Process
from .resources import Gate, Resource, Signal, Store
from .rng import RngRegistry, derive_seed
from .trace import NullTrace, Trace, TraceRecord

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Deadlock",
    "Engine",
    "Event",
    "EventAlreadyTriggered",
    "Gate",
    "Interrupt",
    "Latch",
    "NullTrace",
    "Process",
    "Resource",
    "ReusableLatch",
    "ReusableTimeout",
    "RngRegistry",
    "Signal",
    "SimError",
    "Store",
    "Timeout",
    "Trace",
    "TraceRecord",
    "derive_seed",
]
