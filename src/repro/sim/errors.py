"""Simulation kernel exceptions."""

from __future__ import annotations


class SimError(Exception):
    """Base class for simulation kernel errors."""


class EventAlreadyTriggered(SimError):
    """An event was succeeded/failed more than once."""


class Interrupt(SimError):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause


class StopEngine(SimError):
    """Raised internally to stop :meth:`Engine.run` early."""

    def __init__(self, value=None):
        super().__init__(value)
        self.value = value


class Deadlock(SimError):
    """``run(until=...)`` ran out of events before reaching the target."""
