"""Event primitives for the discrete-event kernel.

An :class:`Event` is a one-shot occurrence with a value (or an exception).
Processes (see :mod:`repro.sim.process`) suspend by yielding events; the
engine resumes them when the event triggers.

The design follows the classic SimPy shape but is implemented from scratch
and specialized for this project: integer time, deterministic callback
order, and a small surface.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional

from .errors import EventAlreadyTriggered

PENDING = object()


class Event:
    """A one-shot event.

    States: *pending* (value is ``PENDING``), *triggered* (scheduled to
    fire; value set), *processed* (callbacks have run).
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused", "name")

    def __init__(self, env, name: str = ""):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok = True
        self._defused = False
        self.name = name

    # -- state inspection ---------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not be processed yet)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        if not self.triggered:
            raise AttributeError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or the exception it failed with)."""
        if self._value is PENDING:
            raise AttributeError("event not yet triggered")
        return self._value

    # -- triggering -----------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger successfully with ``value`` and schedule callbacks now."""
        if self._value is not PENDING:
            raise EventAlreadyTriggered(repr(self))
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger as failed with ``exception``."""
        if self._value is not PENDING:
            raise EventAlreadyTriggered(repr(self))
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Copy another event's outcome onto this one (callback helper)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    # -- misc -----------------------------------------------------------------

    def defuse(self) -> None:
        """Mark a failed event as handled so the engine won't crash."""
        self._defused = True

    def __repr__(self) -> str:
        state = (
            "pending"
            if not self.triggered
            else ("ok" if self._ok else "failed")
        )
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event that triggers ``delay`` ns after creation."""

    __slots__ = ("delay",)

    def __init__(self, env, delay: int, value: Any = None, name: str = ""):
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay}")
        super().__init__(env, name=name)
        self.delay = int(delay)
        self._ok = True
        self._value = value
        env.schedule(self, delay=self.delay)


class Latch(Event):
    """Countdown event: triggers after ``count`` calls to :meth:`count_down`.

    A barrier where the waiters' values don't matter.  Compared to the
    (one event per party + :class:`AllOf`) pattern it allocates a single
    event, registers no fan-in callbacks, and fires the moment the last
    party counts down — at the same timestamp, one event hop earlier.
    A latch created with ``count == 0`` succeeds immediately.
    """

    __slots__ = ("remaining",)

    def __init__(self, env, count: int, name: str = ""):
        if count < 0:
            raise ValueError(f"negative latch count {count}")
        super().__init__(env, name=name)
        self.remaining = count
        if count == 0:
            self.succeed(None)

    def count_down(self, n: int = 1) -> "Latch":
        """Decrement the count by ``n``; triggers when it reaches zero."""
        if n < 1:
            raise ValueError(f"count_down amount must be >= 1, got {n}")
        if self.remaining < n:
            raise EventAlreadyTriggered(repr(self))
        self.remaining -= n
        if self.remaining == 0:
            self.succeed(None)
        return self


class ReusableLatch(Latch):
    """A :class:`Latch` the same owner can re-arm once it has been processed.

    The Strobe Sender runs five microphase barriers per active slice for
    the whole simulation; allocating a fresh latch for each is pure churn
    when nobody keeps a reference past the barrier.  A reusable latch is
    born *processed* (it never enters the event queue at construction)
    and :meth:`rearm` returns it to the pending state with a new count.

    Re-arming is only legal once the previous cycle's callbacks have run
    (``processed`` is true) — exactly the guarantee a ``yield latch``
    gives the process that owns it.  Handing the latch to parties that
    may hold it across cycles forfeits that guarantee; use a plain
    :class:`Latch` there.
    """

    __slots__ = ()

    def __init__(self, env, name: str = ""):
        Event.__init__(self, env, name=name)
        self.remaining = 0
        # Born processed: triggered (value None) with callbacks done.
        self._value = None
        self.callbacks = None

    def rearm(self, count: int, name: str = "") -> "ReusableLatch":
        """Reset to pending with ``count`` outstanding parties."""
        if self.callbacks is not None:
            raise EventAlreadyTriggered(f"rearm of in-flight {self!r}")
        if count < 0:
            raise ValueError(f"negative latch count {count}")
        self.callbacks = []
        self._value = PENDING
        self._ok = True
        self._defused = False
        self.remaining = count
        self.name = name
        if count == 0:
            self.succeed(None)
        return self


class ReusableTimeout(Timeout):
    """A :class:`Timeout` the same owner can re-schedule after it fired.

    Like :class:`ReusableLatch`: born processed, and :meth:`rearm`
    schedules it ``delay`` ns from now exactly as constructing a fresh
    :class:`Timeout` would.  Only legal once the previous cycle has been
    processed, i.e. for the strictly sequential ``yield`` pattern.
    """

    __slots__ = ()

    def __init__(self, env, name: str = ""):
        Event.__init__(self, env, name=name)
        self.delay = 0
        self._value = None
        self.callbacks = None

    def rearm(self, delay: int, value: Any = None) -> "ReusableTimeout":
        """Reset to pending and schedule ``delay`` ns from now."""
        if self.callbacks is not None:
            raise EventAlreadyTriggered(f"rearm of in-flight {self!r}")
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay}")
        self.callbacks = []
        self._ok = True
        self._defused = False
        self._value = value
        self.delay = int(delay)
        self.env.schedule(self, delay=self.delay)
        return self


class Condition(Event):
    """Composite event over a fixed set of sub-events.

    ``evaluate`` receives (events, done_count) and returns True when the
    condition is satisfied.  The condition value is an ordered dict of the
    triggered sub-events' values (insertion order = given order).
    """

    __slots__ = ("events", "_evaluate", "_done")

    def __init__(self, env, evaluate, events: Iterable[Event], name: str = ""):
        super().__init__(env, name=name)
        self.events = tuple(events)
        self._evaluate = evaluate
        self._done = 0

        for ev in self.events:
            if ev.env is not env:
                raise ValueError("conditions cannot mix engines")

        if not self.events:
            self.succeed({})
            return

        for ev in self.events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _collect_values(self) -> dict:
        # Only *processed* events count: a Timeout carries its value from
        # creation (so ``triggered`` is immediately true), but it hasn't
        # "happened" until its callbacks run.
        return {
            ev: ev._value
            for ev in self.events
            if ev.processed and ev._ok
        }

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event.defuse()
            return
        self._done += 1
        if not event._ok:
            event.defuse()
            self.fail(event._value)
        elif self._evaluate(self.events, self._done):
            self.succeed(self._collect_values())

    @staticmethod
    def all_events(events, done) -> bool:
        """Evaluate: every sub-event has triggered."""
        return len(events) == done

    @staticmethod
    def any_events(events, done) -> bool:
        """Evaluate: at least one sub-event has triggered."""
        return done > 0 or len(events) == 0


class AllOf(Condition):
    """Triggers once all given events have triggered."""

    __slots__ = ()

    def __init__(self, env, events, name: str = ""):
        super().__init__(env, Condition.all_events, events, name=name)


class AnyOf(Condition):
    """Triggers once any one of the given events has triggered."""

    __slots__ = ()

    def __init__(self, env, events, name: str = ""):
        super().__init__(env, Condition.any_events, events, name=name)
