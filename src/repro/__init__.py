"""BCS-MPI reproduction: buffered-coscheduled MPI on a simulated cluster.

Reproduces *BCS-MPI: A New Approach in the System Software Design for
Large-Scale Parallel Computers* (SC'03): the three BCS core primitives,
the globally-coscheduled MPI runtime (time slices, microphases, NIC
threads), a production-style baseline MPI, the STORM resource-management
substrate, and the paper's complete evaluation.

Quickstart::

    from repro.harness import run_workload
    from repro.apps import sage

    result = run_workload(sage, n_ranks=62, backend="bcs",
                          params={"steps": 10})
    print(result.runtime_s, result.stats["messages_delivered"])

Layers (bottom to top): :mod:`repro.sim` (deterministic DES kernel),
:mod:`repro.network` (cluster/NIC/fabric), :mod:`repro.core` (the three
BCS primitives), :mod:`repro.bcs` (the BCS-MPI runtime),
:mod:`repro.api` (the BCS API), :mod:`repro.mpi` (the MPI facade and the
baseline), :mod:`repro.storm` / :mod:`repro.noise` (system-software
substrates), :mod:`repro.apps` (workloads), :mod:`repro.harness`
(experiments).
"""

from .bcs import BcsConfig, BcsRuntime
from .harness import compare_backends, run_workload
from .mpi.baseline import BaselineConfig, BaselineRuntime
from .network import Cluster, ClusterSpec
from .storm import JobSpec

__version__ = "1.0.0"

__all__ = [
    "BaselineConfig",
    "BaselineRuntime",
    "BcsConfig",
    "BcsRuntime",
    "Cluster",
    "ClusterSpec",
    "JobSpec",
    "__version__",
    "compare_backends",
    "run_workload",
]
