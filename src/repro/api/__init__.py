"""The BCS API layer (paper Appendix A)."""

from .bcs_api import UNLIMITED, BcsApi

__all__ = ["BcsApi", "UNLIMITED"]
