"""The BCS API (paper Appendix A, Figure 12).

The layer between MPI and the runtime: ``bcs_send``, ``bcs_recv``,
``bcs_probe``, ``bcs_test``, ``bcs_testall``, ``bcs_barrier``,
``bcs_bcast``, ``bcs_reduce``, plus the composed vector operations.

Posting is a plain call (it only writes a descriptor into NIC memory —
no system call); its small host cost is accumulated on the rank handle
and charged at the next yield point.  Blocking variants are
sub-generators that post and then hand the process to the Node Manager,
which restarts it at a slice boundary once the NIC signals completion.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional, Sequence

from ..bcs.descriptors import (
    ANY_SOURCE,
    ANY_TAG,
    BcsRequest,
    RecvDescriptor,
    payload_nbytes,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..bcs.runtime import BcsRuntime, CommInfo, RankHandle

#: Receive capacity used when the caller does not bound the buffer.
UNLIMITED = 1 << 62


class BcsApi:
    """The BCS communication API bound to one runtime."""

    def __init__(self, runtime: "BcsRuntime"):
        self.runtime = runtime
        self.env = runtime.env

    # -- posting (non-blocking halves) ---------------------------------------------

    def post_send(
        self,
        handle: "RankHandle",
        info: "CommInfo",
        src_rank: int,
        dest: int,
        payload: Any = None,
        tag: int = 0,
        size: Optional[int] = None,
    ) -> BcsRequest:
        """bcs_send(non-blocking): post a send descriptor."""
        if not 0 <= dest < info.size:
            raise ValueError(f"destination rank {dest} outside communicator")
        nbytes = payload_nbytes(payload, size)
        pools = self.runtime.pools
        req = pools.request(self.env, "send")
        desc = pools.send(
            info.job.id,
            info.comm_id,
            src_rank,
            dest,
            tag,
            nbytes,
            req,
            payload=payload,
            seq=handle.next_send_seq(info.comm_id, dest),
        )
        handle.nrt.post_send(desc)
        handle.pending_overhead += self.runtime.config.descriptor_post_cost
        stats = self.runtime.job_stats.get(info.job.id)
        if stats is not None:
            stats["messages"] += 1
            stats["bytes"] += nbytes
        obs = self.runtime.obs
        if obs is not None:
            if obs.profiler is not None:
                obs.profiler.record_post(
                    info.job.id, handle.world_rank, "send", nbytes
                )
            if obs.spans is not None:
                obs.spans.send_posted(desc, info.job.id, handle.world_rank)
        if self.runtime.config.buffered_sends:
            # Buffered coscheduling: the payload is snapshotted at post
            # time and the send buffer is immediately reusable, so the
            # request is complete as far as the sender is concerned.
            from ..bcs.threads import _copy_payload

            desc.payload = _copy_payload(payload)
            req._finish()
        return req

    def post_recv(
        self,
        handle: "RankHandle",
        info: "CommInfo",
        rank: int,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        size: Optional[int] = None,
    ) -> BcsRequest:
        """bcs_recv(non-blocking): post a receive descriptor."""
        if source != ANY_SOURCE and not 0 <= source < info.size:
            raise ValueError(f"source rank {source} outside communicator")
        pools = self.runtime.pools
        req = pools.request(self.env, "recv")
        desc = pools.recv(
            info.job.id,
            info.comm_id,
            rank,
            source,
            tag,
            UNLIMITED if size is None else size,
            req,
        )
        handle.nrt.post_recv(desc)
        handle.pending_overhead += self.runtime.config.descriptor_post_cost
        obs = self.runtime.obs
        if obs is not None:
            if obs.profiler is not None:
                obs.profiler.record_post(info.job.id, handle.world_rank, "recv", 0)
            if obs.spans is not None:
                obs.spans.recv_posted(desc, info.job.id, handle.world_rank)
        return req

    def post_collective(
        self,
        handle: "RankHandle",
        info: "CommInfo",
        rank: int,
        kind: str,
        root: int = 0,
        op: Optional[str] = None,
        payload: Any = None,
        size: Optional[int] = None,
    ) -> BcsRequest:
        """Post a collective descriptor (barrier/bcast/reduce/allreduce)."""
        if kind not in ("barrier", "bcast", "reduce", "allreduce"):
            raise ValueError(f"unknown collective kind {kind!r}")
        if not 0 <= root < info.size:
            raise ValueError(f"root rank {root} outside communicator")
        pools = self.runtime.pools
        req = pools.request(self.env, kind)
        desc = pools.coll(
            info.job.id,
            info.comm_id,
            kind,
            rank,
            root,
            handle.next_epoch(info.comm_id),
            req,
            op=op,
            size=payload_nbytes(payload, size),
            payload=payload,
        )
        handle.nrt.post_collective(desc)
        handle.pending_overhead += self.runtime.config.descriptor_post_cost
        stats = self.runtime.job_stats.get(info.job.id)
        if stats is not None:
            stats["collectives"] += 1
        obs = self.runtime.obs
        if obs is not None:
            if obs.profiler is not None:
                obs.profiler.record_post(
                    info.job.id, handle.world_rank, kind, desc.size
                )
            if obs.spans is not None:
                obs.spans.coll_posted(desc, info.job.id, handle.world_rank)
        return req

    # -- tests / waits ------------------------------------------------------------------

    def bcs_test(self, req: BcsRequest) -> bool:
        """Non-blocking completion check (reads NIC-visible state)."""
        return req.complete

    def cancel_recv(self, handle: "RankHandle", req: BcsRequest) -> bool:
        """MPI_Cancel for receives: withdraw an unmatched descriptor.

        Succeeds only while the descriptor is still cancellable — in the
        posting FIFO or in the BR's pending-receive list, not yet
        matched to a sender.  Returns True if cancelled (the request
        then completes with ``cancelled`` status), False if the match
        already happened (the message will be delivered normally).
        """
        if req.complete:
            return False
        nrt = handle.nrt
        for queue in (nrt.posted_recvs, nrt.matcher.posted):
            for desc in queue:
                if desc.request is req:
                    queue.remove(desc)
                    req.error = None
                    req.payload = None
                    req._finish()
                    self.runtime.stats["recvs_cancelled"] += 1
                    return True
        return False

    def bcs_testall(self, reqs: Sequence[BcsRequest]) -> bool:
        """Non-blocking completion check for a set of requests."""
        return all(r.complete for r in reqs)

    def wait(self, handle: "RankHandle", reqs: Sequence[BcsRequest]) -> Generator:
        """Blocking test: suspend until done, restart at slice boundary."""
        yield from self._flush_overhead(handle)
        t0 = self.env.now
        yield from handle.nm.block_on(reqs)
        blocked = self.env.now - t0
        if blocked:
            stats = self.runtime.job_stats.get(handle.job.id)
            if stats is not None:
                stats["blocked_ns"] += blocked
        obs = self.runtime.obs
        if obs is not None:
            if obs.profiler is not None:
                op = f"wait({reqs[0].kind})" if reqs else "wait"
                obs.profiler.record_wait(
                    handle.job.id, handle.world_rank, op, t0, self.env.now
                )
            if obs.spans is not None and blocked:
                obs.spans.rank_wait(
                    handle.job.id, handle.world_rank, reqs, t0, self.env.now
                )

    def probe(self, handle: "RankHandle", info, rank, source, tag) -> bool:
        """bcs_probe(non-blocking): is a matching message pending?

        Looks at the unexpected queue the BR maintains — a message whose
        descriptor has arrived but has no posted receive yet.
        """
        probe_recv = RecvDescriptor(
            job_id=info.job.id,
            comm_id=info.comm_id,
            rank=rank,
            src_rank=source,
            tag=tag,
            capacity=UNLIMITED,
            request=None,
        )
        return any(
            probe_recv.matches(s) for s in handle.nrt.matcher.unexpected
        )

    # -- blocking convenience wrappers -----------------------------------------------------

    def send(self, handle, info, src_rank, dest, payload=None, tag=0, size=None):
        """bcs_send(blocking)."""
        req = self.post_send(handle, info, src_rank, dest, payload, tag, size)
        yield from self.wait(handle, [req])
        return req

    def recv(self, handle, info, rank, source=ANY_SOURCE, tag=ANY_TAG, size=None):
        """bcs_recv(blocking); returns the completed request."""
        req = self.post_recv(handle, info, rank, source, tag, size)
        yield from self.wait(handle, [req])
        return req

    def barrier(self, handle, info, rank):
        """bcs_barrier."""
        req = self.post_collective(handle, info, rank, "barrier")
        yield from self.wait(handle, [req])
        self._maybe_release(req)

    def bcast(self, handle, info, rank, payload=None, root=0, size=None):
        """bcs_bcast; every rank returns the broadcast payload."""
        req = self.post_collective(
            handle, info, rank, "bcast", root=root, payload=payload, size=size
        )
        yield from self.wait(handle, [req])
        result = req.payload
        self._maybe_release(req)
        return result

    def reduce(self, handle, info, rank, payload, op, root=0, all_ranks=False):
        """bcs_reduce (``all_ranks`` selects the allreduce variant)."""
        kind = "allreduce" if all_ranks else "reduce"
        req = self.post_collective(
            handle, info, rank, kind, root=root, op=op, payload=payload
        )
        yield from self.wait(handle, [req])
        result = req.payload
        self._maybe_release(req)
        return result

    # -- internals ------------------------------------------------------------------------------

    def _maybe_release(self, req: BcsRequest) -> None:
        """Recycle a request that never escaped to the caller.

        Only the blocking collective wrappers qualify — they return the
        payload (or nothing), never the handle, and their descriptor was
        already recycled when the epoch completed.  Skipped when span
        tracing is active: the tracker keys live wait references by
        request object identity.
        """
        runtime = self.runtime
        if not runtime.config.batched_matching:
            return
        obs = runtime.obs
        if obs is not None and obs.spans is not None:
            return
        runtime.pools.release_request(req)

    def _flush_overhead(self, handle: "RankHandle") -> Generator:
        t = handle.take_overhead()
        if t:
            yield self.env.timeout(t)
