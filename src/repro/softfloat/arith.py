"""IEEE-754 binary64 arithmetic using integer operations only.

Implements add, sub, mul, min, max and comparison with round-to-nearest-
even, correct across normals, subnormals, zeros, infinities and NaNs.
Property-tested bit-for-bit against the host FPU (see
``tests/softfloat/``).

The rounding machinery keeps three extra low-order bits (guard, round,
sticky) through alignment and normalization, then rounds once at pack
time — the standard SoftFloat structure.
"""

from __future__ import annotations

from .bits import (
    BIAS,
    EXP_MASK,
    EXP_SHIFT,
    FRAC_BITS,
    FRAC_MASK,
    HIDDEN_BIT,
    MAX_EXP,
    NEG_INF,
    POS_INF,
    POS_ZERO,
    QNAN,
    SIGN_BIT,
    is_inf,
    is_nan,
    is_zero,
    pack,
    significand,
    unpack,
)

# Working significand layout: 53 significand bits at positions 3..55,
# guard/round/sticky in the low 3 bits.
_GRS_BITS = 3
_TOP_BIT = 1 << (FRAC_BITS + 1 + 2 + _GRS_BITS - 3)  # == 1 << 55 leading bit
_WORK_ONE = 1 << (FRAC_BITS + _GRS_BITS)  # hidden bit position in work layout


def _round_pack(sign: int, exp: int, work: int) -> int:
    """Round a working significand (GRS in low 3 bits) and pack.

    ``exp`` is the biased exponent that corresponds to the hidden bit
    sitting at position ``FRAC_BITS + 3`` of ``work``.
    """
    if exp <= 0:
        # Subnormal range: shift right to biased exponent 1, keep sticky.
        shift = 1 - exp
        if shift > FRAC_BITS + _GRS_BITS + 2:
            work = 1 if work else 0
        else:
            sticky = 1 if work & ((1 << shift) - 1) else 0
            work = (work >> shift) | sticky
        exp = 1

    frac = work >> _GRS_BITS
    guard = (work >> 2) & 1
    rest = work & 3
    if guard and (rest or (frac & 1)):
        frac += 1
        if frac >= (1 << (FRAC_BITS + 1)) << 1:  # pragma: no cover - carry past 2^54
            frac >>= 1
            exp += 1
    if frac >= 1 << (FRAC_BITS + 1):
        frac >>= 1
        exp += 1

    if frac >= HIDDEN_BIT:
        if exp >= MAX_EXP:
            return pack(sign, MAX_EXP, 0)  # overflow -> infinity
        return pack(sign, exp, frac & FRAC_MASK)
    # No hidden bit: subnormal (or zero); only reachable with exp == 1.
    return pack(sign, 0, frac)


def f64_add(a: int, b: int) -> int:
    """Bit-pattern addition: a + b, round to nearest even."""
    if is_nan(a) or is_nan(b):
        return QNAN
    a_inf, b_inf = is_inf(a), is_inf(b)
    if a_inf or b_inf:
        if a_inf and b_inf:
            return a if a == b else QNAN  # inf + (-inf) is invalid
        return a if a_inf else b
    if is_zero(a) and is_zero(b):
        # +0 + -0 = +0 under RNE; equal signs keep the sign.
        return a if a == b else POS_ZERO
    if is_zero(a):
        return b
    if is_zero(b):
        return a

    # Order by magnitude so alignment always shifts b.
    if (a & ~SIGN_BIT) < (b & ~SIGN_BIT):
        a, b = b, a
    sa = a >> 63
    sb = b >> 63
    ma, ea = significand(a)
    mb, eb = significand(b)
    ma <<= _GRS_BITS
    mb <<= _GRS_BITS

    diff = ea - eb
    if diff:
        if diff > FRAC_BITS + _GRS_BITS + 2:
            mb = 1  # pure sticky
        else:
            sticky = 1 if mb & ((1 << diff) - 1) else 0
            mb = (mb >> diff) | sticky

    exp = ea
    if sa == sb:
        work = ma + mb
        if work >= _WORK_ONE << 1:
            sticky = work & 1
            work = (work >> 1) | sticky
            exp += 1
        return _round_pack(sa, exp, work)

    # Opposite signs: |a| >= |b| so the result takes a's sign.
    work = ma - mb
    if work == 0:
        return POS_ZERO  # exact cancellation is +0 under RNE
    while work < _WORK_ONE and exp > 1:
        work <<= 1
        exp -= 1
    return _round_pack(sa, exp, work)


def f64_neg(a: int) -> int:
    """Bit-pattern negation (sign flip; NaN kept NaN)."""
    return a ^ SIGN_BIT


def f64_sub(a: int, b: int) -> int:
    """Bit-pattern subtraction: a - b."""
    if is_nan(b):
        return QNAN
    return f64_add(a, f64_neg(b))


def f64_mul(a: int, b: int) -> int:
    """Bit-pattern multiplication: a * b, round to nearest even."""
    if is_nan(a) or is_nan(b):
        return QNAN
    sign = (a >> 63) ^ (b >> 63)
    a_inf, b_inf = is_inf(a), is_inf(b)
    if a_inf or b_inf:
        if is_zero(a) or is_zero(b):
            return QNAN  # inf * 0 is invalid
        return pack(sign, MAX_EXP, 0)
    if is_zero(a) or is_zero(b):
        return pack(sign, 0, 0)

    ma, ea = significand(a)
    mb, eb = significand(b)
    # Normalize subnormal inputs so the product's leading bit lands in a
    # predictable window.
    while ma < HIDDEN_BIT:
        ma <<= 1
        ea -= 1
    while mb < HIDDEN_BIT:
        mb <<= 1
        eb -= 1

    prod = ma * mb  # in [2^104, 2^106)
    exp = ea + eb - BIAS
    if prod >= 1 << (2 * FRAC_BITS + 1):
        shift = (2 * FRAC_BITS + 1) - (FRAC_BITS + _GRS_BITS)
        exp += 1
    else:
        shift = (2 * FRAC_BITS) - (FRAC_BITS + _GRS_BITS)
    sticky = 1 if prod & ((1 << shift) - 1) else 0
    work = (prod >> shift) | sticky
    return _round_pack(sign, exp, work)


def f64_div(a: int, b: int) -> int:
    """Bit-pattern division: a / b, round to nearest even."""
    if is_nan(a) or is_nan(b):
        return QNAN
    sign = (a >> 63) ^ (b >> 63)
    a_inf, b_inf = is_inf(a), is_inf(b)
    a_zero, b_zero = is_zero(a), is_zero(b)
    if a_inf:
        return QNAN if b_inf else pack(sign, MAX_EXP, 0)
    if b_inf:
        return pack(sign, 0, 0)
    if a_zero:
        return QNAN if b_zero else pack(sign, 0, 0)
    if b_zero:
        return pack(sign, MAX_EXP, 0)  # x / 0 -> signed infinity

    ma, ea = significand(a)
    mb, eb = significand(b)
    while ma < HIDDEN_BIT:
        ma <<= 1
        ea -= 1
    while mb < HIDDEN_BIT:
        mb <<= 1
        eb -= 1

    # Quotient with 56 result bits; floor division + sticky remainder
    # provides exact round-to-nearest-even information.
    numer = ma << (FRAC_BITS + 4)  # 56 extra bits
    quot, rem = divmod(numer, mb)
    sticky = 1 if rem else 0
    exp = ea - eb + BIAS
    if quot >= 1 << (FRAC_BITS + 4):  # in [2^56, 2^57): shift down one
        sticky |= quot & 1
        quot >>= 1
    else:
        exp -= 1
    return _round_pack(sign, exp, quot | sticky)


def f64_sqrt(a: int) -> int:
    """Bit-pattern square root, round to nearest even."""
    import math

    if is_nan(a):
        return QNAN
    if is_zero(a):
        return a  # sqrt(+-0) = +-0
    if a >> 63:
        return QNAN  # negative
    if is_inf(a):
        return a

    m, e_biased = significand(a)
    while m < HIDDEN_BIT:
        m <<= 1
        e_biased -= 1
    ex = e_biased - BIAS  # value = (m / 2^52) * 2^ex, mantissa in [1, 2)

    shift = 2 * (FRAC_BITS + _GRS_BITS) - FRAC_BITS  # 58
    if ex & 1:
        shift += 1
        ex -= 1
    # isqrt of m * 2^shift yields a 56-bit result in [2^55, 2^56).
    radicand = m << shift
    root = math.isqrt(radicand)
    sticky = 0 if root * root == radicand else 1
    return _round_pack(0, ex // 2 + BIAS, root | sticky)


def f64_cmp(a: int, b: int):
    """Three-way compare: -1, 0, 1, or None when unordered (NaN)."""
    if is_nan(a) or is_nan(b):
        return None
    if is_zero(a) and is_zero(b):
        return 0
    # Map to a monotone signed key: positives keep their magnitude order,
    # negatives reverse it.
    ka = (a & ~SIGN_BIT) if not a >> 63 else -(a & ~SIGN_BIT)
    kb = (b & ~SIGN_BIT) if not b >> 63 else -(b & ~SIGN_BIT)
    return (ka > kb) - (ka < kb)


def f64_lt(a: int, b: int) -> bool:
    """a < b (False when unordered)."""
    return f64_cmp(a, b) == -1


def f64_min(a: int, b: int) -> int:
    """IEEE minNum: NaN loses to a number; -0 < +0."""
    if is_nan(a):
        return b if not is_nan(b) else QNAN
    if is_nan(b):
        return a
    if is_zero(a) and is_zero(b):
        return a if a >> 63 else b  # prefer -0
    return a if f64_cmp(a, b) <= 0 else b


def f64_max(a: int, b: int) -> int:
    """IEEE maxNum: NaN loses to a number; +0 > -0."""
    if is_nan(a):
        return b if not is_nan(b) else QNAN
    if is_nan(b):
        return a
    if is_zero(a) and is_zero(b):
        return a if not a >> 63 else b  # prefer +0
    return a if f64_cmp(a, b) >= 0 else b


def f64_from_int(n: int) -> int:
    """Convert a Python int to the nearest binary64 bit pattern (RNE)."""
    if n == 0:
        return POS_ZERO
    sign = 1 if n < 0 else 0
    mag = -n if n < 0 else n
    bits_len = mag.bit_length()
    exp = BIAS + bits_len - 1
    if bits_len <= FRAC_BITS + 1:
        work = mag << (FRAC_BITS + _GRS_BITS - (bits_len - 1))
    else:
        shift = bits_len - 1 - FRAC_BITS - _GRS_BITS
        if shift > 0:
            sticky = 1 if mag & ((1 << shift) - 1) else 0
            work = (mag >> shift) | sticky
        else:
            work = mag << -shift
    return _round_pack(sign, exp, work)
