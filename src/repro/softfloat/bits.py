"""Bit-level representation of IEEE-754 binary64.

The Quadrics Elan3 NIC has no floating-point unit, so BCS-MPI computes
NIC-side reductions with a software IEEE library (SoftFloat, paper §4.4).
This package reproduces that: binary64 arithmetic implemented **entirely
with integer operations** on the bit patterns.  The host float unit is
used only at the boundaries (float -> bits -> float).
"""

from __future__ import annotations

import struct

SIGN_BIT = 1 << 63
EXP_SHIFT = 52
EXP_MASK = 0x7FF
FRAC_BITS = 52
FRAC_MASK = (1 << FRAC_BITS) - 1
HIDDEN_BIT = 1 << FRAC_BITS
BIAS = 1023
MAX_EXP = 0x7FF

#: Canonical quiet NaN (what arithmetic produces for invalid operations).
QNAN = (MAX_EXP << EXP_SHIFT) | (1 << (FRAC_BITS - 1))
POS_INF = MAX_EXP << EXP_SHIFT
NEG_INF = SIGN_BIT | POS_INF
POS_ZERO = 0
NEG_ZERO = SIGN_BIT


def float_to_bits(x: float) -> int:
    """Reinterpret a Python float as its 64-bit pattern."""
    return struct.unpack("<Q", struct.pack("<d", x))[0]


def bits_to_float(bits: int) -> float:
    """Reinterpret a 64-bit pattern as a Python float."""
    return struct.unpack("<d", struct.pack("<Q", bits & 0xFFFFFFFFFFFFFFFF))[0]


def unpack(bits: int) -> tuple[int, int, int]:
    """Split a bit pattern into (sign, biased exponent, fraction)."""
    return bits >> 63, (bits >> EXP_SHIFT) & EXP_MASK, bits & FRAC_MASK


def pack(sign: int, exp: int, frac: int) -> int:
    """Assemble (sign, biased exponent, fraction) into a bit pattern."""
    return (sign << 63) | (exp << EXP_SHIFT) | frac


def is_nan(bits: int) -> bool:
    """True for any NaN encoding."""
    _, e, f = unpack(bits)
    return e == MAX_EXP and f != 0


def is_inf(bits: int) -> bool:
    """True for +/- infinity."""
    _, e, f = unpack(bits)
    return e == MAX_EXP and f == 0


def is_zero(bits: int) -> bool:
    """True for +/- zero."""
    return bits & ~SIGN_BIT == 0


def is_subnormal(bits: int) -> bool:
    """True for nonzero values with a zero exponent field."""
    _, e, f = unpack(bits)
    return e == 0 and f != 0


def significand(bits: int) -> tuple[int, int]:
    """(M, E): value = (-1)^sign * M * 2^(E - BIAS - FRAC_BITS).

    Normal numbers get the hidden bit; subnormals are mapped onto biased
    exponent 1 with no hidden bit, which has the same weight.
    """
    _, e, f = unpack(bits)
    if e == 0:
        return f, 1
    return f | HIDDEN_BIT, e
