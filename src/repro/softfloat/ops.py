"""Reduction operators over numpy buffers, with a NIC (softfloat) path.

Two evaluation paths produce the same results:

- ``host``: vectorized numpy — what the baseline MPI does after shipping
  data across the PCI bus to the host CPU.
- ``nic``: element-wise softfloat on bit patterns — what BCS-MPI's Reduce
  Helper thread does on the FPU-less NIC (paper §4.4).

Since both implement IEEE-754 round-to-nearest-even, results are
bit-identical for the same reduction order; tests assert exactly that.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .arith import f64_add, f64_max, f64_min, f64_mul
from .bits import bits_to_float, float_to_bits

#: Softfloat binary kernels by op name (float64 path).
_SOFT_KERNELS: dict[str, Callable[[int, int], int]] = {
    "sum": f64_add,
    "prod": f64_mul,
    "min": f64_min,
    "max": f64_max,
}

#: Host (numpy) kernels by op name.
_HOST_KERNELS: dict[str, Callable] = {
    "sum": np.add,
    "prod": np.multiply,
    "min": np.minimum,
    "max": np.maximum,
}

#: Integer kernels (NIC integer ALU; exact on both paths).
_INT_KERNELS: dict[str, Callable[[int, int], int]] = {
    "sum": lambda a, b: a + b,
    "prod": lambda a, b: a * b,
    "min": min,
    "max": max,
    "land": lambda a, b: int(bool(a) and bool(b)),
    "lor": lambda a, b: int(bool(a) or bool(b)),
    "band": lambda a, b: a & b,
    "bor": lambda a, b: a | b,
    "bxor": lambda a, b: a ^ b,
}

OP_NAMES = tuple(sorted(set(_SOFT_KERNELS) | set(_INT_KERNELS)))


def combine_host(op: str, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Combine two buffers with numpy (host path).

    Overflow to infinity is well-defined IEEE behaviour (and exactly
    what the softfloat path produces), so numpy's warning is silenced.
    """
    if op in _HOST_KERNELS:
        with np.errstate(over="ignore", invalid="ignore"):
            return _HOST_KERNELS[op](a, b)
    if op in _INT_KERNELS:
        kern = _INT_KERNELS[op]
        return np.array(
            [kern(int(x), int(y)) for x, y in zip(a.ravel(), b.ravel())],
            dtype=a.dtype,
        ).reshape(a.shape)
    raise ValueError(f"unknown reduce op {op!r}")


def combine_nic(op: str, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Combine two buffers element-wise the way the NIC does.

    float64 buffers go through the softfloat kernels on raw bit
    patterns; integer buffers use the NIC's integer ALU.
    """
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch {a.shape} vs {b.shape}")
    if a.dtype == np.float64:
        try:
            kern = _SOFT_KERNELS[op]
        except KeyError:
            raise ValueError(f"op {op!r} undefined for float64") from None
        out = np.empty_like(a)
        flat_a, flat_b, flat_o = a.ravel(), b.ravel(), out.ravel()
        for i in range(flat_a.size):
            bits = kern(float_to_bits(float(flat_a[i])), float_to_bits(float(flat_b[i])))
            flat_o[i] = bits_to_float(bits)
        return flat_o.reshape(a.shape)
    if np.issubdtype(a.dtype, np.integer):
        try:
            kern = _INT_KERNELS[op]
        except KeyError:
            raise ValueError(f"op {op!r} undefined for integers") from None
        out = np.array(
            [kern(int(x), int(y)) for x, y in zip(a.ravel(), b.ravel())],
            dtype=a.dtype,
        )
        return out.reshape(a.shape)
    raise TypeError(f"unsupported reduce dtype {a.dtype}")


def reduce_buffers(
    op: str, buffers: Sequence[np.ndarray], path: str = "nic"
) -> np.ndarray:
    """Fold ``buffers`` pairwise left-to-right with op via the given path.

    Order matters for floats; both MPI backends use the same ascending-
    rank order so results are comparable bit-for-bit.
    """
    if not buffers:
        raise ValueError("nothing to reduce")
    combine = combine_nic if path == "nic" else combine_host
    acc = np.array(buffers[0], copy=True)
    for buf in buffers[1:]:
        acc = combine(op, acc, np.asarray(buf))
    return acc
