"""Virtual-time critical-path extraction over the span DAG.

Given a :class:`~repro.obs.spans.SpanTracker` from a finished run, walk
backward from workload completion — the last rank to finish — through
the wait blocks and message/collective spans that bound each resumption,
and attribute every nanosecond of the makespan to exactly one category:

==================  ===========================================================
category            time on the critical path spent ...
==================  ===========================================================
``compute``         executing application code (no block in the way)
``launch_wait``     aligning the gang launch to the first slice boundary
``post_wait``       a posted descriptor waiting for its slice's DEM to start
``DEM``             in the descriptor-exchange microphase (ship / drain)
``MSM``             between arrival/exchange and match, plus scheduling gaps
                    between chunks of a multi-slice transfer, plus a
                    collective's drain-and-CaW window
``P2P``             actually moving bytes in the transmission microphase
``BBM``             executing a scheduled barrier/broadcast epoch
``RM``              executing a scheduled reduce epoch
``restart_wait``    delivered/committed, waiting for the next slice boundary
                    to restart the blocked process
``wait_other``      bound by an event the tracker has no span for
                    (cancelled receive, untracked request, truncated data)
==================  ===========================================================

The walk is a single backward cursor per segment: every emission clamps
into ``[floor, cursor]``, so the category totals sum to the makespan
*exactly* (asserted in tests and by the acceptance criteria) and the
walk provably terminates.  Each message traversal is also recorded as a
*hop* with a per-stage breakdown; the top-k longest hops form the
"longest message chains" section of the report.

Everything here is deterministic: tracker contents are recorded in
simulation order, tie-breaks use dense tracker-local ids, and the JSON
serialization sorts keys — two same-seed runs produce byte-identical
reports.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .spans import CollectiveSpan, MessageSpan, RankBlock, SpanTracker

__all__ = [
    "CATEGORIES",
    "BlameReport",
    "blame_payload",
    "critical_path",
    "render_blame",
    "to_json_bytes",
]

#: Blame categories, in report order.
CATEGORIES = (
    "compute",
    "launch_wait",
    "post_wait",
    "DEM",
    "MSM",
    "P2P",
    "BBM",
    "RM",
    "restart_wait",
    "wait_other",
)

#: Walker iteration backstop (far above any real block count).
_MAX_STEPS = 10_000_000


def _fmt_rank(key: Tuple[int, int]) -> str:
    return f"{key[0]}.{key[1]}"


@dataclass
class BlameReport:
    """The critical-path blame breakdown of one run."""

    makespan_ns: int
    #: Nanoseconds on the critical path per category; sums to makespan.
    categories_ns: Dict[str, int]
    #: Nanoseconds attributed per rank ("job.rank"); sums to makespan.
    per_rank_ns: Dict[str, int]
    #: Nanoseconds attributed per dense job index; sums to makespan.
    per_job_ns: Dict[str, int]
    #: Message/collective hops traversed, longest first (top-k).
    chains: List[dict] = field(default_factory=list)
    n_segments: int = 0
    n_hops: int = 0
    n_messages: int = 0
    n_delivered: int = 0
    n_collectives: int = 0

    def share(self, category: str) -> float:
        """Fraction of the makespan blamed on ``category``."""
        if not self.makespan_ns:
            return 0.0
        return self.categories_ns.get(category, 0) / self.makespan_ns


class _Walk:
    """Mutable walker state: one backward cursor plus the accumulators."""

    def __init__(self, tracker: SpanTracker, floor: int, cur: int):
        self.tracker = tracker
        self.floor = floor
        self.cur = cur
        self.cats = {c: 0 for c in CATEGORIES}
        self.per_rank: Dict[str, int] = {}
        self.per_job: Dict[str, int] = {}
        self.hops: List[dict] = []
        self.segments = 0

    def emit(self, lo, category: str, rank_key, hop: Optional[dict] = None) -> None:
        """Charge [max(floor, lo), cur] to ``category`` and move the cursor."""
        lo = self.floor if lo is None or lo < self.floor else lo
        if lo >= self.cur:
            return
        dur = self.cur - lo
        self.cats[category] += dur
        rk = _fmt_rank(rank_key)
        self.per_rank[rk] = self.per_rank.get(rk, 0) + dur
        jb = str(rank_key[0])
        self.per_job[jb] = self.per_job.get(jb, 0) + dur
        if hop is not None:
            stages = hop["stages_ns"]
            stages[category] = stages.get(category, 0) + dur
            hop["total_ns"] += dur
        self.segments += 1
        self.cur = lo


def _latest_block(blocks: List[RankBlock], cur: int) -> Optional[RankBlock]:
    """The block with the largest t1 <= cur (blocks sorted by t1)."""
    lo, hi = 0, len(blocks)
    while lo < hi:
        mid = (lo + hi) // 2
        if blocks[mid].t1 <= cur:
            lo = mid + 1
        else:
            hi = mid
    return blocks[lo - 1] if lo else None


def _rank_blocks(tracker: SpanTracker) -> Dict[tuple, List[RankBlock]]:
    per: Dict[tuple, List[RankBlock]] = {}
    for key, (t0, t1) in tracker.rank_start.items():
        if t1 > t0:
            per.setdefault(key, []).append(RankBlock(t0, t1, "launch"))
    for key, blist in tracker.blocks.items():
        per.setdefault(key, []).extend(blist)
    for blist in per.values():
        blist.sort(key=lambda b: (b.t1, b.t0))
    return per


def _binding(block: RankBlock) -> Optional[tuple]:
    """The awaited ref that completed last (first among exact ties)."""
    best_t, best_ref = None, None
    for completed, ref in block.entries:
        if best_t is None or completed > best_t:
            best_t, best_ref = completed, ref
    return best_ref


def _resolve_message(w: _Walk, m: MessageSpan, rank, block: RankBlock):
    if m.delivered_at is None or m.matched_at is None:
        w.emit(block.t0, "wait_other", rank)
        return rank
    dstk = m.dst_key or m.src_key
    srck = m.src_key
    hop = {
        "hop": len(w.hops),
        "kind": "message",
        "src": _fmt_rank(srck),
        "dst": _fmt_rank(dstk),
        "size": m.size,
        "tag": m.tag,
        "matched_by": m.matched_by,
        "slices": [
            s
            for s in (m.exchange_slice, m.match_slice, m.first_grant_slice, m.delivered_slice)
            if s is not None
        ],
        "total_ns": 0,
        "stages_ns": {},
    }
    w.emit(m.delivered_at, "restart_wait", rank, hop)
    # Transmission: P2P windows with scheduling gaps between chunks.
    for slice_no, c0, c1, _nbytes in reversed(m.chunks):
        w.emit(c1, "MSM", dstk, hop)
        w.emit(c0, "P2P", dstk, hop)
    w.emit(m.matched_at, "MSM", dstk, hop)
    if m.matched_by == "send":
        # The arrival completed the pair: the binding constraint chain
        # runs through the sender's descriptor exchange.
        if m.exchanged_at is not None:
            w.emit(m.exchanged_at, "MSM", dstk, hop)
            w.emit(m.exchange_slice_start, "DEM", srck, hop)
        w.emit(m.send_posted_at, "post_wait", srck, hop)
        nxt = srck
    else:
        # The receive post completed the pair (drained an unexpected
        # send): the chain runs through the receiver's DEM drain.
        w.emit(m.match_slice_start, "DEM", dstk, hop)
        if m.recv_posted_at is not None:
            w.emit(m.recv_posted_at, "post_wait", dstk, hop)
        nxt = dstk
    w.hops.append(hop)
    return nxt


def _resolve_collective(w: _Walk, c: CollectiveSpan, rank, block: RankBlock):
    if c.completed_at is None or c.scheduled_at is None or not c.posts:
        w.emit(block.t0, "wait_other", rank)
        return rank
    last_t = max(c.posts.values())
    last_key = min(k for k, v in c.posts.items() if v == last_t)
    hop = {
        "hop": len(w.hops),
        "kind": c.kind,
        "participants": len(c.posts),
        "last_poster": _fmt_rank(last_key),
        "slices": [s for s in (c.sched_slice, c.completed_slice) if s is not None],
        "total_ns": 0,
        "stages_ns": {},
    }
    w.emit(c.completed_at, "restart_wait", rank, hop)
    execute = "RM" if c.kind in ("reduce", "allreduce") else "BBM"
    w.emit(c.scheduled_at, execute, last_key, hop)
    # Slice holding the CaW: descriptor drain + query broadcast window.
    w.emit(c.sched_slice_start, "MSM", last_key, hop)
    w.emit(last_t, "post_wait", last_key, hop)
    w.hops.append(hop)
    return last_key


def critical_path(
    tracker: SpanTracker,
    makespan_ns: Optional[int] = None,
    top: int = 8,
) -> BlameReport:
    """Walk the span DAG backward from completion; return the blame report.

    ``makespan_ns`` defaults to the latest rank finish time; when given
    (e.g. the harness's measured job runtime) the walk covers exactly
    that window ending at the last finish.  Category, per-rank, and
    per-job totals each sum to the makespan exactly.
    """
    finish = tracker.rank_finish
    if finish:
        t_end = max(finish.values())
        start_rank = min(k for k, v in finish.items() if v == t_end)
    else:
        t_end, start_rank = 0, (0, 0)
    makespan = t_end if makespan_ns is None else makespan_ns
    floor = t_end - makespan
    w = _Walk(tracker, floor, t_end)
    blocks = _rank_blocks(tracker)

    rank = start_rank
    steps = 0
    while w.cur > floor:
        steps += 1
        if steps > _MAX_STEPS:  # pragma: no cover - defensive backstop
            w.emit(floor, "wait_other", rank)
            break
        blist = blocks.get(rank)
        block = _latest_block(blist, w.cur) if blist else None
        if block is None or block.t1 <= floor:
            w.emit(floor, "compute", rank)
            break
        if block.t1 < w.cur:
            w.emit(block.t1, "compute", rank)
        before = w.cur
        if block.kind == "launch":
            w.emit(block.t0, "launch_wait", rank)
        else:
            ref = _binding(block)
            target = tracker.resolve(ref) if ref is not None else None
            if isinstance(target, MessageSpan):
                rank = _resolve_message(w, target, rank, block)
            elif isinstance(target, CollectiveSpan):
                rank = _resolve_collective(w, target, rank, block)
            else:
                w.emit(block.t0, "wait_other", rank)
        if w.cur >= before:
            # Inconsistent span data would stall the cursor; charge the
            # whole block and, failing that, the remainder of the walk.
            w.emit(block.t0, "wait_other", rank)
            if w.cur >= before:
                w.emit(floor, "wait_other", rank)
                break

    chains = sorted(w.hops, key=lambda h: (-h["total_ns"], h["hop"]))[:top]
    return BlameReport(
        makespan_ns=makespan,
        categories_ns=w.cats,
        per_rank_ns=dict(sorted(w.per_rank.items())),
        per_job_ns=dict(sorted(w.per_job.items())),
        chains=chains,
        n_segments=w.segments,
        n_hops=len(w.hops),
        n_messages=len(tracker.messages),
        n_delivered=tracker.n_delivered,
        n_collectives=len(tracker.collectives),
    )


# -- reporting --------------------------------------------------------------------


def blame_payload(
    report: BlameReport,
    *,
    experiment: Optional[str] = None,
    ranks: Optional[int] = None,
    seed: Optional[int] = None,
) -> dict:
    """The machine-readable blame report (``explain --json`` schema v1)."""
    makespan = report.makespan_ns
    return {
        "schema": 1,
        "experiment": experiment,
        "ranks": ranks,
        "seed": seed,
        "makespan_ns": makespan,
        "categories_ns": {c: report.categories_ns.get(c, 0) for c in CATEGORIES},
        "shares": {c: round(report.share(c), 6) for c in CATEGORIES},
        "per_rank_ns": dict(report.per_rank_ns),
        "per_job_ns": dict(report.per_job_ns),
        "chains": list(report.chains),
        "counts": {
            "segments": report.n_segments,
            "hops": report.n_hops,
            "messages": report.n_messages,
            "delivered": report.n_delivered,
            "collectives": report.n_collectives,
        },
    }


def to_json_bytes(payload: dict) -> bytes:
    """Byte-stable serialization of a blame payload."""
    return (json.dumps(payload, sort_keys=True, indent=2) + "\n").encode("ascii")


def render_blame(report: BlameReport, title: str = "run") -> str:
    """Deterministic text rendering of one blame report."""
    lines = [
        f"critical path of {title}: makespan {report.makespan_ns} ns, "
        f"{report.n_segments} segment(s), {report.n_hops} hop(s)",
        "",
        "  category       time on critical path",
        "  -------------  ----------------------",
    ]
    for cat in CATEGORIES:
        ns = report.categories_ns.get(cat, 0)
        if ns == 0 and cat not in ("compute",):
            continue
        lines.append(f"  {cat:<13}  {ns:>14} ns  {100.0 * report.share(cat):5.1f}%")
    total = sum(report.categories_ns.values())
    lines.append(f"  {'total':<13}  {total:>14} ns  100.0%")

    if report.per_rank_ns:
        lines.append("")
        lines.append("  per rank (job.rank):")
        for rk, ns in sorted(
            report.per_rank_ns.items(), key=lambda kv: (-kv[1], kv[0])
        )[:8]:
            lines.append(f"    {rk:<8}  {ns:>14} ns  {100.0 * ns / total if total else 0.0:5.1f}%")

    if report.chains:
        lines.append("")
        lines.append(f"  top {len(report.chains)} chain(s) on the critical path:")
        for hop in report.chains:
            stages = ", ".join(
                f"{c}={hop['stages_ns'][c]}" for c in CATEGORIES if c in hop["stages_ns"]
            )
            if hop["kind"] == "message":
                head = (
                    f"message {hop['src']}->{hop['dst']} "
                    f"({hop['size']} B, tag {hop['tag']})"
                )
            else:
                head = f"{hop['kind']} x{hop['participants']} (last post {hop['last_poster']})"
            lines.append(f"    #{hop['hop']:<3} {head}: {hop['total_ns']} ns [{stages}]")
    return "\n".join(lines)
