"""Observability: metrics, trace export, and MPI profiling.

The telemetry layer for the BCS-MPI simulation (see
docs/OBSERVABILITY.md):

- :class:`MetricsRegistry` — labeled counters, gauges, and histograms
  with exact p50/p95/p99 summaries;
- :class:`PerfettoTrace` — Chrome/Perfetto trace-event JSON export,
  one track group per node plus NIC-thread tracks;
- :class:`MpiProfiler` — per-rank, per-call-site virtual-time
  attribution with an mpiP-style report;
- :class:`SpanTracker` + :func:`critical_path` — causal
  message-lifecycle spans and the virtual-time critical-path blame
  breakdown (``Observability(spans=True)``, ``repro explain``);
- :class:`Observability` — the hub the runtime reports into
  (``runtime.attach_observability(Observability())``).

Everything here is passive: hooks never touch the event queue, so an
instrumented run takes exactly the same virtual time as a bare one.
"""

from .critpath import BlameReport, CATEGORIES, critical_path
from .perfetto import PerfettoTrace
from .profiler import MpiProfiler
from .registry import (
    Counter,
    Gauge,
    Histogram,
    LabelCardinalityError,
    MetricsRegistry,
    percentile,
)
from .spans import CollectiveSpan, MessageSpan, SpanTracker
from .telemetry import Observability, PHASE_THREADS

__all__ = [
    "BlameReport",
    "CATEGORIES",
    "CollectiveSpan",
    "Counter",
    "Gauge",
    "Histogram",
    "LabelCardinalityError",
    "MessageSpan",
    "MetricsRegistry",
    "MpiProfiler",
    "Observability",
    "PHASE_THREADS",
    "PerfettoTrace",
    "SpanTracker",
    "critical_path",
    "percentile",
]
