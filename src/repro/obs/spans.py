"""Causal message-lifecycle spans (the "why is this run slow" layer).

Aggregate metrics (:mod:`.registry`) say *how much* time each microphase
consumed; this module records *which* message spent it.  A
:class:`SpanTracker` follows every point-to-point message through its
lifecycle

    posted -> descriptor exchanged (DEM) -> matched (MSM/DEM)
           -> scheduled -> transmitted in chunks (P2P) -> delivered

and every collective through

    posted (per rank) -> CaW-scheduled -> committed (BBM/RM)

as linked spans with rank, slice, and microphase attribution.  It also
records every blocking wait (which requests a rank blocked on, and when
it resumed), which is exactly the dependency edge set the critical-path
extractor (:mod:`.critpath`) walks backward from workload completion.

When a :class:`~repro.obs.perfetto.PerfettoTrace` is attached, each
delivered message additionally emits a flow-event triple ("s"/"t"/"f")
on the nodes' microphase tracks, so the Perfetto UI renders the
cross-node causality arrows over the existing DEM/MSM/P2P spans.

Like every other hook in the obs stack, the tracker is passive: hooks
read ``env.now`` but never enter the event queue, so golden virtual
timings are identical with span tracing off and on (pinned by
``tests/test_golden_timings.py``).

Determinism note: descriptor ids come from a process-global counter, so
they differ between two same-seed runs in one process.  They are used
only as in-run dictionary keys; everything that reaches a report uses
tracker-local dense ids (``msg_id``, dense job indices) assigned in
simulation order, which *are* byte-stable across runs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from ..bcs.descriptors import (
        CollectiveDescriptor,
        Match,
        RecvDescriptor,
        SendDescriptor,
    )
    from ..bcs.runtime import BcsRuntime
    from .perfetto import PerfettoTrace

__all__ = ["CollectiveSpan", "MessageSpan", "RankBlock", "SpanTracker"]

#: Microphase thread track inside each node's process group (matches
#: ``repro.obs.telemetry.TID_MICROPHASES``; duplicated to avoid a cycle).
_TID_MICROPHASES = 0

#: A rank on the critical-path graph: (dense job index, world rank).
RankKey = Tuple[int, int]


class MessageSpan:
    """One point-to-point message's lifecycle, posted to delivered."""

    __slots__ = (
        "msg_id",
        "job",
        "src_key",
        "dst_key",
        "tag",
        "size",
        "src_node",
        "dst_node",
        "send_posted_at",
        "recv_posted_at",
        "exchanged_at",
        "exchange_slice",
        "exchange_slice_start",
        "matched_at",
        "match_slice",
        "match_slice_start",
        "matched_by",
        "first_grant_slice",
        "chunks",
        "delivered_at",
        "delivered_slice",
        "retired_slice",
    )

    def __init__(self, msg_id: int, job: int, src_key: RankKey, tag: int, size: int):
        self.msg_id = msg_id
        self.job = job
        self.src_key: RankKey = src_key
        self.dst_key: Optional[RankKey] = None
        self.tag = tag
        self.size = size
        self.src_node: Optional[int] = None
        self.dst_node: Optional[int] = None
        self.send_posted_at: int = 0
        self.recv_posted_at: Optional[int] = None
        self.exchanged_at: Optional[int] = None
        self.exchange_slice: Optional[int] = None
        self.exchange_slice_start: Optional[int] = None
        self.matched_at: Optional[int] = None
        self.match_slice: Optional[int] = None
        self.match_slice_start: Optional[int] = None
        #: Which descriptor completed the pair: "send" (arrival met a
        #: posted receive) or "recv" (a post drained an unexpected send).
        self.matched_by: str = ""
        self.first_grant_slice: Optional[int] = None
        #: Transmitted chunks: (slice_no, t0, t1, nbytes), in sim order.
        self.chunks: List[Tuple[int, int, int, int]] = []
        self.delivered_at: Optional[int] = None
        self.delivered_slice: Optional[int] = None
        self.retired_slice: Optional[int] = None

    def __repr__(self) -> str:
        state = "delivered" if self.delivered_at is not None else "in-flight"
        return f"<MessageSpan #{self.msg_id} {self.src_key}->{self.dst_key} {state}>"


class CollectiveSpan:
    """One collective epoch's lifecycle across its participating ranks."""

    __slots__ = (
        "coll_id",
        "job",
        "kind",
        "posts",
        "scheduled_at",
        "sched_slice",
        "sched_slice_start",
        "completed_at",
        "completed_slice",
    )

    def __init__(self, coll_id: int, job: int, kind: str):
        self.coll_id = coll_id
        self.job = job
        self.kind = kind
        #: Post time per participating rank key.
        self.posts: Dict[RankKey, int] = {}
        self.scheduled_at: Optional[int] = None
        self.sched_slice: Optional[int] = None
        self.sched_slice_start: Optional[int] = None
        #: Commit time (max over per-node completion commits).
        self.completed_at: Optional[int] = None
        self.completed_slice: Optional[int] = None

    def __repr__(self) -> str:
        state = "done" if self.completed_at is not None else "pending"
        return f"<CollectiveSpan #{self.coll_id} {self.kind} n={len(self.posts)} {state}>"


class RankBlock:
    """One blocking wait of one rank: [t0, t1] plus what it waited on."""

    __slots__ = ("t0", "t1", "kind", "entries")

    def __init__(self, t0: int, t1: int, kind: str, entries=()):
        self.t0 = t0
        self.t1 = t1
        #: "wait" (bcs wait) or "launch" (gang-launch slice alignment).
        self.kind = kind
        #: (completed_at, ref) per awaited request, in the caller's
        #: request order (deterministic: it is the application's list).
        self.entries: Tuple[Tuple[int, tuple], ...] = tuple(entries)

    def __repr__(self) -> str:
        return f"<RankBlock {self.kind} [{self.t0},{self.t1}] n={len(self.entries)}>"


class SpanTracker:
    """Collects message/collective spans and per-rank wait blocks."""

    def __init__(self):
        self.runtime: Optional["BcsRuntime"] = None
        self.perfetto: Optional["PerfettoTrace"] = None
        #: Dense job index by raw job id, in first-appearance order.
        self._job_idx: Dict[int, int] = {}
        #: Every tracked message, in post (= msg_id) order.
        self.messages: List[MessageSpan] = []
        #: Every tracked collective, in first-post order.
        self.collectives: List[CollectiveSpan] = []
        self._span_by_send: Dict[int, MessageSpan] = {}
        self._span_by_recv: Dict[int, MessageSpan] = {}
        #: Posted receives not yet linked: desc_id -> (rank_key, t).
        self._recv_posts: Dict[int, Tuple[RankKey, int]] = {}
        self._coll_by_key: Dict[tuple, CollectiveSpan] = {}
        #: Awaitable -> span reference, keyed by the request object
        #: itself (identity hash; the dict holds a strong ref, so ids
        #: cannot be recycled under us).
        self._ref_by_req: Dict[object, tuple] = {}
        #: Completed wait blocks per rank key, in completion order.
        self.blocks: Dict[RankKey, List[RankBlock]] = {}
        #: Gang-launch window per rank key: (t0, first slice boundary).
        self.rank_start: Dict[RankKey, Tuple[int, int]] = {}
        #: Finish time per rank key.
        self.rank_finish: Dict[RankKey, int] = {}

    # -- wiring -------------------------------------------------------------------

    def attach(self, runtime: "BcsRuntime", perfetto: Optional["PerfettoTrace"]) -> None:
        self.runtime = runtime
        self.perfetto = perfetto

    def _jkey(self, job_id: int) -> int:
        idx = self._job_idx.get(job_id)
        if idx is None:
            idx = len(self._job_idx)
            self._job_idx[job_id] = idx
        return idx

    def _now(self) -> int:
        return self.runtime.env.now if self.runtime is not None else 0

    def _slice(self) -> Tuple[int, int]:
        """(current slice number, its start time)."""
        rt = self.runtime
        if rt is None:
            return 0, 0
        return rt.slice_no, rt.slice_start_time

    # -- posting hooks (called from the BCS API layer) ------------------------------

    def send_posted(self, desc: "SendDescriptor", job_id: int, world_rank: int) -> None:
        span = MessageSpan(
            len(self.messages),
            self._jkey(job_id),
            (self._jkey(job_id), world_rank),
            desc.tag,
            desc.size,
        )
        span.send_posted_at = desc.posted_at
        self.messages.append(span)
        self._span_by_send[desc.desc_id] = span
        self._ref_by_req[desc.request] = ("msg", desc.desc_id)

    def recv_posted(self, desc: "RecvDescriptor", job_id: int, world_rank: int) -> None:
        key = (self._jkey(job_id), world_rank)
        self._recv_posts[desc.desc_id] = (key, desc.posted_at)
        self._ref_by_req[desc.request] = ("recv", desc.desc_id)

    def coll_posted(
        self, desc: "CollectiveDescriptor", job_id: int, world_rank: int
    ) -> None:
        key = (job_id, desc.comm_id, desc.epoch)
        span = self._coll_by_key.get(key)
        if span is None:
            span = CollectiveSpan(len(self.collectives), self._jkey(job_id), desc.kind)
            self.collectives.append(span)
            self._coll_by_key[key] = span
        span.posts[(self._jkey(job_id), world_rank)] = desc.posted_at
        self._ref_by_req[desc.request] = ("coll", key)

    # -- NIC-thread hooks (called from repro.bcs.threads) ---------------------------

    def msg_exchanged(
        self, desc: "SendDescriptor", src_node: int, dst_node: int
    ) -> None:
        """BS shipped the send descriptor to the destination BR (DEM)."""
        span = self._span_by_send.get(desc.desc_id)
        if span is None:
            return
        now = self._now()
        span.src_node = src_node
        span.dst_node = dst_node
        span.exchanged_at = now
        span.exchange_slice, span.exchange_slice_start = self._slice()
        if self.perfetto is not None:
            self.perfetto.flow_start(
                src_node, _TID_MICROPHASES, "msg", "msgflow", now, span.msg_id
            )

    def msg_matched(self, match: "Match") -> None:
        """The BR paired the send with a posted receive."""
        span = self._span_by_send.get(match.send.desc_id)
        if span is None:
            return
        now = self._now()
        span.matched_at = now
        span.match_slice, span.match_slice_start = self._slice()
        span.matched_by = match.matched_via
        span.src_node = match.src_node
        span.dst_node = match.dst_node
        recv_post = self._recv_posts.pop(match.recv.desc_id, None)
        if recv_post is not None:
            span.dst_key, span.recv_posted_at = recv_post
        self._span_by_recv[match.recv.desc_id] = span
        if self.perfetto is not None:
            self.perfetto.flow_step(
                match.dst_node, _TID_MICROPHASES, "msg", "msgflow", now, span.msg_id
            )

    def sched_granted(self, granted) -> None:
        """The MSM scheduler granted this slice's chunks."""
        slice_no = self.runtime.slice_no if self.runtime is not None else 0
        by_send = self._span_by_send
        for match in granted:
            span = by_send.get(match.send.desc_id)
            if span is not None and span.first_grant_slice is None:
                span.first_grant_slice = slice_no

    def sched_retired(self, finished) -> None:
        """The scheduler dropped fully transferred matches."""
        slice_no = self.runtime.slice_no if self.runtime is not None else 0
        by_send = self._span_by_send
        for match in finished:
            span = by_send.get(match.send.desc_id)
            if span is not None:
                span.retired_slice = slice_no

    def msg_chunk(self, match: "Match", t0: int, t1: int, nbytes: int) -> None:
        """The DH moved one chunk of the message (P2P)."""
        span = self._span_by_send.get(match.send.desc_id)
        if span is not None:
            slice_no, _ = self._slice()
            span.chunks.append((slice_no, t0, t1, nbytes))

    def msg_delivered(self, match: "Match") -> None:
        """The last chunk landed; the receive request completed."""
        span = self._span_by_send.get(match.send.desc_id)
        if span is None:
            return
        now = self._now()
        span.delivered_at = now
        span.delivered_slice, _ = self._slice()
        if self.perfetto is not None:
            self.perfetto.flow_end(
                match.dst_node, _TID_MICROPHASES, "msg", "msgflow", now, span.msg_id
            )

    def coll_scheduled(self, job_id: int, comm_id: int, epoch: int) -> None:
        """The root node's CaW admitted the epoch (MSM)."""
        span = self._coll_by_key.get((job_id, comm_id, epoch))
        if span is not None:
            span.scheduled_at = self._now()
            span.sched_slice, span.sched_slice_start = self._slice()

    def coll_completed(self, job_id: int, comm_id: int, epoch: int) -> None:
        """One node committed the epoch's result to its local ranks."""
        span = self._coll_by_key.get((job_id, comm_id, epoch))
        if span is None:
            return
        now = self._now()
        if span.completed_at is None or now > span.completed_at:
            span.completed_at = now
            span.completed_slice, _ = self._slice()

    # -- rank lifecycle hooks -------------------------------------------------------

    def rank_started(self, job_id: int, world_rank: int, t0: int, t1: int) -> None:
        self.rank_start[(self._jkey(job_id), world_rank)] = (t0, t1)

    def rank_wait(
        self, job_id: int, world_rank: int, reqs, t0: int, t1: int
    ) -> None:
        """One rank blocked on ``reqs`` over [t0, t1] (t1 > t0)."""
        refs = self._ref_by_req
        entries = []
        for req in reqs:
            ref = refs.get(req)
            if ref is not None:
                done = req.completed_at
                entries.append((done if done is not None else t1, ref))
        key = (self._jkey(job_id), world_rank)
        self.blocks.setdefault(key, []).append(RankBlock(t0, t1, "wait", entries))

    def rank_finished(self, job_id: int, world_rank: int, t: int) -> None:
        self.rank_finish[(self._jkey(job_id), world_rank)] = t

    # -- resolution (used by the critical-path walker) ------------------------------

    def resolve(self, ref: tuple):
        """A block entry's ref -> MessageSpan | CollectiveSpan | None."""
        kind, key = ref
        if kind == "msg":
            return self._span_by_send.get(key)
        if kind == "recv":
            return self._span_by_recv.get(key)
        return self._coll_by_key.get(key)

    @property
    def n_delivered(self) -> int:
        return sum(1 for m in self.messages if m.delivered_at is not None)

    def __repr__(self) -> str:
        return (
            f"<SpanTracker msgs={len(self.messages)} "
            f"colls={len(self.collectives)} ranks={len(self.rank_finish)}>"
        )
