"""Per-rank MPI profiling (mpiP-style).

Attributes every rank's virtual time to *application* vs *MPI* (time
spent suspended in blocking waits), and every MPI operation to the call
site that issued it — the summary mpiP prints after a real run, built
here from the deterministic simulation instead of sampled timers.

The profiler is driven by the BCS API layer (:mod:`repro.api.bcs_api`):
``record_post`` on every descriptor post, ``record_wait`` around every
blocking wait.  Call sites are resolved by walking the Python stack past
the runtime's own frames to the first application frame; with a fixed
checkout the resulting ``file:line`` strings are stable, keeping reports
byte-identical across runs.
"""

from __future__ import annotations

import os
import sys
from typing import Dict, List, Tuple

__all__ = ["MpiProfiler"]

#: Module path fragments considered runtime-internal when resolving the
#: application call site (searched against normalized file paths).
_INTERNAL = (
    os.sep + "repro" + os.sep + "api" + os.sep,
    os.sep + "repro" + os.sep + "mpi" + os.sep,
    os.sep + "repro" + os.sep + "bcs" + os.sep,
    os.sep + "repro" + os.sep + "obs" + os.sep,
)


def _call_site(max_depth: int = 24) -> str:
    """``file:line`` of the nearest non-runtime frame on the stack."""
    try:
        frame = sys._getframe(2)
    except ValueError:  # pragma: no cover - stack too shallow
        return "<unknown>"
    depth = 0
    while frame is not None and depth < max_depth:
        filename = frame.f_code.co_filename
        if not any(part in filename for part in _INTERNAL):
            return f"{_shorten(filename)}:{frame.f_lineno}"
        frame = frame.f_back
        depth += 1
    return "<unknown>"


def _shorten(filename: str) -> str:
    """Path from the ``repro`` package root (or the basename)."""
    parts = filename.replace("\\", "/").split("/")
    if "repro" in parts:
        return "/".join(parts[parts.index("repro"):])
    return parts[-1]


class _RankProfile:
    """Accumulated attribution for one rank."""

    __slots__ = ("app_ns", "mpi_ns", "calls", "last_mark")

    def __init__(self):
        self.app_ns = 0
        self.mpi_ns = 0
        self.calls = 0
        #: Virtual time of the last accounted event boundary.
        self.last_mark = 0


class MpiProfiler:
    """mpiP-style attribution of virtual time per rank and call site."""

    def __init__(self):
        #: (job index, world_rank) -> per-rank totals.
        self.ranks: Dict[Tuple[int, int], _RankProfile] = {}
        #: (op, site) -> [count, total_wait_ns, total_bytes]
        self.sites: Dict[Tuple[str, str], List[int]] = {}
        #: Runtime job id -> dense run-local index.  Job ids come from a
        #: process-global counter, so reports key ranks by order of first
        #: appearance instead — byte-identical however many runs preceded
        #: this one in the process.
        self._job_index: Dict[int, int] = {}

    # -- recording ----------------------------------------------------------------

    def _rank(self, job_id: int, rank: int) -> _RankProfile:
        index = self._job_index.get(job_id)
        if index is None:
            index = self._job_index[job_id] = len(self._job_index)
        key = (index, rank)
        prof = self.ranks.get(key)
        if prof is None:
            prof = _RankProfile()
            self.ranks[key] = prof
        return prof

    def record_post(self, job_id: int, rank: int, op: str, nbytes: int) -> None:
        """One descriptor post (non-blocking half of an MPI call)."""
        site = _call_site()
        entry = self.sites.get((op, site))
        if entry is None:
            self.sites[(op, site)] = [1, 0, nbytes]
        else:
            entry[0] += 1
            entry[2] += nbytes
        self._rank(job_id, rank).calls += 1

    def record_wait(
        self, job_id: int, rank: int, op: str, t0: int, t1: int
    ) -> None:
        """One blocking wait: ``[t0, t1]`` of virtual time spent in MPI."""
        site = _call_site()
        prof = self._rank(job_id, rank)
        prof.app_ns += max(t0 - prof.last_mark, 0)
        prof.mpi_ns += t1 - t0
        prof.last_mark = t1
        entry = self.sites.get((op, site))
        if entry is None:
            self.sites[(op, site)] = [1, t1 - t0, 0]
        else:
            entry[0] += 1
            entry[1] += t1 - t0

    # -- reporting ----------------------------------------------------------------

    def report(self, top: int = 20) -> str:
        """The mpiP-style text summary (deterministic)."""
        lines: List[str] = []
        lines.append("@--- MPI Time (virtual milliseconds) " + "-" * 34)
        lines.append(f"{'Task':>8}  {'AppTime':>12}  {'MPITime':>12}  {'MPI%':>6}")
        tot_app = tot_mpi = 0
        for (job, rank) in sorted(self.ranks):
            prof = self.ranks[(job, rank)]
            tot_app += prof.app_ns
            tot_mpi += prof.mpi_ns
            total = prof.app_ns + prof.mpi_ns
            pct = 100.0 * prof.mpi_ns / total if total else 0.0
            lines.append(
                f"{f'{job}.{rank}':>8}  {prof.app_ns / 1e6:12.3f}  "
                f"{prof.mpi_ns / 1e6:12.3f}  {pct:6.2f}"
            )
        total = tot_app + tot_mpi
        pct = 100.0 * tot_mpi / total if total else 0.0
        lines.append(
            f"{'*':>8}  {tot_app / 1e6:12.3f}  {tot_mpi / 1e6:12.3f}  {pct:6.2f}"
        )

        # Callsite table: by total wait time, then count, then name.
        ordered = sorted(
            self.sites.items(), key=lambda kv: (-kv[1][1], -kv[1][0], kv[0])
        )
        lines.append("")
        lines.append(f"@--- Callsites: {len(ordered)} " + "-" * 48)
        lines.append(
            f"{'Op':<16} {'Site':<40} {'Count':>8} {'Time(ms)':>10} {'MB':>8}"
        )
        for (op, site), (count, wait_ns, nbytes) in ordered[:top]:
            lines.append(
                f"{op:<16} {site:<40} {count:>8} {wait_ns / 1e6:>10.3f} "
                f"{nbytes / 1e6:>8.2f}"
            )
        if len(ordered) > top:
            lines.append(f"... ({len(ordered) - top} more call sites)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<MpiProfiler ranks={len(self.ranks)} sites={len(self.sites)}>"
