"""Labeled metrics: counters, gauges, and histograms with summaries.

The registry is the single aggregation point for everything the
instrumented runtime measures.  Instruments are identified by a metric
name plus a label set (``registry.counter("bcs.slice.count",
kind="active")``); the same (name, labels) pair always returns the same
instrument, so hot paths can either cache the instrument or re-look it
up — both are cheap dict operations.

Design constraints inherited from the simulator:

- **Determinism** — iteration order of every rendering/snapshot method is
  sorted, never insertion-dependent, so two identical runs produce
  byte-identical reports.
- **No virtual-time impact** — nothing here touches the event queue;
  recording a sample is pure Python bookkeeping.
- **Bounded cardinality** — a metric stops growing past
  ``max_series_per_metric`` distinct label sets (protects against
  accidentally labeling by message id or timestamp).  Overflowing
  samples are routed to a shared per-metric overflow series and counted
  in the self-describing ``obs.labels_dropped`` counter, so the cap
  never silently loses data and never crashes a hot path.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LabelCardinalityError",
    "MetricsRegistry",
    "percentile",
]


class LabelCardinalityError(ValueError):
    """A metric exceeded its allowed number of distinct label sets.

    Kept for backward compatibility: the registry no longer raises this
    (overflow routes to the shared per-metric overflow series and bumps
    ``obs.labels_dropped`` instead), but callers that caught it still
    import it from here.
    """


def percentile(samples: Iterable[float], p: float) -> float:
    """Nearest-rank percentile of ``samples`` (``p`` in [0, 100]).

    Deterministic and exact: sorts a copy, picks the ceil(p/100 * n)-th
    smallest sample.  Raises ``ValueError`` on an empty input.
    """
    data = sorted(samples)
    if not data:
        raise ValueError("percentile of empty sample set")
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    if p == 0.0:
        return data[0]
    rank = -(-p * len(data) // 100)  # ceil without float error
    return data[int(rank) - 1]


LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: dict) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _format_labels(key: LabelKey) -> str:
    if not key:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in key) + "}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += amount

    def __repr__(self) -> str:
        return f"<Counter {self.name}{_format_labels(self.labels)}={self.value}>"


class Gauge:
    """A value that can go up and down (queue depth, backlog bytes)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def inc(self, amount=1) -> None:
        self.value += amount

    def dec(self, amount=1) -> None:
        self.value -= amount

    def __repr__(self) -> str:
        return f"<Gauge {self.name}{_format_labels(self.labels)}={self.value}>"


class Histogram:
    """A sample distribution with exact percentile queries.

    Samples are kept verbatim (simulation runs are short enough that
    exactness beats bucketing); ``summary()`` gives the p50/p95/p99 view
    every report uses.
    """

    __slots__ = ("name", "labels", "samples")

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.samples: List[float] = []

    def observe(self, value: float) -> None:
        self.samples.append(value)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return sum(self.samples)

    @property
    def mean(self) -> float:
        if not self.samples:
            raise ValueError(f"histogram {self.name!r} has no samples")
        return self.total / len(self.samples)

    def percentile(self, p: float) -> float:
        return percentile(self.samples, p)

    def summary(self) -> dict:
        """count/mean/min/max plus p50, p95, p99 — the standard digest."""
        if not self.samples:
            return {"count": 0}
        return {
            "count": len(self.samples),
            "sum": self.total,
            "mean": self.mean,
            "min": min(self.samples),
            "max": max(self.samples),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def __repr__(self) -> str:
        return (
            f"<Histogram {self.name}{_format_labels(self.labels)} "
            f"n={len(self.samples)}>"
        )


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

#: Label set of the shared per-metric overflow series — where samples
#: land once a metric hits its cardinality cap.
_OVERFLOW_KEY: LabelKey = (("overflow", "dropped"),)

#: Self-describing counter of label sets refused by the cap, labeled by
#: the offending metric.  Exempt from the cap itself (its cardinality is
#: bounded by the number of metric names).
_DROPPED_METRIC = "obs.labels_dropped"


class MetricsRegistry:
    """Registry of named, labeled instruments."""

    def __init__(self, max_series_per_metric: int = 1024):
        self.max_series_per_metric = max_series_per_metric
        #: name -> kind ("counter"/"gauge"/"histogram")
        self._kinds: Dict[str, str] = {}
        #: name -> {label_key -> instrument}
        self._series: Dict[str, Dict[LabelKey, object]] = {}

    # -- instrument access --------------------------------------------------------

    def _get(self, kind: str, name: str, labels: dict):
        have = self._kinds.get(name)
        if have is None:
            self._kinds[name] = kind
            self._series[name] = {}
        elif have != kind:
            raise ValueError(
                f"metric {name!r} already registered as a {have}, not a {kind}"
            )
        series = self._series[name]
        key = _label_key(labels)
        inst = series.get(key)
        if inst is None:
            if (
                len(series) >= self.max_series_per_metric
                and name != _DROPPED_METRIC
            ):
                return self._overflow(kind, name, series)
            inst = _KINDS[kind](name, key)
            series[key] = inst
        return inst

    def _overflow(self, kind: str, name: str, series: dict):
        """Route a refused label set to the metric's shared overflow series.

        Counts the drop in ``obs.labels_dropped{metric=<name>}`` so the
        collapse is visible in every snapshot/render, then returns the
        per-metric overflow instrument — same kind, labels
        ``{overflow=dropped}`` — so the sample itself is still recorded.
        """
        self.counter(_DROPPED_METRIC, metric=name).inc()
        inst = series.get(_OVERFLOW_KEY)
        if inst is None:
            inst = _KINDS[kind](name, _OVERFLOW_KEY)
            series[_OVERFLOW_KEY] = inst
        return inst

    def counter(self, name: str, **labels) -> Counter:
        """The counter ``name`` with the given labels (created on first use)."""
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        """The gauge ``name`` with the given labels."""
        return self._get("gauge", name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        """The histogram ``name`` with the given labels."""
        return self._get("histogram", name, labels)

    # -- introspection -----------------------------------------------------------

    def kind(self, name: str) -> Optional[str]:
        """Instrument kind of ``name`` (None if never used)."""
        return self._kinds.get(name)

    def series(self, name: str) -> Dict[LabelKey, object]:
        """All instruments of one metric, keyed by label tuple."""
        return dict(self._series.get(name, {}))

    def names(self) -> List[str]:
        """All metric names, sorted."""
        return sorted(self._kinds)

    def snapshot(self) -> dict:
        """Deterministic nested dict of every instrument's current value.

        ``{name: {"kind": ..., "series": {label_string: value_or_summary}}}``
        sorted at every level — safe to JSON-dump and diff across runs.
        """
        out: dict = {}
        for name in self.names():
            kind = self._kinds[name]
            series = {}
            for key in sorted(self._series[name]):
                inst = self._series[name][key]
                label_str = _format_labels(key) or "{}"
                if kind == "histogram":
                    series[label_str] = inst.summary()
                else:
                    series[label_str] = inst.value
            out[name] = {"kind": kind, "series": series}
        return out

    def reset(self) -> None:
        """Drop every instrument (names, labels, and values)."""
        self._kinds.clear()
        self._series.clear()

    # -- rendering ----------------------------------------------------------------

    def render(self) -> str:
        """Plain-text report: one line per series, sorted, stable."""
        lines: List[str] = []
        for name in self.names():
            kind = self._kinds[name]
            for key in sorted(self._series[name]):
                inst = self._series[name][key]
                label = _format_labels(key)
                if kind == "histogram":
                    s = inst.summary()
                    if s["count"] == 0:
                        lines.append(f"{name}{label} count=0")
                        continue
                    lines.append(
                        f"{name}{label} count={s['count']} mean={s['mean']:.1f} "
                        f"p50={s['p50']:.1f} p95={s['p95']:.1f} "
                        f"p99={s['p99']:.1f} max={s['max']:.1f}"
                    )
                else:
                    lines.append(f"{name}{label} {inst.value}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        n = sum(len(s) for s in self._series.values())
        return f"<MetricsRegistry metrics={len(self._kinds)} series={n}>"
