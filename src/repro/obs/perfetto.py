"""Chrome/Perfetto trace-event JSON export.

Builds a `Trace Event Format`_ document loadable in ``ui.perfetto.dev``
or ``chrome://tracing``.  The mapping used by the instrumented BCS
runtime:

- one *process* (pid) per simulated node; the management node carries
  the slice-machine track (slices and microphases as seen by the
  Strobe Sender);
- per node, thread 0 is the node's microphase track (per-node spans as
  seen by its Strobe Receiver) and thread 1 the NIC-thread track
  (BS/BR/DH/CH/RH occupancy spans);
- microphases are complete ("X") duration events, nested inside their
  slice span by containment;
- scheduler backlog / granted bytes are counter ("C") events;
- message lifecycles are flow ("s"/"t"/"f") events sharing one flow id:
  start at descriptor exchange on the source node's microphase track,
  step at the match on the destination node, end at delivery — each
  timestamp lands inside a real microphase span on its track, so the
  Perfetto UI draws the cross-node causality arrows.

Timestamps are simulated **nanoseconds** converted to the microsecond
unit the format expects; with integer virtual time the conversion is
exact in binary for the .001 multiples produced here, so serialization
is byte-stable across identical runs.

.. _Trace Event Format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

__all__ = ["PerfettoTrace"]


def _us(ts_ns: int) -> float:
    """Nanoseconds -> microseconds (the trace-event time unit)."""
    return ts_ns / 1000.0


class PerfettoTrace:
    """Accumulates trace events and serializes them deterministically."""

    def __init__(self):
        #: Metadata events (process/thread names), emitted first.
        self._meta: List[dict] = []
        #: Timed events, in emission (= simulation) order.
        self._events: List[dict] = []
        self._named_processes: Dict[int, str] = {}
        self._named_threads: Dict[tuple, str] = {}

    # -- metadata -----------------------------------------------------------------

    def process_name(self, pid: int, name: str, sort_index: Optional[int] = None) -> None:
        """Name the track group of ``pid`` (idempotent)."""
        if self._named_processes.get(pid) == name:
            return
        self._named_processes[pid] = name
        self._meta.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }
        )
        if sort_index is not None:
            self._meta.append(
                {
                    "ph": "M",
                    "name": "process_sort_index",
                    "pid": pid,
                    "tid": 0,
                    "args": {"sort_index": sort_index},
                }
            )

    def thread_name(self, pid: int, tid: int, name: str) -> None:
        """Name one thread track of ``pid`` (idempotent)."""
        if self._named_threads.get((pid, tid)) == name:
            return
        self._named_threads[(pid, tid)] = name
        self._meta.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": tid,
                "args": {"name": name},
            }
        )

    # -- events -------------------------------------------------------------------

    def complete(
        self,
        pid: int,
        tid: int,
        name: str,
        cat: str,
        start_ns: int,
        dur_ns: int,
        args: Optional[dict] = None,
    ) -> None:
        """A duration ("X") event: one span on a track."""
        event = {
            "ph": "X",
            "name": name,
            "cat": cat,
            "pid": pid,
            "tid": tid,
            "ts": _us(start_ns),
            "dur": _us(dur_ns),
        }
        if args:
            event["args"] = args
        self._events.append(event)

    def instant(
        self,
        pid: int,
        tid: int,
        name: str,
        cat: str,
        ts_ns: int,
        args: Optional[dict] = None,
    ) -> None:
        """An instant ("i") event: a zero-duration marker."""
        event = {
            "ph": "i",
            "s": "t",
            "name": name,
            "cat": cat,
            "pid": pid,
            "tid": tid,
            "ts": _us(ts_ns),
        }
        if args:
            event["args"] = args
        self._events.append(event)

    def _flow(
        self,
        ph: str,
        pid: int,
        tid: int,
        name: str,
        cat: str,
        ts_ns: int,
        flow_id: int,
    ) -> None:
        event = {
            "ph": ph,
            "name": name,
            "cat": cat,
            "pid": pid,
            "tid": tid,
            "ts": _us(ts_ns),
            "id": flow_id,
        }
        if ph == "f":
            # Bind to the enclosing slice, not the next one to start.
            event["bp"] = "e"
        self._events.append(event)

    def flow_start(
        self, pid: int, tid: int, name: str, cat: str, ts_ns: int, flow_id: int
    ) -> None:
        """A flow-start ("s") event: the arrow's tail."""
        self._flow("s", pid, tid, name, cat, ts_ns, flow_id)

    def flow_step(
        self, pid: int, tid: int, name: str, cat: str, ts_ns: int, flow_id: int
    ) -> None:
        """A flow-step ("t") event: an intermediate arrow waypoint."""
        self._flow("t", pid, tid, name, cat, ts_ns, flow_id)

    def flow_end(
        self, pid: int, tid: int, name: str, cat: str, ts_ns: int, flow_id: int
    ) -> None:
        """A flow-end ("f", bp=e) event: the arrow's head."""
        self._flow("f", pid, tid, name, cat, ts_ns, flow_id)

    def counter(self, pid: int, name: str, ts_ns: int, values: dict) -> None:
        """A counter ("C") sample: stacked value track."""
        self._events.append(
            {
                "ph": "C",
                "name": name,
                "pid": pid,
                "tid": 0,
                "ts": _us(ts_ns),
                "args": {k: values[k] for k in sorted(values)},
            }
        )

    # -- serialization ------------------------------------------------------------

    @property
    def n_events(self) -> int:
        """Number of timed (non-metadata) events recorded."""
        return len(self._events)

    def to_dict(self) -> dict:
        """The trace document as a plain dict (metadata first)."""
        return {
            "displayTimeUnit": "ns",
            "traceEvents": list(self._meta) + list(self._events),
        }

    def to_json_bytes(self) -> bytes:
        """Byte-stable serialization (sorted keys, fixed separators)."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":"), ensure_ascii=True
        ).encode("ascii")

    def save(self, path) -> None:
        """Write the trace to ``path`` (open in ui.perfetto.dev)."""
        with open(path, "wb") as fh:
            fh.write(self.to_json_bytes())

    def __repr__(self) -> str:
        return f"<PerfettoTrace events={len(self._events)} meta={len(self._meta)}>"
