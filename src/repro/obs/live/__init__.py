"""Live telemetry plane: exposition, event stream, dashboard.

``repro.obs.live`` is the serving layer over the observability stack
(see docs/OBSERVABILITY.md, "Live telemetry"):

- :mod:`.exposition` — Prometheus/OpenMetrics text rendering of a
  :class:`~repro.obs.registry.MetricsRegistry` (or of the snapshot dict
  a farm run persists in ``last-run.json``), plus the parser the
  round-trip tests and the smoke script use;
- :mod:`.publisher` — a polling :class:`~.publisher.TelemetryPublisher`
  that diffs queue/store/trend state into server-sent events with
  monotonic sequence ids, so a client can resume via ``Last-Event-ID``
  without duplicated or skipped events;
- :mod:`.httpd` — the shared HTTP routes (``/events``, ``/trends``,
  ``/records``, the dashboard page, Prometheus content negotiation)
  mounted by both the farm queue service (``repro serve``) and the
  standalone read-only :class:`~.httpd.DashboardServer`
  (``repro dashboard``);
- :mod:`.dashboard` — the static single-file HTML dashboard (no CDN,
  inline SVG sparklines, SSE-driven tiles).

Everything is stdlib + the existing registry: the live plane adds
transport, never semantics, and costs nothing when not serving.
"""

from .exposition import (
    OPENMETRICS_CONTENT_TYPE,
    parse_exposition,
    render_exposition,
)
from .publisher import LiveEvent, TelemetryPublisher, format_sse, make_collector

__all__ = [
    "LiveEvent",
    "OPENMETRICS_CONTENT_TYPE",
    "TelemetryPublisher",
    "format_sse",
    "make_collector",
    "parse_exposition",
    "render_exposition",
]
