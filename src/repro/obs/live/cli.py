"""``repro dashboard`` — the standalone, read-only telemetry server.

::

    repro dashboard                         # serve .farm-store + .trend-store
    repro dashboard --port 8643 --traces traces/
    repro dashboard --no-browser-hint       # quiet startup line

No queue controller is required: the queue/family tiles fall back to
the last recorded farm run (``last-run.json``), trends come from the
trend store, and ``/metrics?format=prometheus`` renders the last run's
persisted metrics snapshot.  Point a browser at the printed URL.
"""

from __future__ import annotations

import argparse
import signal
import sys
from pathlib import Path
from typing import List, Optional

__all__ = ["dashboard_main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro dashboard",
        description="Serve the farm telemetry dashboard (read-only) over "
        "a result store and a trend store — no queue service needed.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=0, help="bind port (default: pick a free one)"
    )
    parser.add_argument(
        "--store",
        metavar="PATH",
        default=None,
        help="result store directory (default: $REPRO_FARM_STORE or .farm-store)",
    )
    parser.add_argument(
        "--trend-store",
        metavar="PATH",
        default=None,
        help="trend store directory (default: $REPRO_TREND_STORE or .trend-store)",
    )
    parser.add_argument(
        "--traces",
        metavar="PATH",
        default=None,
        help="directory of Perfetto trace JSONs served under /traces",
    )
    parser.add_argument(
        "--publish-interval",
        type=float,
        default=2.0,
        metavar="S",
        help="live telemetry poll interval in seconds; 0 disables the "
        "publisher thread (default 2)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    return parser


def dashboard_main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    from ...farm.store import ResultStore, default_store_path
    from ..trends.store import TrendStore
    from .httpd import make_dashboard_server

    store = ResultStore(
        Path(args.store) if args.store else default_store_path()
    )
    trend_store = TrendStore(
        Path(args.trend_store) if args.trend_store else None
    )
    server = make_dashboard_server(
        result_store=store,
        trend_store=trend_store,
        traces_dir=Path(args.traces) if args.traces else None,
        host=args.host,
        port=args.port,
        verbose=args.verbose,
    )
    if args.publish_interval > 0:
        server.publisher.start(interval_s=args.publish_interval)
    print(
        f"[dashboard] serving {store.root} + {trend_store.root} "
        f"on {server.url}",
        flush=True,
    )
    print(f"[dashboard] open {server.url}/dashboard", flush=True)
    signal.signal(signal.SIGTERM, lambda *a: sys.exit(0))
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.publisher.stop()
        server.server_close()
        print("[dashboard] stopped", flush=True)
    return 0
