"""The static single-file farm dashboard (no CDN, stdlib-served).

One HTML document, embedded as a constant so the servers need no
package-data machinery: stat tiles fed live by the ``/events`` SSE
stream (``EventSource`` resumes via ``Last-Event-ID`` automatically),
per-series sparklines rendered as inline SVG from the ``/trends`` JSON
artifact, a families table, recent ``/results/<key>`` rows, and the
download links (Prometheus text, trend artifact, Perfetto traces when
the server has a traces directory).

Relative URLs only (``events``, ``trends``, ``records`` …), so the same
page works mounted at ``/`` and at ``/dashboard`` on both the farm
queue service and the standalone dashboard server.
"""

from __future__ import annotations

import hashlib

__all__ = ["DASHBOARD_ETAG", "DASHBOARD_HTML", "HTML_CONTENT_TYPE"]

HTML_CONTENT_TYPE = "text/html; charset=utf-8"

DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>repro farm &mdash; live telemetry</title>
<style>
  .viz-root {
    color-scheme: light;
    --surface-1: #fcfcfb;
    --plane: #f9f9f7;
    --text-primary: #0b0b0b;
    --text-secondary: #52514e;
    --text-muted: #898781;
    --grid: #e1e0d9;
    --border: rgba(11, 11, 11, 0.10);
    --series-1: #2a78d6;
    --status-good: #0ca30c;
    --status-warning: #fab219;
    --status-critical: #d03b3b;
  }
  @media (prefers-color-scheme: dark) {
    :root:where(:not([data-theme="light"])) .viz-root {
      color-scheme: dark;
      --surface-1: #1a1a19;
      --plane: #0d0d0d;
      --text-primary: #ffffff;
      --text-secondary: #c3c2b7;
      --text-muted: #898781;
      --grid: #2c2c2a;
      --border: rgba(255, 255, 255, 0.10);
      --series-1: #3987e5;
    }
  }
  * { box-sizing: border-box; }
  body.viz-root {
    margin: 0; padding: 24px;
    background: var(--plane); color: var(--text-primary);
    font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
  }
  header { display: flex; align-items: baseline; gap: 12px; margin-bottom: 20px; }
  h1 { font-size: 18px; font-weight: 600; margin: 0; }
  .conn { font-size: 12px; color: var(--text-muted); }
  .conn .dot { display: inline-block; width: 8px; height: 8px; border-radius: 50%;
               background: var(--text-muted); margin-right: 4px; vertical-align: baseline; }
  .conn.live .dot { background: var(--status-good); }
  h2 { font-size: 13px; font-weight: 600; color: var(--text-secondary);
       margin: 24px 0 8px; text-transform: none; }
  .tiles { display: grid; grid-template-columns: repeat(auto-fill, minmax(150px, 1fr)); gap: 12px; }
  .tile { background: var(--surface-1); border: 1px solid var(--border);
          border-radius: 8px; padding: 12px 14px; }
  .tile .label { font-size: 12px; color: var(--text-secondary); }
  .tile .value { font-size: 26px; font-weight: 600; margin-top: 2px; }
  .tile .sub { font-size: 12px; color: var(--text-muted); margin-top: 2px; }
  .status-chip { font-size: 13px; font-weight: 600; }
  .status-ok .value { color: var(--text-primary); }
  .chip { display: inline-flex; align-items: center; gap: 5px; font-size: 12px;
          color: var(--text-secondary); }
  .chip .mark { font-weight: 700; }
  .chip.ok .mark { color: var(--status-good); }
  .chip.warn .mark { color: var(--status-warning); }
  .chip.regress .mark { color: var(--status-critical); }
  .chip.short .mark { color: var(--text-muted); }
  .cards { display: grid; grid-template-columns: repeat(auto-fill, minmax(240px, 1fr)); gap: 12px; }
  .card { background: var(--surface-1); border: 1px solid var(--border);
          border-radius: 8px; padding: 10px 12px; }
  .card .name { font-size: 12px; color: var(--text-secondary);
                overflow: hidden; text-overflow: ellipsis; white-space: nowrap; }
  .card .row { display: flex; align-items: center; justify-content: space-between;
               gap: 8px; margin-top: 4px; }
  .card .last { font-size: 16px; font-weight: 600; }
  svg.spark { display: block; }
  table { border-collapse: collapse; width: 100%; background: var(--surface-1);
          border: 1px solid var(--border); border-radius: 8px; overflow: hidden; }
  th, td { text-align: left; padding: 6px 12px; font-size: 13px;
           border-top: 1px solid var(--grid); }
  thead th { border-top: none; color: var(--text-secondary); font-weight: 600; font-size: 12px; }
  td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
  a { color: var(--series-1); text-decoration: none; }
  a:hover { text-decoration: underline; }
  .downloads { display: flex; flex-wrap: wrap; gap: 14px; font-size: 13px; }
  .empty { color: var(--text-muted); font-size: 13px; }
  footer { margin-top: 28px; font-size: 12px; color: var(--text-muted); }
  code { font-family: ui-monospace, SFMono-Regular, Menlo, monospace; font-size: 12px; }
</style>
</head>
<body class="viz-root">
<header>
  <h1>repro farm &mdash; live telemetry</h1>
  <span id="conn" class="conn"><span class="dot"></span><span id="conn-text">connecting&hellip;</span></span>
</header>

<section class="tiles" aria-label="live farm state">
  <div class="tile"><div class="label">Queue depth</div><div class="value" id="t-pending">&ndash;</div><div class="sub" id="t-jobs"></div></div>
  <div class="tile"><div class="label">Leased</div><div class="value" id="t-leased">&ndash;</div></div>
  <div class="tile"><div class="label">Workers</div><div class="value" id="t-workers">&ndash;</div></div>
  <div class="tile"><div class="label">Points done</div><div class="value" id="t-done">&ndash;</div><div class="sub" id="t-failed"></div></div>
  <div class="tile"><div class="label">Store records</div><div class="value" id="t-records">&ndash;</div></div>
  <div class="tile"><div class="label">Cache hit rate</div><div class="value" id="t-hitrate">&ndash;</div><div class="sub" id="t-backend"></div></div>
  <div class="tile status-ok"><div class="label">Regression gate</div>
    <div class="value status-chip" id="t-gate">&ndash;</div>
    <div class="sub" id="t-gate-runs"></div></div>
</section>

<h2>Per-family points</h2>
<div id="families"><p class="empty">No family activity yet.</p></div>

<h2>Performance trends</h2>
<div id="trends" class="cards"><p class="empty">Loading trend artifact&hellip;</p></div>

<h2>Recent results</h2>
<div id="records"><p class="empty">No cached rows yet.</p></div>

<h2>Downloads</h2>
<div class="downloads">
  <a href="metrics?format=prometheus">Prometheus metrics</a>
  <a href="trends">Trend artifact (JSON)</a>
  <a href="metrics">Metrics snapshot (JSON)</a>
  <span id="traces-links"></span>
</div>

<footer id="foot">waiting for first event&hellip;</footer>

<script>
"use strict";
const $ = (id) => document.getElementById(id);
const fmt = (v) => (v === undefined || v === null) ? "\\u2013" :
  (typeof v === "number" && !Number.isInteger(v)) ? v.toFixed(v < 10 ? 3 : 1) : String(v);

const GATE = {
  ok:      { mark: "\\u2713", text: "ok",      cls: "ok" },
  warn:    { mark: "\\u26a0", text: "warn",    cls: "warn" },
  regress: { mark: "\\u2716", text: "regress", cls: "regress" },
  short:   { mark: "\\u2014", text: "short",   cls: "short" },
};
function chip(status) {
  const g = GATE[status] || GATE.short;
  return '<span class="chip ' + g.cls + '"><span class="mark">' + g.mark +
         '</span>' + g.text + '</span>';
}

// Sparkline: 2px line in the series hue, >=8px end marker with a 2px
// surface ring; a flat series draws at mid-height (never "near zero").
function spark(values, w, h) {
  w = w || 120; h = h || 36;
  const pad = 5;
  if (!values || !values.length) return "";
  const lo = Math.min(...values), hi = Math.max(...values);
  const y = (v) => (hi <= lo) ? h / 2 :
    h - pad - ((v - lo) / (hi - lo)) * (h - 2 * pad);
  const x = (i) => values.length === 1 ? w - pad :
    pad + (i / (values.length - 1)) * (w - 2 * pad);
  const pts = values.map((v, i) => x(i).toFixed(1) + "," + y(v).toFixed(1)).join(" ");
  const lastX = x(values.length - 1), lastY = y(values[values.length - 1]);
  return '<svg class="spark" width="' + w + '" height="' + h + '" role="img" ' +
    'aria-label="trend of ' + values.length + ' runs, last ' + fmt(values[values.length - 1]) + '">' +
    '<polyline fill="none" stroke="var(--series-1)" stroke-width="2" ' +
    'stroke-linejoin="round" stroke-linecap="round" points="' + pts + '"/>' +
    '<circle cx="' + lastX + '" cy="' + lastY + '" r="4" fill="var(--series-1)" ' +
    'stroke="var(--surface-1)" stroke-width="2"/></svg>';
}

function esc(s) {
  return String(s).replace(/&/g, "&amp;").replace(/</g, "&lt;").replace(/>/g, "&gt;")
                  .replace(/"/g, "&quot;");
}

const state = { lastEventId: 0 };

function onQueue(d) {
  $("t-pending").textContent = fmt(d.pending);
  $("t-leased").textContent = fmt(d.leased);
  $("t-workers").textContent = fmt(d.workers);
  $("t-done").textContent = fmt(d.done);
  $("t-failed").textContent = d.failed ? d.failed + " failed" : "";
  $("t-jobs").textContent = d.jobs !== undefined ? d.jobs + " job(s)" : "";
}

function onFamilies(d) {
  const names = Object.keys(d).sort();
  if (!names.length) return;
  let html = "<table><thead><tr><th>family</th><th class=num>completed</th>" +
             "<th class=num>cached</th><th class=num>failed</th></tr></thead><tbody>";
  for (const name of names) {
    const f = d[name];
    html += "<tr><td>" + esc(name) + "</td><td class=num>" + fmt(f.completed || 0) +
            "</td><td class=num>" + fmt(f.cached || 0) +
            "</td><td class=num>" + fmt(f.failed || 0) + "</td></tr>";
  }
  $("families").innerHTML = html + "</tbody></table>";
}

function onStore(d) {
  $("t-records").textContent = fmt(d.records);
  const last = d.last_run || {};
  if (last.cache_hit_rate !== undefined)
    $("t-hitrate").textContent = (last.cache_hit_rate * 100).toFixed(1) + "%";
  if (last.backend) $("t-backend").textContent = last.backend + " backend";
  if (last.families && !document.querySelector("#families table"))
    onFamilies(Object.fromEntries(Object.entries(last.families).map(
      ([name, f]) => [name, { completed: f.ok, failed: f.points - f.ok }])));
  loadRecords();
}

function onTrends(d) {
  $("t-gate").innerHTML = chip(d.status);
  $("t-gate-runs").textContent = d.runs + " recorded run(s)";
  loadTrends();
}

function onEvent(e) {
  state.lastEventId = e.lastEventId || state.lastEventId;
  $("foot").textContent = "last event id " + state.lastEventId;
  const d = JSON.parse(e.data);
  if (e.type === "queue") onQueue(d);
  else if (e.type === "families") onFamilies(d);
  else if (e.type === "store") onStore(d);
  else if (e.type === "trends") onTrends(d);
}

function connect() {
  const es = new EventSource("events");
  for (const kind of ["queue", "families", "store", "trends"])
    es.addEventListener(kind, onEvent);
  es.onopen = () => { $("conn").classList.add("live"); $("conn-text").textContent = "live"; };
  es.onerror = () => { $("conn").classList.remove("live"); $("conn-text").textContent = "reconnecting\\u2026"; };
}

let trendsEtag = null;
function loadTrends() {
  fetch("trends", { headers: trendsEtag ? { "If-None-Match": trendsEtag } : {} })
    .then((r) => {
      if (r.status === 304) return null;
      trendsEtag = r.headers.get("ETag");
      return r.json();
    })
    .then((payload) => {
      if (!payload) return;
      const ids = Object.keys(payload.series || {}).sort();
      if (!ids.length) {
        $("trends").innerHTML = '<p class="empty">Trend store is empty (nothing recorded yet).</p>';
        return;
      }
      let html = "";
      for (const id of ids) {
        const s = payload.series[id];
        const values = s.values || [];
        html += '<div class="card"><div class="name" title="' + esc(id) + '">' + esc(id) +
          '</div><div class="row"><span class="last">' + fmt(s.last) + '</span>' +
          spark(values) + chip(s.status) + "</div></div>";
      }
      $("trends").innerHTML = html;
    })
    .catch(() => {});
}

function loadRecords() {
  fetch("records?limit=12").then((r) => r.ok ? r.json() : null).then((payload) => {
    if (!payload || !payload.records || !payload.records.length) return;
    let html = "<table><thead><tr><th>family</th><th>params</th>" +
               "<th class=num>duration</th><th>row</th></tr></thead><tbody>";
    for (const rec of payload.records) {
      html += "<tr><td>" + esc(rec.family) + "</td><td><code>" +
        esc(JSON.stringify(rec.params)) + "</code></td><td class=num>" +
        (rec.duration_s !== undefined ? rec.duration_s.toFixed(2) + "s" : "\\u2013") +
        '</td><td><a href="results/' + esc(rec.key) + '">' +
        esc(rec.key.slice(0, 12)) + "&hellip;</a></td></tr>";
    }
    $("records").innerHTML = html + "</tbody></table>";
  }).catch(() => {});
}

function loadTraces() {
  fetch("traces").then((r) => r.ok ? r.json() : null).then((payload) => {
    if (!payload || !payload.traces || !payload.traces.length) return;
    $("traces-links").innerHTML = payload.traces.map((t) =>
      '<a href="traces/' + esc(t.name) + '" download>Perfetto: ' + esc(t.name) + "</a>"
    ).join(" ");
  }).catch(() => {});
}

connect();
loadTrends();
loadRecords();
loadTraces();
</script>
</body>
</html>
"""

#: Strong ETag of the page — the document is immutable per build.
DASHBOARD_ETAG = (
    '"' + hashlib.sha256(DASHBOARD_HTML.encode()).hexdigest()[:32] + '"'
)
