"""Polling publisher: queue/store/trend state diffed into SSE events.

The :class:`TelemetryPublisher` owns a ``collect()`` callable that
returns the current *state* as ``{section: payload_dict}`` (sections:
``queue``, ``families``, ``store``, ``trends`` — whatever the attached
collectors produce).  Each :meth:`poll` diffs the fresh state against
the previous one and appends one :class:`LiveEvent` per **changed
section**, carrying the section's *full* payload — events are
state-replacing, never incremental, so delivery is idempotent and a
late joiner only ever needs the newest event of each section.

Sequence ids are monotonic from 1 and entirely deterministic: no wall
clock enters event generation, so tests drive :meth:`poll` by hand and
assert exact ids.  Resume contract (``Last-Event-ID``):

- :meth:`events_since` replays everything after the given id from the
  bounded ring buffer — no duplicates, no gaps — and reports whether
  the buffer still reached back that far;
- if it did not (the client slept through more than ``buffer_size``
  events), :meth:`snapshot_events` re-emits every section's current
  state under **fresh** ids, which by the state-replacing contract is
  exactly equivalent to having seen the missed tail.

:func:`serve_sse` is the one SSE writer both HTTP servers mount: replay
or snapshot, then block on the publisher's condition for new events,
emitting ``: keepalive`` comments while idle so dead clients surface as
broken pipes.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Callable, Dict, List, NamedTuple, Optional, Tuple

__all__ = [
    "LiveEvent",
    "TelemetryPublisher",
    "controller_state",
    "format_sse",
    "make_collector",
    "serve_sse",
    "store_state",
    "trend_state",
]

#: SSE content type (the dashboard's ``EventSource`` requires it).
SSE_CONTENT_TYPE = "text/event-stream; charset=utf-8"


class LiveEvent(NamedTuple):
    """One server-sent event: monotonic id, section name, full payload."""

    seq: int
    event: str
    data: dict


def format_sse(event: LiveEvent) -> str:
    """The wire form of one event (``id:``/``event:``/``data:`` lines)."""
    payload = json.dumps(event.data, sort_keys=True, separators=(",", ":"))
    return f"id: {event.seq}\nevent: {event.event}\ndata: {payload}\n\n"


class TelemetryPublisher:
    """Diffs a collected state dict into a resumable event stream."""

    def __init__(
        self,
        collect: Callable[[], Dict[str, dict]],
        buffer_size: int = 4096,
    ):
        if buffer_size < 1:
            raise ValueError(f"buffer_size must be >= 1, got {buffer_size}")
        self._collect = collect
        self._events: deque = deque(maxlen=buffer_size)
        self._seq = 0
        self._last: Dict[str, dict] = {}
        self._cond = threading.Condition()
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # -- producing -----------------------------------------------------------

    def _emit(self, section: str, payload: dict) -> LiveEvent:
        # caller holds self._cond
        self._seq += 1
        event = LiveEvent(self._seq, section, payload)
        self._events.append(event)
        return event

    def poll(self) -> List[LiveEvent]:
        """Collect, diff, append one event per changed section."""
        state = self._collect()
        new: List[LiveEvent] = []
        with self._cond:
            for section in sorted(state):
                if state[section] != self._last.get(section):
                    new.append(self._emit(section, state[section]))
            self._last = dict(state)
            if new:
                self._cond.notify_all()
        return new

    def snapshot_events(self) -> List[LiveEvent]:
        """Re-emit every section's current state under fresh ids.

        The greeting for a client with no resumable position (first
        connect, or a ``Last-Event-ID`` older than the buffer).  Other
        connected clients also receive these events; they are exact
        restatements of state those clients already hold, so the
        replacing contract makes them no-ops there.
        """
        with self._cond:
            events = [
                self._emit(section, self._last[section])
                for section in sorted(self._last)
            ]
            if events:
                self._cond.notify_all()
            return events

    # -- consuming -----------------------------------------------------------

    @property
    def latest_seq(self) -> int:
        with self._cond:
            return self._seq

    def events_since(self, last_id: int) -> Tuple[List[LiveEvent], bool]:
        """(events with seq > last_id, whether the replay is gap-free).

        ``False`` means the ring buffer no longer reaches back to
        ``last_id`` — the caller should fall back to
        :meth:`snapshot_events`.
        """
        with self._cond:
            events = [e for e in self._events if e.seq > last_id]
            if last_id >= self._seq:
                return [], True
            oldest_needed = last_id + 1
            complete = bool(events) and events[0].seq == oldest_needed
            return events, complete

    def wait(self, last_id: int, timeout_s: float) -> List[LiveEvent]:
        """Block until events newer than ``last_id`` exist (or timeout)."""
        with self._cond:
            self._cond.wait_for(
                lambda: self._seq > last_id, timeout=timeout_s
            )
            return [e for e in self._events if e.seq > last_id]

    # -- the poll thread -----------------------------------------------------

    def start(self, interval_s: float = 1.0) -> None:
        """Start the background poll loop (daemon thread, idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()

        def loop() -> None:
            while not self._stop.is_set():
                try:
                    self.poll()
                except Exception:  # noqa: BLE001 - keep the plane up
                    pass  # a failed probe must never kill the stream
                self._stop.wait(interval_s)

        self._thread = threading.Thread(
            target=loop, name="repro-live-publisher", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        with self._cond:
            self._cond.notify_all()


# -- collectors ------------------------------------------------------------


def controller_state(controller) -> Dict[str, dict]:
    """``queue`` + ``families`` sections from a live QueueController."""
    stats = controller.stats()
    queue = {
        "pending": stats["pending"],
        "leased": stats["leased"],
        "done": stats["done"],
        "failed": stats["failed"],
        "jobs": stats["jobs"],
        "workers": len(stats["workers"]),
    }
    families: Dict[str, dict] = {}
    for metric, field in (
        ("farm.queue.completed", "completed"),
        ("farm.queue.cached", "cached"),
        ("farm.queue.failed", "failed"),
        ("farm.queue.submitted", "submitted"),
    ):
        for key, inst in controller.registry.series(metric).items():
            labels = dict(key)
            family = labels.get("family")
            if family is None:
                continue
            families.setdefault(family, {})[field] = inst.value
    return {"queue": queue, "families": families}


#: last-run.json keys mirrored into the ``store`` section.
_LAST_RUN_FIELDS = (
    "backend",
    "points",
    "cached",
    "executed",
    "failed",
    "retried",
    "cache_hit_rate",
    "store_records",
    "duration_s",
    "git_sha",
    "families",
)


def store_state(store) -> Dict[str, dict]:
    """``store`` section: record count + the last-run snapshot digest."""
    last = store.load_last_run() or {}
    return {
        "store": {
            "records": store.count(),
            "last_run": {k: last[k] for k in _LAST_RUN_FIELDS if k in last},
        }
    }


def trend_state(trend_store, config=None) -> Dict[str, dict]:
    """``trends`` section: the regression gate's current verdicts."""
    from ..trends.report import json_report

    report = json_report(trend_store, config)
    return {
        "trends": {
            "status": report["status"],
            "runs": report["runs"],
            "series": {
                series_id: info["status"]
                for series_id, info in sorted(report["series"].items())
            },
        }
    }


def make_collector(
    controller=None, store=None, trend_store=None, detector_config=None
) -> Callable[[], Dict[str, dict]]:
    """One ``collect()`` over whichever sources this server has.

    ``repro serve`` passes all three; the standalone ``repro dashboard``
    has no controller — its queue/family view comes from the last-run
    snapshot in the ``store`` section instead.
    """

    def collect() -> Dict[str, dict]:
        state: Dict[str, dict] = {}
        if controller is not None:
            state.update(controller_state(controller))
        if store is not None:
            state.update(store_state(store))
        if trend_store is not None:
            state.update(trend_state(trend_store, detector_config))
        return state

    return collect


# -- the SSE writer --------------------------------------------------------


def serve_sse(
    wfile,
    publisher: TelemetryPublisher,
    last_event_id: Optional[int] = None,
    heartbeat_s: float = 15.0,
    max_events: Optional[int] = None,
    idle_timeout_s: Optional[float] = None,
) -> int:
    """Stream events to one client until it disconnects; returns count.

    - no ``last_event_id`` → greet with a full state snapshot;
    - a resumable id → gap-free replay of exactly the missed events;
    - an id older than the buffer → snapshot (state-replacing events
      make that equivalent to the lost tail).

    ``max_events``/``idle_timeout_s`` end the stream early — the hooks
    the tests and the smoke script use to get a finite response.
    """
    sent = 0

    def write(chunk: str) -> bool:
        try:
            wfile.write(chunk.encode("utf-8"))
            wfile.flush()
            return True
        except (BrokenPipeError, ConnectionResetError, OSError):
            return False

    if not write("retry: 2000\n\n"):
        return sent
    if last_event_id is None:
        events = publisher.snapshot_events()
    else:
        events, complete = publisher.events_since(last_event_id)
        if not complete:
            events = publisher.snapshot_events()
    cursor = last_event_id or 0
    idle_s = 0.0
    while True:
        for event in events:
            if not write(format_sse(event)):
                return sent
            sent += 1
            cursor = max(cursor, event.seq)
            if max_events is not None and sent >= max_events:
                return sent
        if events:
            idle_s = 0.0
        wait_s = heartbeat_s
        if idle_timeout_s is not None:
            wait_s = min(wait_s, idle_timeout_s - idle_s)
            if wait_s <= 0:
                return sent
        t0 = time.monotonic()
        events = publisher.wait(cursor, timeout_s=wait_s)
        if not events:
            idle_s += time.monotonic() - t0
            if not write(": keepalive\n\n"):
                return sent
